module Event = Rrs_obs.Event
module Sink = Rrs_obs.Sink

type policy = Fail_fast | Record | Off

type violation = { round : int; invariant : string; detail : string }

exception Invariant_violation of violation

type t = {
  policy : policy;
  delta : int;
  lemma_bounds : bool;
  mutable last_round : int;
  mutable epochs_opened : int;
  mutable reconfig_charges : int;
  mutable ineligible_drops : int;
  (* lemma bounds only apply once the run proves itself instrumented by
     emitting an eligibility-family event; plain policies trace drops
     the lemmas do not bound *)
  mutable instrumented : bool;
  eligible : (int, bool) Hashtbl.t; (* color -> eligibility, replayed *)
  cache : (int, int) Hashtbl.t; (* resource -> projected color *)
  mutable events_seen : int;
  mutable violations : violation list; (* reversed *)
}

let create ?(policy = Record) ?(lemma_bounds = true) ~delta () =
  if delta < 1 then invalid_arg "Watchdog.create: delta < 1";
  {
    policy;
    delta;
    lemma_bounds;
    last_round = -1;
    epochs_opened = 0;
    reconfig_charges = 0;
    ineligible_drops = 0;
    instrumented = false;
    eligible = Hashtbl.create 16;
    cache = Hashtbl.create 16;
    events_seen = 0;
    violations = [];
  }

let flag t ~round ~invariant detail =
  let v = { round; invariant; detail } in
  match t.policy with
  | Fail_fast -> raise (Invariant_violation v)
  | Record -> t.violations <- v :: t.violations
  | Off -> ()

let is_eligible t color =
  Option.value ~default:false (Hashtbl.find_opt t.eligible color)

let cached t resource =
  Option.value ~default:Rrs_core.Types.black (Hashtbl.find_opt t.cache resource)

(* The lemma budgets are amortized over the whole run: a prefix can
   legitimately run ahead of 4·numEpochs while an epoch's service is in
   flight (observed on the unbatched family: 73 charges against 18 open
   epochs, converging under the bound by the end).  They are therefore
   applied by [finish], not per event. *)
let check_lemma_3_3 t ~round =
  if t.lemma_bounds && t.instrumented
     && t.reconfig_charges > 4 * t.epochs_opened
  then
    flag t ~round ~invariant:"lemma_3_3"
      (Printf.sprintf "%d reconfiguration charges > 4 * %d epochs"
         t.reconfig_charges t.epochs_opened)

let check_lemma_3_4 t ~round =
  if t.lemma_bounds && t.instrumented
     && t.ineligible_drops > t.delta * t.epochs_opened
  then
    flag t ~round ~invariant:"lemma_3_4"
      (Printf.sprintf "%d ineligible drops > %d * %d epochs"
         t.ineligible_drops t.delta t.epochs_opened)

let finish t =
  let round = max 0 t.last_round in
  check_lemma_3_3 t ~round;
  check_lemma_3_4 t ~round

let observe t event =
  t.events_seen <- t.events_seen + 1;
  let round = Event.round event in
  if round < t.last_round then
    flag t ~round ~invariant:"round_monotonic"
      (Printf.sprintf "round %d after round %d" round t.last_round)
  else t.last_round <- round;
  match event with
  | Event.Drop { color; count; _ } ->
      if count < 0 then
        flag t ~round ~invariant:"nonneg_count"
          (Printf.sprintf "drop of %d jobs of color %d" count color);
      (* engine classification is pre-transition: this round's
         eligibility events have not arrived yet, so the replayed state
         is exactly the classifying state *)
      if t.instrumented && not (is_eligible t color) then
        t.ineligible_drops <- t.ineligible_drops + count
  | Event.Arrival { color; count; _ } ->
      if count < 0 then
        flag t ~round ~invariant:"nonneg_count"
          (Printf.sprintf "arrival of %d jobs of color %d" count color)
  | Event.Reconfigure { resource; from_color; to_color; _ } ->
      if from_color = to_color then
        flag t ~round ~invariant:"self_reconfigure"
          (Printf.sprintf "resource %d recolored %d -> %d" resource from_color
             to_color);
      let tracked = cached t resource in
      if tracked <> from_color then
        flag t ~round ~invariant:"cache_consistency"
          (Printf.sprintf "resource %d held %d, reconfigured from %d" resource
             tracked from_color);
      Hashtbl.replace t.cache resource to_color;
      t.reconfig_charges <- t.reconfig_charges + 1
  | Event.Execute { resource; color; _ } ->
      if color = Rrs_core.Types.black then
        flag t ~round ~invariant:"execute_color"
          (Printf.sprintf "resource %d executed while unconfigured" resource);
      let tracked = cached t resource in
      if tracked <> color then
        flag t ~round ~invariant:"execute_color"
          (Printf.sprintf "resource %d held %d, executed color %d" resource
             tracked color)
  | Event.Epoch_open { color; _ } ->
      t.instrumented <- true;
      if is_eligible t color then
        flag t ~round ~invariant:"epoch_lifecycle"
          (Printf.sprintf "epoch of color %d opened while eligible" color);
      t.epochs_opened <- t.epochs_opened + 1
  | Event.Epoch_close { color; epochs_ended; _ } ->
      t.instrumented <- true;
      if not (is_eligible t color) then
        flag t ~round ~invariant:"epoch_lifecycle"
          (Printf.sprintf "epoch of color %d closed while ineligible" color);
      if epochs_ended < 1 then
        flag t ~round ~invariant:"epoch_lifecycle"
          (Printf.sprintf "color %d closed its epoch #%d" color epochs_ended);
      Hashtbl.replace t.eligible color false
  | Event.Counter_wrap { color; wraps; _ } ->
      t.instrumented <- true;
      if wraps < 1 then
        flag t ~round ~invariant:"epoch_lifecycle"
          (Printf.sprintf "color %d recorded wrap #%d" color wraps);
      Hashtbl.replace t.eligible color true
  | Event.Credit { color; amount; _ } ->
      t.instrumented <- true;
      if amount <> t.delta then
        flag t ~round ~invariant:"credit_amount"
          (Printf.sprintf "color %d credited %d, expected delta = %d" color
             amount t.delta)
  | Event.Timestamp_update _ -> t.instrumented <- true
  | Event.Mini_round _ | Event.Super_epoch _ -> ()

let attach t inner =
  match t.policy with
  | Off -> inner
  | Fail_fast | Record ->
      Sink.callback (fun event ->
          observe t event;
          Sink.emit inner event)

let events_seen t = t.events_seen
let violations t = List.rev t.violations
let ok t = t.violations = []

let pp_violation fmt v =
  Format.fprintf fmt "round %d: %s: %s" v.round v.invariant v.detail
