(** Live invariant checking over the engine's event stream.

    A watchdog {!attach}es in front of any {!Rrs_obs.Sink.t} and
    replays the run's bookkeeping from the events alone: the projected
    cache contents (from [Reconfigure]), per-color eligibility (from
    [Counter_wrap]/[Epoch_close], matching the engine's pre-transition
    drop classification — [Drop] events of a round precede its
    eligibility transitions), and the epoch count (from [Epoch_open]).
    Against that state it checks, as each event arrives:

    - {b stream sanity}: rounds non-decreasing, counts/credits
      non-negative, no self-reconfigurations;
    - {b cache consistency}: every [Reconfigure]'s [from_color] equals
      the tracked color of that resource, every [Execute]'s color
      matches the configuration that produced it;
    - {b epoch lifecycle}: epochs only reopen from the ineligible
      state, only close from the eligible state, wrap and epoch
      counters only grow;
    and, at {!finish}:

    - {b Lemma 3.3 bound}: reconfiguration charges ≤ 4 · epochs opened
      (i.e. reconfiguration cost ≤ 4·Δ·numEpochs);
    - {b Lemma 3.4 bound}: ineligible drops ≤ Δ · epochs opened.

    The lemma budgets are amortized over the whole run — a mid-run
    prefix can legitimately run one epoch's worth of charges ahead of
    the bound while that epoch's service is in flight — so they are
    checked when the caller declares the run complete, not per event.
    The lemma bounds are only meaningful for instrumented policies
    (those emitting eligibility events — {!Rrs_core.Lru_edf} with a
    sink); they switch on at the first eligibility-family event and
    stay off for plain policies, whose drops the lemmas do not bound.
    They are also specific to the paper's ΔLRU-based algorithm: an
    instrumented baseline like pure EDF emits the same eligibility
    events but reconfigures outside the ΔLRU budget, so its charges
    legitimately exceed 4·numEpochs — pass [~lemma_bounds:false] to
    watch such a policy with the structural checks only.  They assume
    an unprojected trace: under [cost_projection] the eligibility
    events carry pre-projection colors and the watchdog's replayed
    eligibility goes stale.

    Under [Record] the watchdog only accumulates {!violations} — it
    never raises and never writes, so a recorded run is decision- and
    result-identical to an unwatched one (test_differential checks
    this across every workload family and both appendix instances).
    [Fail_fast] raises {!Invariant_violation} at the first offence.
    [Off] makes {!attach} the identity, restoring the null-sink fast
    path. *)

type policy = Fail_fast | Record | Off

type violation = {
  round : int;  (** round of the offending event *)
  invariant : string;  (** stable name, e.g. ["lemma_3_3"] *)
  detail : string;
}

exception Invariant_violation of violation

type t

val create : ?policy:policy -> ?lemma_bounds:bool -> delta:int -> unit -> t
(** [delta] is the instance's Δ (both lemma bounds scale with it).
    [policy] defaults to [Record]; [lemma_bounds] defaults to [true]
    and controls the Lemma 3.3 / 3.4 budget checks (the structural
    checks are unconditional).
    @raise Invalid_argument if [delta < 1]. *)

val attach : t -> Rrs_obs.Sink.t -> Rrs_obs.Sink.t
(** A sink that checks each event and forwards it to the given inner
    sink.  With policy [Off] this is the inner sink itself — no
    wrapper, no cost.  Otherwise the returned sink reports as enabled
    even over a null inner sink, because the watchdog itself consumes
    the stream. *)

val observe : t -> Rrs_obs.Event.t -> unit
(** Check one event directly (what the attached sink calls).
    @raise Invariant_violation under [Fail_fast]. *)

val finish : t -> unit
(** Declare the run complete and apply the amortized Lemma 3.3 / 3.4
    budget checks against the final accumulators.  Idempotent in the
    sense that the accumulators do not change; calling it mid-run
    checks the (possibly transiently over-budget) prefix instead.
    @raise Invariant_violation under [Fail_fast]. *)

val events_seen : t -> int

val violations : t -> violation list
(** In detection order; empty under [Off]. *)

val ok : t -> bool
(** [violations t = []]. *)

val pp_violation : Format.formatter -> violation -> unit
