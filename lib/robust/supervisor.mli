(** Supervised execution of one unit of work: wall-clock timeout,
    deterministic retry with exponential backoff + jitter, and typed
    failure capture.

    [run] never lets an exception escape: every outcome is
    [Ok value | Error failure], so a sweep of supervised tasks
    ({!Rrs_experiments.Registry.run_many}) survives any single raising,
    hanging or fault-injected member and keeps the siblings' results.

    {b Determinism.}  Backoff delays are computed from the policy's
    [seed] through {!Rrs_prng.Rng} — the delay sequence of a retried
    task is reproducible bit for bit.  The clock is injectable
    ({!clock}); tests pass a virtual clock and a recording [sleep], so
    no test ever calls [Unix.sleep].

    {b Timeouts.}  A timed-out attempt's domain cannot be killed
    (OCaml domains are not cancellable); it is abandoned — it keeps
    running to completion in the background while the supervisor
    returns {!Timed_out}.  Abandoned domains inherit the caller's
    telemetry and fault scopes, so their stray updates land in the
    task's own private registry, never a sibling's. *)

type clock = { now : unit -> float; sleep : float -> unit }

val wall_clock : clock
(** [Unix.gettimeofday] / [Unix.sleepf]. *)

type error_class = Transient | Fatal

exception Timed_out of { name : string; seconds : float }

exception Skipped of string
(** The pseudo-failure of a task never started (a [keep_going:false]
    sweep stopped scheduling after an earlier failure). *)

type failure = {
  name : string;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;  (** attempts actually made (>= 1, 0 for skipped) *)
  phase : string;  (** ["exception"], ["timeout"], or ["skipped"] *)
  classified : error_class;
}

type policy = {
  timeout : float option;  (** per-attempt wall-clock budget, seconds *)
  retries : int;  (** additional attempts after the first *)
  backoff : float;  (** base delay before the first retry, seconds *)
  backoff_factor : float;  (** delay multiplier per further retry *)
  jitter : float;  (** extra delay fraction drawn uniformly in [0, j] *)
  seed : int;  (** seeds the jitter stream *)
  classify : exn -> error_class;  (** only [Transient] failures retry *)
  clock : clock;
}

val classify_default : exn -> error_class
(** {!Timed_out} and transient {!Rrs_fault.Injected} are [Transient];
    everything else — including [Out_of_memory], [Stack_overflow] and
    fatal injections — is [Fatal]. *)

val default : policy
(** No timeout, no retries, [backoff = 0.05 * 2^k] with jitter 0.5,
    seed 0, {!classify_default}, {!wall_clock}. *)

val run : ?policy:policy -> name:string -> (unit -> 'a) -> ('a, failure) result
(** Run the thunk under the policy.  Transient failures are retried up
    to [retries] times with backoff sleeps in between; fatal failures
    and exhausted retries return the last failure, with the attempt
    count and the raising attempt's backtrace.

    When a flight recorder with a dump directory is ambient
    ({!Rrs_obs.Flight_recorder.with_recorder} [~dump_dir]), every
    {e final} failure additionally commits a crash black-box via
    {!Rrs_obs.Flight_recorder.crash_dump} (name = the supervised
    [name], reason = the exception) before returning — retried
    attempts do not dump, and a dump error is swallowed so it can
    never escalate a contained failure. *)

val skipped : name:string -> failure
(** The failure value of a never-started task ({!Skipped}). *)

val pp_failure : Format.formatter -> failure -> unit
(** One line: name, attempts, phase, class, exception.  The backtrace
    is not included — print [backtrace] separately when wanted. *)
