(* Re-export: the fault plane lives in its own library (rrs_fault) so
   that probe points can sit below rrs_obs (Sink.jsonl carries one),
   but callers of the robustness layer address it as Rrs_robust.Fault
   alongside Supervisor and Watchdog. *)
include Rrs_fault
