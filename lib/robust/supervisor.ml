module Rng = Rrs_prng.Rng

type clock = { now : unit -> float; sleep : float -> unit }

let wall_clock = { now = Unix.gettimeofday; sleep = Unix.sleepf }

type error_class = Transient | Fatal

exception Timed_out of { name : string; seconds : float }
exception Skipped of string

type failure = {
  name : string;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;
  phase : string;
  classified : error_class;
}

type policy = {
  timeout : float option;
  retries : int;
  backoff : float;
  backoff_factor : float;
  jitter : float;
  seed : int;
  classify : exn -> error_class;
  clock : clock;
}

let classify_default = function
  | Timed_out _ -> Transient
  | Rrs_fault.Injected { transient; _ } -> if transient then Transient else Fatal
  | _ -> Fatal

let default =
  {
    timeout = None;
    retries = 0;
    backoff = 0.05;
    backoff_factor = 2.0;
    jitter = 0.5;
    seed = 0;
    classify = classify_default;
    clock = wall_clock;
  }

let capture thunk =
  match thunk () with
  | v -> Ok v
  | exception e -> Error (e, Printexc.get_raw_backtrace ())

(* One attempt under a wall-clock budget: the thunk runs on a fresh
   domain (inheriting the caller's DLS scopes — telemetry, fault plan)
   while this domain polls a completion cell against the deadline.  On
   timeout the runner domain is abandoned, not joined: domains cannot
   be cancelled, so it finishes (or spins) in the background while the
   sweep moves on — the price of a worst-case guarantee on the
   supervisor side. *)
let attempt_with_timeout clock seconds ~name thunk =
  let cell = Atomic.make None in
  let runner = Domain.spawn (fun () -> Atomic.set cell (Some (capture thunk))) in
  let deadline = clock.now () +. seconds in
  let rec wait () =
    match Atomic.get cell with
    | Some r ->
        Domain.join runner;
        r
    | None ->
        if clock.now () >= deadline then
          Error (Timed_out { name; seconds }, Printexc.get_callstack 0)
        else begin
          clock.sleep 0.001;
          wait ()
        end
  in
  wait ()

let attempt policy ~name thunk =
  match policy.timeout with
  | None -> capture thunk
  | Some seconds -> attempt_with_timeout policy.clock seconds ~name thunk

let run ?(policy = default) ~name thunk =
  let rng = Rng.create ~seed:policy.seed in
  let rec go attempts =
    (* with a timeout the thunk runs on a fresh domain, which records
       onto its own profiler track; this span covers the supervised
       wait (attempt + poll) as seen from the supervisor's domain *)
    Rrs_prof.enter "supervisor.attempt";
    let outcome = attempt policy ~name thunk in
    Rrs_prof.leave "supervisor.attempt";
    match outcome with
    | Ok v -> Ok v
    | Error (exn, backtrace) ->
        let classified = policy.classify exn in
        let phase =
          match exn with Timed_out _ -> "timeout" | _ -> "exception"
        in
        if classified = Fatal || attempts > policy.retries then begin
          (* the failure is final: commit the flight-recorder black-box
             next to the run artifact (when one is armed), so every
             classified failure ships its last-N event window.  A dump
             failure must never escalate a contained failure — swallow
             it and return the classification unchanged. *)
          (match Rrs_obs.Flight_recorder.crash_scope () with
          | Some (recorder, dir) -> (
              try
                ignore
                  (Rrs_obs.Flight_recorder.crash_dump recorder ~dir ~name
                     ~reason:(Printexc.to_string exn))
              with _ -> ())
          | None -> ());
          Error { name; exn; backtrace; attempts; phase; classified }
        end
        else begin
          let base =
            policy.backoff
            *. (policy.backoff_factor ** float_of_int (attempts - 1))
          in
          policy.clock.sleep (base *. (1.0 +. Rng.float rng policy.jitter));
          go (attempts + 1)
        end
  in
  go 1

let skipped ~name =
  {
    name;
    exn = Skipped name;
    backtrace = Printexc.get_callstack 0;
    attempts = 0;
    phase = "skipped";
    classified = Transient;
  }

let pp_failure fmt f =
  if f.phase = "skipped" then
    Format.fprintf fmt "%s: skipped (stopped after an earlier failure)" f.name
  else
    Format.fprintf fmt "%s: failed after %d attempt%s (%s, %s): %s" f.name
      f.attempts
      (if f.attempts = 1 then "" else "s")
      f.phase
      (match f.classified with Transient -> "transient" | Fatal -> "fatal")
      (Printexc.to_string f.exn)
