(** The experiment harness: one {!outcome} per paper claim.

    The paper (a theory paper) has no tables or figures; each experiment
    id corresponds to a theorem, lemma or appendix construction as listed
    in DESIGN.md §5, and its [claim] field states the shape the paper
    predicts.  [findings] summarise what this run actually measured, so
    the bench log is self-contained and EXPERIMENTS.md can be checked
    against it. *)

type outcome = {
  id : string;
  title : string;
  claim : string;  (** what the paper predicts (the shape to match) *)
  table : Rrs_report.Table.t;
  findings : string list;  (** measured take-aways from this run *)
}

val print : outcome -> unit

val print_markdown : outcome -> unit
(** Same content with a GitHub-markdown table — for pasting measured
    numbers into EXPERIMENTS.md. *)

(** {2 Telemetry}

    Every engine run started through {!run_policy} (or reported with
    {!record_result}) is accounted in an {!Rrs_obs.Metrics} registry:
    counters [engine_runs], [reconfig_cost], [drop_cost] and timer
    [engine_run].  {!Registry.run_summarized} diffs {!snapshot}s around
    one experiment to produce its {!Rrs_obs.Run_summary.t}.

    {b Which registry} is dynamically scoped: runs are accounted to the
    registry installed by the innermost {!with_telemetry}, defaulting
    to the process-wide {!telemetry}.  The scope is inherited by
    domains spawned under it (the [Rrs_parallel.Pool] workers of an
    experiment's inner sweep), so concurrent experiments on sibling
    domains each account to their own registry.  The registries
    themselves are domain-safe ({!Rrs_obs.Metrics}), so the totals of a
    parallel sweep equal the sequential totals exactly. *)

val telemetry : Rrs_obs.Metrics.t
(** The process-wide default registry. *)

val current : unit -> Rrs_obs.Metrics.t
(** The registry engine runs are currently accounted to on this
    domain. *)

val with_telemetry : Rrs_obs.Metrics.t -> (unit -> 'a) -> 'a
(** [with_telemetry reg thunk] accounts every engine run made by
    [thunk] — transitively, including in pool workers it spawns — to
    [reg].  Restores the outer scope on exit (also on raise). *)

type snapshot = {
  runs : int;  (** engine runs completed so far *)
  reconfig : int;  (** total reconfigurations charged *)
  drop : int;  (** total jobs dropped *)
  seconds : float;  (** total wall time inside the engine *)
}

val snapshot : unit -> snapshot
(** [snapshot_of (current ())]. *)

val snapshot_of : Rrs_obs.Metrics.t -> snapshot

val record_result : Rrs_core.Engine.result -> unit
(** Fold one engine result into {!telemetry} — for experiments that
    drive {!Rrs_core.Engine.run} directly rather than via
    {!run_policy} (the run's wall time is not captured). *)

(** {2 Shared helpers} *)

val run_policy :
  Rrs_core.Instance.t ->
  n:int ->
  Rrs_core.Policy.factory ->
  Rrs_core.Engine.result
(** Uni-speed engine run without schedule recording. *)

val ratio_cell : int -> int -> string
(** [ratio_cell cost denom] formats [cost/denom] with 2 decimals ("inf"
    when [denom = 0] and [cost > 0], "1.00" when both are 0). *)

val ratio : int -> int -> float
