(** All experiments by id — the single source the CLI and the bench
    executable enumerate. *)

val all : (string * (unit -> Harness.outcome)) list
(** In DESIGN.md §5 order. *)

val ids : unit -> string list
val find : string -> (unit -> Harness.outcome) option

val run_summarized :
    string -> (Harness.outcome * Rrs_obs.Run_summary.t) option
(** Run one experiment and also return its canonical run artifact:
    engine cost and run-count deltas from a private telemetry registry
    scoped to the experiment ({!Harness.with_telemetry} — exact even
    under concurrency), total wall time as the ["experiment"] phase
    timing.  [None] for unknown ids.  This is what
    [rrs experiment --out] writes, one JSONL line per experiment. *)

val run_many :
  ?jobs:int ->
  string list ->
  (string * (Harness.outcome * Rrs_obs.Run_summary.t)) list
(** Run the given experiments (unknown ids are skipped), spreading them
    over [jobs] domains (default 1; experiments' own inner sweeps then
    degrade to sequential — see the nesting note in
    [Rrs_parallel.Pool]).  Results are in input order and the telemetry
    totals and cost/count artifact fields are identical for every
    [jobs]; only wall-clock fields vary (strip them with
    {!Rrs_obs.Run_summary.strip_timings} to compare artifacts).  This
    is the [rrs experiment --jobs] / [bench] path. *)

val run_and_print_all : unit -> unit
