(** All experiments by id — the single source the CLI and the bench
    executable enumerate. *)

val all : (string * (unit -> Harness.outcome)) list
(** In DESIGN.md §5 order. *)

val ids : unit -> string list
val find : string -> (unit -> Harness.outcome) option

type success = {
  outcome : Harness.outcome;
  summary : Rrs_obs.Run_summary.t;
  metrics : Rrs_obs.Json.t;
      (** the experiment's private registry ({!Rrs_obs.Metrics.to_json}),
          snapshotted before the fold into the process-wide telemetry —
          so it only holds this experiment's instruments and is
          identical for every [--jobs] *)
}

val run_summarized : string -> success option
(** Run one experiment and also return its canonical run artifact:
    engine cost and run-count deltas from a private telemetry registry
    scoped to the experiment ({!Harness.with_telemetry} — exact even
    under concurrency), total wall time as the ["experiment"] phase
    timing.  [None] for unknown ids.  [summary] is what
    [rrs experiment --out] writes, one JSONL line per experiment;
    [metrics] is the [--metrics] registry line. *)

type run_result = (success, Rrs_robust.Supervisor.failure) result

val run_many :
  ?jobs:int ->
  ?policy:Rrs_robust.Supervisor.policy ->
  ?keep_going:bool ->
  string list ->
  (string * run_result) list
(** Run the given experiments (unknown ids are skipped), spreading them
    over [jobs] domains (default 1; experiments' own inner sweeps then
    degrade to sequential — see the nesting note in
    [Rrs_parallel.Pool]).  Results are in input order and the telemetry
    totals and cost/count artifact fields are identical for every
    [jobs]; only wall-clock fields vary (strip them with
    {!Rrs_obs.Run_summary.strip_timings} to compare artifacts).  This
    is the [rrs experiment --jobs] / [bench] path.

    Every experiment runs under {!Rrs_robust.Supervisor.run} with
    [policy] (default {!Rrs_robust.Supervisor.default}: no timeout, no
    retries): a raising, hanging or fault-injected experiment comes
    back as [Error failure] while its siblings keep their results —
    the sweep itself never raises.  With [keep_going = false] (default
    [true]), experiments not yet started when a failure lands are
    skipped ({!Rrs_robust.Supervisor.skipped}); already-running
    siblings still finish.  Which in-flight tasks slip through the
    abort check depends on scheduling at [jobs > 1]; at [jobs = 1]
    exactly the tasks after the first failure are skipped. *)

val failures :
  (string * run_result) list -> (string * Rrs_robust.Supervisor.failure) list
(** The failed entries of a {!run_many} result, in order. *)

val run_and_print_all : unit -> unit
