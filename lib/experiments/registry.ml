let all =
  [
    ("EXP-A", Exp_lower_bounds.exp_a);
    ("EXP-B", Exp_lower_bounds.exp_b);
    ("EXP-1", Exp_theorems.exp_1);
    ("EXP-2", Exp_theorems.exp_2);
    ("EXP-3", Exp_theorems.exp_3);
    ("EXP-4", Exp_lemmas.exp_4);
    ("EXP-5", Exp_lemmas.exp_5);
    ("EXP-6", Exp_structure.exp_6);
    ("EXP-7", Exp_structure.exp_7);
    ("EXP-8", Exp_structure.exp_8);
    ("EXP-9", Exp_ablation.exp_9);
    ("EXP-10", Exp_ablation.exp_10);
    ("EXP-11", Exp_baselines.exp_11);
    ("EXP-12", Exp_constructive.exp_12);
    ("EXP-13", Exp_eligibility.exp_13);
  ]

let ids () = List.map fst all
let find id = List.assoc_opt id all

let summarize id (outcome : Harness.outcome) ~(before : Harness.snapshot)
    ~(after : Harness.snapshot) ~seconds =
  Rrs_obs.Run_summary.make ~id ~kind:"experiment"
    ~config:[ ("title", outcome.title) ]
    ~reconfig_cost:(after.reconfig - before.reconfig)
    ~drop_cost:(after.drop - before.drop)
    ~analysis:
      [
        ("engine_runs", float_of_int (after.runs - before.runs));
        ("engine_seconds", after.seconds -. before.seconds);
        ("findings", float_of_int (List.length outcome.findings));
      ]
    ~timings:
      [ { Rrs_obs.Run_summary.phase = "experiment"; seconds; count = 1 } ]
    ()

type success = {
  outcome : Harness.outcome;
  summary : Rrs_obs.Run_summary.t;
  metrics : Rrs_obs.Json.t;
}

(* One experiment runs against a private registry (inherited by its
   pool workers — see Harness.with_telemetry), so its cost deltas are
   exact even when other experiments run concurrently; the registry is
   folded into the process-wide one afterwards.  The pre-merge snapshot
   is kept as [metrics]: the experiment's own instruments, uncontaminated
   by concurrent siblings, so [rrs experiment --metrics] is identical
   for every [--jobs]. *)
let run_in_scope id run =
  let reg = Rrs_obs.Metrics.create () in
  let before = Harness.snapshot_of reg in
  let t0 = Unix.gettimeofday () in
  let outcome = Harness.with_telemetry reg run in
  let seconds = Unix.gettimeofday () -. t0 in
  let after = Harness.snapshot_of reg in
  let metrics = Rrs_obs.Metrics.to_json reg in
  Rrs_obs.Metrics.merge_into ~into:Harness.telemetry reg;
  { outcome; summary = summarize id outcome ~before ~after ~seconds; metrics }

let run_summarized id =
  Option.map (fun run -> run_in_scope id run) (find id)

module Supervisor = Rrs_robust.Supervisor

type run_result = (success, Supervisor.failure) result

let run_many ?(jobs = 1) ?(policy = Supervisor.default) ?(keep_going = true) ids
    =
  let tasks =
    List.filter_map (fun id -> Option.map (fun run -> (id, run)) (find id)) ids
  in
  let abort = Atomic.make false in
  let supervised (id, run) =
    if (not keep_going) && Atomic.get abort then
      (id, Error (Supervisor.skipped ~name:id))
    else
      match Supervisor.run ~policy ~name:id (fun () -> run_in_scope id run) with
      | Ok _ as ok -> (id, ok)
      | Error _ as err ->
          if not keep_going then Atomic.set abort true;
          (id, err)
  in
  (* map_results, not map: a crash that escapes the supervisor (a
     "pool.worker" injection fires outside the supervised thunk) still
     must not cost the sibling experiments their results *)
  Rrs_parallel.Pool.map_results ~domains:jobs supervised tasks
  |> List.map2
       (fun (id, _) -> function
         | Ok pair -> pair
         | Error (exn, backtrace) ->
             (* this failure escaped the supervisor (e.g. a pool.worker
                injection fired outside the supervised thunk), so the
                crash black-box the supervisor would have taken is
                taken here, at the sweep's containment point *)
             (match Rrs_obs.Flight_recorder.crash_scope () with
             | Some (recorder, dir) -> (
                 try
                   ignore
                     (Rrs_obs.Flight_recorder.crash_dump recorder ~dir
                        ~name:id ~reason:(Printexc.to_string exn))
                 with _ -> ())
             | None -> ());
             ( id,
               Error
                 {
                   Supervisor.name = id;
                   exn;
                   backtrace;
                   attempts = 1;
                   phase = "exception";
                   classified = policy.Supervisor.classify exn;
                 } ))
       tasks

let failures results =
  List.filter_map
    (fun (id, r) ->
      match r with Ok _ -> None | Error f -> Some (id, f))
    results

let run_and_print_all () =
  List.iter (fun (_, run) -> Harness.print (run ())) all
