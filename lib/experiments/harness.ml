type outcome = {
  id : string;
  title : string;
  claim : string;
  table : Rrs_report.Table.t;
  findings : string list;
}

let print outcome =
  Printf.printf "\n[%s] %s\n" outcome.id outcome.title;
  Printf.printf "paper claim: %s\n\n" outcome.claim;
  print_string (Rrs_report.Table.to_string outcome.table);
  List.iter (fun f -> Printf.printf "  -> %s\n" f) outcome.findings;
  print_newline ()

let print_markdown outcome =
  Printf.printf "\n## %s — %s\n\n" outcome.id outcome.title;
  Printf.printf "*Paper claim:* %s\n\n" outcome.claim;
  print_string (Rrs_report.Table.to_markdown outcome.table);
  print_newline ();
  List.iter (fun f -> Printf.printf "- %s\n" f) outcome.findings;
  print_newline ()

module Metrics = Rrs_obs.Metrics

let telemetry = Metrics.create ()

(* Which registry an engine run is accounted to is dynamically scoped,
   and the scope is inherited by domains spawned under it (Pool workers
   — Domain.DLS with [split_from_parent]).  So when experiments run
   concurrently on sibling domains, each one's runs — including runs
   made by its own inner Pool.map sweep — land in its own registry, and
   snapshot diffs stay exact under parallelism. *)
let scope : Metrics.t Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> telemetry)

let current () = Domain.DLS.get scope

let with_telemetry reg thunk =
  let outer = Domain.DLS.get scope in
  Domain.DLS.set scope reg;
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope outer) thunk

type snapshot = { runs : int; reconfig : int; drop : int; seconds : float }

let snapshot_of reg =
  {
    runs = Metrics.value (Metrics.counter reg "engine_runs");
    reconfig = Metrics.value (Metrics.counter reg "reconfig_cost");
    drop = Metrics.value (Metrics.counter reg "drop_cost");
    seconds = Metrics.timer_total (Metrics.timer reg "engine_run");
  }

let snapshot () = snapshot_of (current ())

let record_result (result : Rrs_core.Engine.result) =
  let reg = current () in
  Metrics.inc (Metrics.counter reg "engine_runs") 1;
  Metrics.inc (Metrics.counter reg "reconfig_cost") result.reconfigurations;
  Metrics.inc (Metrics.counter reg "drop_cost") result.dropped

let run_policy instance ~n factory =
  Rrs_fault.probe "harness.run_policy";
  let result =
    Metrics.time
      (Metrics.timer (current ()) "engine_run")
      (fun () ->
        (* an ambient flight recorder black-boxes every harness run:
           the engine streams its round events into the recorder's
           bounded ring, so a later crash dump shows what the run was
           doing — with none ambient the sink stays null and the
           engine allocates nothing for tracing *)
        let sink =
          match Rrs_obs.Flight_recorder.ambient () with
          | Some r -> Rrs_obs.Flight_recorder.sink r
          | None -> Rrs_obs.Sink.null
        in
        Rrs_core.Engine.run (Rrs_core.Engine.config ~n ~sink ()) instance
          factory)
  in
  record_result result;
  result

let ratio cost denom =
  if denom = 0 then if cost = 0 then 1.0 else infinity
  else float_of_int cost /. float_of_int denom

let ratio_cell cost denom = Rrs_report.Table.cell_float (ratio cost denom)
