type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a single seed into well-distributed 64-bit words;
   the recommended way to seed xoshiro. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Derive a child by reseeding splitmix64 from the parent's stream; the
     parent advances so successive splits are independent. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* rejection sampling on 62 bits to avoid modulo bias *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (((max62 mod bound) + 1) mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v <= limit then v mod bound else draw ()
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 high bits of the 64-bit output give a uniform double in [0,1) *)
  let mantissa = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  Stdlib.float_of_int mantissa /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < Stdlib.max 0.0 (Stdlib.min 1.0 p)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential";
  let u = 1.0 -. float t 1.0 in
  -.Stdlib.log u /. rate

let poisson t ~mean =
  if mean < 0.0 then invalid_arg "Rng.poisson";
  if mean = 0.0 then 0
  else if mean <= 64.0 then begin
    (* Knuth: multiply uniforms until below e^-mean *)
    let threshold = Stdlib.exp (-.mean) in
    let rec loop k p =
      let p = p *. float t 1.0 in
      if p <= threshold then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation (Box-Muller), adequate for workload shaping *)
    let u1 = 1.0 -. float t 1.0 in
    let u2 = float t 1.0 in
    let z = Stdlib.sqrt (-2.0 *. Stdlib.log u1) *. Stdlib.cos (2.0 *. Float.pi *. u2) in
    let v = mean +. (Stdlib.sqrt mean *. z) in
    Stdlib.max 0 (int_of_float (Float.round v))
  end

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Stdlib.floor (Stdlib.log u /. Stdlib.log (1.0 -. p)))

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto";
  let u = 1.0 -. float t 1.0 in
  scale /. (u ** (1.0 /. shape))

(* Exact Zipf sampling by inversion over the cumulative mass function.
   The CDF table depends only on (n, s), so it is cached across calls:
   workload generators draw many variates from one distribution.  The
   cache is shared process state, so it is mutex-protected — generators
   may run under multiple domains (see Rrs_parallel).  The lock guards
   only the table lookups/insert, never the O(n) construction: a miss
   computes outside the lock and re-checks before inserting
   (double-checked, so two racing builders agree on one table), and the
   CDF array itself is immutable after publication, so readers share it
   lock-free. *)
let zipf_cdf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let zipf_cdf_mutex = Mutex.create ()

let build_zipf_cdf n s =
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. (Stdlib.float_of_int (r + 1) ** s));
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  cdf

let zipf_cdf n s =
  let cached =
    Mutex.protect zipf_cdf_mutex (fun () ->
        Hashtbl.find_opt zipf_cdf_cache (n, s))
  in
  match cached with
  | Some cdf -> cdf
  | None ->
      let cdf = build_zipf_cdf n s in
      Mutex.protect zipf_cdf_mutex (fun () ->
          match Hashtbl.find_opt zipf_cdf_cache (n, s) with
          | Some winner -> winner
          | None ->
              if Hashtbl.length zipf_cdf_cache > 64 then
                Hashtbl.reset zipf_cdf_cache;
              Hashtbl.add zipf_cdf_cache (n, s) cdf;
              cdf)

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf";
  if n = 1 then 0
  else if s <= 0.0 then int t n
  else begin
    let cdf = zipf_cdf n s in
    let u = float t 1.0 in
    (* binary search for the first index with cdf >= u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick";
  a.(int t (Array.length a))
