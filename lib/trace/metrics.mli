(** Per-round time series collected from a live run.

    [instrument] wraps any policy so that, without touching the engine,
    every round's reconfiguration phase records: the pending backlog, the
    number of nonidle colors, the distinct cached colors, and the
    cumulative drop and recoloring counts.  The counts are kept in an
    {!Rrs_obs.Metrics} registry (counters ["drops"]/["recolorings"], a
    ["backlog"] histogram), so they export alongside the rest of the
    telemetry; the series drive the queue-dynamics views of the examples
    and can be exported as JSONL (canonical) or CSV (legacy).

    Recolorings are counted with the engine's own accounting rule: a
    slot is charged iff its color differs {e after the cost projection}
    (pass [projection] when the run uses [Engine.config
    ~cost_projection]; the default is the identity).  The cumulative
    count therefore always matches [Engine.result.reconfigurations]. *)

type sample = {
  round : Rrs_core.Types.round;
  backlog : int;  (** pending jobs after this round's arrivals *)
  nonidle_colors : int;
  cached_colors : int;  (** distinct non-black colors configured *)
  cumulative_drops : int;
  cumulative_recolorings : int;
}

type t

val instrument :
  ?registry:Rrs_obs.Metrics.t ->
  ?projection:(Rrs_core.Types.color -> Rrs_core.Types.color) ->
  Rrs_core.Policy.t ->
  t * Rrs_core.Policy.t
(** The returned policy must be run exactly once (policies are
    stateful); afterwards the series are available from [t].
    [registry], when given, hosts the instruments instead of a private
    registry — pass the one the policy itself writes to (e.g. its
    ["ranking_update"] counter) so one [metrics_registry] line carries
    everything.  [projection] must equal the engine's [cost_projection]
    for the recoloring count to reproduce the engine's charge. *)

val samples : t -> sample list
(** Chronological (one per round; mini-rounds are merged). *)

val registry : t -> Rrs_obs.Metrics.t
(** The backing instruments: counters ["drops"] and ["recolorings"],
    histogram ["backlog"] (observed at the first reconfiguration of each
    round). *)

val to_jsonl : t -> string
(** One [{"type":"metrics_sample",...}] line per round followed by one
    [{"type":"metrics_registry",...}] line — the format documented in
    [doc/TELEMETRY.md] and written by [rrs simulate --metrics]. *)

val to_csv : t -> string
(** Legacy sampler CSV (kept for spreadsheet imports). *)

val backlog_summary : t -> Rrs_stats.Summary.t
(** Distribution of the backlog over rounds.
    @raise Invalid_argument when no samples were collected. *)
