open Rrs_core

type sample = {
  round : Types.round;
  backlog : int;
  nonidle_colors : int;
  cached_colors : int;
  cumulative_drops : int;
  cumulative_recolorings : int;
}

type t = {
  mutable series : sample list; (* reverse chronological *)
  registry : Rrs_obs.Metrics.t;
  drops : Rrs_obs.Metrics.counter;
  recolorings : Rrs_obs.Metrics.counter;
  backlog_hist : Rrs_obs.Metrics.histogram;
  project : Types.color -> Types.color;
  mutable previous : Types.color array option;
}

let create ?registry ?(projection = Fun.id) () =
  let registry =
    match registry with Some r -> r | None -> Rrs_obs.Metrics.create ()
  in
  {
    series = [];
    registry;
    drops = Rrs_obs.Metrics.counter registry "drops";
    recolorings = Rrs_obs.Metrics.counter registry "recolorings";
    backlog_hist =
      Rrs_obs.Metrics.histogram registry "backlog" ~max_value:4096;
    project = projection;
    previous = None;
  }

let distinct_cached assignment =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun c -> if c <> Types.black then Hashtbl.replace seen c ())
    assignment;
  Hashtbl.length seen

(* A recoloring is counted exactly when the engine charges one: the
   previous and new colors differ *after* the cost projection.  In the
   no-previous case the engine's baseline is the all-black initial
   cache, so a slot is charged iff its projected color differs from the
   projected black — not simply iff it is non-black, which over-charged
   under [cost_projection] (the old disagreement with [Engine]). *)
let count_recolorings ~project previous assignment =
  let changes = ref 0 in
  (match previous with
  | None ->
      Array.iter
        (fun c -> if project Types.black <> project c then incr changes)
        assignment
  | Some prev ->
      Array.iteri
        (fun i c -> if project prev.(i) <> project c then incr changes)
        assignment);
  !changes

let observe t (view : Policy.view) assignment =
  if view.mini_round = 0 then
    Rrs_obs.Metrics.inc t.drops
      (List.fold_left (fun acc (_, c) -> acc + c) 0 view.dropped);
  Rrs_obs.Metrics.inc t.recolorings
    (count_recolorings ~project:t.project t.previous assignment);
  t.previous <- Some (Array.copy assignment);
  let backlog = Pending.grand_total view.pending in
  let sample =
    {
      round = view.round;
      backlog;
      nonidle_colors = Pending.nonidle_count view.pending;
      cached_colors = distinct_cached assignment;
      cumulative_drops = Rrs_obs.Metrics.value t.drops;
      cumulative_recolorings = Rrs_obs.Metrics.value t.recolorings;
    }
  in
  match t.series with
  | head :: rest when head.round = view.round ->
      (* later mini-round of the same round: replace *)
      t.series <- sample :: rest
  | _ ->
      Rrs_obs.Metrics.observe t.backlog_hist backlog;
      t.series <- sample :: t.series

let instrument ?registry ?projection (policy : Policy.t) =
  let t = create ?registry ?projection () in
  let reconfigure view =
    let assignment = policy.Policy.reconfigure view in
    observe t view assignment;
    assignment
  in
  (t, { Policy.name = policy.name ^ "+metrics"; reconfigure })

let samples t = List.rev t.series
let registry t = t.registry

let to_csv t =
  let header =
    [
      "round";
      "backlog";
      "nonidle_colors";
      "cached_colors";
      "cumulative_drops";
      "cumulative_recolorings";
    ]
  in
  let rows =
    List.map
      (fun s ->
        List.map string_of_int
          [
            s.round;
            s.backlog;
            s.nonidle_colors;
            s.cached_colors;
            s.cumulative_drops;
            s.cumulative_recolorings;
          ])
      (samples t)
  in
  Csv.render (header :: rows)

let sample_to_json s =
  Rrs_obs.Json.Assoc
    [
      ("type", Rrs_obs.Json.String "metrics_sample");
      ("round", Rrs_obs.Json.Int s.round);
      ("backlog", Rrs_obs.Json.Int s.backlog);
      ("nonidle_colors", Rrs_obs.Json.Int s.nonidle_colors);
      ("cached_colors", Rrs_obs.Json.Int s.cached_colors);
      ("cumulative_drops", Rrs_obs.Json.Int s.cumulative_drops);
      ("cumulative_recolorings", Rrs_obs.Json.Int s.cumulative_recolorings);
    ]

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Rrs_obs.Json.to_string (sample_to_json s));
      Buffer.add_char buf '\n')
    (samples t);
  Buffer.add_string buf
    (Rrs_obs.Json.to_string
       (Rrs_obs.Json.Assoc
          [
            ("type", Rrs_obs.Json.String "metrics_registry");
            ("registry", Rrs_obs.Metrics.to_json t.registry);
          ]));
  Buffer.add_char buf '\n';
  Buffer.contents buf

let backlog_summary t =
  Rrs_stats.Summary.of_list
    (List.map (fun s -> float_of_int s.backlog) (samples t))
