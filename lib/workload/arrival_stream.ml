module Instance = Rrs_core.Instance
module Engine = Rrs_core.Engine

type t = {
  delta : int;
  delay : int array;
  num_colors : int;
  arrivals : (Rrs_core.Types.color * int) list array;
  rounds : int;
  mutable cursor : int;
}

let of_instance (instance : Instance.t) =
  {
    delta = instance.delta;
    delay = instance.delay;
    num_colors = instance.num_colors;
    arrivals = Instance.arrivals_by_round instance;
    rounds = instance.horizon + 1;
    cursor = 0;
  }

let delta t = t.delta
let delay t = Array.copy t.delay
let num_colors t = t.num_colors
let rounds t = t.rounds

let next t =
  if t.cursor >= t.rounds then None
  else begin
    let round = t.cursor in
    let batch =
      if round < Array.length t.arrivals then t.arrivals.(round) else []
    in
    t.cursor <- round + 1;
    Some (round, batch)
  end

let peek_round t = if t.cursor >= t.rounds then None else Some t.cursor

let feed_session t session ~upto =
  let continue = ref true in
  while !continue do
    match peek_round t with
    | Some round when round <= upto ->
        ignore (next t);
        let batch =
          if round < Array.length t.arrivals then t.arrivals.(round) else []
        in
        List.iter
          (fun (color, count) ->
            match Engine.Session.feed session ~round ~color ~count with
            | Ok () -> ()
            | Error e ->
                invalid_arg
                  (Printf.sprintf "Arrival_stream.feed_session: %s"
                     (Engine.Session.string_of_feed_error e)))
          batch
    | _ -> continue := false
  done

let to_script ?(step_chunk = 64) t buf =
  if step_chunk < 1 then invalid_arg "Arrival_stream.to_script: step_chunk < 1";
  let pending_steps = ref 0 in
  let flush_steps () =
    if !pending_steps > 0 then begin
      Buffer.add_string buf (Printf.sprintf "step %d\n" !pending_steps);
      pending_steps := 0
    end
  in
  let continue = ref true in
  while !continue do
    match next t with
    | None -> continue := false
    | Some (round, batch) ->
        (* submits name their absolute round, so they may ride ahead of
           the steps that will execute them *)
        List.iter
          (fun (color, count) ->
            Buffer.add_string buf
              (Printf.sprintf "submit %d %d %d\n" round color count))
          batch;
        incr pending_steps;
        if !pending_steps >= step_chunk then flush_steps ()
  done;
  flush_steps ();
  Buffer.add_string buf "state\n";
  Buffer.add_string buf "quit\n"
