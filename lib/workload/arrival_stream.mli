(** Replay a built workload as a live arrival stream.

    A stream is a cursor over an instance's per-round arrival batches:
    each {!next} yields one round's batch, in round order, so a driver
    can feed an {!Rrs_core.Engine.Session} (or a running [rrs serve]
    process) exactly what the batch engine would have seen — the bridge
    between the offline families and the streaming scheduler.

    {!to_script} renders the same stream as service-protocol lines
    (doc/SERVICE.md), turning any family into a scripted [rrs serve]
    session. *)

type t

val of_instance : Rrs_core.Instance.t -> t
(** Stream the instance's arrivals.  The cursor starts before round 0
    and runs through the instance horizon (inclusive), so driving a
    session with it covers the rounds {!Rrs_core.Engine.run} would
    simulate. *)

val delta : t -> int

val delay : t -> int array
(** A copy of the per-color delay bounds. *)

val num_colors : t -> int

val rounds : t -> int
(** Total rounds the stream spans = instance horizon + 1. *)

val next : t -> (int * (Rrs_core.Types.color * int) list) option
(** The next round number and its arrival batch (possibly empty), or
    [None] once the stream is past the horizon.  Batches come out in
    ascending round order, colors in ascending color order within a
    batch — the order {!Rrs_core.Instance.arrivals_by_round} fixes. *)

val peek_round : t -> int option
(** Round {!next} would yield, without consuming it. *)

val feed_session : t -> Rrs_core.Engine.Session.t -> upto:int -> unit
(** Consume stream rounds [<= upto] and feed their batches into the
    session at their true arrival rounds.
    @raise Invalid_argument if the session refuses a feed (preloaded or
    finished session, or a stream round already executed). *)

val to_script : ?step_chunk:int -> t -> Buffer.t -> unit
(** Append the whole remaining stream to [buf] as service-protocol
    lines: [submit ROUND COLOR COUNT] for every arrival, a [step k]
    after each chunk of [step_chunk] rounds (default 64), and a final
    [state] + [quit].  Piping the result into [rrs serve] replays the
    family end to end. *)
