module Rng = Rrs_prng.Rng

type layer = Rate_limited | Batched | Unbatched

type family = {
  id : string;
  description : string;
  layer : layer;
  build : seed:int -> Rrs_core.Instance.t;
  scale : (num_colors:int -> seed:int -> Rrs_core.Instance.t) option;
}

let layer_to_string = function
  | Rate_limited -> "rate-limited"
  | Batched -> "batched"
  | Unbatched -> "unbatched"

let all =
  [
    {
      id = "uniform";
      description = "uniform random rate-limited batches, mixed delay bounds";
      layer = Rate_limited;
      build =
        (fun ~seed ->
          Synthetic.rate_limited (Rng.create ~seed) Synthetic.default_batched);
      scale =
        Some
          (fun ~num_colors ~seed ->
            Synthetic.rate_limited (Rng.create ~seed)
              { Synthetic.default_batched with num_colors });
    };
    {
      id = "zipf";
      description = "rate-limited with Zipf(1.1) service popularity";
      layer = Rate_limited;
      build =
        (fun ~seed ->
          Synthetic.zipf_batched (Rng.create ~seed) ~s:1.1
            Synthetic.default_batched);
      scale =
        Some
          (fun ~num_colors ~seed ->
            Synthetic.zipf_batched (Rng.create ~seed) ~s:1.1
              { Synthetic.default_batched with num_colors });
    };
    {
      id = "bursty";
      description = "rate-limited, two-state Markov on/off sources";
      layer = Rate_limited;
      build =
        (fun ~seed ->
          Synthetic.bursty (Rng.create ~seed) Synthetic.default_bursty);
      scale =
        Some
          (fun ~num_colors ~seed ->
            Synthetic.bursty (Rng.create ~seed)
              {
                Synthetic.default_bursty with
                base = { Synthetic.default_bursty.base with num_colors };
              });
    };
    {
      id = "background";
      description =
        "intro scenario: background pile vs intermittent short-term jobs";
      layer = Rate_limited;
      build =
        (fun ~seed ->
          Scenarios.background_shortterm
            { Scenarios.default_background with seed });
      scale = None;
    };
    {
      id = "router";
      description = "multi-service router, rotating sinusoidal class load";
      layer = Rate_limited;
      build =
        (fun ~seed -> Scenarios.router { Scenarios.default_router with seed });
      scale = None;
    };
    {
      id = "datacenter";
      description = "shared data center with phase-shifting service mix";
      layer = Rate_limited;
      build =
        (fun ~seed ->
          Scenarios.datacenter { Scenarios.default_datacenter with seed });
      scale = None;
    };
    {
      id = "selfsim";
      description = "long-range-dependent traffic (heavy-tailed on/off)";
      layer = Rate_limited;
      build =
        (fun ~seed ->
          Synthetic.self_similar (Rng.create ~seed) Synthetic.default_self_similar);
      scale =
        Some
          (fun ~num_colors ~seed ->
            Synthetic.self_similar (Rng.create ~seed)
              {
                Synthetic.default_self_similar with
                base = { Synthetic.default_self_similar.base with num_colors };
              });
    };
    {
      id = "mixed-tenants";
      description = "bursty tenant + router tenant sharing one pool (union)";
      layer = Rate_limited;
      build = (fun ~seed -> Composite.mixed_tenants ~seed);
      scale = None;
    };
    {
      id = "adv-noise";
      description = "Appendix-A construction running beside benign traffic";
      layer = Rate_limited;
      build = (fun ~seed -> Composite.adversarial_with_noise ~seed);
      scale = None;
    };
    {
      id = "flash-crowd";
      description = "steady mix overlaid with a violent load spike (batched)";
      layer = Batched;
      build =
        (fun ~seed ->
          Composite.flash_crowd ~seed ~base_load:0.3 ~spike_load:2.0
            ~spike_at:256 ~horizon:512);
      scale = None;
    };
    {
      id = "oversized";
      description = "batched with oversized batches (Distribute input)";
      layer = Batched;
      build =
        (fun ~seed ->
          Synthetic.batched_oversized (Rng.create ~seed)
            { Synthetic.default_batched with load = 2.5 });
      scale =
        Some
          (fun ~num_colors ~seed ->
            Synthetic.batched_oversized (Rng.create ~seed)
              { Synthetic.default_batched with load = 2.5; num_colors });
    };
    {
      id = "unbatched";
      description =
        "arbitrary rounds and non-power-of-two delays (VarBatch input)";
      layer = Unbatched;
      build =
        (fun ~seed ->
          Synthetic.unbatched (Rng.create ~seed) Synthetic.default_unbatched);
      scale =
        Some
          (fun ~num_colors ~seed ->
            Synthetic.unbatched (Rng.create ~seed)
              { Synthetic.default_unbatched with num_colors });
    };
  ]

let find id = List.find_opt (fun f -> f.id = id) all
let ids () = List.map (fun f -> f.id) all

type scale_error =
  | Fixed_cast of string
  | Not_positive of int
  | Too_many_colors of { requested : int; max : int }

let string_of_scale_error = function
  | Fixed_cast id ->
      Printf.sprintf
        "family %s has a fixed cast of services and does not scale" id
  | Not_positive c -> Printf.sprintf "color count %d is not positive" c
  | Too_many_colors { requested; max } ->
      Printf.sprintf
        "%d colors exceed the packed color field (max %d = 2^17)" requested max

let scale_to family ~num_colors ~seed =
  match family.scale with
  | None -> Error (Fixed_cast family.id)
  | Some scale ->
      if num_colors < 1 then Error (Not_positive num_colors)
      else if num_colors > Rrs_core.Packed.max_colors then
        Error
          (Too_many_colors
             { requested = num_colors; max = Rrs_core.Packed.max_colors })
      else Ok (scale ~num_colors ~seed)
