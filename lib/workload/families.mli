(** Named workload families — the registry the CLI and the benchmark
    harness enumerate.

    A family maps a seed to an instance; every family also declares which
    problem layer it feeds (rate-limited / batched / unbatched) so
    harness code can pick the right solver. *)

type layer = Rate_limited | Batched | Unbatched

type family = {
  id : string;
  description : string;
  layer : layer;
  build : seed:int -> Rrs_core.Instance.t;
  scale : (num_colors:int -> seed:int -> Rrs_core.Instance.t) option;
      (** [build] at an explicit color-universe size, for scaling sweeps
          ([rrs simulate --colors], the core bench).  [None] for scenario
          families whose shape is tied to a fixed cast of services. *)
}

val all : family list
(** Every registered family, stable order. *)

val find : string -> family option
val ids : unit -> string list

val layer_to_string : layer -> string
