(** Named workload families — the registry the CLI and the benchmark
    harness enumerate.

    A family maps a seed to an instance; every family also declares which
    problem layer it feeds (rate-limited / batched / unbatched) so
    harness code can pick the right solver. *)

type layer = Rate_limited | Batched | Unbatched

type family = {
  id : string;
  description : string;
  layer : layer;
  build : seed:int -> Rrs_core.Instance.t;
  scale : (num_colors:int -> seed:int -> Rrs_core.Instance.t) option;
      (** [build] at an explicit color-universe size, for scaling sweeps
          ([rrs simulate --colors], the core bench).  [None] for scenario
          families whose shape is tied to a fixed cast of services. *)
}

val all : family list
(** Every registered family, stable order. *)

val find : string -> family option
val ids : unit -> string list

val layer_to_string : layer -> string

(** Why a scaled build was refused — {!scale_to} checks these before
    any instance construction, so a CLI can surface the problem instead
    of an [Invalid_argument] escaping from deep inside [Packed]. *)
type scale_error =
  | Fixed_cast of string  (** family id; its [scale] is [None] *)
  | Not_positive of int
  | Too_many_colors of { requested : int; max : int }
      (** [max] is {!Rrs_core.Packed.max_colors} (2{^17}) *)

val string_of_scale_error : scale_error -> string

val scale_to :
  family ->
  num_colors:int ->
  seed:int ->
  (Rrs_core.Instance.t, scale_error) result
(** [family.scale] with the color-universe size validated against the
    packed key layout first. *)
