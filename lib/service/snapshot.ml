module Session = Rrs_core.Engine.Session
module Json = Rrs_obs.Json

type t = {
  version : int;
  ops : int;
  round : int;
  n : int;
  delta : int;
  delay : int array;
  reconfigurations : int;
  reconfig_cost : int;
  executed : int;
  dropped : int;
  pending_jobs : int;
  future_arrivals : int;
  cache : int array;
}

let version = 1

let of_session ~ops session =
  let cost = Session.cost session in
  {
    version;
    ops;
    round = Session.round session;
    n = Session.n session;
    delta = Session.delta session;
    delay = Session.delay session;
    reconfigurations = Session.reconfigurations session;
    reconfig_cost = cost.Rrs_core.Cost.reconfig;
    executed = Session.executed session;
    dropped = Session.dropped session;
    pending_jobs = Session.pending_jobs session;
    future_arrivals = Session.future_arrivals session;
    cache = Session.cache session;
  }

let int_array arr = Json.List (Array.to_list arr |> List.map (fun v -> Json.Int v))

let to_json t =
  Json.Assoc
    [
      ("type", Json.String "serve_state");
      ("version", Json.Int t.version);
      ("ops", Json.Int t.ops);
      ("round", Json.Int t.round);
      ("n", Json.Int t.n);
      ("delta", Json.Int t.delta);
      ("delay", int_array t.delay);
      ("reconfigurations", Json.Int t.reconfigurations);
      ("reconfig_cost", Json.Int t.reconfig_cost);
      ("executed", Json.Int t.executed);
      ("dropped", Json.Int t.dropped);
      ("pending_jobs", Json.Int t.pending_jobs);
      ("future_arrivals", Json.Int t.future_arrivals);
      ("cache", int_array t.cache);
    ]

let ( let* ) = Result.bind

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "checkpoint: missing field %S" name)

let int_field name json =
  let* v = field name json in
  Result.map_error
    (fun e -> Printf.sprintf "checkpoint: field %S: %s" name e)
    (Json.to_int v)

let int_array_field name json =
  let* v = field name json in
  let* items =
    Result.map_error
      (fun e -> Printf.sprintf "checkpoint: field %S: %s" name e)
      (Json.to_list v)
  in
  let* ints =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* v =
          Result.map_error
            (fun e -> Printf.sprintf "checkpoint: field %S: %s" name e)
            (Json.to_int item)
        in
        Ok (v :: acc))
      (Ok []) items
  in
  Ok (Array.of_list (List.rev ints))

let of_json json =
  let* v = int_field "version" json in
  if v <> version then
    Error (Printf.sprintf "checkpoint: version %d (want %d)" v version)
  else
    let* ops = int_field "ops" json in
    let* round = int_field "round" json in
    let* n = int_field "n" json in
    let* delta = int_field "delta" json in
    let* delay = int_array_field "delay" json in
    let* reconfigurations = int_field "reconfigurations" json in
    let* reconfig_cost = int_field "reconfig_cost" json in
    let* executed = int_field "executed" json in
    let* dropped = int_field "dropped" json in
    let* pending_jobs = int_field "pending_jobs" json in
    let* future_arrivals = int_field "future_arrivals" json in
    let* cache = int_array_field "cache" json in
    Ok
      {
        version = v;
        ops;
        round;
        n;
        delta;
        delay;
        reconfigurations;
        reconfig_cost;
        executed;
        dropped;
        pending_jobs;
        future_arrivals;
        cache;
      }

let to_line t = Json.to_string (to_json t)

let of_line line =
  let* json = Json.parse line in
  of_json json

let equal a b =
  a.version = b.version && a.ops = b.ops && a.round = b.round && a.n = b.n
  && a.delta = b.delta && a.delay = b.delay
  && a.reconfigurations = b.reconfigurations
  && a.reconfig_cost = b.reconfig_cost
  && a.executed = b.executed && a.dropped = b.dropped
  && a.pending_jobs = b.pending_jobs
  && a.future_arrivals = b.future_arrivals
  && a.cache = b.cache

let pp fmt t =
  Format.fprintf fmt
    "round %d: n=%d delta=%d colors=%d pending=%d executed=%d dropped=%d \
     recolorings=%d (ops %d)"
    t.round t.n t.delta (Array.length t.delay) t.pending_jobs t.executed
    t.dropped t.reconfigurations t.ops
