(** The write-ahead journal of a service session.

    One JSONL file: a header line naming the session's creation
    parameters (policy id, n, Δ, delay bounds, mini-rounds), then one
    line per state-changing command {e after} it was applied
    successfully (log-after-apply: a command that crashes the server
    never reaches the journal, so replay cannot re-crash on it; the
    client's un-acked command is the at-most-once loss window —
    doc/SERVICE.md, "Restart semantics").

    Replaying the header + ops through a fresh {!Rrs_core.Engine.Session}
    reproduces the live session byte-identically — sessions are
    deterministic functions of this sequence.  {!load} tolerates a torn
    final line (the crash left a partial write): it is dropped with a
    warning; a torn line {e earlier} than the tail is corruption and
    refuses to load. *)

type op =
  | Submit of { round : int; color : int; count : int }
      (** [round] is absolute — the server resolves a default-round
          submit before journaling *)
  | Step of int
  | Reconfigure of {
      delta : int option;
      n : int option;
      delay : (int * int) list;
    }

type header = {
  version : int;
  policy : string;
  n : int;
  delta : int;
  delay : int array;
  mini_rounds : int;
}

val header_version : int

val header_to_line : header -> string
val op_to_line : op -> string
val op_of_line : string -> (op, string) result

val load : string -> (header * op list * string option, string) result
(** Parse a journal file.  The third component is a warning when a torn
    trailing line was dropped.  [Error] on a missing file, a bad header,
    or corruption before the tail. *)

(** An append handle: one line per {!append}, flushed through to the OS
    so a crash loses at most the in-flight line. *)
type writer

val create : string -> header -> writer
(** Truncate [path] and write the header — a fresh session. *)

val append_to : string -> writer
(** Open an existing journal for appending — a restored session. *)

val append : writer -> op -> unit
val close : writer -> unit
