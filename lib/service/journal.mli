(** The write-ahead journal of a service session.

    One JSONL file: a header line naming the session's creation
    parameters (policy id, n, Δ, delay bounds, mini-rounds), then one
    line per state-changing command {e after} it was applied
    successfully (log-after-apply: a command that crashes the server
    never reaches the journal, so replay cannot re-crash on it; the
    client's un-acked command is the at-most-once loss window —
    doc/SERVICE.md, "Restart semantics").

    Replaying the header + ops through a fresh {!Rrs_core.Engine.Session}
    reproduces the live session byte-identically — sessions are
    deterministic functions of this sequence.  {!load} tolerates a torn
    final line (the crash left a partial write): it is dropped with a
    {!tear} report carrying the exact byte offset of the torn line, so
    an operator can [truncate -s OFFSET] the file to silence the
    warning; a torn line {e earlier} than the tail is corruption and
    refuses to load with an equally precise {!load_error}. *)

type op =
  | Submit of { round : int; color : int; count : int }
      (** [round] is absolute — the server resolves a default-round
          submit before journaling *)
  | Step of int
  | Reconfigure of {
      delta : int option;
      n : int option;
      delay : (int * int) list;
    }

type header = {
  version : int;
  policy : string;
  n : int;
  delta : int;
  delay : int array;
  mini_rounds : int;
}

val header_version : int

val header_to_line : header -> string
val op_to_line : op -> string
val op_of_line : string -> (op, string) result

type tear = {
  line : int;  (** 1-based line number of the dropped torn tail *)
  offset : int;  (** byte offset where the torn line starts *)
  reason : string;  (** why its parse failed *)
}
(** A torn trailing line {!load} dropped: the crash interrupted the
    final append, the op was never acked, dropping it is today's
    documented at-most-once behavior.  [offset] is where the torn
    bytes begin — truncating the file to exactly [offset] bytes
    removes the tear. *)

val describe_tear : path:string -> tear -> string
(** One human line: the dropped line number, the byte offset, the
    truncation hint, and the parse error. *)

(** Why a journal refused to load.  Every corruption case names the
    1-based line and the byte offset where the bad bytes start, so
    diagnostics are precise enough to act on. *)
type load_error =
  | Missing
  | Empty
  | Bad_header of { offset : int; reason : string }
  | Corrupt_body of { line : int; offset : int; reason : string }
      (** an op line before the tail failed to parse — mid-file
          corruption, not a crash artifact *)

val describe_load_error : path:string -> load_error -> string

val load : string -> (header * op list * tear option, load_error) result
(** Parse a journal file.  The third component reports a dropped torn
    trailing line, when there was one. *)

(** An append handle: one line per {!append}, flushed through to the OS
    so a crash loses at most the in-flight line. *)
type writer

val create : string -> header -> writer
(** Truncate [path] and write the header — a fresh session. *)

val append_to : string -> writer
(** Open an existing journal for appending — a restored session. *)

val append : writer -> op -> unit
val close : writer -> unit
