type command =
  | Submit of { round : int option; color : int; count : int }
  | Step of int
  | State
  | Reconfigure of {
      delta : int option;
      n : int option;
      delay : (int * int) list;
    }
  | Checkpoint
  | Open of string
  | Attach of string
  | Sessions
  | Shutdown
  | Quit
  | Help

let grammar =
  String.concat "\n"
    [
      "submit [ROUND] COLOR COUNT     inject COUNT jobs of COLOR at ROUND";
      "                               (default: the current round)";
      "step [N]                       execute N rounds (default 1)";
      "state                          emit the session state, one JSON line";
      "reconfigure KEY=VALUE ...      delta=D | n=N | delay=COLOR:BOUND[,..]";
      "checkpoint                     force a checkpoint commit now";
      "open NAME                      create (or restore) the named session";
      "                               and make it current";
      "attach NAME                    switch to an already-open session";
      "sessions                       list the open sessions, one line each";
      "shutdown                       drain every session and stop the server";
      "quit                           checkpoint, finish, exit";
      "help                           print this grammar";
    ]

(* Session names become directory components of the durable state tree,
   so the alphabet is locked down: no separators, no dotfiles. *)
let valid_session_name name =
  name <> ""
  && name.[0] <> '.'
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       name

let session_name_of_token tok =
  if valid_session_name tok then Ok tok
  else
    Error
      (Printf.sprintf
         "session name %S: want [A-Za-z0-9_.-]+ not starting with a dot" tok)

let int_of_token name tok =
  match int_of_string_opt tok with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not an integer: %S" name tok)

let ( let* ) = Result.bind

let parse_delay_spec spec =
  (* COLOR:BOUND[,COLOR:BOUND...] *)
  let entries = String.split_on_char ',' spec in
  List.fold_left
    (fun acc entry ->
      let* acc = acc in
      match String.split_on_char ':' entry with
      | [ color; bound ] ->
          let* color = int_of_token "delay color" color in
          let* bound = int_of_token "delay bound" bound in
          Ok ((color, bound) :: acc)
      | _ -> Error (Printf.sprintf "delay: want COLOR:BOUND, got %S" entry))
    (Ok []) entries
  |> Result.map List.rev

let parse_reconfigure tokens =
  let* delta, n, delay =
    List.fold_left
      (fun acc tok ->
        let* delta, n, delay = acc in
        match String.index_opt tok '=' with
        | None ->
            Error
              (Printf.sprintf "reconfigure: want KEY=VALUE, got %S" tok)
        | Some i -> (
            let key = String.sub tok 0 i in
            let value = String.sub tok (i + 1) (String.length tok - i - 1) in
            match key with
            | "delta" ->
                let* v = int_of_token "delta" value in
                Ok (Some v, n, delay)
            | "n" ->
                let* v = int_of_token "n" value in
                Ok (delta, Some v, delay)
            | "delay" ->
                let* d = parse_delay_spec value in
                Ok (delta, n, delay @ d)
            | _ ->
                Error
                  (Printf.sprintf
                     "reconfigure: unknown key %S (want delta, n or delay)" key)
            ))
      (Ok (None, None, []))
      tokens
  in
  if delta = None && n = None && delay = [] then
    Error "reconfigure: nothing to change (want delta=, n= and/or delay=)"
  else Ok (Reconfigure { delta; n; delay })

let parse line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let tokens =
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] -> Ok None
  | verb :: args -> (
      let some c = Result.map (fun c -> Some c) c in
      match (verb, args) with
      | "submit", [ color; count ] ->
          some
            (let* color = int_of_token "color" color in
             let* count = int_of_token "count" count in
             Ok (Submit { round = None; color; count }))
      | "submit", [ round; color; count ] ->
          some
            (let* round = int_of_token "round" round in
             let* color = int_of_token "color" color in
             let* count = int_of_token "count" count in
             Ok (Submit { round = Some round; color; count }))
      | "submit", _ -> Error "submit: want [ROUND] COLOR COUNT"
      | "step", [] -> Ok (Some (Step 1))
      | "step", [ k ] ->
          some
            (let* k = int_of_token "step count" k in
             if k < 1 then Error "step: count must be at least 1"
             else Ok (Step k))
      | "step", _ -> Error "step: want at most one count"
      | "state", [] -> Ok (Some State)
      | "state", _ -> Error "state: takes no arguments"
      | "reconfigure", [] ->
          Error "reconfigure: nothing to change (want delta=, n= and/or delay=)"
      | "reconfigure", args -> some (parse_reconfigure args)
      | "checkpoint", [] -> Ok (Some Checkpoint)
      | "checkpoint", _ -> Error "checkpoint: takes no arguments"
      | "open", [ name ] ->
          some
            (let* name = session_name_of_token name in
             Ok (Open name))
      | "open", _ -> Error "open: want exactly one session NAME"
      | "attach", [ name ] ->
          some
            (let* name = session_name_of_token name in
             Ok (Attach name))
      | "attach", _ -> Error "attach: want exactly one session NAME"
      | "sessions", [] -> Ok (Some Sessions)
      | "sessions", _ -> Error "sessions: takes no arguments"
      | "shutdown", [] -> Ok (Some Shutdown)
      | "shutdown", _ -> Error "shutdown: takes no arguments"
      | "quit", [] -> Ok (Some Quit)
      | "quit", _ -> Error "quit: takes no arguments"
      | "help", _ -> Ok (Some Help)
      | verb, _ ->
          Error
            (Printf.sprintf "unknown command %S (try: help)" verb))

let command_to_string = function
  | Submit { round = None; color; count } ->
      Printf.sprintf "submit %d %d" color count
  | Submit { round = Some round; color; count } ->
      Printf.sprintf "submit %d %d %d" round color count
  | Step 1 -> "step"
  | Step k -> Printf.sprintf "step %d" k
  | State -> "state"
  | Reconfigure { delta; n; delay } ->
      let parts =
        (match delta with Some d -> [ Printf.sprintf "delta=%d" d ] | None -> [])
        @ (match n with Some v -> [ Printf.sprintf "n=%d" v ] | None -> [])
        @
        match delay with
        | [] -> []
        | d ->
            [
              "delay="
              ^ String.concat ","
                  (List.map (fun (c, b) -> Printf.sprintf "%d:%d" c b) d);
            ]
      in
      String.concat " " ("reconfigure" :: parts)
  | Checkpoint -> "checkpoint"
  | Open name -> "open " ^ name
  | Attach name -> "attach " ^ name
  | Sessions -> "sessions"
  | Shutdown -> "shutdown"
  | Quit -> "quit"
  | Help -> "help"
