(** Crash-consistency torture drills for the durability path.

    The drills build a real durable session (journal + rotated
    checkpoints, ended without a final checkpoint, exactly as a kill
    leaves them), mutate one artifact — truncate at a byte boundary,
    flip one byte, duplicate one journal line — and then restore
    through {!Server.open_session}, classifying what the tiered
    recovery ladder did:

    - tier 0: clean restore, nothing to recover;
    - tier 1: torn journal tail dropped with a byte-offset warning;
    - tier 2: a checkpoint quarantined, journal replay carried on;
    - tier 3: restore refused ({!Server.Corrupt}) with a diagnostic.

    A case is {e contained} when the restore either refuses (tier 3)
    or produces exactly the state obtained by straight-line application
    of the ops the mutated journal actually holds — no silent
    divergence, no stray exception.  Duplicated or value-flipped lines
    {e after the last checkpoint} are absorbed silently by design: the
    journal is the source of truth and no witness exists past the last
    anchor, so detection there is bounded by the checkpoint cadence
    (doc/SERVICE.md, "Failure matrix").

    Everything is deterministic: op sequences come from
    {!Rrs_prng.Rng}, mutation points enumerate the artifact's bytes. *)

type verdict = {
  case : string;  (** e.g. ["journal-truncate@117"] *)
  tier : int;  (** 0..3, the highest recovery tier that engaged *)
  contained : bool;
  diverged : bool;
      (** restored state disagrees with the straight-line state of the
          ops the (mutated) journal holds — always a failure *)
  detail : string;
}

type summary = {
  cases : int;
  contained : int;
  uncontained : int;
  divergences : int;
  tiers : int array;  (** length 4, verdicts per tier *)
}

val summarize : verdict list -> summary

val ops_of_seed : ?count:int -> colors:int -> int -> Journal.op list
(** A deterministic mixed op sequence (submits, small steps, delay
    reconfigurations) — the default [count] is 48. *)

val straight_line : Server.config -> Journal.op list -> Snapshot.t
(** Apply the ops to a fresh ephemeral session and snapshot it — the
    ground truth every restore is compared against.  Ops the engine
    refuses are skipped, exactly as the server skips them (a refused
    op is answered with [err ...] and never journaled). *)

val build_fixture : Server.config -> Journal.op list -> string -> unit
(** Run the ops through a durable host rooted at the directory (the
    config's [checkpoint_dir] is overridden), skipping refused ops,
    then abandon the session without a final checkpoint.  With [checkpoint_every] well below the
    op count the fixture carries both [checkpoint.json] and
    [checkpoint.json.prev], and a journal tail past both. *)

(** {2 Mutators} *)

val truncate_file : string -> int -> unit
val flip_byte : string -> int -> unit
(** XOR byte [i] with [0x20] (flips case / perturbs digits, never a
    newline into a newline). *)

val duplicate_line : string -> int -> unit
(** Duplicate 1-based line [i] in place. *)

val restore_case : case:string -> Server.config -> string -> verdict
(** Restore the (possibly mutated) durable directory and classify. *)

(** {2 Campaigns} — each copies the fixture, mutates, restores.
    [stride] samples every [stride]-th mutation point (default 1:
    every byte / line). *)

val journal_truncate_campaign :
  ?stride:int -> Server.config -> ops:Journal.op list -> dir:string ->
  verdict list
(** Truncate the journal at every byte boundary from 0 to its length. *)

val journal_flip_campaign :
  ?stride:int -> Server.config -> ops:Journal.op list -> dir:string ->
  verdict list
(** Flip every byte of the journal, one case per byte. *)

val journal_dup_campaign :
  Server.config -> ops:Journal.op list -> dir:string -> verdict list
(** Duplicate every op line of the journal, one case per line. *)

val checkpoint_campaign :
  ?stride:int -> Server.config -> ops:Journal.op list -> dir:string ->
  verdict list
(** Truncate and flip every byte of [checkpoint.json].  The journal is
    intact, so no case may refuse with a wrong state: every verdict
    must be tier ≤ 3 contained with the full straight-line state when
    the restore succeeds. *)

val prefix_campaign :
  ?torn:bool -> Server.config -> ops:Journal.op list -> dir:string ->
  verdict list
(** Kill-at-every-op: for every prefix length k, write a journal
    holding exactly the first k ops (with [torn], plus a torn fragment
    of op k+1) and restore — state must equal the straight line of the
    prefix, tier 1 exactly when a torn fragment was planted. *)
