module Json = Rrs_obs.Json

type op =
  | Submit of { round : int; color : int; count : int }
  | Step of int
  | Reconfigure of {
      delta : int option;
      n : int option;
      delay : (int * int) list;
    }

type header = {
  version : int;
  policy : string;
  n : int;
  delta : int;
  delay : int array;
  mini_rounds : int;
}

let header_version = 1

let int_array arr =
  Json.List (Array.to_list arr |> List.map (fun v -> Json.Int v))

let header_to_line h =
  Json.to_string
    (Json.Assoc
       [
         ("type", Json.String "serve_open");
         ("version", Json.Int h.version);
         ("policy", Json.String h.policy);
         ("n", Json.Int h.n);
         ("delta", Json.Int h.delta);
         ("delay", int_array h.delay);
         ("mini_rounds", Json.Int h.mini_rounds);
       ])

let op_to_line op =
  let fields =
    match op with
    | Submit { round; color; count } ->
        [
          ("op", Json.String "submit");
          ("round", Json.Int round);
          ("color", Json.Int color);
          ("count", Json.Int count);
        ]
    | Step k -> [ ("op", Json.String "step"); ("rounds", Json.Int k) ]
    | Reconfigure { delta; n; delay } ->
        [ ("op", Json.String "reconfigure") ]
        @ (match delta with Some d -> [ ("delta", Json.Int d) ] | None -> [])
        @ (match n with Some v -> [ ("n", Json.Int v) ] | None -> [])
        @
        if delay = [] then []
        else
          [
            ( "delay",
              Json.List
                (List.map
                   (fun (c, b) -> Json.List [ Json.Int c; Json.Int b ])
                   delay) );
          ]
  in
  Json.to_string (Json.Assoc (("type", Json.String "serve_op") :: fields))

let ( let* ) = Result.bind

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name json =
  let* v = field name json in
  Result.map_error (fun e -> Printf.sprintf "field %S: %s" name e) (Json.to_int v)

let opt_int_field name json =
  match Json.member name json with
  | None -> Ok None
  | Some v ->
      Result.map_error
        (fun e -> Printf.sprintf "field %S: %s" name e)
        (Result.map (fun v -> Some v) (Json.to_int v))

let string_field name json =
  let* v = field name json in
  Result.map_error
    (fun e -> Printf.sprintf "field %S: %s" name e)
    (Json.to_string_lit v)

let int_array_field name json =
  let* v = field name json in
  let* items =
    Result.map_error (fun e -> Printf.sprintf "field %S: %s" name e)
      (Json.to_list v)
  in
  let* ints =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* v =
          Result.map_error
            (fun e -> Printf.sprintf "field %S: %s" name e)
            (Json.to_int item)
        in
        Ok (v :: acc))
      (Ok []) items
  in
  Ok (Array.of_list (List.rev ints))

let header_of_line line =
  let* json = Json.parse line in
  let* ty = string_field "type" json in
  if ty <> "serve_open" then
    Error (Printf.sprintf "journal header: type %S (want serve_open)" ty)
  else
    let* version = int_field "version" json in
    if version <> header_version then
      Error
        (Printf.sprintf "journal header: version %d (want %d)" version
           header_version)
    else
      let* policy = string_field "policy" json in
      let* n = int_field "n" json in
      let* delta = int_field "delta" json in
      let* delay = int_array_field "delay" json in
      let* mini_rounds = int_field "mini_rounds" json in
      Ok { version; policy; n; delta; delay; mini_rounds }

let op_of_line line =
  let* json = Json.parse line in
  let* ty = string_field "type" json in
  if ty <> "serve_op" then
    Error (Printf.sprintf "journal op: type %S (want serve_op)" ty)
  else
    let* op = string_field "op" json in
    match op with
    | "submit" ->
        let* round = int_field "round" json in
        let* color = int_field "color" json in
        let* count = int_field "count" json in
        Ok (Submit { round; color; count })
    | "step" ->
        let* rounds = int_field "rounds" json in
        Ok (Step rounds)
    | "reconfigure" ->
        let* delta = opt_int_field "delta" json in
        let* n = opt_int_field "n" json in
        let* delay =
          match Json.member "delay" json with
          | None -> Ok []
          | Some v ->
              let* items = Json.to_list v in
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  match item with
                  | Json.List [ Json.Int c; Json.Int b ] -> Ok ((c, b) :: acc)
                  | _ -> Error "field \"delay\": want [COLOR, BOUND] pairs")
                (Ok []) items
              |> Result.map List.rev
        in
        Ok (Reconfigure { delta; n; delay })
    | op -> Error (Printf.sprintf "journal op: unknown op %S" op)

type tear = { line : int; offset : int; reason : string }

let describe_tear ~path t =
  Printf.sprintf
    "dropped torn trailing line %d of %s at byte offset %d (truncate the \
     journal to %d bytes to remove the tear): %s"
    t.line path t.offset t.offset t.reason

type load_error =
  | Missing
  | Empty
  | Bad_header of { offset : int; reason : string }
  | Corrupt_body of { line : int; offset : int; reason : string }

let describe_load_error ~path = function
  | Missing -> Printf.sprintf "journal %s: no such file" path
  | Empty -> Printf.sprintf "journal %s: empty" path
  | Bad_header { offset; reason } ->
      Printf.sprintf "journal %s: header (byte offset %d): %s" path offset
        reason
  | Corrupt_body { line; offset; reason } ->
      Printf.sprintf
        "journal %s: line %d (byte offset %d): %s — corruption before the \
         tail, refusing to load"
        path line offset reason

(* Split the raw contents into (line, 1-based line number, byte offset
   of the line start), keeping offsets exact so diagnostics can point
   at the byte an operator would truncate at.  Blank lines are skipped
   but still advance line numbers and offsets. *)
let numbered_lines contents =
  let len = String.length contents in
  let rec go start line acc =
    if start >= len then List.rev acc
    else
      let stop =
        match String.index_from_opt contents start '\n' with
        | Some i -> i
        | None -> len
      in
      let text = String.sub contents start (stop - start) in
      let acc =
        if String.trim text = "" then acc else (text, line, start) :: acc
      in
      go (stop + 1) (line + 1) acc
  in
  go 0 1 []

let load path =
  if not (Sys.file_exists path) then Error Missing
  else
    let contents = In_channel.with_open_text path In_channel.input_all in
    match numbered_lines contents with
    | [] -> Error Empty
    | (header_line, _, header_offset) :: op_lines -> (
        match header_of_line header_line with
        | Error reason -> Error (Bad_header { offset = header_offset; reason })
        | Ok header ->
            let rec parse acc = function
              | [] -> Ok (header, List.rev acc, None)
              | (text, line, offset) :: rest -> (
                  match op_of_line text with
                  | Ok op -> parse (op :: acc) rest
                  | Error reason when rest = [] ->
                      (* torn tail: the crash interrupted the final
                         write; the op was never acked, drop it *)
                      Ok (header, List.rev acc, Some { line; offset; reason })
                  | Error reason ->
                      Error (Corrupt_body { line; offset; reason }))
            in
            parse [] op_lines)

type writer = { oc : out_channel }

let create path header =
  let oc = Out_channel.open_text path in
  output_string oc (header_to_line header);
  output_char oc '\n';
  flush oc;
  { oc }

let append_to path =
  let oc =
    Out_channel.open_gen [ Open_append; Open_creat; Open_text ] 0o644 path
  in
  { oc }

let append w op =
  Rrs_fault.probe "serve.journal";
  output_string w.oc (op_to_line op);
  output_char w.oc '\n';
  flush w.oc

let close w = Out_channel.close_noerr w.oc
