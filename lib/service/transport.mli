(** The socket transport: many concurrent clients multiplexed over one
    {!Server.host} — a single-threaded [select] event loop speaking the
    {!Protocol} line protocol over a Unix-domain or TCP listener.

    Each connection addresses the shared session table by name
    ([open NAME] / [attach NAME]); on accept it is attached to
    {!Server.default_session} and greeted exactly like a pipe client.
    All session mutations are serialized by the loop, so two clients
    attached to the same session never race; per-connection reply order
    always matches command order.

    {b Overload control} ({!limits}):

    - {e admission}: a command arriving for a session whose queue
      already holds [queue_limit] commands is refused immediately with
      [busy queue session=NAME depth=D retry-after=SECONDS] and counted
      as [serve_busy] — nothing is enqueued, so no acked op is ever
      dropped;
    - {e load shedding}: when the total queued backlog exceeds
      [shed_threshold], read-only commands ([state], [sessions],
      [help]) are answered with [busy shed ...] at execution time
      (preserving reply pairing) so the cycles go to [submit]/[step];
      counted as [serve_shed];
    - {e slow clients}: a connection whose outbound buffer exceeds
      [write_buffer_limit] bytes, or that has not accepted a byte for
      [write_stall_timeout] seconds while output is pending, is dropped
      and counted as [serve_slow_client_drops] — one reader that stops
      reading cannot wedge the loop or grow memory unboundedly;
    - {e deadlines}: with [command_deadline = Some t], each mutating
      command's apply runs under a {!Rrs_robust.Supervisor} timeout.
      On expiry the session is {!Server.wedge}d (the abandoned domain
      may still be running: the journal writer is closed so it can
      never append) and the client gets an [err deadline ...]; the next
      command addressed to the session restores it from its journal
      ([serve_session_restarts]).

    Faults injected at the [serve.accept] and [serve.write] probes are
    contained to the connection they hit (counted, connection dropped);
    the loop itself never dies from a client.

    Shutdown: [shutdown] from any client, or the [stop] callback
    returning [true] (the CLI wires SIGTERM/SIGINT to it), stops
    accepting, executes every already-queued command, flushes replies
    on a bounded grace budget, closes every connection and then every
    session (final checkpoint each).  Unix-domain socket files are
    unlinked on exit. *)

type address =
  | Unix_socket of string  (** path of the socket file (created fresh) *)
  | Tcp of string * int  (** bind host, port; port 0 picks a free port *)

val pp_address : Format.formatter -> address -> unit

type limits = {
  max_conns : int;
      (** accepted connections beyond this are greeted with
          [busy connections ...] and closed *)
  queue_limit : int;  (** per-session queued-command bound *)
  shed_threshold : int;
      (** total queued commands above which read-only commands shed *)
  command_deadline : float option;
      (** per-command apply budget, seconds; [None] = no deadline *)
  write_buffer_limit : int;  (** outbound bytes per connection *)
  write_stall_timeout : float;
      (** seconds a connection may refuse bytes while output is pending *)
  max_line : int;  (** longest accepted command line, bytes *)
  retry_after : float;  (** the hint in [busy] replies, seconds *)
}

val default_limits : limits
(** 64 connections, 64 queued commands per session, shed above 256
    queued total, no deadline, 1 MiB write buffer, 5 s write stall,
    64 KiB lines, retry-after 0.05 s. *)

type stats = {
  conns_accepted : int;
  conns_dropped : int;
  commands : int;
  busy : int;
  shed : int;
  slow_drops : int;
  wedges : int;
}
(** Mirror of the [serve_*] counters, returned from {!run} so drivers
    without a metrics registry still see what happened. *)

val run :
  ?limits:limits ->
  ?stop:(unit -> bool) ->
  ?on_ready:(address -> unit) ->
  Server.config ->
  address ->
  (stats, string) result
(** Listen, serve until shutdown, tear down.  [on_ready] fires once
    with the bound address (the actual port for [Tcp (_, 0)]) before
    the first [accept] — tests use it to learn where to connect.
    [stop] is polled between select rounds (at most ~50 ms apart).
    [Error] is a configuration or bind failure; client misbehavior is
    never an [Error]. *)
