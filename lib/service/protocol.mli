(** The line-oriented command protocol of [rrs serve].

    One command per line; tokens separated by blanks; blank lines and
    [#]-comments are ignored.  Grammar (doc/SERVICE.md):

    {v
    submit [ROUND] COLOR COUNT     inject COUNT jobs of COLOR at ROUND
                                   (default: the current round)
    step [N]                       execute N rounds (default 1)
    state                          emit the session state, one JSON line
    reconfigure KEY=VALUE ...      delta=D | n=N | delay=COLOR:BOUND[,..]
    checkpoint                     force a checkpoint commit now
    open NAME                      create (or restore) the named session
                                   and make it current
    attach NAME                    switch to an already-open session
    sessions                       list the open sessions, one line each
    shutdown                       drain every session and stop the server
    quit                           checkpoint, finish, exit
    help                           print this grammar
    v}

    The parser is total: it returns a typed command or an error string,
    never raises — [test/test_service.ml] fuzzes it with arbitrary byte
    strings and near-miss mutations of valid commands to keep that
    contract honest. *)

type command =
  | Submit of { round : int option; color : int; count : int }
  | Step of int
  | State
  | Reconfigure of {
      delta : int option;
      n : int option;
      delay : (int * int) list;
    }
  | Checkpoint
  | Open of string
  | Attach of string
  | Sessions
  | Shutdown
  | Quit
  | Help

val parse : string -> (command option, string) result
(** [Ok None] for blank lines and comments. *)

val command_to_string : command -> string
(** Canonical form: what {!parse} accepts and the journal records. *)

val valid_session_name : string -> bool
(** Session names become directory components of the durable state
    tree: [[A-Za-z0-9_.-]+], nonempty, not starting with a dot. *)

val grammar : string
(** The grammar block above, for [help] and usage errors. *)
