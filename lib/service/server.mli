(** The long-lived scheduler service: a streaming
    {!Rrs_core.Engine.Session} driven by the line protocol
    ({!Protocol}), journaled ({!Journal}), periodically checkpointed
    ({!Snapshot} through the atomic temp+rename commit), and supervised
    ({!Rrs_robust.Supervisor}) so contained faults restart the session
    from its journal instead of killing the process.

    Memory-boundedness contract: the server retains no per-round
    history — no recorded schedule, no response log; its resident state
    is the session (pending jobs + fed-ahead arrivals + policy state)
    and one journal append buffer.  Durable state grows only in the
    journal file (doc/SERVICE.md). *)

val policies : (string * Rrs_core.Policy.factory) list
(** Policy ids [rrs serve --policy] accepts (the online subset of the
    simulate table — the pipeline policy needs the whole instance up
    front and cannot stream). *)

val factory_of_id : string -> (Rrs_core.Policy.factory, string) result

type config = {
  policy : string;  (** id from {!policies} *)
  n : int;
  delta : int;
  delay : int array;
  mini_rounds : int;
  checkpoint_dir : string option;
      (** holds [journal.jsonl] + [checkpoint.json]; [None] = ephemeral
          session, no durability *)
  checkpoint_every : int;
      (** commit a checkpoint every that many applied ops; 0 = only on
          explicit [checkpoint] commands and at quit *)
  crash_after : int option;
      (** abandon the process (exit 70, no checkpoint, no finish) after
          that many applied ops — the deterministic kill the CI
          restart test uses *)
  retries : int;  (** supervisor restarts granted to transient faults *)
  heartbeat : Rrs_obs.Heartbeat.t option;
      (** attached {e after} restore: journal replay never beats *)
}

val default_config : config
(** dlru-edf, n = 8, Δ = 4, 8 colors with delay bounds 8, uni-speed,
    ephemeral, checkpoint every 256 ops, no crash, 2 retries. *)

val serve : config -> in_channel -> out_channel -> int
(** Run the service over the channels until [quit] or EOF; returns the
    process exit code (0 = clean shutdown, 1 = fatal failure or
    unreadable durable state, 2 = bad configuration).  Every response
    is one line: [ok ...], [err ...], or a state JSON object; responses
    are flushed per command so the channel can be a pipe. *)
