(** The long-lived scheduler service: streaming
    {!Rrs_core.Engine.Session}s driven by the line protocol
    ({!Protocol}), journaled ({!Journal}), periodically checkpointed
    ({!Snapshot} through the atomic temp+rename commit), and supervised
    ({!Rrs_robust.Supervisor}) so contained faults restart a session
    from its journal instead of killing the process.

    A server is a {!host}: a table of named sessions multiplexed over
    one engine process.  The pipe driver ({!serve}, [rrs serve]) opens
    the {!default_session} on stdin/stdout; the socket driver
    ({!Transport}) serves many concurrent clients, each addressing the
    table through [open NAME] / [attach NAME].

    Memory-boundedness contract: the server retains no per-round
    history — no recorded schedule, no response log; its resident state
    is each session (pending jobs + fed-ahead arrivals + policy state)
    and one journal append buffer per durable session.  Durable state
    grows only in the journal files (doc/SERVICE.md).

    {b Tiered recovery} (doc/SERVICE.md, "Failure matrix").  Restoring
    a durable session classifies what it finds:

    - {e torn journal tail} — the crash interrupted the final append;
      the un-acked op is dropped with a warning naming its exact byte
      offset (tier 1, today's at-most-once contract);
    - {e unreadable checkpoint} — the checkpoint is derived state, so
      it is quarantined to [checkpoint.json.corrupt-<n>] and the
      session falls back to journal replay, anchored on the previous
      checkpoint ([checkpoint.json.prev]) when one survives (tier 2);
    - {e corrupt journal body} — the source of truth cannot be
      trusted; a forensic copy is quarantined to
      [journal.jsonl.corrupt-<n>] (the original stays in place so
      restarts keep refusing) and the restore refuses with a
      diagnostic naming the line and byte offset (tier 3);
    - {e checkpoint/replay divergence} — journal and checkpoint tell
      different stories; with a surviving previous checkpoint that
      agrees with the replay, the current checkpoint is the corrupt
      artifact and tier 2 applies; otherwise the ambiguity refuses
      (tier 3).

    Every recovery action increments a [serve_recovery_*] counter in
    the host metrics and, when a flight recorder with a dump directory
    is ambient, commits a black-box dump
    ({!Rrs_obs.Flight_recorder.crash_dump}). *)

val policies : (string * Rrs_core.Policy.factory) list
(** Policy ids [rrs serve --policy] accepts (the online subset of the
    simulate table — the pipeline policy needs the whole instance up
    front and cannot stream). *)

val factory_of_id : string -> (Rrs_core.Policy.factory, string) result

type config = {
  policy : string;  (** id from {!policies} *)
  n : int;
  delta : int;
  delay : int array;
  mini_rounds : int;
  checkpoint_dir : string option;
      (** root of the durable tree: the default session keeps
          [journal.jsonl] + [checkpoint.json] at the root (compatible
          with single-session layouts), named sessions live under
          [sessions/NAME/]; [None] = every session is ephemeral *)
  checkpoint_every : int;
      (** commit a checkpoint every that many applied ops; 0 = only on
          explicit [checkpoint] commands and at quit *)
  crash_after : int option;
      (** abandon the process (exit 70, no checkpoint, no finish) after
          that many applied ops — the deterministic kill the CI
          restart test and the torture drills use *)
  retries : int;  (** supervisor restarts granted to transient faults *)
  heartbeat : Rrs_obs.Heartbeat.t option;
      (** attached {e after} restore: journal replay never beats *)
  metrics : Rrs_obs.Metrics.t option;
      (** counts [serve_*] service/recovery/overload metrics; [None] =
          a private registry (readable via {!metrics}) *)
}

val default_config : config
(** dlru-edf, n = 8, Δ = 4, 8 colors with delay bounds 8, uni-speed,
    ephemeral, checkpoint every 256 ops, no crash, 2 retries, private
    metrics. *)

exception Corrupt of string
(** Durable-state corruption that refuses restore (recovery tier 3):
    the journal or checkpoint cannot be trusted, so a restart must not
    silently continue.  Fatal under {!Rrs_robust.Supervisor.classify_default}. *)

(** {2 The session table} *)

val default_session : string
(** ["default"] — the session the pipe driver opens, and the one
    socket clients address before any [open]/[attach]. *)

type session

val session_name : session -> string
val session_ops : session -> int
val session_restored : session -> bool
val session_notices : session -> string list
(** Recovery notes collected while restoring, oldest first (torn-tail
    drops, checkpoint quarantines). *)

val session_wedged : session -> string option
(** Set when a command deadline expired or a journal append failed
    mid-command: the in-memory state can no longer be trusted to match
    the journal, so the session refuses further commands until it is
    reopened (restored from its journal). *)

val wedge : session -> string -> unit
(** Mark the session wedged with the given reason (counted as
    [serve_wedged]); closes the journal writer so an abandoned
    command attempt can never append behind the server's back. *)

val session_snapshot : session -> Snapshot.t
(** The observable state, at the session's current op count. *)

type host

val host : config -> host
(** A fresh host with an empty session table.  Raises nothing: config
    validation happens per driver ({!serve} returns exit code 2, the
    transport refuses to start). *)

val host_config : host -> config
val metrics : host -> Rrs_obs.Metrics.t
val sessions : host -> session list
(** Open sessions, oldest first. *)

val find_session : host -> string -> session option

val open_session : host -> string -> session
(** Create — or, when durable state exists, restore through the tiered
    recovery ladder — the named session and add it to the table.
    Reopening a wedged session discards the untrusted in-memory state
    and restores from the journal.
    @raise Corrupt when recovery refuses (tier 3)
    @raise Invalid_argument on an invalid name or a name already open
    (and not wedged) — callers guard with {!find_session}. *)

val checkpoint_session : host -> session -> Snapshot.t option
(** Commit a checkpoint now (rotating the previous one to
    [checkpoint.json.prev]); [None] for ephemeral sessions. *)

val close_session : host -> session -> Rrs_core.Engine.result
(** Final checkpoint, close the journal, finish the engine session and
    remove it from the table. *)

val abandon_session : host -> session -> unit
(** Drop the session {e without} a final checkpoint: close the journal
    writer and remove it from the table, leaving durable state exactly
    as a kill would — the torture drills use this to build fixtures
    whose journal extends past the last checkpoint. *)

val apply_op : session -> Journal.op -> (string, string) result
(** Apply one state-changing op to the live engine session; [Ok] is
    the human ack line body, [Error] the refusal. *)

val commit : host -> session -> Journal.op -> unit
(** Journal the (already applied) op, advance the op counters, commit
    a periodic checkpoint when due, and honor [crash_after].
    @raise Rrs_fault.Injected when the [serve.journal] probe fires —
    the caller must contain it ({!wedge} + reopen, or the pipe
    driver's supervised restart). *)

(** What executing one command means for the connection that sent it. *)
type outcome =
  | Reply of string list  (** answer and keep going *)
  | Switch of session * string list
      (** [open]/[attach] succeeded: the client's current session
          changed *)
  | Bye of string list  (** [quit]: close this client *)
  | Stop of string list  (** [shutdown]: drain and stop the server *)

val exec :
  ?apply:(session -> Journal.op -> (string, string) result) ->
  host ->
  session ->
  Protocol.command ->
  outcome
(** Execute one parsed command against the client's current session.
    [apply] (default {!apply_op}) lets the socket driver run the
    session mutation under a per-command deadline; journaling
    ({!commit}) always happens on the caller's side of that boundary,
    {e after} a successful apply, so an abandoned attempt can never
    reach the journal. *)

val greeting : session -> string list
(** The lines a client sees when a session becomes current: one
    ["ok warning: ..."] per recovery notice, then the
    ["ok session ..."] / ["ok restored ..."] line. *)

(** {2 The pipe driver} *)

val serve : config -> in_channel -> out_channel -> int
(** Run the service over the channels until [quit], [shutdown] or EOF;
    returns the process exit code (0 = clean shutdown, 1 = fatal
    failure or unreadable durable state, 2 = bad configuration).
    Every response is one line: [ok ...], [err ...], [busy ...] or a
    state JSON object; responses are flushed per command so the
    channel can be a pipe.

    SIGTERM/SIGINT drain gracefully: an in-flight command finishes
    (apply + journal + ack are never interrupted mid-sequence), then
    every session is checkpointed and finished and the process exits 0
    — no silent replay gap.  The previous signal dispositions are
    restored on return. *)
