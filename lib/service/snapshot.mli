(** Serializable images of a streaming session.

    A snapshot is the session's externally observable state — round,
    parameters, cost accounting, pending population, the cache coloring
    — plus the journal position it was taken at.  It is {e not} a full
    machine image: policies are stateful closures, so restore works by
    replaying the journal (see {!Journal} and doc/SERVICE.md, "Restart
    semantics"); the checkpointed snapshot is the integrity anchor a
    restore verifies itself against when its replay passes the
    checkpoint's journal position.

    Serialization round-trips byte-exactly through the canonical
    {!Rrs_obs.Json} encoding: [of_json (to_json s) = Ok s'] with
    [equal s s'] — the QCheck property in [test/test_service.ml]. *)

type t = {
  version : int;
  ops : int;  (** journal ops applied when the snapshot was taken *)
  round : int;
  n : int;
  delta : int;
  delay : int array;
  reconfigurations : int;
  reconfig_cost : int;
  executed : int;
  dropped : int;
  pending_jobs : int;
  future_arrivals : int;
  cache : int array;
}

val version : int

val of_session : ops:int -> Rrs_core.Engine.Session.t -> t

val to_json : t -> Rrs_obs.Json.t
val of_json : Rrs_obs.Json.t -> (t, string) result
val to_line : t -> string
val of_line : string -> (t, string) result

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
