module Rng = Rrs_prng.Rng
module Metrics = Rrs_obs.Metrics

type verdict = {
  case : string;
  tier : int;
  contained : bool;
  diverged : bool;
  detail : string;
}

type summary = {
  cases : int;
  contained : int;
  uncontained : int;
  divergences : int;
  tiers : int array;
}

let summarize verdicts =
  let tiers = Array.make 4 0 in
  let cases = List.length verdicts in
  let contained = ref 0 and diverged = ref 0 in
  List.iter
    (fun v ->
      if v.tier >= 0 && v.tier < 4 then tiers.(v.tier) <- tiers.(v.tier) + 1;
      if v.contained then incr contained;
      if v.diverged then incr diverged)
    verdicts;
  {
    cases;
    contained = !contained;
    uncontained = cases - !contained;
    divergences = !diverged;
    tiers;
  }

(* ---- deterministic op sequences ----------------------------------- *)

let ops_of_seed ?(count = 48) ~colors seed =
  let rng = Rng.create ~seed in
  (* track the model round so every submit lands at or after it *)
  let round = ref 0 in
  List.init count (fun _ ->
      let roll = Rng.int rng 10 in
      if roll < 7 then
        Journal.Submit
          {
            round = !round + Rng.int rng 3;
            color = Rng.int rng colors;
            count = 1 + Rng.int rng 4;
          }
      else if roll < 9 then begin
        let k = 1 + Rng.int rng 4 in
        round := !round + k;
        Journal.Step k
      end
      else
        Journal.Reconfigure
          {
            delta = None;
            n = None;
            delay = [ (Rng.int rng colors, 2 + Rng.int rng 10) ];
          })

(* ---- ground truth ------------------------------------------------- *)

let ephemeral (config : Server.config) =
  {
    config with
    Server.checkpoint_dir = None;
    crash_after = None;
    metrics = None;
    heartbeat = None;
  }

let straight_line config ops =
  let h = Server.host (ephemeral config) in
  let s = Server.open_session h Server.default_session in
  List.iter
    (fun op ->
      match Server.apply_op s op with
      | Ok _ -> Server.commit h s op
      (* a refused op is never journaled by the real server either:
         the client gets an [err ...] line and nothing is committed *)
      | Error _ -> ())
    ops;
  let snapshot = Server.session_snapshot s in
  Server.abandon_session h s;
  snapshot

let config_of_header config (header : Journal.header) =
  {
    config with
    Server.policy = header.policy;
    n = header.n;
    delta = header.delta;
    delay = header.delay;
    mini_rounds = header.mini_rounds;
  }

(* ---- fixtures ----------------------------------------------------- *)

let build_fixture (config : Server.config) ops dir =
  let h =
    Server.host
      {
        config with
        Server.checkpoint_dir = Some dir;
        crash_after = None;
        metrics = None;
        heartbeat = None;
      }
  in
  let s = Server.open_session h Server.default_session in
  List.iter
    (fun op ->
      match Server.apply_op s op with
      | Ok _ -> Server.commit h s op
      | Error _ -> ())
    ops;
  (* end like a kill: no final checkpoint, journal tail past the
     rotated anchors *)
  Server.abandon_session h s

(* ---- mutators ----------------------------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

let truncate_file path k = Unix.truncate path k

let flip_byte path k =
  let contents = Bytes.of_string (read_file path) in
  Bytes.set contents k (Char.chr (Char.code (Bytes.get contents k) lxor 0x20));
  write_file path (Bytes.to_string contents)

let duplicate_line path i =
  let contents = read_file path in
  let lines = String.split_on_char '\n' contents in
  let out = Buffer.create (String.length contents + 128) in
  List.iteri
    (fun j line ->
      if j > 0 then Buffer.add_char out '\n';
      Buffer.add_string out line;
      if j = i - 1 then begin
        Buffer.add_char out '\n';
        Buffer.add_string out line
      end)
    lines;
  write_file path (Buffer.contents out)

(* ---- restore + classify ------------------------------------------- *)

let journal_file dir = Filename.concat dir "journal.jsonl"

let restore_case ~case (config : Server.config) dir =
  let metrics = Metrics.create () in
  let h =
    Server.host
      {
        config with
        Server.checkpoint_dir = Some dir;
        crash_after = None;
        metrics = Some metrics;
        heartbeat = None;
      }
  in
  let counter name = Metrics.value (Metrics.counter metrics name) in
  match Server.open_session h Server.default_session with
  | exception Server.Corrupt detail ->
      { case; tier = 3; contained = true; diverged = false; detail }
  | exception e ->
      {
        case;
        tier = 0;
        contained = false;
        diverged = false;
        detail = "uncontained: " ^ Printexc.to_string e;
      }
  | s ->
      let tier =
        if counter "serve_recovery_checkpoint_quarantined" > 0 then 2
        else if counter "serve_recovery_torn_tail" > 0 then 1
        else 0
      in
      let restored = Server.session_snapshot s in
      Server.abandon_session h s;
      (* the restore's own contract: its state must be the straight
         line of whatever ops the (possibly mutated) journal holds *)
      let diverged, detail =
        match Journal.load (journal_file dir) with
        | Error e ->
            (true, "journal unreadable after restore: "
                   ^ Journal.describe_load_error ~path:(journal_file dir) e)
        | Ok (header, ops, _tear) -> (
            match straight_line (config_of_header config header) ops with
            | expected ->
                if Snapshot.equal restored expected then (false, "")
                else
                  ( true,
                    Format.asprintf "restored %a@ expected %a" Snapshot.pp
                      restored Snapshot.pp expected )
            | exception e ->
                (true, "straight line refused: " ^ Printexc.to_string e))
      in
      { case; tier; contained = not diverged; diverged; detail }

(* ---- campaigns ---------------------------------------------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let mkdir_fresh dir =
  rm_rf dir;
  Unix.mkdir dir 0o755

let fixture_files = [ "journal.jsonl"; "checkpoint.json"; "checkpoint.json.prev" ]

let copy_fixture src dst =
  List.iter
    (fun f ->
      let from = Filename.concat src f in
      if Sys.file_exists from then
        write_file (Filename.concat dst f) (read_file from))
    fixture_files

let with_fixture config ~ops ~dir body =
  let fdir = Filename.concat dir "fixture" in
  mkdir_fresh fdir;
  build_fixture config ops fdir;
  let cdir = Filename.concat dir "case" in
  let case name mutate =
    mkdir_fresh cdir;
    copy_fixture fdir cdir;
    mutate cdir;
    let v = restore_case ~case:name config cdir in
    rm_rf cdir;
    v
  in
  let verdicts = body ~fdir ~case in
  rm_rf fdir;
  verdicts

let journal_truncate_campaign ?(stride = 1) config ~ops ~dir =
  with_fixture config ~ops ~dir @@ fun ~fdir ~case ->
  let len = String.length (read_file (journal_file fdir)) in
  let points = List.init ((len / stride) + 1) (fun i -> min (i * stride) len) in
  let points = List.sort_uniq compare points in
  List.map
    (fun k ->
      case
        (Printf.sprintf "journal-truncate@%d" k)
        (fun cdir -> truncate_file (journal_file cdir) k))
    points

let journal_flip_campaign ?(stride = 1) config ~ops ~dir =
  with_fixture config ~ops ~dir @@ fun ~fdir ~case ->
  let len = String.length (read_file (journal_file fdir)) in
  let points =
    List.filter (fun k -> k < len) (List.init (len / stride) (fun i -> i * stride))
  in
  List.map
    (fun k ->
      case
        (Printf.sprintf "journal-flip@%d" k)
        (fun cdir -> flip_byte (journal_file cdir) k))
    points

let journal_dup_campaign config ~ops ~dir =
  with_fixture config ~ops ~dir @@ fun ~fdir ~case ->
  let lines =
    In_channel.with_open_text (journal_file fdir) In_channel.input_lines
  in
  (* duplicate each op line (line 1 is the header; duplicating it is a
     flip-campaign-style header corruption, also covered here) *)
  List.mapi
    (fun i _ ->
      let line = i + 1 in
      case
        (Printf.sprintf "journal-dup@%d" line)
        (fun cdir -> duplicate_line (journal_file cdir) line))
    lines

let checkpoint_campaign ?(stride = 1) config ~ops ~dir =
  with_fixture config ~ops ~dir @@ fun ~fdir ~case ->
  let cpath = Filename.concat fdir "checkpoint.json" in
  let len = String.length (read_file cpath) in
  let truncs =
    List.sort_uniq compare
      (List.init ((len / stride) + 1) (fun i -> min (i * stride) len))
  in
  let flips =
    List.filter (fun k -> k < len)
      (List.init (len / stride) (fun i -> i * stride))
  in
  List.map
    (fun k ->
      case
        (Printf.sprintf "checkpoint-truncate@%d" k)
        (fun cdir ->
          truncate_file (Filename.concat cdir "checkpoint.json") k))
    truncs
  @ List.map
      (fun k ->
        case
          (Printf.sprintf "checkpoint-flip@%d" k)
          (fun cdir -> flip_byte (Filename.concat cdir "checkpoint.json") k))
      flips

let prefix_campaign ?(torn = false) (config : Server.config) ~ops ~dir =
  let header =
    {
      Journal.version = Journal.header_version;
      policy = config.policy;
      n = config.n;
      delta = config.delta;
      delay = config.delay;
      mini_rounds = config.mini_rounds;
    }
  in
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let cdir = Filename.concat dir "prefix" in
  let verdicts =
    List.init (n + 1) (fun k ->
        mkdir_fresh cdir;
        let buf = Buffer.create 4096 in
        Buffer.add_string buf (Journal.header_to_line header);
        Buffer.add_char buf '\n';
        for i = 0 to k - 1 do
          Buffer.add_string buf (Journal.op_to_line arr.(i));
          Buffer.add_char buf '\n'
        done;
        if torn && k < n then begin
          (* the interrupted (k+1)-th append: half its line, no newline *)
          let next = Journal.op_to_line arr.(k) in
          Buffer.add_string buf (String.sub next 0 (String.length next / 2))
        end;
        write_file (journal_file cdir) (Buffer.contents buf);
        let name =
          Printf.sprintf "kill-at-op-%d%s" k (if torn then "-torn" else "")
        in
        let v = restore_case ~case:name config cdir in
        let expected_tier = if torn && k < n then 1 else 0 in
        let v =
          if v.tier <> expected_tier && v.contained then
            {
              v with
              contained = false;
              detail =
                Printf.sprintf "expected tier %d, classified tier %d"
                  expected_tier v.tier;
            }
          else v
        in
        rm_rf cdir;
        v)
  in
  verdicts
