module Engine = Rrs_core.Engine
module Session = Engine.Session
module Instance = Rrs_core.Instance
module Supervisor = Rrs_robust.Supervisor
module Metrics = Rrs_obs.Metrics

let policies : (string * Rrs_core.Policy.factory) list =
  [
    ("dlru-edf", Rrs_core.Lru_edf.policy);
    ("dlru", Rrs_core.Delta_lru.policy);
    ("edf", Rrs_core.Edf_policy.policy);
    ("seq-edf", Rrs_core.Edf_policy.seq_policy);
    ("black", Rrs_core.Static_policy.black);
    ("greedy", Rrs_core.Naive_policies.greedy_backlog);
    ( "greedy-hysteresis",
      fun instance ~n ->
        Rrs_core.Naive_policies.greedy_backlog_hysteresis
          ~threshold:instance.Instance.delta instance ~n );
    ("round-robin", Rrs_core.Naive_policies.round_robin);
  ]

let factory_of_id id =
  match List.assoc_opt id policies with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown policy %S (serve accepts: %s)" id
           (String.concat ", " (List.map fst policies)))

type config = {
  policy : string;
  n : int;
  delta : int;
  delay : int array;
  mini_rounds : int;
  checkpoint_dir : string option;
  checkpoint_every : int;
  crash_after : int option;
  retries : int;
  heartbeat : Rrs_obs.Heartbeat.t option;
  metrics : Metrics.t option;
}

let default_config =
  {
    policy = "dlru-edf";
    n = 8;
    delta = 4;
    delay = Array.make 8 8;
    mini_rounds = 1;
    checkpoint_dir = None;
    checkpoint_every = 256;
    crash_after = None;
    retries = 2;
    heartbeat = None;
    metrics = None;
  }

(* Durable-state corruption: the journal or checkpoint cannot be
   trusted, so a restart must not silently continue.  Fatal under
   {!Supervisor.classify_default}. *)
exception Corrupt of string

let default_session = "default"

(* ---- applying ops to the session --------------------------------- *)

let apply_to session (op : Journal.op) : (string, string) result =
  match op with
  | Journal.Submit { round; color; count } -> (
      match Session.feed session ~round ~color ~count with
      | Ok () ->
          Ok
            (Printf.sprintf "submitted %d job%s of color %d at round %d" count
               (if count = 1 then "" else "s")
               color round)
      | Error e -> Error ("submit: " ^ Session.string_of_feed_error e))
  | Journal.Step k ->
      for _ = 1 to k do
        Session.step session
      done;
      Ok
        (Printf.sprintf "stepped %d round%s to round %d" k
           (if k = 1 then "" else "s")
           (Session.round session))
  | Journal.Reconfigure { delta; n; delay } -> (
      match Session.reconfigure session ?delta ?n ~delay () with
      | Ok () ->
          Ok
            (Printf.sprintf "reconfigured: n=%d delta=%d" (Session.n session)
               (Session.delta session))
      | Error e -> Error ("reconfigure: " ^ Session.string_of_reconfigure_error e))

(* ---- durable state ------------------------------------------------ *)

let journal_path dir = Filename.concat dir "journal.jsonl"
let checkpoint_path dir = Filename.concat dir "checkpoint.json"
let checkpoint_prev_path dir = checkpoint_path dir ^ ".prev"

let mkdir_p dir =
  let rec go dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
    then begin
      go (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* Quarantine a corrupt artifact to the first free <path>.corrupt-<n>.
   [`Rename] moves derived state (checkpoints) out of the restore path
   so the fallback tier engages on the next start too; [`Copy] keeps
   the source of truth (the journal) in place so restarts keep
   refusing until an operator intervenes. *)
let quarantine how path =
  if not (Sys.file_exists path) then None
  else begin
    let rec free n =
      let candidate = Printf.sprintf "%s.corrupt-%d" path n in
      if Sys.file_exists candidate then free (n + 1) else candidate
    in
    let target = free 1 in
    (match how with
    | `Rename -> Sys.rename path target
    | `Copy ->
        let contents = In_channel.with_open_bin path In_channel.input_all in
        Out_channel.with_open_bin target (fun oc ->
            Out_channel.output_string oc contents));
    Some target
  end

let write_checkpoint path snapshot =
  Rrs_obs.Sink.with_jsonl path (fun sink ->
      Rrs_obs.Sink.write_line sink (Snapshot.to_line snapshot))

let load_checkpoint path =
  if not (Sys.file_exists path) then Ok None
  else
    let line = In_channel.with_open_text path In_channel.input_line in
    match line with
    | None -> Error (Printf.sprintf "checkpoint %s: empty" path)
    | Some line -> (
        match Snapshot.of_line line with
        | Ok s -> Ok (Some s)
        | Error e -> Error (Printf.sprintf "checkpoint %s: %s" path e))

let session_of_header name (header : Journal.header) =
  match factory_of_id header.policy with
  | Error e -> raise (Corrupt e)
  | Ok factory ->
      let cfg = Engine.config ~n:header.n ~mini_rounds:header.mini_rounds () in
      let suffix = if name = default_session then "" else "-" ^ name in
      let session =
        Session.create
          ~name:("serve" ^ suffix ^ "-" ^ header.policy)
          cfg ~delta:header.delta ~delay:header.delay factory
      in
      (* replay must be silent: no ambient heartbeat picked up at
         create may observe replayed rounds *)
      Session.set_heartbeat session None;
      session

let header_of_config config =
  {
    Journal.version = Journal.header_version;
    policy = config.policy;
    n = config.n;
    delta = config.delta;
    delay = config.delay;
    mini_rounds = config.mini_rounds;
  }

(* ---- the session table -------------------------------------------- *)

type session = {
  name : string;
  policy_id : string;
  session : Session.t;
  reg : Metrics.t;
  mutable writer : Journal.writer option;
  dir : string option;
  restored : bool;
  notices : string list;
  mutable ops : int;
  mutable ckpt_ops : int;  (** ops at the last committed checkpoint *)
  mutable wedged : string option;
}

let session_name s = s.name
let session_ops s = s.ops
let session_restored s = s.restored
let session_notices s = s.notices
let session_wedged s = s.wedged
let session_snapshot s = Snapshot.of_session ~ops:s.ops s.session

let wedge s reason =
  if s.wedged = None then begin
    s.wedged <- Some reason;
    Metrics.inc (Metrics.counter s.reg "serve_wedged") 1;
    (* an abandoned command attempt may still be running against this
       session's in-memory state; make sure it can never reach the
       journal behind the server's back *)
    Option.iter Journal.close s.writer;
    s.writer <- None
  end

type host = {
  config : config;
  metrics : Metrics.t;
  mutable table : (string * session) list;  (** insertion order *)
  mutable fresh_ops : int;
      (** ops applied by THIS process (replayed ops excluded): the
          deterministic kill point counts real work *)
  mutable crash_flush : unit -> unit;
}

let host (config : config) =
  let metrics =
    match config.metrics with Some m -> m | None -> Metrics.create ()
  in
  { config; metrics; table = []; fresh_ops = 0; crash_flush = ignore }

let host_config h = h.config
let metrics h = h.metrics
let sessions h = List.map snd h.table
let find_session h name = List.assoc_opt name h.table
let count h name by = Metrics.inc (Metrics.counter h.metrics name) by

let session_dir h name =
  match h.config.checkpoint_dir with
  | None -> None
  | Some root ->
      if name = default_session then Some root
      else Some (Filename.concat (Filename.concat root "sessions") name)

(* Recovery instrumentation: every tier bumps its exact counter and,
   when a flight recorder with a dump directory is ambient, commits a
   black-box dump so the event window around the recovery survives. *)
let recovery_event h ~counter ~name ~reason =
  count h counter 1;
  match Rrs_obs.Flight_recorder.crash_scope () with
  | None -> ()
  | Some (recorder, dir) -> (
      try ignore (Rrs_obs.Flight_recorder.crash_dump recorder ~dir ~name ~reason)
      with _ -> ())

let refuse h ~name reason =
  recovery_event h ~counter:"serve_recovery_refused" ~name:("refuse-" ^ name)
    ~reason;
  raise (Corrupt reason)

(* Rebuild the session by replaying the journal; when the replay passes
   an anchor's journal position, the states must agree — a mismatch
   means the journal and that checkpoint tell different stories.  Each
   verdict carries the replay-side snapshot taken at the anchor's op
   count, so divergence diagnostics can show both witnesses. *)
let replay name header ops ~anchors =
  let session = session_of_header name header in
  let applied = ref 0 in
  let verdicts = ref [] in
  List.iter
    (fun op ->
      (match apply_to session op with
      | Ok _ -> ()
      | Error e ->
          raise
            (Corrupt
               (Printf.sprintf "journal replay: op %d refused: %s"
                  (!applied + 1) e)));
      incr applied;
      List.iter
        (fun (which, (ckpt : Snapshot.t)) ->
          if ckpt.ops = !applied then begin
            let now = Snapshot.of_session ~ops:!applied session in
            verdicts := (which, ckpt, now, Snapshot.equal now ckpt) :: !verdicts
          end)
        anchors)
    ops;
  (session, !applied, List.rev !verdicts)

let fresh_session h name ~dir ~writer =
  {
    name;
    policy_id = h.config.policy;
    session = session_of_header name (header_of_config h.config);
    reg = h.metrics;
    writer;
    dir;
    restored = false;
    notices = [];
    ops = 0;
    ckpt_ops = 0;
    wedged = None;
  }

(* The tiered restore ladder (doc/SERVICE.md, "Failure matrix"). *)
let restore h name ~dir jpath =
  match Journal.load jpath with
  | Error Journal.Missing ->
      fresh_session h name ~dir:(Some dir)
        ~writer:(Some (Journal.create jpath (header_of_config h.config)))
  | Error e ->
      (* tier 3: the source of truth is unreadable — keep a forensic
         copy aside, leave the original in place so restarts keep
         refusing, and stop with a precise diagnostic *)
      let diag = Journal.describe_load_error ~path:jpath e in
      let diag =
        match quarantine `Copy jpath with
        | Some target -> Printf.sprintf "%s (forensic copy: %s)" diag target
        | None -> diag
      in
      refuse h ~name diag
  | Ok (header, ops, tear) ->
      let notices = ref [] in
      let notice fmt = Printf.ksprintf (fun m -> notices := m :: !notices) fmt in
      (match tear with
      | None -> ()
      | Some t ->
          (* tier 1: the crash interrupted the final append; the op was
             never acked, so dropping it is the documented at-most-once
             window.  Cut the file at the tear too — otherwise the next
             append would glue its line onto the torn fragment and turn
             a benign tail into mid-body corruption *)
          let msg = Journal.describe_tear ~path:jpath t in
          recovery_event h ~counter:"serve_recovery_torn_tail"
            ~name:("torn-tail-" ^ name) ~reason:msg;
          (try Unix.truncate jpath t.Journal.offset
           with Unix.Unix_error _ -> ());
          notice "%s" msg);
      let cpath = checkpoint_path dir in
      let ppath = checkpoint_prev_path dir in
      (* tier 2: checkpoints are derived state — an unreadable one is
         quarantined out of the restore path and replay carries on *)
      let load_anchor which path =
        match load_checkpoint path with
        | Ok c -> Option.map (fun c -> (which, c)) c
        | Error e ->
            let target = quarantine `Rename path in
            let msg =
              Printf.sprintf "quarantined unreadable %s (%s)%s" which e
                (match target with Some t -> " to " ^ t | None -> "")
            in
            recovery_event h ~counter:"serve_recovery_checkpoint_quarantined"
              ~name:("checkpoint-" ^ name) ~reason:msg;
            notice "%s" msg;
            None
      in
      let cur = load_anchor "checkpoint" cpath in
      let prev = load_anchor "previous checkpoint" ppath in
      let anchors = List.filter_map Fun.id [ cur; prev ] in
      List.iter
        (fun (which, (c : Snapshot.t)) ->
          if c.ops > List.length ops then
            refuse h ~name
              (Printf.sprintf
                 "journal %s holds %d op%s but the %s was committed at op %d: \
                  acked ops are missing from the journal"
                 jpath (List.length ops)
                 (if List.length ops = 1 then "" else "s")
                 which c.ops))
        anchors;
      let session, applied, verdicts = replay name header ops ~anchors in
      let agreed which =
        List.exists (fun (w, _, _, ok) -> w = which && ok) verdicts
      in
      let diverged which =
        List.find_opt (fun (w, _, _, ok) -> w = which && not ok) verdicts
      in
      (match diverged "checkpoint" with
      | Some (_, ckpt, now, _) ->
          if agreed "previous checkpoint" then begin
            (* two witnesses: the replay and the previous checkpoint
               agree, so the current checkpoint is the corrupt artifact *)
            let target = quarantine `Rename cpath in
            let msg =
              Printf.sprintf
                "quarantined checkpoint diverging from journal replay at op \
                 %d%s (previous checkpoint agrees with the replay)"
                ckpt.Snapshot.ops
                (match target with Some t -> " to " ^ t | None -> "")
            in
            recovery_event h ~counter:"serve_recovery_checkpoint_quarantined"
              ~name:("checkpoint-" ^ name) ~reason:msg;
            notice "%s" msg
          end
          else
            refuse h ~name
              (Format.asprintf
                 "checkpoint diverges from journal replay at op %d:@ \
                  checkpoint %a@ replay %a"
                 ckpt.Snapshot.ops Snapshot.pp ckpt Snapshot.pp now)
      | None -> (
          match diverged "previous checkpoint" with
          | Some (_, ckpt, _, _) ->
              (* the dispensable anchor lies but the current one agrees
                 (or is absent): drop the stale witness, keep serving *)
              let target = quarantine `Rename ppath in
              let msg =
                Printf.sprintf
                  "quarantined previous checkpoint diverging from journal \
                   replay at op %d%s"
                  ckpt.Snapshot.ops
                  (match target with Some t -> " to " ^ t | None -> "")
              in
              recovery_event h
                ~counter:"serve_recovery_checkpoint_quarantined"
                ~name:("checkpoint-" ^ name) ~reason:msg;
              notice "%s" msg
          | None -> ()));
      count h "serve_restores" 1;
      {
        name;
        policy_id = header.Journal.policy;
        session;
        reg = h.metrics;
        writer = Some (Journal.append_to jpath);
        dir = Some dir;
        restored = true;
        notices = List.rev !notices;
        ops = applied;
        ckpt_ops = (match cur with Some (_, c) -> c.Snapshot.ops | None -> 0);
        wedged = None;
      }

let open_session h name =
  if not (Protocol.valid_session_name name) then
    invalid_arg (Printf.sprintf "invalid session name %S" name);
  (match find_session h name with
  | Some s when s.wedged = None ->
      invalid_arg (Printf.sprintf "session %S already open" name)
  | Some s ->
      (* reopening a wedged session: the in-memory state is untrusted,
         discard it and restore from the journal *)
      Option.iter Journal.close s.writer;
      s.writer <- None;
      h.table <- List.remove_assoc name h.table;
      count h "serve_session_restarts" 1
  | None -> ());
  let s =
    match session_dir h name with
    | None -> fresh_session h name ~dir:None ~writer:None
    | Some dir ->
        mkdir_p dir;
        let jpath = journal_path dir in
        if Sys.file_exists jpath then restore h name ~dir jpath
        else
          fresh_session h name ~dir:(Some dir)
            ~writer:(Some (Journal.create jpath (header_of_config h.config)))
  in
  Session.set_heartbeat s.session h.config.heartbeat;
  h.table <- h.table @ [ (name, s) ];
  s

(* ---- checkpoints and commits -------------------------------------- *)

let checkpoint_session _h s =
  match s.dir with
  | None -> None
  | Some dir ->
      let path = checkpoint_path dir in
      (* rotate: the previous checkpoint is the arbitration witness of
         the divergence tier *)
      if Sys.file_exists path then Sys.rename path (checkpoint_prev_path dir);
      let snapshot = Snapshot.of_session ~ops:s.ops s.session in
      write_checkpoint path snapshot;
      s.ckpt_ops <- s.ops;
      Some snapshot

let apply_op s op = apply_to s.session op

let commit h s op =
  Option.iter (fun w -> Journal.append w op) s.writer;
  s.ops <- s.ops + 1;
  h.fresh_ops <- h.fresh_ops + 1;
  count h "serve_ops" 1;
  if
    h.config.checkpoint_every > 0
    && s.ops - s.ckpt_ops >= h.config.checkpoint_every
  then ignore (checkpoint_session h s);
  match h.config.crash_after with
  | Some k when h.fresh_ops >= k ->
      (* simulate a hard kill: no checkpoint, no finish, no ack — only
         the journal survives *)
      h.crash_flush ();
      Stdlib.exit 70
  | _ -> ()

let abandon_session h s =
  Option.iter Journal.close s.writer;
  s.writer <- None;
  h.table <- List.remove_assoc s.name h.table

let close_session h s =
  ignore (checkpoint_session h s);
  Option.iter Journal.close s.writer;
  s.writer <- None;
  h.table <- List.remove_assoc s.name h.table;
  Session.finish s.session

(* ---- command execution -------------------------------------------- *)

let greeting s =
  List.map (fun w -> "ok warning: " ^ w) s.notices
  @
  (* the default session keeps the exact single-session format the CI
     restart test and existing clients grep for; named sessions carry
     a [name=] field *)
  let name_part =
    if s.name = default_session then "" else Printf.sprintf " name=%s" s.name
  in
  if s.restored then
    [
      Printf.sprintf "ok restored%s round=%d ops=%d pending=%d" name_part
        (Session.round s.session) s.ops
        (Session.pending_jobs s.session);
    ]
  else
    [
      Printf.sprintf "ok session%s policy=%s n=%d delta=%d colors=%d" name_part
        s.policy_id (Session.n s.session) (Session.delta s.session)
        (Session.num_colors s.session);
    ]

type outcome =
  | Reply of string list
  | Switch of session * string list
  | Bye of string list
  | Stop of string list

let session_line s =
  Printf.sprintf "ok %s round=%d ops=%d pending=%d%s" s.name
    (Session.round s.session) s.ops
    (Session.pending_jobs s.session)
    (match s.wedged with None -> "" | Some _ -> " wedged")

let exec ?(apply = apply_op) h (current : session) (cmd : Protocol.command) :
    outcome =
  let mutate op =
    match current.wedged with
    | Some reason ->
        Reply
          [
            Printf.sprintf
              "err session %s wedged (%s); `open %s` to recover it from its \
               journal"
              current.name reason current.name;
          ]
    | None -> (
        match apply current op with
        | Ok msg ->
            commit h current op;
            Reply [ "ok " ^ msg ]
        | Error e -> Reply [ "err " ^ e ])
  in
  match cmd with
  | Protocol.Help ->
      Reply
        (String.split_on_char '\n' Protocol.grammar
        |> List.map (fun l -> "ok " ^ l))
  | Protocol.State -> Reply [ Snapshot.to_line (session_snapshot current) ]
  | Protocol.Checkpoint -> (
      match checkpoint_session h current with
      | None ->
          Reply
            [ "err checkpoint: ephemeral session (start with --checkpoint-dir)" ]
      | Some snapshot ->
          Reply
            [
              Printf.sprintf "ok checkpoint round=%d ops=%d"
                snapshot.Snapshot.round snapshot.Snapshot.ops;
            ])
  | Protocol.Submit { round; color; count } ->
      let round = Option.value ~default:(Session.round current.session) round in
      mutate (Journal.Submit { round; color; count })
  | Protocol.Step k -> mutate (Journal.Step k)
  | Protocol.Reconfigure { delta; n; delay } ->
      mutate (Journal.Reconfigure { delta; n; delay })
  | Protocol.Open name -> (
      match find_session h name with
      | Some s when s.wedged = None ->
          if s.name = current.name then
            Reply [ Printf.sprintf "ok attached %s (already current)" name ]
          else Switch (s, [ Printf.sprintf "ok attached %s (already open)" name ])
      | _ -> (
          match open_session h name with
          | s -> Switch (s, greeting s)
          | exception Corrupt diag -> Reply [ "err open: " ^ diag ]
          | exception Invalid_argument msg -> Reply [ "err open: " ^ msg ]))
  | Protocol.Attach name -> (
      match find_session h name with
      | Some s -> Switch (s, [ "ok attached " ^ name ])
      | None ->
          Reply
            [
              Printf.sprintf "err attach: no open session %S (try: open %s)"
                name name;
            ])
  | Protocol.Sessions ->
      Reply
        (Printf.sprintf "ok sessions %d" (List.length h.table)
        :: List.map (fun (_, s) -> session_line s) h.table)
  | Protocol.Shutdown -> Stop [ "ok shutting down" ]
  | Protocol.Quit -> Bye []

(* ---- the pipe driver ---------------------------------------------- *)

exception Shutdown_signal of int

let signal_name s =
  if s = Sys.sigterm then "TERM"
  else if s = Sys.sigint then "INT"
  else string_of_int s

let serve config ic oc =
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let config_error msg =
    respond ("err " ^ msg);
    2
  in
  match factory_of_id config.policy with
  | Error e -> config_error e
  | Ok _ -> (
      match
        (* surface bad geometry as a config error, not a raise *)
        if Array.length config.delay > Rrs_core.Packed.max_colors then
          invalid_arg
            (Printf.sprintf "%d colors exceed the packed color field (max %d)"
               (Array.length config.delay) Rrs_core.Packed.max_colors)
        else
          ignore
            (Instance.create ~delta:config.delta
               ~delay:(Array.copy config.delay) ~arrivals:[] ())
      with
      | exception Invalid_argument msg -> config_error msg
      | () ->
          if config.checkpoint_every < 0 then
            config_error "checkpoint-every must be non-negative"
          else if config.n < 1 then config_error "n must be at least 1"
          else begin
            let h = host config in
            h.crash_flush <- (fun () -> Out_channel.flush oc);
            (* graceful signal handling: a signal that lands while a
               command is in flight is deferred until the command's
               apply + journal + ack sequence finishes (a SIGTERM
               mid-batch must not widen the at-most-once window into a
               silent replay gap); a signal that lands while blocked on
               input raises out of the read so the drain runs now *)
            let in_command = ref false in
            let pending_signal = ref (-1) in
            let handle s =
              if !in_command then pending_signal := s
              else raise (Shutdown_signal s)
            in
            let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle handle) in
            let old_int = Sys.signal Sys.sigint (Sys.Signal_handle handle) in
            let restore_signals () =
              Sys.set_signal Sys.sigterm old_term;
              Sys.set_signal Sys.sigint old_int
            in
            Fun.protect ~finally:restore_signals @@ fun () ->
            let attempt () =
              (* on a supervised restart the previous attempt's
                 sessions are untrusted (they crashed mid-command):
                 drop them without checkpointing so every one is
                 restored from its journal *)
              List.iter
                (fun s ->
                  Option.iter Journal.close s.writer;
                  s.writer <- None)
                (sessions h);
              h.table <- [];
              let first = open_session h default_session in
              List.iter respond (greeting first);
              let current = ref first in
              let graceful ?signal () =
                (match signal with
                | Some s ->
                    respond
                      (Printf.sprintf "ok draining signal=%s" (signal_name s))
                | None -> ());
                let result = ref None in
                List.iter
                  (fun s ->
                    let r = close_session h s in
                    if s.name = !current.name then result := Some r)
                  (sessions h);
                (match !result with
                | Some result ->
                    respond
                      (Printf.sprintf
                         "ok bye round=%d executed=%d dropped=%d \
                          recolorings=%d cost=%d"
                         result.Engine.rounds_simulated result.Engine.executed
                         result.Engine.dropped result.Engine.reconfigurations
                         (Rrs_core.Cost.total result.Engine.cost))
                | None -> respond "ok bye");
                0
              in
              let rec loop () =
                if !pending_signal >= 0 then begin
                  let s = !pending_signal in
                  pending_signal := -1;
                  graceful ~signal:s ()
                end
                else
                  match In_channel.input_line ic with
                  | None -> graceful ()
                  | Some line -> (
                      match Protocol.parse line with
                      | Ok None -> loop ()
                      | Error e ->
                          respond ("err " ^ e);
                          loop ()
                      | Ok (Some cmd) -> (
                          Rrs_fault.probe "serve.command";
                          in_command := true;
                          let outcome =
                            Fun.protect
                              ~finally:(fun () -> in_command := false)
                              (fun () -> exec h !current cmd)
                          in
                          match outcome with
                          | Reply lines ->
                              List.iter respond lines;
                              loop ()
                          | Switch (s, lines) ->
                              current := s;
                              List.iter respond lines;
                              loop ()
                          | Stop lines ->
                              List.iter respond lines;
                              graceful ()
                          | Bye _ -> graceful ()))
              in
              try loop () with Shutdown_signal s -> graceful ~signal:s ()
            in
            let policy = { Supervisor.default with retries = config.retries } in
            match Supervisor.run ~policy ~name:"serve" attempt with
            | Ok code -> code
            | Error f ->
                respond (Format.asprintf "err fatal: %a" Supervisor.pp_failure f);
                1
          end)
