module Engine = Rrs_core.Engine
module Session = Engine.Session
module Instance = Rrs_core.Instance
module Supervisor = Rrs_robust.Supervisor

let policies : (string * Rrs_core.Policy.factory) list =
  [
    ("dlru-edf", Rrs_core.Lru_edf.policy);
    ("dlru", Rrs_core.Delta_lru.policy);
    ("edf", Rrs_core.Edf_policy.policy);
    ("seq-edf", Rrs_core.Edf_policy.seq_policy);
    ("black", Rrs_core.Static_policy.black);
    ("greedy", Rrs_core.Naive_policies.greedy_backlog);
    ( "greedy-hysteresis",
      fun instance ~n ->
        Rrs_core.Naive_policies.greedy_backlog_hysteresis
          ~threshold:instance.Instance.delta instance ~n );
    ("round-robin", Rrs_core.Naive_policies.round_robin);
  ]

let factory_of_id id =
  match List.assoc_opt id policies with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown policy %S (serve accepts: %s)" id
           (String.concat ", " (List.map fst policies)))

type config = {
  policy : string;
  n : int;
  delta : int;
  delay : int array;
  mini_rounds : int;
  checkpoint_dir : string option;
  checkpoint_every : int;
  crash_after : int option;
  retries : int;
  heartbeat : Rrs_obs.Heartbeat.t option;
}

let default_config =
  {
    policy = "dlru-edf";
    n = 8;
    delta = 4;
    delay = Array.make 8 8;
    mini_rounds = 1;
    checkpoint_dir = None;
    checkpoint_every = 256;
    crash_after = None;
    retries = 2;
    heartbeat = None;
  }

(* Durable-state corruption: the journal or checkpoint cannot be
   trusted, so a restart must not silently continue.  Fatal under
   {!Supervisor.classify_default}. *)
exception Corrupt of string

(* ---- applying ops to the session --------------------------------- *)

let apply session (op : Journal.op) : (string, string) result =
  match op with
  | Journal.Submit { round; color; count } -> (
      match Session.feed session ~round ~color ~count with
      | Ok () ->
          Ok
            (Printf.sprintf "submitted %d job%s of color %d at round %d" count
               (if count = 1 then "" else "s")
               color round)
      | Error e -> Error ("submit: " ^ Session.string_of_feed_error e))
  | Journal.Step k ->
      for _ = 1 to k do
        Session.step session
      done;
      Ok
        (Printf.sprintf "stepped %d round%s to round %d" k
           (if k = 1 then "" else "s")
           (Session.round session))
  | Journal.Reconfigure { delta; n; delay } -> (
      match Session.reconfigure session ?delta ?n ~delay () with
      | Ok () ->
          Ok
            (Printf.sprintf "reconfigured: n=%d delta=%d" (Session.n session)
               (Session.delta session))
      | Error e -> Error ("reconfigure: " ^ Session.string_of_reconfigure_error e))

(* ---- durable state ------------------------------------------------ *)

let journal_path dir = Filename.concat dir "journal.jsonl"
let checkpoint_path dir = Filename.concat dir "checkpoint.json"

let write_checkpoint path snapshot =
  Rrs_obs.Sink.with_jsonl path (fun sink ->
      Rrs_obs.Sink.write_line sink (Snapshot.to_line snapshot))

let load_checkpoint path =
  if not (Sys.file_exists path) then Ok None
  else
    let line = In_channel.with_open_text path In_channel.input_line in
    match line with
    | None -> Error (Printf.sprintf "checkpoint %s: empty" path)
    | Some line -> (
        match Snapshot.of_line line with
        | Ok s -> Ok (Some s)
        | Error e -> Error (Printf.sprintf "checkpoint %s: %s" path e))

let session_of_header (header : Journal.header) =
  match factory_of_id header.policy with
  | Error e -> raise (Corrupt e)
  | Ok factory ->
      let cfg =
        Engine.config ~n:header.n ~mini_rounds:header.mini_rounds ()
      in
      let session =
        Session.create
          ~name:("serve-" ^ header.policy)
          cfg ~delta:header.delta ~delay:header.delay factory
      in
      (* replay must be silent: no ambient heartbeat picked up at
         create may observe replayed rounds *)
      Session.set_heartbeat session None;
      session

(* Rebuild the session by replaying the journal; when the replay passes
   the checkpoint's journal position, the states must agree — a
   mismatch means the journal and checkpoint tell different stories and
   the durable state cannot be trusted. *)
let replay header ops ~checkpoint =
  let session = session_of_header header in
  let applied = ref 0 in
  List.iter
    (fun op ->
      (match apply session op with
      | Ok _ -> ()
      | Error e ->
          raise
            (Corrupt
               (Printf.sprintf "journal replay: op %d refused: %s"
                  (!applied + 1) e)));
      incr applied;
      match checkpoint with
      | Some (ckpt : Snapshot.t) when ckpt.ops = !applied ->
          let now = Snapshot.of_session ~ops:!applied session in
          if not (Snapshot.equal now ckpt) then
            raise
              (Corrupt
                 (Format.asprintf
                    "checkpoint diverges from journal replay at op %d:@ \
                     checkpoint %a@ replay %a"
                    !applied Snapshot.pp ckpt Snapshot.pp now))
      | _ -> ())
    ops;
  (session, !applied)

type live = {
  session : Session.t;
  writer : Journal.writer option;
  ckpt_path : string option;
  restored : bool;
  warning : string option;
  mutable ops : int;
  mutable ckpt_ops : int;  (** ops at the last committed checkpoint *)
}

let restore_or_init config =
  match config.checkpoint_dir with
  | None ->
      let header =
        {
          Journal.version = Journal.header_version;
          policy = config.policy;
          n = config.n;
          delta = config.delta;
          delay = config.delay;
          mini_rounds = config.mini_rounds;
        }
      in
      let session = session_of_header header in
      {
        session;
        writer = None;
        ckpt_path = None;
        restored = false;
        warning = None;
        ops = 0;
        ckpt_ops = 0;
      }
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let jpath = journal_path dir in
      let cpath = checkpoint_path dir in
      if Sys.file_exists jpath then begin
        match Journal.load jpath with
        | Error e -> raise (Corrupt e)
        | Ok (header, ops, warning) ->
            let checkpoint =
              match load_checkpoint cpath with
              | Ok c -> c
              | Error e -> raise (Corrupt e)
            in
            let session, applied = replay header ops ~checkpoint in
            {
              session;
              writer = Some (Journal.append_to jpath);
              ckpt_path = Some cpath;
              restored = true;
              warning;
              ops = applied;
              ckpt_ops =
                (match checkpoint with Some c -> c.Snapshot.ops | None -> 0);
            }
      end
      else begin
        let header =
          {
            Journal.version = Journal.header_version;
            policy = config.policy;
            n = config.n;
            delta = config.delta;
            delay = config.delay;
            mini_rounds = config.mini_rounds;
          }
        in
        let session = session_of_header header in
        {
          session;
          writer = Some (Journal.create jpath header);
          ckpt_path = Some cpath;
          restored = false;
          warning = None;
          ops = 0;
          ckpt_ops = 0;
        }
      end

let checkpoint_now live =
  match live.ckpt_path with
  | None -> None
  | Some path ->
      let snapshot = Snapshot.of_session ~ops:live.ops live.session in
      write_checkpoint path snapshot;
      live.ckpt_ops <- live.ops;
      Some snapshot

(* ---- the command loop --------------------------------------------- *)

let serve config ic oc =
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let config_error msg =
    respond ("err " ^ msg);
    2
  in
  match factory_of_id config.policy with
  | Error e -> config_error e
  | Ok _ -> (
      match
        (* surface bad geometry as a config error, not a raise *)
        if Array.length config.delay > Rrs_core.Packed.max_colors then
          invalid_arg
            (Printf.sprintf "%d colors exceed the packed color field (max %d)"
               (Array.length config.delay) Rrs_core.Packed.max_colors)
        else
          ignore
            (Instance.create ~delta:config.delta
               ~delay:(Array.copy config.delay) ~arrivals:[] ())
      with
      | exception Invalid_argument msg -> config_error msg
      | () ->
          if config.checkpoint_every < 0 then
            config_error "checkpoint-every must be non-negative"
          else if config.n < 1 then config_error "n must be at least 1"
          else begin
            (* ops applied by THIS process (replayed ops excluded):
               the deterministic kill point counts real work *)
            let fresh_ops = ref 0 in
            let attempt () =
              let live = restore_or_init config in
              Session.set_heartbeat live.session config.heartbeat;
              (match live.warning with
              | Some w -> respond ("ok warning: " ^ w)
              | None -> ());
              if live.restored then
                respond
                  (Printf.sprintf "ok restored round=%d ops=%d pending=%d"
                     (Session.round live.session)
                     live.ops
                     (Session.pending_jobs live.session))
              else
                respond
                  (Printf.sprintf
                     "ok session policy=%s n=%d delta=%d colors=%d"
                     config.policy (Session.n live.session)
                     (Session.delta live.session)
                     (Session.num_colors live.session));
              let graceful () =
                ignore (checkpoint_now live);
                Option.iter Journal.close live.writer;
                let result = Session.finish live.session in
                respond
                  (Printf.sprintf
                     "ok bye round=%d executed=%d dropped=%d recolorings=%d \
                      cost=%d"
                     result.Engine.rounds_simulated result.Engine.executed
                     result.Engine.dropped result.Engine.reconfigurations
                     (Rrs_core.Cost.total result.Engine.cost));
                0
              in
              let committed op =
                Option.iter (fun w -> Journal.append w op) live.writer;
                live.ops <- live.ops + 1;
                incr fresh_ops;
                if
                  config.checkpoint_every > 0
                  && live.ops - live.ckpt_ops >= config.checkpoint_every
                then ignore (checkpoint_now live);
                match config.crash_after with
                | Some k when !fresh_ops >= k ->
                    (* simulate a hard kill: no checkpoint, no finish,
                       no ack — only the journal survives *)
                    Out_channel.flush oc;
                    Stdlib.exit 70
                | _ -> ()
              in
              let rec loop () =
                match In_channel.input_line ic with
                | None -> graceful ()
                | Some line -> (
                    match Protocol.parse line with
                    | Ok None -> loop ()
                    | Error e ->
                        respond ("err " ^ e);
                        loop ()
                    | Ok (Some cmd) -> (
                        Rrs_fault.probe "serve.command";
                        match cmd with
                        | Protocol.Help ->
                            String.split_on_char '\n' Protocol.grammar
                            |> List.iter (fun l -> respond ("ok " ^ l));
                            loop ()
                        | Protocol.State ->
                            respond
                              (Snapshot.to_line
                                 (Snapshot.of_session ~ops:live.ops
                                    live.session));
                            loop ()
                        | Protocol.Checkpoint -> (
                            match checkpoint_now live with
                            | None ->
                                respond
                                  "err checkpoint: ephemeral session (start \
                                   with --checkpoint-dir)";
                                loop ()
                            | Some snapshot ->
                                respond
                                  (Printf.sprintf "ok checkpoint round=%d ops=%d"
                                     snapshot.Snapshot.round
                                     snapshot.Snapshot.ops);
                                loop ())
                        | Protocol.Quit -> graceful ()
                        | Protocol.Submit { round; color; count } -> (
                            let round =
                              Option.value
                                ~default:(Session.round live.session)
                                round
                            in
                            let op = Journal.Submit { round; color; count } in
                            match apply live.session op with
                            | Ok msg ->
                                committed op;
                                respond ("ok " ^ msg);
                                loop ()
                            | Error e ->
                                respond ("err " ^ e);
                                loop ())
                        | Protocol.Step k -> (
                            let op = Journal.Step k in
                            match apply live.session op with
                            | Ok msg ->
                                committed op;
                                respond ("ok " ^ msg);
                                loop ()
                            | Error e ->
                                respond ("err " ^ e);
                                loop ())
                        | Protocol.Reconfigure { delta; n; delay } -> (
                            let op = Journal.Reconfigure { delta; n; delay } in
                            match apply live.session op with
                            | Ok msg ->
                                committed op;
                                respond ("ok " ^ msg);
                                loop ()
                            | Error e ->
                                respond ("err " ^ e);
                                loop ())))
              in
              loop ()
            in
            let policy = { Supervisor.default with retries = config.retries } in
            match Supervisor.run ~policy ~name:"serve" attempt with
            | Ok code -> code
            | Error f ->
                respond
                  (Format.asprintf "err fatal: %a" Supervisor.pp_failure f);
                1
          end)
