module Supervisor = Rrs_robust.Supervisor
module Metrics = Rrs_obs.Metrics

type address = Unix_socket of string | Tcp of string * int

let pp_address ppf = function
  | Unix_socket path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

type limits = {
  max_conns : int;
  queue_limit : int;
  shed_threshold : int;
  command_deadline : float option;
  write_buffer_limit : int;
  write_stall_timeout : float;
  max_line : int;
  retry_after : float;
}

let default_limits =
  {
    max_conns = 64;
    queue_limit = 64;
    shed_threshold = 256;
    command_deadline = None;
    write_buffer_limit = 1 lsl 20;
    write_stall_timeout = 5.0;
    max_line = 1 lsl 16;
    retry_after = 0.05;
  }

type stats = {
  conns_accepted : int;
  conns_dropped : int;
  commands : int;
  busy : int;
  shed : int;
  slow_drops : int;
  wedges : int;
}

(* One client connection.  Outbound bytes accumulate in [out] and are
   written from [out_pos] whenever select says the peer can take them;
   the buffer is the backpressure boundary the slow-client policy
   measures. *)
type conn = {
  fd : Unix.file_descr;
  peer : string;
  mutable pending : string;  (** unread partial input line *)
  cmds : Protocol.command Queue.t;
  out : Buffer.t;
  mutable out_pos : int;
  mutable sname : string;  (** current session, resolved by name *)
  mutable closing : bool;  (** close once [out] is drained *)
  mutable last_progress : float;  (** last instant the peer took bytes *)
}

let out_pending c = Buffer.length c.out - c.out_pos

let validate (config : Server.config) =
  match Server.factory_of_id config.policy with
  | Error e -> Error e
  | Ok _ ->
      if Array.length config.delay > Rrs_core.Packed.max_colors then
        Error
          (Printf.sprintf "%d colors exceed the packed color field (max %d)"
             (Array.length config.delay) Rrs_core.Packed.max_colors)
      else if config.checkpoint_every < 0 then
        Error "checkpoint-every must be non-negative"
      else if config.n < 1 then Error "n must be at least 1"
      else (
        match
          Rrs_core.Instance.create ~delta:config.delta
            ~delay:(Array.copy config.delay) ~arrivals:[] ()
        with
        | _ -> Ok ()
        | exception Invalid_argument msg -> Error msg)

let bind_listener address =
  match address with
  | Unix_socket path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (fd, Unix_socket path)
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Tcp (host, p)
        | _ -> Tcp (host, port)
      in
      (fd, bound)

let run ?(limits = default_limits) ?(stop = fun () -> false) ?on_ready
    (config : Server.config) address =
  match validate config with
  | Error e -> Error e
  | Ok () -> (
      match bind_listener address with
      | exception Unix.Unix_error (err, fn, arg) ->
          Error
            (Printf.sprintf "bind %s: %s(%s): %s"
               (Format.asprintf "%a" pp_address address)
               fn arg (Unix.error_message err))
      | exception e ->
          Error
            (Printf.sprintf "bind %s: %s"
               (Format.asprintf "%a" pp_address address)
               (Printexc.to_string e))
      | listener, bound ->
          (* a peer that closed mid-reply must be an EPIPE we contain,
             not a process-killing SIGPIPE *)
          let old_sigpipe =
            try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
            with Invalid_argument _ -> None
          in
          let restore_sigpipe () =
            match old_sigpipe with
            | Some d -> ( try Sys.set_signal Sys.sigpipe d with _ -> ())
            | None -> ()
          in
          Fun.protect ~finally:restore_sigpipe @@ fun () ->
          let h = Server.host config in
          let m = Server.metrics h in
          let count name by = Metrics.inc (Metrics.counter m name) by in
          let counter_value name = Metrics.value (Metrics.counter m name) in
          Option.iter (fun f -> f bound) on_ready;
          let conns = ref [] in
          let shutting = ref false in
          let now () = Unix.gettimeofday () in
          let append c line =
            Buffer.add_string c.out line;
            Buffer.add_char c.out '\n'
          in
          let drop ?(slow = false) c =
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            conns := List.filter (fun c' -> c' != c) !conns;
            count "serve_conns_dropped" 1;
            if slow then count "serve_slow_client_drops" 1
          in
          (* ---- session routing ------------------------------------ *)
          let resolve c =
            match Server.find_session h c.sname with
            | Some s when Server.session_wedged s = None -> Ok s
            | Some _ -> (
                (* wedged by an earlier deadline or fault: the next
                   command restores it from its journal *)
                match Server.open_session h c.sname with
                | s -> Ok s
                | exception Server.Corrupt d -> Error d
                | exception Invalid_argument d -> Error d)
            | None -> (
                match Server.open_session h c.sname with
                | s -> Ok s
                | exception Server.Corrupt d -> Error d
                | exception Invalid_argument d -> Error d)
          in
          let session_depth sname =
            List.fold_left
              (fun acc c ->
                if c.sname = sname then acc + Queue.length c.cmds else acc)
              0 !conns
          in
          let total_queued () =
            List.fold_left (fun acc c -> acc + Queue.length c.cmds) 0 !conns
          in
          (* ---- per-command deadline ------------------------------- *)
          let deadline_apply s op =
            match limits.command_deadline with
            | None -> Server.apply_op s op
            | Some t -> (
                let policy =
                  { Supervisor.default with timeout = Some t; retries = 0 }
                in
                match
                  Supervisor.run ~policy ~name:"transport.apply" (fun () ->
                      Server.apply_op s op)
                with
                | Ok r -> r
                | Error f ->
                    (* the abandoned attempt may still be mutating the
                       in-memory session: wedge it (journal writer
                       closed) so nothing it does can be acked or
                       journaled *)
                    let reason =
                      Format.asprintf "%a" Supervisor.pp_failure f
                    in
                    Server.wedge s reason;
                    count "serve_deadline_wedges" 1;
                    Error
                      (Printf.sprintf
                         "deadline: %s; session %s wedged, reopen restores \
                          it from its journal"
                         reason (Server.session_name s)))
          in
          let shed_guard kind =
            let depth = total_queued () in
            if depth > limits.shed_threshold then begin
              count "serve_shed" 1;
              Some
                (Printf.sprintf
                   "busy shed %s queued=%d retry-after=%g" kind depth
                   limits.retry_after)
            end
            else None
          in
          let execute c cmd =
            count "serve_commands" 1;
            match
              (match cmd with
              | Protocol.State | Protocol.Sessions | Protocol.Help -> (
                  (* shed read-only work before it starves mutations *)
                  match shed_guard (Protocol.command_to_string cmd) with
                  | Some busy -> Server.Reply [ busy ]
                  | None -> (
                      match resolve c with
                      | Error d -> Server.Reply [ "err " ^ d ]
                      | Ok s ->
                          Rrs_fault.probe "serve.command";
                          Server.exec ~apply:deadline_apply h s cmd))
              | _ -> (
                  match resolve c with
                  | Error d -> Server.Reply [ "err " ^ d ]
                  | Ok s ->
                      Rrs_fault.probe "serve.command";
                      Server.exec ~apply:deadline_apply h s cmd))
            with
            | Server.Reply lines -> List.iter (append c) lines
            | Server.Switch (s, lines) ->
                c.sname <- Server.session_name s;
                List.iter (append c) lines
            | Server.Stop lines ->
                List.iter (append c) lines;
                shutting := true
            | Server.Bye lines ->
                List.iter (append c) lines;
                append c "ok bye";
                c.closing <- true
            | exception Rrs_fault.Injected { point; hit; transient } ->
                (* the probe fires before any mutation: contained to an
                   error reply, the loop and the session live on *)
                count "serve_command_faults" 1;
                append c
                  (Printf.sprintf
                     "err transient fault injected at %s (hit %d, %s)" point
                     hit
                     (if transient then "transient" else "fatal"))
            | exception e -> (
                (* unknown failure mid-command: the session may be
                   half-mutated, treat it like a deadline expiry *)
                count "serve_command_faults" 1;
                append c ("err " ^ Printexc.to_string e);
                match Server.find_session h c.sname with
                | Some s -> Server.wedge s (Printexc.to_string e)
                | None -> ())
          in
          (* ---- input parsing -------------------------------------- *)
          let process_line c line =
            match Protocol.parse line with
            | Ok None -> ()
            | Error e -> append c ("err " ^ e)
            | Ok (Some cmd) ->
                let depth = session_depth c.sname in
                if depth >= limits.queue_limit then begin
                  (* refuse at admission: nothing enqueued, nothing
                     acked, the client owns the retry *)
                  count "serve_busy" 1;
                  append c
                    (Printf.sprintf
                       "busy queue session=%s depth=%d retry-after=%g"
                       c.sname depth limits.retry_after)
                end
                else Queue.push cmd c.cmds
          in
          let feed c chunk =
            c.pending <- c.pending ^ chunk;
            let continue = ref true in
            while !continue do
              match String.index_opt c.pending '\n' with
              | None ->
                  if String.length c.pending > limits.max_line then begin
                    append c
                      (Printf.sprintf "err line longer than %d bytes"
                         limits.max_line);
                    c.closing <- true;
                    c.pending <- ""
                  end;
                  continue := false
              | Some i ->
                  let line = String.sub c.pending 0 i in
                  c.pending <-
                    String.sub c.pending (i + 1)
                      (String.length c.pending - i - 1);
                  if not c.closing then process_line c line
            done
          in
          (* ---- socket IO ------------------------------------------ *)
          let read_conn c =
            let buf = Bytes.create 4096 in
            match Unix.read c.fd buf 0 4096 with
            | 0 -> drop c (* orderly EOF: abrupt from our side of acks *)
            | n -> feed c (Bytes.sub_string buf 0 n)
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                ()
            | exception Unix.Unix_error _ -> drop c
          in
          let write_conn c =
            match Rrs_fault.probe "serve.write" with
            | exception Rrs_fault.Injected _ ->
                count "serve_write_faults" 1;
                drop c
            | () -> (
                let data = Buffer.contents c.out in
                let len = String.length data - c.out_pos in
                let chunk = min len 16384 in
                match
                  Unix.write_substring c.fd data c.out_pos chunk
                with
                | n ->
                    c.out_pos <- c.out_pos + n;
                    if n > 0 then c.last_progress <- now ();
                    if c.out_pos >= String.length data then begin
                      Buffer.clear c.out;
                      c.out_pos <- 0;
                      if c.closing then drop c
                    end
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                    ()
                | exception Unix.Unix_error _ -> drop c)
          in
          let accept_conn () =
            match Rrs_fault.probe "serve.accept" with
            | exception Rrs_fault.Injected _ -> (
                count "serve_accept_faults" 1;
                (* still drain the pending connection so the backlog
                   cannot fill with a poisoned accept *)
                match Unix.accept listener with
                | fd, _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
                | exception Unix.Unix_error _ -> ())
            | () -> (
                match Unix.accept listener with
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                    ()
                | exception Unix.Unix_error _ -> ()
                | fd, peer ->
                    Unix.set_nonblock fd;
                    let peer =
                      match peer with
                      | Unix.ADDR_UNIX _ -> "unix"
                      | Unix.ADDR_INET (a, p) ->
                          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
                    in
                    let c =
                      {
                        fd;
                        peer;
                        pending = "";
                        cmds = Queue.create ();
                        out = Buffer.create 256;
                        out_pos = 0;
                        sname = Server.default_session;
                        closing = false;
                        last_progress = now ();
                      }
                    in
                    if List.length !conns >= limits.max_conns then begin
                      count "serve_busy" 1;
                      append c
                        (Printf.sprintf
                           "busy connections limit=%d retry-after=%g"
                           limits.max_conns limits.retry_after);
                      c.closing <- true;
                      conns := !conns @ [ c ];
                      count "serve_conns_accepted" 1
                    end
                    else begin
                      count "serve_conns_accepted" 1;
                      (match resolve c with
                      | Ok s -> List.iter (append c) (Server.greeting s)
                      | Error d ->
                          append c ("err " ^ d);
                          c.closing <- true);
                      conns := !conns @ [ c ]
                    end)
          in
          (* ---- the loop ------------------------------------------- *)
          let select_round () =
            let readers =
              (if !shutting then [] else [ listener ])
              @ List.filter_map
                  (fun c -> if c.closing then None else Some c.fd)
                  !conns
            in
            let writers =
              List.filter_map
                (fun c -> if out_pending c > 0 then Some c.fd else None)
                !conns
            in
            let timeout = if total_queued () > 0 then 0.0 else 0.05 in
            match Unix.select readers writers [] timeout with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
            | r, w, _ -> (r, w)
          in
          let stall_check () =
            let t = now () in
            List.iter
              (fun c ->
                if
                  out_pending c > 0
                  && t -. c.last_progress > limits.write_stall_timeout
                then drop ~slow:true c
                else if Buffer.length c.out > limits.write_buffer_limit then
                  drop ~slow:true c)
              !conns
          in
          let rec loop () =
            if !shutting || stop () then ()
            else begin
              let readable, writable = select_round () in
              if List.memq listener readable then accept_conn ();
              List.iter
                (fun c -> if List.memq c.fd readable then read_conn c)
                !conns;
              (* one command per connection per round: fair service,
                 and reply order per connection matches command order *)
              List.iter
                (fun c ->
                  if (not c.closing) && not (Queue.is_empty c.cmds) then
                    execute c (Queue.pop c.cmds))
                !conns;
              List.iter
                (fun c ->
                  if List.memq c.fd writable && out_pending c > 0 then
                    write_conn c)
                !conns;
              stall_check ();
              loop ()
            end
          in
          loop ();
          (* ---- drain ---------------------------------------------- *)
          (* no new reads: finish every queued command (acked work is
             never dropped by shutdown), say goodbye, flush bounded *)
          List.iter
            (fun c ->
              while not (Queue.is_empty c.cmds) do
                execute c (Queue.pop c.cmds)
              done)
            !conns;
          List.iter
            (fun c ->
              if not c.closing then append c "ok bye shutdown";
              c.closing <- true)
            !conns;
          let grace_end = now () +. limits.write_stall_timeout in
          let rec flush_all () =
            let pending =
              List.filter_map
                (fun c -> if out_pending c > 0 then Some c.fd else None)
                !conns
            in
            if pending <> [] && now () < grace_end then begin
              (match Unix.select [] pending [] 0.05 with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | _, writable, _ ->
                  List.iter
                    (fun c ->
                      if List.memq c.fd writable && out_pending c > 0 then
                        write_conn c)
                    !conns);
              (* write_conn drops drained closing conns itself *)
              flush_all ()
            end
          in
          flush_all ();
          List.iter (fun c -> drop c) !conns;
          List.iter
            (fun s -> ignore (Server.close_session h s))
            (Server.sessions h);
          (try Unix.close listener with Unix.Unix_error _ -> ());
          (match bound with
          | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
          | Tcp _ -> ());
          Ok
            {
              conns_accepted = counter_value "serve_conns_accepted";
              conns_dropped = counter_value "serve_conns_dropped";
              commands = counter_value "serve_commands";
              busy = counter_value "serve_busy";
              shed = counter_value "serve_shed";
              slow_drops = counter_value "serve_slow_client_drops";
              wedges = counter_value "serve_wedged";
            })
