(** Fixed-bucket histogram over a bounded integer domain, backed by a
    Fenwick tree so counts, cumulative counts and exact quantiles are all
    O(log n).  Suited to per-round cost and queue-length distributions
    whose domain is known in advance. *)

type t

val create : max_value:int -> t
(** Buckets for values [0 .. max_value]; larger observations are clamped
    into the top bucket (and counted in [clamped]).
    @raise Invalid_argument if [max_value < 0]. *)

val add : t -> int -> unit
(** Record one observation (negative values clamp to 0). *)

val add_many : t -> int -> int -> unit
(** [add_many t v k] records [k] observations of [v]. *)

val count : t -> int
val clamped : t -> int
(** Number of observations that fell outside [0 .. max_value]. *)

val max_value : t -> int
(** The [max_value] the histogram was created with. *)

val copy : t -> t

val merge_into : into:t -> t -> unit
(** Fold [src]'s observations into [into] in place ([src] is not
    modified) — for shard-and-merge aggregation.
    @raise Invalid_argument if the two histograms were created with
    different [max_value]. *)

val count_at : t -> int -> int
val count_le : t -> int -> int

val quantile : t -> float -> int
(** [quantile t q] with [0 <= q <= 1]: smallest value [v] such that at
    least [q] of the mass is [<= v].  @raise Not_found on an empty
    histogram. @raise Invalid_argument for [q] outside [0,1]. *)

val median : t -> int
val to_assoc : t -> (int * int) list
(** Nonzero buckets as [(value, count)] in ascending value order. *)
