type t = {
  buckets : Rrs_dstruct.Fenwick.t;
  max_value : int;
  mutable total : int;
  mutable clamped : int;
}

let create ~max_value =
  if max_value < 0 then invalid_arg "Histogram.create";
  {
    buckets = Rrs_dstruct.Fenwick.create ~size:(max_value + 1);
    max_value;
    total = 0;
    clamped = 0;
  }

let add_many t v k =
  if k < 0 then invalid_arg "Histogram.add_many";
  if k > 0 then begin
    let clamped_v = Stdlib.max 0 (Stdlib.min t.max_value v) in
    if clamped_v <> v then t.clamped <- t.clamped + k;
    Rrs_dstruct.Fenwick.add t.buckets clamped_v k;
    t.total <- t.total + k
  end

let add t v = add_many t v 1
let count t = t.total
let clamped t = t.clamped
let max_value t = t.max_value
let count_at t v =
  if v < 0 || v > t.max_value then 0 else Rrs_dstruct.Fenwick.get t.buckets v

let count_le t v =
  if v < 0 then 0
  else Rrs_dstruct.Fenwick.prefix_sum t.buckets (Stdlib.min v t.max_value)

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
  if t.total = 0 then raise Not_found;
  let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
  Rrs_dstruct.Fenwick.search t.buckets rank

let median t = quantile t 0.5

let to_assoc t =
  let out = ref [] in
  for v = t.max_value downto 0 do
    let c = count_at t v in
    if c > 0 then out := (v, c) :: !out
  done;
  !out

let copy t =
  let c = create ~max_value:t.max_value in
  List.iter (fun (v, k) -> add_many c v k) (to_assoc t);
  c.clamped <- t.clamped;
  c

let merge_into ~into src =
  if into.max_value <> src.max_value then
    invalid_arg "Histogram.merge_into: bucket domains differ";
  (* src's clamped observations already sit in its top bucket, so adding
     the buckets moves them over; only the clamped tally needs carrying. *)
  List.iter (fun (v, c) -> add_many into v c) (to_assoc src);
  into.clamped <- into.clamped + src.clamped
