(** Streaming univariate statistics (Welford's algorithm).

    Numerically stable single-pass mean and variance, plus min/max and
    count.  O(1) memory regardless of stream length. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val sum : t -> float
val copy : t -> t

val merge : t -> t -> t
(** Combined statistics of two disjoint streams (parallel-friendly). *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into] in place ([src] is not modified) — the
    destructive counterpart of {!merge}, for shard-and-merge
    aggregation. *)
