(** Bench-artifact regression gate: compare a freshly produced
    run-summary artifact ([BENCH_core.json], [BENCH_robust.json], …)
    against a committed baseline, metric by metric, with per-metric
    noise tolerances — the comparison engine behind [bench/check.exe]
    and [rrs benchdiff].

    Records pair up by [id].  Within a pair, the compared metric space
    is the cost breakdown ([cost.reconfig]/[cost.drop]/[cost.total])
    plus every [analysis] field; phase timings are pure wall clock and
    are never gated.  Each metric resolves to the first matching
    {!rule}, which says which direction is {e worse} and how much
    worsening the noise floor absorbs.

    {!default_rules} encodes the repo's gating philosophy: quantities
    that are deterministic functions of the code (costs, divergence
    and containment counts, round counts) must match {e exactly};
    machine-relative quantities (the incremental-vs-rebuild [speedup],
    allocations per round) get tight relative tolerances because they
    barely depend on the host; absolute wall-clock quantities
    (seconds, rounds/sec) get loose tolerances or are informational,
    because CI hardware is not the baseline's hardware.  Pass your own
    [rules] (first match wins, falling through to the defaults'
    catch-all) to tighten a local same-machine comparison. *)

type direction =
  | Higher_better  (** regression = current below baseline *)
  | Lower_better  (** regression = current above baseline *)
  | Exact  (** any difference is a regression *)
  | Info  (** report the delta, never gate on it *)

type rule = {
  pattern : string;
      (** matched against the metric name: exact, or with one ['*']
          wildcard anywhere (["cost.*"], ["*_seconds"],
          ["analysis.*_rounds_per_sec"]) *)
  direction : direction;
  rel_tol : float;
      (** worsening below this fraction of the baseline passes *)
  abs_tol : float;  (** …or below this absolute amount (whichever is
      more permissive) *)
}

val rule :
  ?rel_tol:float -> ?abs_tol:float -> string -> direction -> rule
(** Both tolerances default to [0.]. *)

val default_rules : rule list

type verdict = Regression | Improvement | Within | Informational

type delta = {
  id : string;  (** run_summary id the metric belongs to *)
  metric : string;  (** ["cost.total"], ["analysis.speedup"], … *)
  baseline : float;
  current : float;
  worsening : float;
      (** signed relative worsening ([> 0] = worse), with the
          convention [infinity] when the baseline is 0 and the values
          differ *)
  verdict : verdict;
  matched : rule;
}

type report = {
  deltas : delta list;
      (** ranked: regressions first, then improvements, then the rest,
          each by descending |relative change| *)
  missing_ids : string list;
      (** baseline records with no counterpart in current — always a
          regression (coverage must not silently shrink) *)
  new_ids : string list;  (** current records absent from baseline *)
  regressions : int;  (** gated failures: regression deltas + missing ids *)
}

val compare_summaries :
  ?rules:rule list ->
  baseline:Run_summary.t list ->
  current:Run_summary.t list ->
  unit ->
  report
(** [rules] are tried before {!default_rules}. *)

val compare_files :
  ?rules:rule list ->
  baseline:string ->
  current:string ->
  unit ->
  (report, string) result
(** {!Run_summary.load} both paths, then {!compare_summaries}. *)

val render : ?max_rows:int -> report -> string
(** The ranked delta report as an aligned text table (worst first),
    with a pass/fail summary line.  [max_rows] (default 40) caps the
    non-regression tail; regressions always print. *)

val ok : report -> bool
(** [regressions = 0]. *)
