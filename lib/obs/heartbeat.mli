(** Periodic health snapshots for long-running schedules.

    A heartbeat turns the engine's per-round observations into a
    bounded stream of snapshot lines: every K rounds and/or T seconds
    it emits one JSON object — round reached, cumulative costs,
    recolorings, round-latency percentiles {e since the last beat},
    allocation/GC gauges — to an owned JSONL stream (flushed per
    line, so it can be tailed live), an atomically-replaced
    single-line status file, and a Prometheus exposition file
    ({!Metrics.expose}) when a registry is attached.  [rrs status]
    renders the latest line of either file.

    The clock is injectable, so time-based cadence is deterministic
    under test; with the default [every_rounds] cadence alone a run's
    beat sequence is a pure function of the round stream.

    A heartbeat observes shared counters and never feeds anything back
    into a decision path — the 130-case differential suite runs with a
    heartbeat attached to one arm and requires bit-identical results.
    Several engines (a parallel sweep) may observe one heartbeat
    concurrently: totals accumulate under the beat lock; the GC gauges
    are then approximate (counters are per-domain, sampled from
    whichever domain beats).

    Like the recorder and the profiler, a heartbeat can be installed
    ambiently ({!with_heartbeat}, DLS-scoped, inherited by spawned
    domains): the engine picks it up when its config carries none. *)

type t

val create :
  ?every_rounds:int ->
  ?every_seconds:float ->
  ?clock:(unit -> float) ->
  ?path:string ->
  ?status_path:string ->
  ?expose_path:string ->
  ?registry:Metrics.t ->
  ?extra:(unit -> (string * Json.t) list) ->
  unit ->
  t
(** [every_rounds] (default 64, [>= 1]) beats after that many observed
    rounds; [every_seconds], when given, additionally beats once that
    much [clock] time passed since the last beat (checked on round
    boundaries — an idle engine emits nothing).  [path] is an owned
    JSONL stream (created/truncated now, closed by {!finish});
    [status_path] is atomically replaced with the latest beat line;
    [expose_path] is atomically replaced with [Metrics.expose registry]
    on every beat (requires [registry]).  [extra] contributes fields
    appended to every beat line (e.g. watchdog status).
    @raise Invalid_argument if [every_rounds < 1]. *)

val observe_round :
  t ->
  round:int ->
  delta:int ->
  recolorings:int ->
  executed:int ->
  dropped:int ->
  latency_us:int ->
  unit
(** Feed one engine round: [recolorings]/[executed]/[dropped] are this
    round's increments (not cumulative), [delta] the instance's
    reconfiguration charge (so [reconfig_cost] accumulates
    [delta * recolorings]), [latency_us] the round's wall-clock
    (negative = unknown, skipped from the percentile window).  Beats
    when the cadence is due.  No-op after {!finish}. *)

val beat : t -> unit
(** Force a beat now (if anything was observed since the last one,
    or nothing was ever emitted).  No-op after {!finish}. *)

val finish : t -> unit
(** Emit one last beat line carrying ["final":true], close the owned
    stream.  Idempotent. *)

val beats : t -> int
val rounds_observed : t -> int

val last_line : t -> string option
(** The latest beat line emitted, if any — what the status file
    holds. *)

(** {2 Ambient scope} *)

val with_heartbeat : t -> (unit -> 'a) -> 'a
(** Install [t] as the ambient heartbeat for the dynamic extent of the
    thunk (also on raise); spawned domains inherit it.  Engines whose
    config carries no heartbeat observe the ambient one. *)

val ambient : unit -> t option
