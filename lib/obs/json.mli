(** Minimal JSON: exactly what the telemetry artifacts need, with a
    {e canonical} serialisation so that [parse] followed by [to_string]
    reproduces a [to_string]-produced document byte for byte.  (The
    container ships no JSON library; this hand-rolled one keeps the
    dependency footprint at zero.)

    Canonical form: no whitespace, fields in construction order, floats
    printed as the shortest ["%.12g"] that round-trips (falling back to
    ["%.17g"]), integer-valued floats as ["%.1f"] so they stay floats on
    re-parse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Canonical, single-line.
    @raise Invalid_argument on a non-finite float (JSON cannot represent
    them; telemetry values are always finite). *)

val parse : string -> (t, string) result
(** Strict JSON parser: one document, no trailing garbage.  Numbers with
    a ['.'], ['e'] or ['E'] parse as [Float], others as [Int] ([Float]
    when they overflow).  String escapes: the JSON standard set plus
    [\uXXXX] for BMP code points (surrogate pairs are combined). *)

val parse_exn : string -> t
(** @raise Invalid_argument on a parse error. *)

(** {2 Accessors} — all shallow, for decoding artifact records. *)

val member : string -> t -> t option
(** Field lookup in an [Assoc]; [None] on other constructors. *)

val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
(** Accepts [Int] too (exact widening). *)

val to_string_lit : t -> (string, string) result
val to_list : t -> (t list, string) result
val to_assoc : t -> ((string * t) list, string) result
