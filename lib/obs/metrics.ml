(* Domain-safety layout: counters and gauges are single atomics (the hot
   update paths stay lock-free), histograms and timers carry one mutex
   each (their Fenwick / Welford state is multi-word), and the registry
   table has its own lock for get-or-create and export.  No operation
   ever holds two locks at once, so the module cannot deadlock against
   itself. *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = { hist : Rrs_stats.Histogram.t; hist_mutex : Mutex.t }
type timer = { stats : Rrs_stats.Running.t; timer_mutex : Mutex.t }
type span = { timer : timer; started_at : float; mutable stopped : bool }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Timer of timer

type t = {
  instruments : (string, instrument) Hashtbl.t;
  registry_mutex : Mutex.t;
}

let create () =
  { instruments = Hashtbl.create 16; registry_mutex = Mutex.create () }

(* Get-or-create under the registry lock; [make] must not itself touch
   the registry. *)
let intern t name ~kind ~project ~make =
  Mutex.protect t.registry_mutex (fun () ->
      match Hashtbl.find_opt t.instruments name with
      | Some i -> (
          match project i with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S is already registered, not as a %s"
                   name kind))
      | None ->
          let v, i = make () in
          Hashtbl.add t.instruments name i;
          v)

let counter t name =
  intern t name ~kind:"counter"
    ~project:(function Counter c -> Some c | _ -> None)
    ~make:(fun () ->
      let c = Atomic.make 0 in
      (c, Counter c))

let inc c by =
  if by < 0 then invalid_arg "Metrics.inc: negative increment";
  ignore (Atomic.fetch_and_add c by)

let value c = Atomic.get c

let gauge t name =
  intern t name ~kind:"gauge"
    ~project:(function Gauge g -> Some g | _ -> None)
    ~make:(fun () ->
      let g = Atomic.make Float.nan in
      (g, Gauge g))

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram t name ~max_value =
  intern t name ~kind:"histogram"
    ~project:(function Histogram h -> Some h | _ -> None)
    ~make:(fun () ->
      let h =
        { hist = Rrs_stats.Histogram.create ~max_value; hist_mutex = Mutex.create () }
      in
      (h, Histogram h))

let observe h v =
  Mutex.protect h.hist_mutex (fun () -> Rrs_stats.Histogram.add h.hist v)

(* A copy taken under the instrument's lock: the caller gets a frozen,
   internally consistent snapshot even while observers keep writing. *)
let histogram_stats h =
  Mutex.protect h.hist_mutex (fun () -> Rrs_stats.Histogram.copy h.hist)

let timer t name =
  intern t name ~kind:"timer"
    ~project:(function Timer tm -> Some tm | _ -> None)
    ~make:(fun () ->
      let tm =
        { stats = Rrs_stats.Running.create (); timer_mutex = Mutex.create () }
      in
      (tm, Timer tm))

let start timer = { timer; started_at = Unix.gettimeofday (); stopped = false }

let stop span =
  if span.stopped then invalid_arg "Metrics.stop: span already stopped";
  span.stopped <- true;
  let elapsed = Float.max 0. (Unix.gettimeofday () -. span.started_at) in
  Mutex.protect span.timer.timer_mutex (fun () ->
      Rrs_stats.Running.add span.timer.stats elapsed);
  elapsed

let time timer thunk =
  let span = start timer in
  Fun.protect ~finally:(fun () -> ignore (stop span)) thunk

let timer_count tm =
  Mutex.protect tm.timer_mutex (fun () -> Rrs_stats.Running.count tm.stats)

let timer_total tm =
  Mutex.protect tm.timer_mutex (fun () -> Rrs_stats.Running.sum tm.stats)

(* Same snapshot discipline as [histogram_stats]: the Welford aggregate
   is multi-word, so returning the live record would let a reader see a
   torn (count, mean, m2) triple while a span lands on another domain.
   The copy is taken under the timer's mutex, so it is always a state
   the aggregate actually passed through. *)
let timer_stats tm =
  Mutex.protect tm.timer_mutex (fun () -> Rrs_stats.Running.copy tm.stats)

let sorted_instruments t =
  Mutex.protect t.registry_mutex (fun () ->
      Hashtbl.fold (fun name i acc -> (name, i) :: acc) t.instruments [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let timers t =
  List.filter_map
    (fun (name, i) ->
      match i with
      | Timer tm ->
          Some
            (Mutex.protect tm.timer_mutex (fun () ->
                 ( name,
                   Rrs_stats.Running.count tm.stats,
                   Rrs_stats.Running.sum tm.stats )))
      | _ -> None)
    (sorted_instruments t)

let merge_into ~into src =
  List.iter
    (fun (name, i) ->
      match i with
      | Counter c -> ignore (Atomic.fetch_and_add (counter into name) (Atomic.get c))
      | Gauge g ->
          let v = Atomic.get g in
          if not (Float.is_nan v) then Atomic.set (gauge into name) v
      | Histogram h ->
          (* snapshot src under its own lock, then write under the
             destination's — never both at once *)
          let snapshot =
            Mutex.protect h.hist_mutex (fun () ->
                Rrs_stats.Histogram.copy h.hist)
          in
          let dst =
            histogram into name
              ~max_value:(Rrs_stats.Histogram.max_value snapshot)
          in
          Mutex.protect dst.hist_mutex (fun () ->
              Rrs_stats.Histogram.merge_into ~into:dst.hist snapshot)
      | Timer tm ->
          let snapshot =
            Mutex.protect tm.timer_mutex (fun () ->
                Rrs_stats.Running.copy tm.stats)
          in
          let dst = timer into name in
          Mutex.protect dst.timer_mutex (fun () ->
              Rrs_stats.Running.merge_into ~into:dst.stats snapshot))
    (sorted_instruments src)

(* Prometheus text exposition (format 0.0.4): one block per instrument,
   names folded onto the Prometheus grammar.  Histograms and timers
   render as summaries — histograms with exact quantiles (the Fenwick
   state answers them directly), timers with count/sum only (Welford
   keeps no quantile state).  Unset gauges (NaN) are omitted: absence
   is the Prometheus idiom for "no sample", and NaN would poison any
   aggregation. *)
let prom_name name =
  String.mapi
    (fun i c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let expose t =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  List.iter
    (fun (name, i) ->
      let n = prom_name name in
      match i with
      | Counter c ->
          line "# TYPE %s counter" n;
          line "%s %d" n (Atomic.get c)
      | Gauge g ->
          let v = Atomic.get g in
          if not (Float.is_nan v) then begin
            line "# TYPE %s gauge" n;
            line "%s %s" n (prom_float v)
          end
      | Histogram h ->
          let snapshot =
            Mutex.protect h.hist_mutex (fun () ->
                Rrs_stats.Histogram.copy h.hist)
          in
          let count = Rrs_stats.Histogram.count snapshot in
          line "# TYPE %s summary" n;
          if count > 0 then
            List.iter
              (fun q ->
                line "%s{quantile=\"%g\"} %d" n q
                  (Rrs_stats.Histogram.quantile snapshot q))
              [ 0.5; 0.95; 0.99 ];
          let sum =
            List.fold_left
              (fun acc (v, c) -> acc +. (float_of_int v *. float_of_int c))
              0.
              (Rrs_stats.Histogram.to_assoc snapshot)
          in
          line "%s_sum %s" n (prom_float sum);
          line "%s_count %d" n count
      | Timer tm ->
          let snapshot =
            Mutex.protect tm.timer_mutex (fun () ->
                Rrs_stats.Running.copy tm.stats)
          in
          let n = n ^ "_seconds" in
          line "# TYPE %s summary" n;
          line "%s_sum %s" n (prom_float (Rrs_stats.Running.sum snapshot));
          line "%s_count %d" n (Rrs_stats.Running.count snapshot))
    (sorted_instruments t);
  Buffer.contents buf

let to_json t =
  let all = sorted_instruments t in
  let section f = List.filter_map f all in
  let counters =
    section (function
      | name, Counter c -> Some (name, Json.Int (Atomic.get c))
      | _ -> None)
  in
  let gauges =
    section (function
      | name, Gauge g ->
          let v = Atomic.get g in
          Some (name, if Float.is_nan v then Json.Null else Json.Float v)
      | _ -> None)
  in
  let histograms =
    section (function
      | name, Histogram h ->
          Mutex.protect h.hist_mutex (fun () ->
              let buckets =
                List.map
                  (fun (v, c) -> Json.List [ Json.Int v; Json.Int c ])
                  (Rrs_stats.Histogram.to_assoc h.hist)
              in
              Some
                ( name,
                  Json.Assoc
                    [
                      ("count", Json.Int (Rrs_stats.Histogram.count h.hist));
                      ("clamped", Json.Int (Rrs_stats.Histogram.clamped h.hist));
                      ("buckets", Json.List buckets);
                    ] ))
      | _ -> None)
  in
  let timer_sections =
    section (function
      | name, Timer tm ->
          Mutex.protect tm.timer_mutex (fun () ->
              let count = Rrs_stats.Running.count tm.stats in
              Some
                ( name,
                  Json.Assoc
                    [
                      ("count", Json.Int count);
                      ("total_s", Json.Float (Rrs_stats.Running.sum tm.stats));
                      ( "mean_s",
                        if count = 0 then Json.Null
                        else Json.Float (Rrs_stats.Running.mean tm.stats) );
                      ( "max_s",
                        if count = 0 then Json.Null
                        else Json.Float (Rrs_stats.Running.max tm.stats) );
                    ] ))
      | _ -> None)
  in
  Json.Assoc
    [
      ("counters", Json.Assoc counters);
      ("gauges", Json.Assoc gauges);
      ("histograms", Json.Assoc histograms);
      ("timers", Json.Assoc timer_sections);
    ]
