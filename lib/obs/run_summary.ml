type phase_timing = { phase : string; seconds : float; count : int }

type t = {
  id : string;
  kind : string;
  seed : int option;
  config : (string * string) list;
  reconfig_cost : int;
  drop_cost : int;
  analysis : (string * float) list;
  timings : phase_timing list;
}

let make ?seed ?(config = []) ?(reconfig_cost = 0) ?(drop_cost = 0)
    ?(analysis = []) ?(timings = []) ~id ~kind () =
  { id; kind; seed; config; reconfig_cost; drop_cost; analysis; timings }

let total_cost t = t.reconfig_cost + t.drop_cost

let strip_timings t =
  {
    t with
    analysis =
      List.map
        (fun (k, v) ->
          if String.ends_with ~suffix:"_seconds" k then (k, 0.0) else (k, v))
        t.analysis;
    timings = List.map (fun pt -> { pt with seconds = 0.0 }) t.timings;
  }

let to_json t =
  Json.Assoc
    [
      ("type", Json.String "run_summary");
      ("id", Json.String t.id);
      ("kind", Json.String t.kind);
      ("seed", match t.seed with Some s -> Json.Int s | None -> Json.Null);
      ( "config",
        Json.Assoc (List.map (fun (k, v) -> (k, Json.String v)) t.config) );
      ( "cost",
        Json.Assoc
          [
            ("reconfig", Json.Int t.reconfig_cost);
            ("drop", Json.Int t.drop_cost);
            ("total", Json.Int (total_cost t));
          ] );
      ( "analysis",
        Json.Assoc (List.map (fun (k, v) -> (k, Json.Float v)) t.analysis) );
      ( "timings",
        Json.List
          (List.map
             (fun pt ->
               Json.Assoc
                 [
                   ("phase", Json.String pt.phase);
                   ("seconds", Json.Float pt.seconds);
                   ("count", Json.Int pt.count);
                 ])
             t.timings) );
    ]

let ( let* ) = Result.bind

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "run_summary: missing field %S" name)

let of_json json =
  let* tag = Result.bind (field "type" json) Json.to_string_lit in
  if tag <> "run_summary" then
    Error (Printf.sprintf "expected a run_summary line, found type %S" tag)
  else
    let* id = Result.bind (field "id" json) Json.to_string_lit in
    let* kind = Result.bind (field "kind" json) Json.to_string_lit in
    let* seed =
      match Json.member "seed" json with
      | Some Json.Null | None -> Ok None
      | Some v -> Result.map Option.some (Json.to_int v)
    in
    let* config_fields = Result.bind (field "config" json) Json.to_assoc in
    let* config =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* v = Json.to_string_lit v in
          Ok ((k, v) :: acc))
        (Ok []) config_fields
      |> Result.map List.rev
    in
    let* cost = field "cost" json in
    let* reconfig_cost = Result.bind (field "reconfig" cost) Json.to_int in
    let* drop_cost = Result.bind (field "drop" cost) Json.to_int in
    let* analysis_fields = Result.bind (field "analysis" json) Json.to_assoc in
    let* analysis =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* v = Json.to_float v in
          Ok ((k, v) :: acc))
        (Ok []) analysis_fields
      |> Result.map List.rev
    in
    let* timing_items = Result.bind (field "timings" json) Json.to_list in
    let* timings =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* phase = Result.bind (field "phase" item) Json.to_string_lit in
          let* seconds = Result.bind (field "seconds" item) Json.to_float in
          let* count = Result.bind (field "count" item) Json.to_int in
          Ok ({ phase; seconds; count } :: acc))
        (Ok []) timing_items
      |> Result.map List.rev
    in
    Ok { id; kind; seed; config; reconfig_cost; drop_cost; analysis; timings }

let to_line t = Json.to_string (to_json t)

let of_line line =
  let* json = Json.parse line in
  of_json json

let write oc t =
  output_string oc (to_line t);
  output_char oc '\n'

(* Ok None: skip the line (blank, or a valid line of another type). *)
let parse_line line =
  if String.trim line = "" then Ok None
  else
    match Json.parse line with
    | Error msg -> Error msg
    | Ok json -> (
        match Json.member "type" json with
        | Some (Json.String "run_summary") ->
            Result.map Option.some (of_json json)
        | Some (Json.String _) -> Ok None
        | _ -> Error "line has no \"type\" tag")

let numbered_lines path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error msg -> Error msg
  | lines -> Ok (List.mapi (fun k line -> (k + 1, line)) lines)

let load path =
  let* lines = numbered_lines path in
  let* summaries =
    List.fold_left
      (fun acc (lineno, line) ->
        let* acc = acc in
        match parse_line line with
        | Ok None -> Ok acc
        | Ok (Some summary) -> Ok (summary :: acc)
        | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      (Ok []) lines
  in
  Ok (List.rev summaries)

type torn_tail = { lineno : int; reason : string }

let load_tolerant path =
  let* lines = numbered_lines path in
  let last_content =
    List.fold_left
      (fun acc (lineno, line) -> if String.trim line = "" then acc else lineno)
      0 lines
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc, None)
    | (lineno, line) :: rest -> (
        match parse_line line with
        | Ok None -> go acc rest
        | Ok (Some summary) -> go (summary :: acc) rest
        | Error reason when lineno = last_content ->
            (* a crash mid-write leaves exactly one torn line, and only
               at the end of the file: tolerate that one *)
            go acc rest |> Result.map (fun (summaries, _) ->
                (summaries, Some { lineno; reason }))
        | Error reason ->
            Error (Printf.sprintf "%s:%d: %s" path lineno reason))
  in
  go [] lines
