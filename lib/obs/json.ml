type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* canonical printing                                                  *)
(* ------------------------------------------------------------------ *)

let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string json =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> add_escaped buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun k item ->
            if k > 0 then Buffer.add_char buf ',';
            emit item)
          items;
        Buffer.add_char buf ']'
    | Assoc fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun k (name, value) ->
            if k > 0 then Buffer.add_char buf ',';
            add_escaped buf name;
            Buffer.add_char buf ':';
            emit value)
          fields;
        Buffer.add_char buf '}'
  in
  emit json;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse_exn_internal input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %c, found %c" c got)
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail "invalid \\u escape"
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = input.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              loop ()
          | 'n' ->
              Buffer.add_char buf '\n';
              loop ()
          | 'r' ->
              Buffer.add_char buf '\r';
              loop ()
          | 't' ->
              Buffer.add_char buf '\t';
              loop ()
          | 'b' ->
              Buffer.add_char buf '\b';
              loop ()
          | 'f' ->
              Buffer.add_char buf '\012';
              loop ()
          | 'u' ->
              let cp = hex4 () in
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  (* high surrogate: a low surrogate must follow *)
                  if
                    !pos + 1 < n && input.[!pos] = '\\' && input.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then fail "invalid surrogate"
                    else
                      0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else fail "lone high surrogate"
                end
                else if cp >= 0xDC00 && cp <= 0xDFFF then
                  fail "lone low surrogate"
                else cp
              in
              add_utf8 buf cp;
              loop ()
          | _ -> fail "invalid escape")
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some ('0' .. '9') -> true | _ -> false
    in
    if not (is_digit ()) then fail "malformed number";
    let first = input.[!pos] in
    advance ();
    if first = '0' && is_digit () then fail "leading zero in number";
    while is_digit () do
      advance ()
    done;
    let floating = ref false in
    if peek () = Some '.' then begin
      floating := true;
      advance ();
      if not (is_digit ()) then fail "malformed number";
      while is_digit () do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        floating := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (is_digit ()) then fail "malformed number";
        while is_digit () do
          advance ()
        done
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !floating then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec loop () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          loop ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Assoc []
        end
        else begin
          let fields = ref [] in
          let rec loop () =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            fields := (name, value) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          loop ();
          Assoc (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after document";
  value

let parse input =
  match parse_exn_internal input with
  | value -> Ok value
  | exception Bad msg -> Error msg

let parse_exn input =
  match parse input with Ok v -> v | Error msg -> invalid_arg msg

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Assoc fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function Int i -> Ok i | _ -> Error "expected an integer"

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | _ -> Error "expected a number"

let to_string_lit = function String s -> Ok s | _ -> Error "expected a string"
let to_list = function List items -> Ok items | _ -> Error "expected an array"

let to_assoc = function
  | Assoc fields -> Ok fields
  | _ -> Error "expected an object"
