(* Layout mirrors the profiler: one recorder holds a lock-free list of
   per-domain rings; a domain writes only its own ring (one short
   mutex section, uncontended except against a concurrent dump), and a
   single global atomic hands out sequence numbers so [recent] can
   merge the rings back into emission order.

   Why per-domain rings still satisfy the *global* last-N contract: a
   slot is overwritten only after its own domain records [capacity]
   later events, and every one of those is also globally later — so
   any event with fewer than [capacity] global successors is still
   sitting in its ring.  [recent] unions the rings, sorts by sequence
   number, and keeps the last [capacity]: exactly the global suffix. *)

type slot = { seq : int; event : Event.t }

type track = {
  lock : Mutex.t;
  ring : slot option array;
  mutable pos : int; (* next write index *)
}

type t = {
  cap : int;
  seq : int Atomic.t; (* also the total-events-recorded count *)
  tracks : track list Atomic.t;
  snap_lock : Mutex.t;
  snap_ring : Json.t option array;
  mutable snap_pos : int;
}

let create ?(capacity = 512) ?(snapshot_capacity = 32) () =
  if capacity < 1 then invalid_arg "Flight_recorder.create: capacity < 1";
  if snapshot_capacity < 1 then
    invalid_arg "Flight_recorder.create: snapshot_capacity < 1";
  {
    cap = capacity;
    seq = Atomic.make 0;
    tracks = Atomic.make [];
    snap_lock = Mutex.create ();
    snap_ring = Array.make snapshot_capacity None;
    snap_pos = 0;
  }

let capacity t = t.cap

(* Same two-key DLS discipline as Rrs_prof: the scope is inherited by
   spawned domains, the track cache is not (rings have a single writer
   by construction, so each domain must mint its own). *)
let scope : (t * string option) option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

let track_cache : (t * track) option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:(fun _ -> None) (fun () -> None)

let rec register_track t track =
  let old = Atomic.get t.tracks in
  if not (Atomic.compare_and_set t.tracks old (track :: old)) then
    register_track t track

let track_for t =
  match Domain.DLS.get track_cache with
  | Some (owner, track) when owner == t -> track
  | _ ->
      let track =
        { lock = Mutex.create (); ring = Array.make t.cap None; pos = 0 }
      in
      register_track t track;
      Domain.DLS.set track_cache (Some (t, track));
      track

let record t event =
  let track = track_for t in
  let seq = Atomic.fetch_and_add t.seq 1 in
  Mutex.protect track.lock (fun () ->
      track.ring.(track.pos) <- Some { seq; event };
      track.pos <- (track.pos + 1) mod t.cap)

let record_snapshot t json =
  Mutex.protect t.snap_lock (fun () ->
      t.snap_ring.(t.snap_pos) <- Some json;
      t.snap_pos <- (t.snap_pos + 1) mod Array.length t.snap_ring)

let sink t = Sink.callback (fun e -> record t e)

let attach t inner =
  Sink.callback (fun e ->
      record t e;
      Sink.emit inner e)

let events_recorded t = Atomic.get t.seq

(* Read a ring oldest-first: starting at [pos] and wrapping visits the
   oldest live slot first whether or not the ring has filled (unfilled
   slots are [None] and drop out). *)
let ring_to_list ring pos =
  let n = Array.length ring in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match ring.((pos + i) mod n) with
    | Some s -> acc := s :: !acc
    | None -> ()
  done;
  !acc

let rec drop k l =
  if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl

let recent t =
  let slots =
    List.concat_map
      (fun track ->
        Mutex.protect track.lock (fun () -> ring_to_list track.ring track.pos))
      (Atomic.get t.tracks)
  in
  let sorted = List.sort (fun (a : slot) b -> compare a.seq b.seq) slots in
  List.map (fun s -> s.event) (drop (List.length sorted - t.cap) sorted)

let snapshots t =
  Mutex.protect t.snap_lock (fun () -> ring_to_list t.snap_ring t.snap_pos)

let with_recorder ?dump_dir t thunk =
  let outer = Domain.DLS.get scope in
  Domain.DLS.set scope (Some (t, dump_dir));
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope outer) thunk

let ambient () =
  match Domain.DLS.get scope with Some (t, _) -> Some t | None -> None

let crash_scope () =
  match Domain.DLS.get scope with
  | Some (t, Some dir) -> Some (t, dir)
  | Some (_, None) | None -> None

(* Dump lines go through [Sink.write_line], never [Sink.emit]: emit's
   jsonl path carries the "sink.jsonl" fault probe, and a crash dump
   must still commit when the failure being dumped *is* an injected
   sink fault. *)
let dump ?name ?reason t path =
  let events = recent t in
  let snaps = snapshots t in
  let header =
    Json.Assoc
      ([
         ("type", Json.String "flight_recorder");
         ("capacity", Json.Int t.cap);
         ("events_recorded", Json.Int (events_recorded t));
         ("events_retained", Json.Int (List.length events));
         ("snapshots", Json.Int (List.length snaps));
       ]
      @ (match name with
        | Some n -> [ ("name", Json.String n) ]
        | None -> [])
      @
      match reason with
      | Some r -> [ ("reason", Json.String r) ]
      | None -> [])
  in
  Sink.with_jsonl path (fun s ->
      Sink.write_line s (Json.to_string header);
      List.iter (fun e -> Sink.write_line s (Event.to_line e)) events;
      List.iter (fun j -> Sink.write_line s (Json.to_string j)) snaps)

let sanitize name =
  String.map
    (function
      | ('A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-') as c -> c
      | _ -> '-')
    name

let crash_dump_path ~dir ~name =
  Filename.concat dir ("crash-" ^ sanitize name ^ ".jsonl")

let crash_dump t ~dir ~name ~reason =
  (try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = crash_dump_path ~dir ~name in
  dump ~name ~reason t path;
  path
