(** A lightweight metrics registry: named counters, gauges, histograms
    and phase timers, snapshotable to canonical JSON.

    Instruments are created once (get-or-create by name) and updated on
    hot paths with O(1), allocation-free operations; {!to_json} is the
    cold export path.  Histograms reuse {!Rrs_stats.Histogram} (Fenwick
    backed, exact quantiles); timers reuse {!Rrs_stats.Running}
    (Welford) over span durations measured with [Unix.gettimeofday] —
    no [Mtime] dependency, microsecond-ish resolution, which is plenty
    for per-phase spans.

    Instrument names are free-form; the convention used across the repo
    is [<subsystem>_<quantity>] (e.g. ["engine_runs"],
    ["harness_reconfig_cost"]).

    {b Thread safety.}  Every operation of this module is safe to call
    from any number of OCaml 5 domains concurrently: counters and
    gauges are single atomics (lock-free updates), histogram and timer
    updates take a per-instrument mutex, and registry get-or-create /
    export take a registry mutex.  Concurrent [inc]s are never lost —
    the totals of a parallel run equal the sequential totals exactly.
    The only non-linearizable read is {!to_json} (and {!timers}) taken
    {e while} writers are still running: each instrument is snapshotted
    consistently, but the sections are read one instrument at a time.
    {!timer_stats} and {!histogram_stats} return mutex-protected
    snapshot copies, so they are safe mid-run too.
    For contention-free parallel aggregation, give each shard its own
    [t] and fold them with {!merge_into} (see Pool.map_reduce in
    [rrs_parallel]). *)

type t

val create : unit -> t

(** {2 Counters} — monotone integer totals. *)

type counter

val counter : t -> string -> counter
(** Get or create.  @raise Invalid_argument if the name is registered
    as a different instrument kind. *)

val inc : counter -> int -> unit
(** @raise Invalid_argument on a negative increment. *)

val value : counter -> int

(** {2 Gauges} — last-write-wins floats. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float
(** [nan] before the first {!set}. *)

(** {2 Histograms} — integer observations, exact quantiles. *)

type histogram

val histogram : t -> string -> max_value:int -> histogram
(** Get or create; [max_value] is only consulted on creation. *)

val observe : histogram -> int -> unit

val histogram_stats : histogram -> Rrs_stats.Histogram.t
(** A {e snapshot copy} of the bucket state, taken under the
    instrument's mutex: safe to read (and keep) while concurrent
    observers are still running — it reflects some consistent prefix of
    the observation stream. *)

(** {2 Phase timers} — wall-clock spans. *)

type timer
type span

val timer : t -> string -> timer

val start : timer -> span
(** Spans may nest and interleave freely (each is independent). *)

val stop : span -> float
(** Records and returns the span duration in seconds (clamped to [>= 0]
    — [gettimeofday] is not monotonic, durations are).
    @raise Invalid_argument if the span was already stopped. *)

val time : timer -> (unit -> 'a) -> 'a
(** Runs the thunk inside a span (recorded even if the thunk raises). *)

val timer_count : timer -> int
val timer_total : timer -> float
(** Sum of recorded span durations, seconds. *)

val timer_stats : timer -> Rrs_stats.Running.t
(** A {e snapshot copy} of the Welford aggregate, taken under the
    timer's mutex.  Safe to call while spans are still being recorded
    on other domains: the returned value is always a state the
    aggregate actually passed through — never a torn multi-word read —
    and it is yours (later spans do not mutate it).  {!timer_count} and
    {!timer_total} remain the cheap point reads. *)

(** {2 Shard-and-merge} *)

val merge_into : into:t -> t -> unit
(** Fold every instrument of the source registry into [into]
    (get-or-create by name): counter values add, gauges take the
    source's value when it has one (last-write-wins), histograms add
    bucket-wise, timers combine their Welford aggregates.  [src] is not
    modified.  Safe against concurrent updates of either registry; the
    fold is name-ordered and never holds two locks at once.
    @raise Invalid_argument on an instrument-kind clash or mismatched
    histogram domains. *)

(** {2 Export} *)

val timers : t -> (string * int * float) list
(** [(name, span count, total seconds)] in ascending name order. *)

val to_json : t -> Json.t
(** [{"counters":{...},"gauges":{...},"histograms":{...},
    "timers":{...}}] with every section's fields in ascending name
    order — canonical, so snapshots diff cleanly. *)

val expose : t -> string
(** Prometheus text exposition (format 0.0.4), instruments in
    ascending name order: counters as [counter], set gauges as [gauge]
    (unset gauges are omitted — absence, not NaN), histograms as
    [summary] blocks with exact 0.5/0.95/0.99 quantiles plus
    [_sum]/[_count], timers as [<name>_seconds] summaries with
    [_sum]/[_count].  Names are folded onto the Prometheus grammar
    ([[a-zA-Z_:][a-zA-Z0-9_:]*], bad characters become ['_']).  Safe
    to call mid-run: multi-word instruments are snapshotted under
    their mutex, same discipline as {!to_json}. *)
