type kind =
  | Null
  | Memory of Event.t list Atomic.t
  | Jsonl of { oc : out_channel; oc_mutex : Mutex.t }
  | Callback of (Event.t -> unit)

type t = { kind : kind; emitted : int Atomic.t }

let null = { kind = Null; emitted = Atomic.make 0 }
let memory () = { kind = Memory (Atomic.make []); emitted = Atomic.make 0 }
let jsonl oc =
  { kind = Jsonl { oc; oc_mutex = Mutex.create () }; emitted = Atomic.make 0 }
let callback f = { kind = Callback f; emitted = Atomic.make 0 }
let enabled t = match t.kind with Null -> false | _ -> true

let rec push buffer event =
  let old = Atomic.get buffer in
  if not (Atomic.compare_and_set buffer old (event :: old)) then
    push buffer event

let emit t event =
  match t.kind with
  | Null -> ()
  | Memory buffer ->
      push buffer event;
      ignore (Atomic.fetch_and_add t.emitted 1)
  | Jsonl { oc; oc_mutex } ->
      Rrs_fault.probe "sink.jsonl";
      Rrs_prof.enter "sink.jsonl";
      (* one write of the whole line under the sink's lock: concurrent
         emitters cannot tear a JSONL line *)
      let line = Event.to_line event ^ "\n" in
      Mutex.protect oc_mutex (fun () -> output_string oc line);
      Rrs_prof.leave "sink.jsonl";
      ignore (Atomic.fetch_and_add t.emitted 1)
  | Callback f ->
      f event;
      ignore (Atomic.fetch_and_add t.emitted 1)

let write_line t line =
  match t.kind with
  | Jsonl { oc; oc_mutex } ->
      let line = line ^ "\n" in
      Mutex.protect oc_mutex (fun () -> output_string oc line)
  | Null | Memory _ | Callback _ -> ()

let with_jsonl path f =
  let temp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out temp in
  let commit () =
    Rrs_prof.span "sink.commit" (fun () ->
        close_out oc;
        Sys.rename temp path)
  in
  Fun.protect ~finally:commit (fun () -> f (jsonl oc))

let events t =
  match t.kind with
  | Memory buffer -> List.rev (Atomic.get buffer)
  | _ -> []

let count t = Atomic.get t.emitted
