(* One mutex guards all state: observe_round is a handful of integer
   adds per round (an engine round is tens of microseconds, the lock is
   uncontended except in multi-engine sweeps), and beats — file writes
   included — happen under the same lock so lines, the status file and
   the totals they describe can never disagree. *)

let round_latency_max_us = 65535

type t = {
  lock : Mutex.t;
  every_rounds : int;
  every_seconds : float option;
  clock : unit -> float;
  stream : out_channel option;
  status_path : string option;
  expose_path : string option;
  registry : Metrics.t option;
  extra : (unit -> (string * Json.t) list) option;
  (* totals *)
  mutable beats : int;
  mutable rounds : int;
  mutable last_round : int;
  mutable reconfig_cost : int;
  mutable drop_cost : int;
  mutable recolorings : int;
  mutable executed : int;
  (* window since the last beat.  Latencies are raw samples in a
     scratch buffer reused across windows (a window holds ~every_rounds
     values), sorted at beat time for exact quantiles — recreating a
     round_latency_max_us-bucket histogram per beat would dwarf the
     cost of everything else the heartbeat does. *)
  mutable rounds_since : int;
  mutable last_beat_at : float;
  mutable lat : int array;
  mutable lat_len : int;
  mutable minor0 : float;
  mutable major0 : float;
  mutable last_line : string option;
  mutable closed : bool;
}

let create ?(every_rounds = 64) ?every_seconds ?(clock = Unix.gettimeofday)
    ?path ?status_path ?expose_path ?registry ?extra () =
  if every_rounds < 1 then invalid_arg "Heartbeat.create: every_rounds < 1";
  let minor0, _, major0 = Gc.counters () in
  {
    lock = Mutex.create ();
    every_rounds;
    every_seconds;
    clock;
    stream = Option.map open_out path;
    status_path;
    expose_path;
    registry;
    extra;
    beats = 0;
    rounds = 0;
    last_round = -1;
    reconfig_cost = 0;
    drop_cost = 0;
    recolorings = 0;
    executed = 0;
    rounds_since = 0;
    last_beat_at = clock ();
    lat = Array.make (max 16 (min every_rounds 1024)) 0;
    lat_len = 0;
    minor0;
    major0;
    last_line = None;
    closed = false;
  }

let replace_file path contents =
  let temp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  Out_channel.with_open_text temp (fun oc -> output_string oc contents);
  Sys.rename temp path

(* Called with the lock held. *)
let beat_locked t ~final =
  let now = t.clock () in
  let minor1, _, major1 = Gc.counters () in
  let per_round v0 v1 =
    (v1 -. v0) /. float_of_int (max t.rounds_since 1)
  in
  let latency =
    if t.lat_len = 0 then []
    else begin
      let sorted = Array.sub t.lat 0 t.lat_len in
      Array.sort (fun (a : int) b -> Stdlib.compare a b) sorted;
      (* same rank convention as Rrs_stats.Histogram.quantile *)
      let quantile q =
        let rank =
          Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.lat_len)))
        in
        sorted.(rank - 1)
      in
      List.map
        (fun (name, q) -> (name, Json.Int (quantile q)))
        [
          ("round_latency_p50_us", 0.5);
          ("round_latency_p95_us", 0.95);
          ("round_latency_p99_us", 0.99);
        ]
    end
  in
  let gc = Gc.quick_stat () in
  t.beats <- t.beats + 1;
  let line =
    Json.to_string
      (Json.Assoc
         ([
            ("type", Json.String "heartbeat");
            ("beat", Json.Int t.beats);
            ("round", Json.Int t.last_round);
            ("rounds", Json.Int t.rounds);
            ("reconfig_cost", Json.Int t.reconfig_cost);
            ("drop_cost", Json.Int t.drop_cost);
            ("total_cost", Json.Int (t.reconfig_cost + t.drop_cost));
            ("recolorings", Json.Int t.recolorings);
            ("executed", Json.Int t.executed);
            ("rounds_since", Json.Int t.rounds_since);
            ("seconds_since", Json.Float (Float.max 0. (now -. t.last_beat_at)));
          ]
         @ latency
         @ [
             ( "alloc_minor_words_per_round",
               Json.Float (per_round t.minor0 minor1) );
             ( "alloc_major_words_per_round",
               Json.Float (per_round t.major0 major1) );
             ("major_collections", Json.Int gc.Gc.major_collections);
           ]
         @ (match t.extra with Some f -> f () | None -> [])
         @ if final then [ ("final", Json.Bool true) ] else []))
  in
  (match t.stream with
  | Some oc ->
      output_string oc (line ^ "\n");
      flush oc
  | None -> ());
  (match t.status_path with
  | Some path -> replace_file path (line ^ "\n")
  | None -> ());
  (match (t.expose_path, t.registry) with
  | Some path, Some reg -> replace_file path (Metrics.expose reg)
  | _ -> ());
  (match Flight_recorder.ambient () with
  | Some r -> Flight_recorder.record_snapshot r (Json.parse_exn line)
  | None -> ());
  t.last_line <- Some line;
  (* reset the window; the sample buffer is reused *)
  t.rounds_since <- 0;
  t.last_beat_at <- now;
  t.lat_len <- 0;
  t.minor0 <- minor1;
  t.major0 <- major1

(* The engine calls this once per round: lock/unlock inline (no
   Mutex.protect closure — a per-round allocation would show up in the
   BENCH_core alloc gate) and only integer stores on the fast path. *)
let observe_round t ~round ~delta ~recolorings ~executed ~dropped ~latency_us =
  Mutex.lock t.lock;
  (match
     if not t.closed then begin
       t.rounds <- t.rounds + 1;
       t.last_round <- round;
       t.recolorings <- t.recolorings + recolorings;
       t.reconfig_cost <- t.reconfig_cost + (delta * recolorings);
       t.executed <- t.executed + executed;
       t.drop_cost <- t.drop_cost + dropped;
       t.rounds_since <- t.rounds_since + 1;
       if latency_us >= 0 then begin
         if t.lat_len = Array.length t.lat then begin
           let bigger = Array.make (2 * t.lat_len) 0 in
           Array.blit t.lat 0 bigger 0 t.lat_len;
           t.lat <- bigger
         end;
         t.lat.(t.lat_len) <- min latency_us round_latency_max_us;
         t.lat_len <- t.lat_len + 1
       end;
       let due =
         t.rounds_since >= t.every_rounds
         ||
         match t.every_seconds with
         | Some s -> t.clock () -. t.last_beat_at >= s
         | None -> false
       in
       if due then beat_locked t ~final:false
     end
   with
  | () -> Mutex.unlock t.lock
  | exception e ->
      Mutex.unlock t.lock;
      raise e)

let beat t =
  Mutex.protect t.lock (fun () ->
      if (not t.closed) && (t.rounds_since > 0 || t.beats = 0) then
        beat_locked t ~final:false)

let finish t =
  Mutex.protect t.lock (fun () ->
      if not t.closed then begin
        beat_locked t ~final:true;
        t.closed <- true;
        match t.stream with Some oc -> close_out oc | None -> ()
      end)

let beats t = Mutex.protect t.lock (fun () -> t.beats)
let rounds_observed t = Mutex.protect t.lock (fun () -> t.rounds)
let last_line t = Mutex.protect t.lock (fun () -> t.last_line)

let scope : t option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

let with_heartbeat t thunk =
  let outer = Domain.DLS.get scope in
  Domain.DLS.set scope (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope outer) thunk

let ambient () = Domain.DLS.get scope
