(** The flight recorder: a fixed-capacity black-box of recent telemetry.

    A recorder retains the {e last N} typed events that flowed through
    it, plus a short ring of recent metrics snapshots (heartbeat lines),
    in O(capacity) memory no matter how long the run is — the piece the
    unbounded {!Sink.memory} buffer cannot provide for a long-lived
    scheduler.  When something goes wrong, {!dump} (or the automatic
    crash dump the {!Rrs_robust.Supervisor} takes on every classified
    failure) commits the retained window atomically next to the run
    artifact, so a failure is diagnosable without replaying the run.

    {b Per-domain recording.}  Like the profiler ([Rrs_prof]) each
    domain writes into its own ring — rings are keyed by
    [Domain.self ()] and registered lock-free — so concurrent emitters
    never contend on a shared cursor.  Every recorded event carries a
    global sequence number (one atomic increment), which is what lets
    {!recent} merge the per-domain rings back into emission order.
    [recent] and [dump] take each ring's lock briefly; recording takes
    only the calling domain's own ring lock, which is uncontended
    except against a concurrent dump.

    {b Retention contract.}  {!recent} returns exactly the
    min(capacity, recorded) most recent events in sequence order: an
    event is returned iff fewer than [capacity] events were recorded
    after it, globally.  (A domain's ring overwrites its slot only
    after that domain recorded [capacity] later events — which are
    also globally later — so the per-domain rings always cover the
    global suffix; [test/test_obs.ml] checks this against a full
    {!Sink.memory} trace by QCheck, including wraparound and
    multi-domain merges.)

    {b Non-perturbation.}  Attaching a recorder changes no decision:
    the 130-case differential suite ([bench/core.exe] part 2 and
    [test/test_differential.ml]) runs with a recorder and heartbeats
    attached and requires bit-identical results.  The cost of recording
    is measured into [BENCH_obs.json] next to the sink-overhead record
    (doc/TELEMETRY.md, "Live telemetry"). *)

type t

val create : ?capacity:int -> ?snapshot_capacity:int -> unit -> t
(** [capacity] (default 512) bounds the retained events;
    [snapshot_capacity] (default 32) bounds the retained metrics
    snapshots.  @raise Invalid_argument if either is [< 1]. *)

val capacity : t -> int

val record : t -> Event.t -> unit
(** Record one event into the calling domain's ring (evicting that
    ring's oldest entry once full). *)

val record_snapshot : t -> Json.t -> unit
(** Record one metrics snapshot (e.g. a heartbeat line) into the
    snapshot ring — what {!Heartbeat} calls on every beat when a
    recorder is ambient. *)

val sink : t -> Sink.t
(** A sink that records every event (and forwards nothing) — the
    always-on black-box attachment for otherwise untraced runs. *)

val attach : t -> Sink.t -> Sink.t
(** A sink that records every event and forwards it to the inner sink
    (compose with a JSONL trace or a {!Rrs_robust.Watchdog}). *)

val events_recorded : t -> int
(** Total events ever recorded (not just retained). *)

val recent : t -> Event.t list
(** The retained window, oldest first — the last
    min(capacity, recorded) events in global sequence order. *)

val snapshots : t -> Json.t list
(** Retained metrics snapshots, oldest first. *)

(** {2 Ambient scope}

    The active recorder is dynamically scoped through [Domain.DLS] and
    inherited by spawned domains ([split_from_parent]), the same
    pattern as the fault plane and the profiler: install it once
    around a sweep and every engine run, pool worker and supervisor
    attempt under it records into the same black-box. *)

val with_recorder : ?dump_dir:string -> t -> (unit -> 'a) -> 'a
(** Install [t] as the ambient recorder for the dynamic extent of the
    thunk (also on raise); domains spawned inside inherit it.
    [dump_dir], when given, arms automatic crash dumps: the
    {!Rrs_robust.Supervisor} writes {!crash_dump} there on every
    classified failure. *)

val ambient : unit -> t option
(** The ambient recorder of the calling domain, if any. *)

val crash_scope : unit -> (t * string) option
(** The ambient recorder together with its [dump_dir] — [None] unless
    {!with_recorder} was given one.  What the supervisor consults. *)

(** {2 Dumps} *)

val dump : ?name:string -> ?reason:string -> t -> string -> unit
(** [dump t path] commits the black-box to [path] as JSONL via the
    {!Sink.with_jsonl} temp+rename pattern — readers never observe a
    torn dump.  Line 1 is a [{"type":"flight_recorder",...}] header
    (capacity, events recorded/retained, and [name]/[reason] when
    given), followed by the retained events oldest-first, followed by
    the retained snapshots oldest-first. *)

val crash_dump_path : dir:string -> name:string -> string
(** [dir/crash-<name>.jsonl] with [name] sanitised to
    [[A-Za-z0-9._-]] — where {!crash_dump} writes, exposed so callers
    (CLI, bench) can find dumps without re-deriving the rule. *)

val crash_dump : t -> dir:string -> name:string -> reason:string -> string
(** Dump to {!crash_dump_path} and return the path.  Used by the
    supervisor on classified failures; any exception during the dump
    is the caller's to contain (the supervisor swallows it — a failed
    dump must never escalate a contained failure). *)
