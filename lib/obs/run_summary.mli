(** The canonical per-run artifact record.

    One [run_summary] is one line of JSONL: the identity of the run
    (id, kind, seed), its configuration, its cost breakdown, the
    analysis quantities measured on it (epochs, wraps, super-epochs,
    drop splits, …, as a flat name→value map so every producer can
    contribute what it has), and its phase timings.

    Producers: [rrs simulate --trace], [rrs experiment --out], and
    [bench/main.exe] ([BENCH_obs.json]).  The reader ({!of_line},
    {!load}) inverts the writer exactly: re-serialising a parsed line
    reproduces it byte for byte, which is what lets tests and tooling
    diff artifacts mechanically. *)

type phase_timing = { phase : string; seconds : float; count : int }

type t = {
  id : string;  (** experiment id, bench name, or family/policy pair *)
  kind : string;  (** ["simulate"], ["experiment"] or ["bench"] *)
  seed : int option;
  config : (string * string) list;  (** free-form, e.g. policy, n *)
  reconfig_cost : int;
  drop_cost : int;
  analysis : (string * float) list;  (** measured quantities by name *)
  timings : phase_timing list;
}

val make :
  ?seed:int ->
  ?config:(string * string) list ->
  ?reconfig_cost:int ->
  ?drop_cost:int ->
  ?analysis:(string * float) list ->
  ?timings:phase_timing list ->
  id:string ->
  kind:string ->
  unit ->
  t

val total_cost : t -> int

val strip_timings : t -> t
(** The summary with every wall-clock quantity zeroed: [seconds] of
    each phase timing, and analysis entries whose name ends in
    ["_seconds"].  Everything deterministic (costs, counts, config)
    is kept.  Two runs of the same work agree byte-for-byte on
    [to_line (strip_timings s)] regardless of machine load or how many
    domains ran it — the comparison tests and tooling use for
    sequential-vs-parallel artifact identity. *)

val to_json : t -> Json.t
(** Tagged [{"type":"run_summary",...}] with a fixed field order. *)

val of_json : Json.t -> (t, string) result

val to_line : t -> string
(** One JSONL line (no trailing newline). *)

val of_line : string -> (t, string) result

val write : out_channel -> t -> unit
(** [to_line] plus a newline. *)

val load : string -> (t list, string) result
(** Read a JSONL file, returning its run summaries in order.  Lines of
    other types (e.g. events in a [--trace] file) are skipped; blank
    lines are ignored; a malformed line is an error. *)

type torn_tail = { lineno : int; reason : string }

val load_tolerant : string -> (t list * torn_tail option, string) result
(** Like {!load}, but tolerates a malformed {e final} line: a process
    killed mid-write truncates exactly the line it was writing, which
    is necessarily the last one.  The torn line is skipped and reported
    so callers (e.g. [rrs experiment --resume]) can tell a clean
    artifact from a crashed one.  A malformed line anywhere before the
    tail is still a hard error — that is corruption, not a crash. *)
