type direction = Higher_better | Lower_better | Exact | Info

type rule = {
  pattern : string;
  direction : direction;
  rel_tol : float;
  abs_tol : float;
}

let rule ?(rel_tol = 0.) ?(abs_tol = 0.) pattern direction =
  { pattern; direction; rel_tol; abs_tol }

(* Gating philosophy (see .mli): deterministic-by-construction metrics
   exact; machine-relative ratios tight; absolute wall-clock loose or
   informational.  Order matters — first match wins. *)
let default_rules =
  [
    (* correctness-bearing counts: any drift is a failure *)
    rule "analysis.divergences" Exact;
    rule "analysis.uncontained" Exact;
    rule "analysis.identical" Exact;
    rule "analysis.cases" Exact;
    rule "analysis.contained" Exact;
    rule "analysis.artifacts_parseable" Exact;
    rule "cost.*" Exact;
    rule "analysis.rounds" Exact;
    rule "analysis.engine_runs" Exact;
    (* deterministic work counts: improvements fine, growth gated *)
    rule ~rel_tol:0.10 "analysis.ranking_updates" Lower_better;
    (* the flat hot path holds allocations near zero, so the band is
       tight: noise headroom only, any real regression trips it *)
    rule ~rel_tol:0.08 ~abs_tol:16. "analysis.alloc_*" Lower_better;
    (* machine-relative ratio — the load-bearing perf gate *)
    rule ~rel_tol:0.35 ~abs_tol:0.15 "analysis.speedup" Higher_better;
    (* absolute machine speed: gate only on order-of-magnitude collapse *)
    rule ~rel_tol:0.75 "analysis.*_rounds_per_sec" Higher_better;
    (* pure wall clock: never gate across machines *)
    rule "analysis.*_seconds" Info;
    rule "analysis.*_us" Info;
    rule "*" Info;
  ]

(* One ['*'] anywhere: the name must carry the pattern's prefix and
   suffix without overlapping.  ["analysis.*_rounds_per_sec"] matches
   ["analysis.incremental_rounds_per_sec"]; ["*"] matches anything. *)
let matches pattern name =
  match String.index_opt pattern '*' with
  | None -> String.equal pattern name
  | Some i ->
      let prefix = String.sub pattern 0 i in
      let suffix = String.sub pattern (i + 1) (String.length pattern - i - 1) in
      String.length name >= String.length prefix + String.length suffix
      && String.starts_with ~prefix name
      && String.ends_with ~suffix name

let resolve rules name =
  match List.find_opt (fun r -> matches r.pattern name) rules with
  | Some r -> r
  | None -> rule "*" Info (* unreachable with the default catch-all *)

type verdict = Regression | Improvement | Within | Informational

type delta = {
  id : string;
  metric : string;
  baseline : float;
  current : float;
  worsening : float;
  verdict : verdict;
  matched : rule;
}

type report = {
  deltas : delta list;
  missing_ids : string list;
  new_ids : string list;
  regressions : int;
}

(* Signed relative worsening: positive means the current value moved in
   the rule's bad direction.  Relative to |baseline|; a zero baseline
   with a differing current is infinite relative change. *)
let relative_worsening direction ~baseline ~current =
  let diff =
    match direction with
    | Higher_better -> baseline -. current
    | Lower_better | Exact | Info -> current -. baseline
  in
  if diff = 0. then 0.
  else if baseline = 0. then if diff > 0. then infinity else neg_infinity
  else diff /. Float.abs baseline

let judge (r : rule) ~baseline ~current =
  let worsening = relative_worsening r.direction ~baseline ~current in
  let verdict =
    match r.direction with
    | Info -> Informational
    | Exact -> if baseline = current then Within else Regression
    | Higher_better | Lower_better ->
        if worsening <= 0. then if worsening = 0. then Within else Improvement
        else begin
          let abs_worse =
            match r.direction with
            | Higher_better -> baseline -. current
            | _ -> current -. baseline
          in
          if worsening <= r.rel_tol || abs_worse <= r.abs_tol then Within
          else Regression
        end
  in
  (worsening, verdict)

let metrics_of (s : Run_summary.t) =
  [
    ("cost.reconfig", float_of_int s.reconfig_cost);
    ("cost.drop", float_of_int s.drop_cost);
    ("cost.total", float_of_int (Run_summary.total_cost s));
  ]
  @ List.map (fun (k, v) -> ("analysis." ^ k, v)) s.analysis

let severity = function
  | Regression -> 0
  | Improvement -> 1
  | Within -> 2
  | Informational -> 3

let magnitude d =
  let m = Float.abs d.worsening in
  if Float.is_nan m then 0. else m

let rank a b =
  match compare (severity a.verdict) (severity b.verdict) with
  | 0 -> (
      match compare (magnitude b) (magnitude a) with
      | 0 -> compare (a.id, a.metric) (b.id, b.metric)
      | c -> c)
  | c -> c

let compare_summaries ?(rules = []) ~baseline ~current () =
  let rules = rules @ default_rules in
  let find_current id =
    List.find_opt (fun (s : Run_summary.t) -> s.id = id) current
  in
  let deltas = ref [] in
  let missing = ref [] in
  List.iter
    (fun (b : Run_summary.t) ->
      match find_current b.id with
      | None -> missing := b.id :: !missing
      | Some c ->
          let current_metrics = metrics_of c in
          List.iter
            (fun (metric, bv) ->
              match List.assoc_opt metric current_metrics with
              | None ->
                  (* a metric the current run stopped producing: treat
                     like a missing record, scoped to the metric *)
                  deltas :=
                    {
                      id = b.id;
                      metric;
                      baseline = bv;
                      current = Float.nan;
                      worsening = infinity;
                      verdict = Regression;
                      matched = rule "*" Exact;
                    }
                    :: !deltas
              | Some cv ->
                  let r = resolve rules metric in
                  let worsening, verdict = judge r ~baseline:bv ~current:cv in
                  deltas :=
                    {
                      id = b.id;
                      metric;
                      baseline = bv;
                      current = cv;
                      worsening;
                      verdict;
                      matched = r;
                    }
                    :: !deltas)
            (metrics_of b))
    baseline;
  let baseline_ids = List.map (fun (s : Run_summary.t) -> s.id) baseline in
  let new_ids =
    List.filter_map
      (fun (s : Run_summary.t) ->
        if List.mem s.id baseline_ids then None else Some s.id)
      current
  in
  let deltas = List.sort rank !deltas in
  let missing_ids = List.rev !missing in
  let regression_deltas =
    List.length (List.filter (fun d -> d.verdict = Regression) deltas)
  in
  {
    deltas;
    missing_ids;
    new_ids;
    regressions = regression_deltas + List.length missing_ids;
  }

let ( let* ) = Result.bind

let compare_files ?rules ~baseline ~current () =
  let* b = Run_summary.load baseline in
  let* c = Run_summary.load current in
  Ok (compare_summaries ?rules ~baseline:b ~current:c ())

let ok report = report.regressions = 0

let verdict_tag = function
  | Regression -> "REGRESSION"
  | Improvement -> "improved"
  | Within -> "ok"
  | Informational -> "info"

let pct w =
  if Float.is_integer (w *. 100.) && Float.abs w < 100. then
    Printf.sprintf "%+.0f%%" (w *. 100.)
  else if Float.abs w = infinity then (if w > 0. then "+inf" else "-inf")
  else Printf.sprintf "%+.1f%%" (w *. 100.)

let render ?(max_rows = 40) report =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter (fun id -> line "MISSING: baseline id %S has no current record" id)
    report.missing_ids;
  List.iter (fun id -> line "new id (not in baseline): %s" id) report.new_ids;
  let shown = ref 0 in
  List.iter
    (fun d ->
      let gated = d.verdict = Regression in
      if gated || !shown < max_rows then begin
        if not gated then incr shown;
        line "%-10s %-28s %-34s %14g -> %-14g %s" (verdict_tag d.verdict) d.id
          d.metric d.baseline d.current
          (if d.matched.direction = Exact then
             if gated then "(exact)" else ""
           else pct d.worsening)
      end)
    report.deltas;
  let hidden =
    List.length (List.filter (fun d -> d.verdict <> Regression) report.deltas)
    - !shown
  in
  if hidden > 0 then line "... %d unremarkable metrics not shown" hidden;
  line "benchdiff: %d metric(s) compared, %d regression(s)%s"
    (List.length report.deltas)
    report.regressions
    (if report.regressions = 0 then " — PASS" else " — FAIL");
  Buffer.contents buf
