(** Event sinks: where instrumented modules send their {!Event.t}s.

    The contract that keeps tracing free when it is off: {b callers must
    guard emission with {!enabled}}, so that the event constructor (the
    only allocation) is never evaluated against {!null}:

    {[
      if Sink.enabled sink then
        Sink.emit sink (Event.Drop { round; color; count })
    ]}

    With [Sink.null] the instrumented hot paths therefore cost one
    branch per potential event and allocate nothing.

    {b Thread safety.}  {!emit} and {!count} are safe from any number
    of domains: the memory buffer is an atomic (lock-free push), and a
    jsonl sink writes each event as a single line under a per-sink
    mutex, so concurrent emitters never tear a JSONL line.  Event
    {e order} across domains is whatever the interleaving produced —
    within one domain, emission order is preserved.  A [callback]
    sink's function must be thread-safe itself if the sink is shared.
    {!events} reads a consistent snapshot but should be called after
    emitters have finished. *)

type t

val null : t
(** Discards everything; {!enabled} is [false]. *)

val memory : unit -> t
(** Buffers events in memory; read them back with {!events}. *)

val jsonl : out_channel -> t
(** Writes one canonical JSON line per event ({!Event.to_line}), each
    as one atomic write.  The channel is not closed by the sink; flush
    or close it yourself (and do not write to the channel from outside
    the sink while emitters are running).  Each emission passes the
    ["sink.jsonl"] fault probe ({!Rrs_fault.probe}) before taking the
    lock, so injected I/O failures never leave the mutex held. *)

val with_jsonl : string -> (t -> 'a) -> 'a
(** [with_jsonl path f] runs [f] with a {!jsonl} sink writing to a
    temporary file next to [path], then flushes, closes and atomically
    renames it into place.  Readers of [path] therefore never observe a
    half-written artifact.  The commit happens {e also when [f]
    raises}: a contained failure leaves the complete, parseable prefix
    of lines emitted so far — no buffered line is lost — which is what
    resumable sweeps rely on. *)

val callback : (Event.t -> unit) -> t
(** Calls the function on every event — for custom aggregation. *)

val enabled : t -> bool
(** [false] only for {!null}. *)

val emit : t -> Event.t -> unit
(** No-op on {!null} (but see the guard contract above). *)

val write_line : t -> string -> unit
(** Append one raw line (newline added) through a {!jsonl} sink's lock —
    how non-event artifact lines (run summaries) share the file with
    concurrent event emitters without tearing.  No-op on every other
    sink kind. *)

val events : t -> Event.t list
(** Chronological buffered events of a {!memory} sink; [[]] for every
    other sink. *)

val count : t -> int
(** Events emitted so far (0 for {!null}). *)
