type instrumented = { policy : Policy.t; eligibility : Eligibility.t }

(* Shared EDF reconfiguration scheme over [distinct_slots] slots.  The
   new cached set is the best [distinct_slots] of (currently cached ∪
   top-ranked nonidle additions); evictions happen only under capacity
   pressure and take the worst-ranked colors, exactly as in the paper. *)
let make_scheme ?sink ?registry ?(mode = Ranking.Incremental) ~name ~replicated
    ~distinct_slots (instance : Instance.t) =
  let eligibility = Eligibility.create ?sink instance in
  let cache =
    Cache_state.create ~num_colors:instance.num_colors ~distinct_slots
  in
  let delay = instance.delay in
  let counter =
    Option.map (fun r -> Rrs_obs.Metrics.counter r "ranking_update") registry
  in
  let index = Ranking.Index.lazily ?counter eligibility ~delay in
  (* The best-ranked [distinct_slots] eligible colors.  Incremental: a
     prefix query on the delta-maintained rank index.  Rebuild: the
     original full re-sort — the differential oracle. *)
  let top_ranked (view : Policy.view) =
    match mode with
    | Ranking.Rebuild ->
        Policy.take distinct_slots
          (Ranking.ranked_eligible eligibility view.pending ~delay
             ~exclude:(fun _ -> false))
    | Ranking.Incremental ->
        Ranking.Index.ranked_prefix (index view.pending) ~k:distinct_slots
  in
  let reconfigure (view : Policy.view) =
    Eligibility.begin_round eligibility ~view ~in_cache:(Cache_state.mem cache);
    let additions =
      List.filter_map
        (fun (color, key) ->
          if Ranking.is_nonidle_eligible key && not (Cache_state.mem cache color)
          then Some color
          else None)
        (top_ranked view)
    in
    let candidates =
      let cached = Cache_state.cached_colors cache in
      List.map
        (fun color ->
          (color, Ranking.key_of_color eligibility view.pending ~delay color))
        (cached @ additions)
    in
    let kept =
      candidates
      |> List.sort (fun (_, a) (_, b) -> Ranking.compare a b)
      |> Policy.take distinct_slots
      |> List.map fst
    in
    Cache_state.assign cache ~desired:kept;
    Cache_state.to_assignment cache ~replicated
  in
  { policy = { Policy.name; reconfigure }; eligibility }

let make ?sink ?registry ?mode instance ~n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Edf_policy.make: n must be a positive multiple of 2";
  make_scheme ?sink ?registry ?mode ~name:"edf" ~replicated:true
    ~distinct_slots:(n / 2) instance

let policy instance ~n = (make instance ~n).policy
let oracle_policy instance ~n = (make ~mode:Ranking.Rebuild instance ~n).policy

let make_seq ?sink ?registry ?mode instance ~n =
  if n < 1 then invalid_arg "Edf_policy.make_seq: n < 1";
  make_scheme ?sink ?registry ?mode ~name:"seq-edf" ~replicated:false
    ~distinct_slots:n instance

let seq_policy instance ~n = (make_seq instance ~n).policy

let seq_oracle_policy instance ~n =
  (make_seq ~mode:Ranking.Rebuild instance ~n).policy
