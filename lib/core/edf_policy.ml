type instrumented = { policy : Policy.t; eligibility : Eligibility.t }

(* Shared EDF reconfiguration scheme over [distinct_slots] slots.  The
   new cached set is the best [distinct_slots] of (currently cached ∪
   top-ranked nonidle additions); evictions happen only under capacity
   pressure and take the worst-ranked colors, exactly as in the paper.

   The Incremental arm runs entirely on reusable scratch buffers:
   prefix queries land in [top_buf], the candidate set is collected as
   packed rank keys in [cand] (the key embeds the color, so sorting the
   ints *is* sorting (color, key) pairs by rank), selection is an
   insertion sort over at most distinct_slots + k keys, and the slot
   assignment goes through [Cache_state.assign_array].  The Rebuild arm
   keeps the verbatim seed list pipeline — the differential oracle. *)

let make_scheme ?sink ?registry ?(mode = Ranking.Incremental) ~name ~replicated
    ~distinct_slots (instance : Instance.t) =
  let eligibility = Eligibility.create ?sink instance in
  let cache =
    Cache_state.create ~num_colors:instance.num_colors ~distinct_slots
  in
  let in_cache = Cache_state.mem cache in
  let delay = instance.delay in
  let counter =
    Option.map (fun r -> Rrs_obs.Metrics.counter r "ranking_update") registry
  in
  let index = Ranking.Index.lazily ?counter eligibility ~delay in
  let top_buf = Array.make (max 1 distinct_slots) 0 in
  let cand = Array.make (max 1 (2 * distinct_slots)) 0 in
  let desired = Array.make (max 1 distinct_slots) 0 in
  let reconfigure_incremental (view : Policy.view) =
    Eligibility.begin_round eligibility ~view ~in_cache;
    let idx = index view.pending in
    let top = Ranking.Index.ranked_prefix_into idx ~k:distinct_slots ~out:top_buf in
    (* candidates: currently cached colors, plus the top-ranked nonidle
       eligible colors not yet cached; all priced by their live packed
       rank key (identical to what the oracle's key_of_color computes) *)
    let ncand = ref 0 in
    let slots = Cache_state.live_slots cache in
    for s = 0 to Array.length slots - 1 do
      let c = slots.(s) in
      if c <> Types.black then begin
        cand.(!ncand) <-
          (Ranking.key_of_color eligibility view.pending ~delay c :> int);
        incr ncand
      end
    done;
    for i = 0 to top - 1 do
      let c = top_buf.(i) in
      let key = Ranking.Index.rank_key idx c in
      if Ranking.is_nonidle_eligible key && not (Cache_state.mem cache c) then begin
        cand.(!ncand) <- (key :> int);
        incr ncand
      end
    done;
    Policy.sort_int_prefix cand !ncand;
    let keep = min distinct_slots !ncand in
    for i = 0 to keep - 1 do
      desired.(i) <- Packed.key_color cand.(i)
    done;
    Cache_state.assign_array cache desired keep;
    Cache_state.to_assignment cache ~replicated
  in
  let reconfigure_rebuild (view : Policy.view) =
    Eligibility.begin_round eligibility ~view ~in_cache;
    let additions =
      List.filter_map
        (fun (color, key) ->
          if Ranking.is_nonidle_eligible key && not (Cache_state.mem cache color)
          then Some color
          else None)
        (Policy.take distinct_slots
           (Ranking.ranked_eligible eligibility view.pending ~delay
              ~exclude:(fun _ -> false)))
    in
    let candidates =
      let cached = Cache_state.cached_colors cache in
      List.map
        (fun color ->
          (color, Ranking.key_of_color eligibility view.pending ~delay color))
        (cached @ additions)
    in
    let kept =
      candidates
      |> List.sort (fun (_, a) (_, b) -> Ranking.compare a b)
      |> Policy.take distinct_slots
      |> List.map fst
    in
    Cache_state.assign cache ~desired:kept;
    Cache_state.to_assignment cache ~replicated
  in
  let reconfigure =
    match mode with
    | Ranking.Incremental -> reconfigure_incremental
    | Ranking.Rebuild -> reconfigure_rebuild
  in
  { policy = { Policy.name; reconfigure }; eligibility }

let make ?sink ?registry ?mode instance ~n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Edf_policy.make: n must be a positive multiple of 2";
  make_scheme ?sink ?registry ?mode ~name:"edf" ~replicated:true
    ~distinct_slots:(n / 2) instance

let policy instance ~n = (make instance ~n).policy
let oracle_policy instance ~n = (make ~mode:Ranking.Rebuild instance ~n).policy

let make_seq ?sink ?registry ?mode instance ~n =
  if n < 1 then invalid_arg "Edf_policy.make_seq: n < 1";
  make_scheme ?sink ?registry ?mode ~name:"seq-edf" ~replicated:false
    ~distinct_slots:n instance

let seq_policy instance ~n = (make_seq instance ~n).policy

let seq_oracle_policy instance ~n =
  (make_seq ~mode:Ranking.Rebuild instance ~n).policy
