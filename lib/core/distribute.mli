(** Algorithm Distribute (paper Section 4): reduces batched
    [Δ | 1 | D_ℓ | D_ℓ] to its rate-limited special case.

    Each batch of color [ℓ] is split, in rank order, into chunks of at
    most [D_ℓ] jobs; chunk [j] becomes a job batch of the fresh subcolor
    [(ℓ, j)] with the same delay bound.  The resulting instance is
    rate-limited, ΔLRU-EDF runs on it, and the final schedule replaces
    every subcolor with its original color: executions transfer one-to-one
    and reconfigurations can only merge (Lemma 4.2), which the engine's
    [cost_projection] hook accounts for exactly. *)

type mapping = {
  sub_instance : Instance.t;
  orig_of_sub : int array;  (** subcolor -> original color *)
  subs_of_orig : int list array;  (** original color -> its subcolors *)
}

val transform : Instance.t -> mapping
(** @raise Invalid_argument if the instance is not batched. *)

val project : mapping -> Types.color -> Types.color
(** Subcolor to original color; maps black to black. *)

val run :
  ?policy:Policy.factory ->
  ?sink:Rrs_obs.Sink.t ->
  Instance.t ->
  n:int ->
  Engine.result
(** Transform, run the policy (default ΔLRU-EDF) on the sub-instance with
    [n] resources, and account costs in projected (original) colors.
    [sink] receives the engine's round-phase events (in projected
    colors, like the cost accounting).  Drop counts in the result are
    indexed by {e subcolor}; use {!project} or compare totals only. *)
