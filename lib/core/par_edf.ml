type result = {
  drop_cost : int;
  executed : int;
  drops_by_color : int array;
}

(* Per round we take the best-ranked nonidle color — keyed by (earliest
   pending deadline, delay bound, color) — execute one of its jobs, and
   repeat up to m times.  Jobs within a color are FIFO = EDF.

   Incremental: one flat int-indexed heap over the nonidle colors,
   priced by the packed klass-0 rank key (int order = the tuple order
   above), kept in sync by {!Pending.on_front_change} (adds to idle
   queues, front-batch exhaustions, expiries); a round costs
   O(changes · log C + m log C) instead of rebuilding the heap from a
   full nonidle scan, and allocates nothing.  Rebuild:
   the original per-round scan-and-rebuild — the differential oracle.
   The selection sequences coincide because the key is a total order
   and both heaps always price a color at its live earliest deadline. *)
let run ?(mode = Ranking.Incremental) (instance : Instance.t) ~m =
  if m < 1 then invalid_arg "Par_edf.run: m < 1";
  let pending = Pending.create ~num_colors:instance.num_colors in
  let arrivals = Instance.arrivals_by_round instance in
  let dropped = ref 0 in
  let executed = ref 0 in
  let drops_by_color = Array.make instance.num_colors 0 in
  let execute_best =
    match mode with
    | Ranking.Incremental ->
        let module Iheap = Rrs_dstruct.Int_indexed_heap in
        let heap = Iheap.create ~capacity:(max instance.num_colors 1) in
        Pending.on_front_change pending (fun color ->
            let deadline = Pending.front_deadline pending color in
            if deadline >= 0 then
              Iheap.update heap color
                (Packed.pack_key ~klass:0 ~deadline
                   ~delay:instance.delay.(color) ~color)
            else Iheap.remove heap color);
        fun () ->
          let slots = ref m in
          let continue_ = ref true in
          while !slots > 0 && !continue_ do
            if Iheap.is_empty heap then continue_ := false
            else begin
              let color = Iheap.min_key heap in
              (* executing may exhaust the front batch, in which case
                 the listener reprices or removes [color] for us *)
              if Pending.execute pending color then begin
                incr executed;
                decr slots
              end
              else Iheap.remove heap color
            end
          done
    | Ranking.Rebuild ->
        let heap = Rrs_dstruct.Binary_heap.create ~cmp:compare () in
        fun () ->
          (* rebuild the candidate heap from the nonidle colors (their
             count is usually small and bounded by the number of colors) *)
          Rrs_dstruct.Binary_heap.clear heap;
          Pending.iter_nonidle pending (fun color _count ->
              match Pending.earliest_deadline pending color with
              | Some deadline ->
                  Rrs_dstruct.Binary_heap.add heap
                    (deadline, instance.delay.(color), color)
              | None -> ());
          let slots = ref m in
          while !slots > 0 && not (Rrs_dstruct.Binary_heap.is_empty heap) do
            let _, _, color = Rrs_dstruct.Binary_heap.pop_min heap in
            match Pending.execute_one pending color with
            | Some _ -> (
                incr executed;
                decr slots;
                match Pending.earliest_deadline pending color with
                | Some deadline ->
                    Rrs_dstruct.Binary_heap.add heap
                      (deadline, instance.delay.(color), color)
                | None -> ())
            | None -> ()
          done
  in
  for round = 0 to instance.horizon do
    List.iter
      (fun (color, count) ->
        dropped := !dropped + count;
        drops_by_color.(color) <- drops_by_color.(color) + count)
      (Pending.expire pending ~now:round);
    let batch = if round < Array.length arrivals then arrivals.(round) else [] in
    List.iter
      (fun (color, count) ->
        Pending.add pending color
          ~deadline:(round + instance.delay.(color))
          ~count)
      batch;
    execute_best ()
  done;
  { drop_cost = !dropped; executed = !executed; drops_by_color }

let drop_cost instance ~m = (run instance ~m).drop_cost
