(** Algorithm Par-EDF (paper Section 3.3): [m] resources viewed as one
    super-resource that executes, each round, up to [m] pending jobs with
    the best job ranks (ascending deadline, ties by increasing delay
    bound then the consistent color order) — reconfiguration is free and
    implicit.

    Its drop cost lower-bounds every offline algorithm's drop cost
    (Lemma 3.7, by EDF optimality), which makes it one half of our
    certified OPT lower bound. *)

type result = {
  drop_cost : int;
  executed : int;
  drops_by_color : int array;
}

val run : ?mode:Ranking.mode -> Instance.t -> m:int -> result
(** [mode] (default [Incremental]) selects the
    {!Rrs_dstruct.Indexed_heap}-backed hot path kept in sync by
    {!Pending.on_front_change}, or the original per-round
    scan-and-rebuild; both produce identical results.
    @raise Invalid_argument if [m < 1]. *)

val drop_cost : Instance.t -> m:int -> int
