(* Bit-packing of the ranking keys into single tagged ints.

   A native OCaml int carries 63 bits; we use the low 62 so every packed
   value is non-negative and plain [<] on packed values is exactly the
   lexicographic order on the unpacked fields (each field is
   non-negative and fits its width):

     rank key  [klass|deadline|delay|color]   2+23+20+17 = 62 bits
     recency   [bias - timestamp|color]         45+17     = 62 bits
     pair      [value|color]                    45+17     = 62 bits

   Field widths cover every workload the repo generates with headroom:
   2^17 colors (the ceiling of the packed hot path — twice the
   65536-color bench sweep), 2^20 delay bounds (the scaling workload
   sets delay = W = ceil_pow2(C), so 65536 colors needs delay 2^16; the
   adversarial appendix-B family reaches 2^(k + n/2 - 1), 2^17 in
   EXP-9), 2^23 rounds of deadline headroom (deadline = round + delay).
   Every packer validates its inputs and raises [Invalid_argument] on
   overflow; [Ranking.Index] additionally validates the whole instance
   (num_colors, max delay) once at build time so per-call guards never
   fire on accepted instances. *)

let color_bits = 17
let max_colors = 1 lsl color_bits
let color_mask = max_colors - 1
let delay_bits = 20
let max_delay = 1 lsl delay_bits
let deadline_bits = 23
let max_deadline = 1 lsl deadline_bits
let klass_bits = 2
let () = assert (klass_bits + deadline_bits + delay_bits + color_bits = 62)

let[@inline] check_color color =
  if color < 0 || color >= max_colors then
    invalid_arg "Packed: color out of range"

let[@inline] pack_key ~klass ~deadline ~delay ~color =
  if klass < 0 || klass > 3 then invalid_arg "Packed.pack_key: klass";
  if deadline < 0 || deadline >= max_deadline then
    invalid_arg "Packed.pack_key: deadline overflow";
  if delay < 0 || delay >= max_delay then
    invalid_arg "Packed.pack_key: delay overflow";
  check_color color;
  (((((klass lsl deadline_bits) lor deadline) lsl delay_bits) lor delay)
   lsl color_bits)
  lor color

let[@inline] key_klass k = (k lsr (deadline_bits + delay_bits + color_bits)) land 3
let[@inline] key_deadline k =
  (k lsr (delay_bits + color_bits)) land (max_deadline - 1)
let[@inline] key_delay k = (k lsr color_bits) land (max_delay - 1)
let[@inline] key_color k = k land color_mask

(* Recency: ΔLRU wants "most recent timestamp first, ties by ascending
   color", i.e. ascending (-timestamp, color).  Timestamps are >= -1 and
   bounded by the round count; biasing by 2^44 keeps the negated field
   non-negative so the packed value compares like the pair. *)
let ts_bias = 1 lsl (62 - color_bits - 1)

let[@inline] pack_recency ~timestamp ~color =
  if timestamp < -1 || timestamp >= ts_bias then
    invalid_arg "Packed.pack_recency: timestamp overflow";
  check_color color;
  ((ts_bias - timestamp) lsl color_bits) lor color

let[@inline] recency_timestamp p = ts_bias - (p lsr color_bits)
let[@inline] recency_color p = p land color_mask

(* Generic (value, color) pairs for the event heaps (due deadlines,
   boundary rounds): ascending value, ties by ascending color. *)
let max_pair_value = 1 lsl (62 - color_bits)

let[@inline] pack_pair ~value ~color =
  if value < 0 || value >= max_pair_value then
    invalid_arg "Packed.pack_pair: value overflow";
  check_color color;
  (value lsl color_bits) lor color

let[@inline] pair_value p = p lsr color_bits
let[@inline] pair_color p = p land color_mask
