(** The EDF-style ranking of colors shared by EDF, Seq-EDF and the EDF
    component of ΔLRU-EDF (paper Sections 3.1.2 and 3.3): nonidle colors
    first, then ascending color deadline, ties broken by increasing delay
    bound and then by the consistent color order (ascending ids).

    Ineligible colors are ranked strictly worse than all eligible colors
    (they are eviction fodder); among themselves they rank by color id. *)

type key = private int
(** Totally ordered rank key; smaller = better (cache-worthy).  The
    [(klass, deadline, delay, color)] tuple packed into one tagged int
    ({!Packed}), so {!compare} is plain integer comparison and the flat
    index heaps hold keys unboxed. *)

val compare : key -> key -> int

val pack_key : klass:int -> deadline:int -> delay:int -> color:int -> key
(** Direct field packing; the inverse of the accessors below.  Exposed
    for the packed-vs-record differential tests.
    @raise Invalid_argument on field overflow ({!Packed}). *)

val key_klass : key -> int
val key_deadline : key -> int
val key_delay : key -> int
val key_color : key -> int

val key_of_color :
  Eligibility.t -> Pending.t -> delay:int array -> Types.color -> key
(** Rank key of one color under the current state.  For nonidle colors
    the deadline used is the earliest pending deadline (equal to the
    color deadline [ℓ.dd] on batched instances); for idle eligible
    colors it is [ℓ.dd]. *)

val is_nonidle_eligible : key -> bool

val ranked_eligible :
  Eligibility.t ->
  Pending.t ->
  delay:int array ->
  exclude:(Types.color -> bool) ->
  (Types.color * key) list
(** All eligible colors not excluded, best rank first. *)

val timestamp_order :
  Eligibility.t -> Types.color list -> Types.color list
(** The ΔLRU selection order: most recent timestamp first, ties by the
    consistent color order (ascending id). *)

(** {2 Incremental maintenance}

    {!ranked_eligible}/{!timestamp_order} rebuild and re-sort the whole
    eligible set every round — O(C + E log E) per call even when nothing
    changed.  {!Index} maintains the same two orders under the typed
    change feed ({!Eligibility.on_change}, {!Pending.on_front_change}),
    paying O(log C) per state change and O(k log C) per prefix query.
    The list-sort functions stay as the reference oracle: an index query
    always returns exactly the prefix the oracle would. *)

type mode = Incremental | Rebuild
(** How a policy maintains its ranking: [Incremental] (the
    {!Index}-backed delta-driven hot path, the default) or [Rebuild]
    (the original per-round list sort — the differential oracle). *)

val mode_to_string : mode -> string

module Index : sig
  type t

  val create :
    ?counter:Rrs_obs.Metrics.counter ->
    Eligibility.t ->
    Pending.t ->
    delay:int array ->
    t
  (** Build the index from the current state (O(E log E) once) and
      subscribe to both change feeds; from then on every eligibility,
      deadline, timestamp and pending-front transition updates the
      affected color's keys in place.  Create it {e after} the state it
      snapshots is current (policies create it lazily on their first
      [reconfigure]).  [counter] (conventionally the registry's
      ["ranking_update"]) is bumped once per incremental heap
      operation. *)

  val lazily :
    ?counter:Rrs_obs.Metrics.counter ->
    Eligibility.t ->
    delay:int array ->
    Pending.t ->
    t
  (** Memoizing {!create}: the first application to a [Pending.t] builds
      the index, later applications return it.  Partially apply at
      policy-construction time, resolve inside [reconfigure] — the
      standard way policies defer the snapshot until the state is
      live. *)

  (** {3 Scratch-buffer queries — the zero-alloc hot path}

      Each writes the answer's colors into a caller-owned [out] buffer
      and returns how many were written, best rank first; the heaps are
      not modified and a warm call allocates nothing.  All three are
      wrapped in the ["ranking.query"] profiler span, balanced even if
      the body (e.g. a caller-supplied [exclude]) raises. *)

  val ranked_prefix_into : t -> k:int -> out:int array -> int
  (** The best-ranked [min k E] eligible colors; O(k log k).
      @raise Invalid_argument if [out] is too small. *)

  val ranked_prefix_excluding_into :
    t -> k:int -> excluded:int -> exclude:(Types.color -> bool) ->
    out:int array -> int
  (** Same, skipping colors for which [exclude] holds.  [excluded] must
      upper-bound the number of excluded colors present in the index. *)

  val recency_prefix_into : t -> k:int -> out:int array -> int
  (** The first [min k E] colors of the ΔLRU selection order. *)

  val rank_key : t -> Types.color -> key
  (** The indexed rank key of an eligible color — what
      {!key_of_color} would recompute, read straight from the index;
      zero-alloc.
      @raise Not_found if the color is not in the index. *)

  (** {3 List-building wrappers — cold paths for oracle and tests} *)

  val ranked_prefix : t -> k:int -> (Types.color * key) list
  (** The best-ranked [min k E] eligible colors, best first — equal to
      [Policy.take k (ranked_eligible ...)] with no exclusion;
      O(k log C), the heap is not modified. *)

  val ranked_prefix_excluding :
    t ->
    k:int ->
    excluded:int ->
    exclude:(Types.color -> bool) ->
    (Types.color * key) list
  (** Same, skipping colors for which [exclude] holds.  [excluded] must
      upper-bound the number of excluded colors present in the index
      (the ΔLRU-EDF caller passes its LRU quota); O((k+excluded) log C). *)

  val recency_prefix : t -> k:int -> Types.color list
  (** The first [min k E] colors of the ΔLRU selection order — equal to
      [Policy.take k (timestamp_order elig (eligible_colors elig))]. *)

  val ranked_all : t -> (Types.color * key) list
  (** Every eligible color, best rank first — the full oracle order, for
      differential checks. *)

  val recency_all : t -> Types.color list

  val eligible_count : t -> int

  val updates : t -> int
  (** Incremental heap operations performed so far (the quantity the
      ["ranking_update"] counter mirrors). *)
end
