type bucket = { deadline : int; mutable count : int }
type color_queue = { q : bucket Queue.t; mutable back : bucket option }

type t = {
  queues : color_queue array; (* per color, deadline-ascending *)
  totals : int array;
  due : (int * int) Rrs_dstruct.Binary_heap.t; (* (deadline, color), lazy *)
  mutable grand_total : int;
  mutable nonidle : int;
  mutable front_listeners : (int -> unit) list; (* registration order *)
}

let create ~num_colors =
  {
    queues =
      Array.init num_colors (fun _ -> { q = Queue.create (); back = None });
    totals = Array.make num_colors 0;
    due = Rrs_dstruct.Binary_heap.create ~cmp:compare ();
    grand_total = 0;
    nonidle = 0;
    front_listeners = [];
  }

let on_front_change t f = t.front_listeners <- t.front_listeners @ [ f ]

let notify_front t color =
  match t.front_listeners with
  | [] -> ()
  | listeners -> List.iter (fun f -> f color) listeners

let num_colors t = Array.length t.queues

let bump t color delta =
  let before = t.totals.(color) in
  let after = before + delta in
  t.totals.(color) <- after;
  t.grand_total <- t.grand_total + delta;
  if before = 0 && after > 0 then t.nonidle <- t.nonidle + 1
  else if before > 0 && after = 0 then t.nonidle <- t.nonidle - 1

let sync_back cq = if Queue.is_empty cq.q then cq.back <- None

let add t color ~deadline ~count =
  if count < 0 then invalid_arg "Pending.add: negative count";
  if count > 0 then begin
    let cq = t.queues.(color) in
    (match cq.back with
    | Some back when deadline < back.deadline ->
        invalid_arg "Pending.add: deadline out of order"
    | _ -> ());
    let was_idle = Queue.is_empty cq.q in
    (match cq.back with
    | Some back when back.deadline = deadline ->
        back.count <- back.count + count
    | _ ->
        let bucket = { deadline; count } in
        Queue.add bucket cq.q;
        cq.back <- Some bucket;
        Rrs_dstruct.Binary_heap.add t.due (deadline, color));
    bump t color count;
    (* the front (earliest deadline / idleness) only changes when the
       queue was empty; appends behind an existing front are invisible
       to deadline-keyed consumers *)
    if was_idle then notify_front t color
  end

let total t color = t.totals.(color)
let grand_total t = t.grand_total
let is_idle t color = t.totals.(color) = 0

let earliest_deadline t color =
  match Queue.peek_opt t.queues.(color).q with
  | None -> None
  | Some b -> Some b.deadline

let execute_one t color =
  let cq = t.queues.(color) in
  match Queue.peek_opt cq.q with
  | None -> None
  | Some b ->
      b.count <- b.count - 1;
      let exhausted = b.count = 0 in
      if exhausted then begin
        ignore (Queue.pop cq.q);
        sync_back cq
      end;
      bump t color (-1);
      if exhausted then notify_front t color;
      Some b.deadline

(* Drain this color's expired front buckets; the heap entry that led us
   here may be stale (bucket already consumed), which is fine. *)
let expire_color t color ~now =
  let cq = t.queues.(color) in
  let dropped = ref 0 in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt cq.q with
    | Some b when b.deadline <= now ->
        dropped := !dropped + b.count;
        ignore (Queue.pop cq.q)
    | _ -> continue := false
  done;
  sync_back cq;
  if !dropped > 0 then begin
    bump t color (- !dropped);
    notify_front t color
  end;
  !dropped

let expire t ~now =
  let affected = ref [] in
  let continue = ref true in
  while !continue do
    match Rrs_dstruct.Binary_heap.peek_min_opt t.due with
    | Some (deadline, color) when deadline <= now ->
        ignore (Rrs_dstruct.Binary_heap.pop_min t.due);
        let dropped = expire_color t color ~now in
        if dropped > 0 then affected := (color, dropped) :: !affected
    | Some _ | None ->
        (* first entry not due yet (or empty): stop without touching it *)
        continue := false
  done;
  List.sort compare !affected

let drop_all t color =
  let cq = t.queues.(color) in
  let dropped = t.totals.(color) in
  Queue.clear cq.q;
  cq.back <- None;
  if dropped > 0 then begin
    bump t color (-dropped);
    notify_front t color
  end;
  dropped

let nonidle_count t = t.nonidle

let iter_nonidle t f =
  Array.iteri (fun color n -> if n > 0 then f color n) t.totals

let snapshot t =
  Array.map
    (fun cq ->
      List.rev (Queue.fold (fun acc b -> (b.deadline, b.count) :: acc) [] cq.q))
    t.queues
