type bucket = { deadline : int; mutable count : int }
type color_queue = { q : bucket Queue.t; mutable back : bucket option }

type t = {
  queues : color_queue array; (* per color, deadline-ascending *)
  totals : int array;
  due : Rrs_dstruct.Int_heap.t; (* packed (deadline, color), lazy *)
  mutable grand_total : int;
  mutable nonidle : int;
  (* listeners in registration order, iterated without allocating *)
  mutable front_listeners : (int -> unit) array;
  mutable front_listener_count : int;
}

let create ~num_colors =
  if num_colors > Packed.max_colors then
    invalid_arg "Pending.create: num_colors exceeds the packed color field";
  {
    queues =
      Array.init num_colors (fun _ -> { q = Queue.create (); back = None });
    totals = Array.make num_colors 0;
    due = Rrs_dstruct.Int_heap.create ();
    grand_total = 0;
    nonidle = 0;
    front_listeners = [||];
    front_listener_count = 0;
  }

let on_front_change t f =
  let n = t.front_listener_count in
  if n = Array.length t.front_listeners then begin
    let bigger = Array.make (Stdlib.max 4 (2 * n)) f in
    Array.blit t.front_listeners 0 bigger 0 n;
    t.front_listeners <- bigger
  end;
  t.front_listeners.(n) <- f;
  t.front_listener_count <- n + 1

let notify_front t color =
  for i = 0 to t.front_listener_count - 1 do
    (Array.unsafe_get t.front_listeners i) color
  done

let num_colors t = Array.length t.queues

let bump t color delta =
  let before = t.totals.(color) in
  let after = before + delta in
  t.totals.(color) <- after;
  t.grand_total <- t.grand_total + delta;
  if before = 0 && after > 0 then t.nonidle <- t.nonidle + 1
  else if before > 0 && after = 0 then t.nonidle <- t.nonidle - 1

let sync_back cq = if Queue.is_empty cq.q then cq.back <- None

let add t color ~deadline ~count =
  if count < 0 then invalid_arg "Pending.add: negative count";
  if count > 0 then begin
    let cq = t.queues.(color) in
    (match cq.back with
    | Some back when deadline < back.deadline ->
        invalid_arg "Pending.add: deadline out of order"
    | _ -> ());
    let was_idle = Queue.is_empty cq.q in
    (match cq.back with
    | Some back when back.deadline = deadline ->
        back.count <- back.count + count
    | _ ->
        let bucket = { deadline; count } in
        Queue.add bucket cq.q;
        cq.back <- Some bucket;
        Rrs_dstruct.Int_heap.add t.due
          (Packed.pack_pair ~value:deadline ~color));
    bump t color count;
    (* the front (earliest deadline / idleness) only changes when the
       queue was empty; appends behind an existing front are invisible
       to deadline-keyed consumers *)
    if was_idle then notify_front t color
  end

let total t color = t.totals.(color)
let grand_total t = t.grand_total
let is_idle t color = t.totals.(color) = 0

(* Zero-alloc front accessor for the hot path; [-1] encodes idleness
   (deadlines are non-negative by construction). *)
let front_deadline t color =
  let q = t.queues.(color).q in
  if Queue.is_empty q then -1 else (Queue.peek q).deadline

let earliest_deadline t color =
  let d = front_deadline t color in
  if d < 0 then None else Some d

(* Consume the earliest-deadline pending job; [true] if one existed.
   The option-returning wrapper below allocates and is kept off the
   engine's per-resource execution loop. *)
let execute t color =
  let cq = t.queues.(color) in
  if Queue.is_empty cq.q then false
  else begin
    let b = Queue.peek cq.q in
    b.count <- b.count - 1;
    let exhausted = b.count = 0 in
    if exhausted then begin
      ignore (Queue.pop cq.q);
      sync_back cq
    end;
    bump t color (-1);
    if exhausted then notify_front t color;
    true
  end

let execute_one t color =
  let deadline = front_deadline t color in
  if execute t color then Some deadline else None

(* Drain this color's expired front buckets; the heap entry that led us
   here may be stale (bucket already consumed), which is fine. *)
let expire_color t color ~now =
  let cq = t.queues.(color) in
  let dropped = ref 0 in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt cq.q with
    | Some b when b.deadline <= now ->
        dropped := !dropped + b.count;
        ignore (Queue.pop cq.q)
    | _ -> continue := false
  done;
  sync_back cq;
  if !dropped > 0 then begin
    bump t color (- !dropped);
    notify_front t color
  end;
  !dropped

let expire t ~now =
  let affected = ref [] in
  let continue = ref true in
  while !continue do
    if Rrs_dstruct.Int_heap.is_empty t.due then continue := false
    else begin
      let packed = Rrs_dstruct.Int_heap.min t.due in
      if Packed.pair_value packed <= now then begin
        ignore (Rrs_dstruct.Int_heap.pop_min t.due);
        let color = Packed.pair_color packed in
        let dropped = expire_color t color ~now in
        if dropped > 0 then affected := (color, dropped) :: !affected
      end
      else
        (* first entry not due yet: stop without touching it *)
        continue := false
    end
  done;
  List.sort compare !affected

let drop_all t color =
  let cq = t.queues.(color) in
  let dropped = t.totals.(color) in
  Queue.clear cq.q;
  cq.back <- None;
  if dropped > 0 then begin
    bump t color (-dropped);
    notify_front t color
  end;
  dropped

let nonidle_count t = t.nonidle

let iter_nonidle t f =
  Array.iteri (fun color n -> if n > 0 then f color n) t.totals

let snapshot t =
  Array.map
    (fun cq ->
      List.rev (Queue.fold (fun acc b -> (b.deadline, b.count) :: acc) [] cq.q))
    t.queues
