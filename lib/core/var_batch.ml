let batched_delay d =
  if d < 1 then invalid_arg "Var_batch.batched_delay";
  if d = 1 then 1 else Types.floor_pow2 d / 2

let transform (instance : Instance.t) =
  Rrs_prof.span "var_batch.transform" @@ fun () ->
  let delay' = Array.map batched_delay instance.delay in
  let arrivals =
    Array.to_list instance.arrivals
    |> List.map (fun (a : Types.arrival) ->
           let d' = delay'.(a.color) in
           if instance.delay.(a.color) = 1 then a
           else
             (* delay to the start of the next half-block of d' *)
             let i = a.round / d' in
             { a with round = (i + 1) * d' })
  in
  Instance.create
    ~name:(instance.name ^ "+varbatch")
    ~delta:instance.delta ~delay:delay' ~arrivals ()

let run ?(policy = Lru_edf.policy) ?sink instance ~n =
  Distribute.run ~policy ?sink (transform instance) ~n
