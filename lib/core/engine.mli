(** The round engine: drives the four phases of every round
    (drop → arrival → reconfigure → execute) against a {!Policy.t} and
    accounts costs.

    One engine run resolves every job of the instance: simulation
    continues through [Instance.horizon], whose final drop phase expires
    the last pending jobs.

    [mini_rounds] repeats the reconfiguration and execution phases within
    each round, implementing the paper's double-speed schedules
    (Section 3.3) with the same code path.

    [cost_projection] recolors the cost accounting (not the policy's own
    view): when set, a reconfiguration is only charged if the *projected*
    colors differ.  The {!Distribute} reduction uses this to price its
    final schedule, in which all subcolors [(ℓ, j)] of a color collapse
    back to [ℓ] (paper, Lemma 4.2).

    [sink] receives a typed {!Rrs_obs.Event.t} for every round-phase
    action (drop, arrival, mini-round start, charged reconfiguration,
    execution).  Reconfigure/Drop/Execute events carry post-projection
    colors, so the event stream always reproduces the cost accounting.
    With the default {!Rrs_obs.Sink.null} the engine allocates nothing
    for tracing and pays one predictable branch per potential event.

    Fault probes ({!Rrs_fault.probe}): ["engine.run"] once per run,
    ["engine.round"] at the top of every round — free without an
    installed plan, and the hooks an injection campaign uses to crash
    or stall a run mid-flight.

    Profiling spans ({!Rrs_prof}): ["engine.run"], per-round
    ["engine.round"] with child spans ["engine.drop"],
    ["engine.arrival"], ["engine.reconfigure"] and ["engine.execute"]
    per mini-round.  With no profiler attached each span site is one
    atomic load and a branch (see doc/TELEMETRY.md, "Profiling").

    [registry], when given, receives the engine's self-measurement:
    the ["engine_round_latency_us"] histogram (exact per-round wall
    latency in microseconds, clamped at 65535), the
    ["alloc_minor_words_per_round"] / ["alloc_promoted_words_per_round"]
    / ["alloc_major_words_per_round"] gauges (GC counter deltas over
    the run divided by rounds), and the ["engine_rounds"] counter.
    Without it the engine takes no clock readings and no GC samples.

    [heartbeat] receives one {!Rrs_obs.Heartbeat.observe_round} per
    round (this round's recolorings/executions/drops plus its wall
    latency); when the config carries none, the ambient heartbeat
    ({!Rrs_obs.Heartbeat.with_heartbeat}) is observed instead.  A
    heartbeat only reads the engine's counters — it cannot perturb a
    decision (doc/TELEMETRY.md, "Live telemetry"). *)

type config = {
  n : int;  (** resources given to the policy *)
  mini_rounds : int;  (** 1 = uni-speed, 2 = double-speed *)
  record_schedule : bool;
  cost_projection : (Types.color -> Types.color) option;
  sink : Rrs_obs.Sink.t;  (** round-phase event sink *)
  registry : Rrs_obs.Metrics.t option;
      (** round-latency / allocation self-measurement target *)
  heartbeat : Rrs_obs.Heartbeat.t option;
      (** per-round health reporting; [None] = observe the ambient one *)
}

val round_latency_max_us : int
(** Top bucket of the ["engine_round_latency_us"] histogram (65535 µs);
    slower rounds clamp into it. *)

val config :
  ?mini_rounds:int ->
  ?record_schedule:bool ->
  ?cost_projection:(Types.color -> Types.color) ->
  ?sink:Rrs_obs.Sink.t ->
  ?registry:Rrs_obs.Metrics.t ->
  ?heartbeat:Rrs_obs.Heartbeat.t ->
  n:int ->
  unit ->
  config
(** @raise Invalid_argument if [n < 1] or [mini_rounds < 1]. *)

type result = {
  cost : Cost.t;
  executed : int;
  dropped : int;
  reconfigurations : int;  (** recolorings charged (post-projection) *)
  drops_by_color : int array;
  executions_by_color : int array;
  rounds_simulated : int;
  schedule : Schedule.t option;
  final_cache : Types.color array;
}

val run : config -> Instance.t -> Policy.factory -> result
(** Runs the policy on the instance to completion.
    @raise Invalid_argument if the policy returns an assignment of the
    wrong length or with an out-of-range color. *)

val run_policy : config -> Instance.t -> Policy.t -> result
(** Same with an already-instantiated policy (single use: policies are
    stateful). *)
