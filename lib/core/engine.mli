(** The round engine: drives the four phases of every round
    (drop → arrival → reconfigure → execute) against a {!Policy.t} and
    accounts costs.

    One engine run resolves every job of the instance: simulation
    continues through [Instance.horizon], whose final drop phase expires
    the last pending jobs.

    [mini_rounds] repeats the reconfiguration and execution phases within
    each round, implementing the paper's double-speed schedules
    (Section 3.3) with the same code path.

    [cost_projection] recolors the cost accounting (not the policy's own
    view): when set, a reconfiguration is only charged if the *projected*
    colors differ.  The {!Distribute} reduction uses this to price its
    final schedule, in which all subcolors [(ℓ, j)] of a color collapse
    back to [ℓ] (paper, Lemma 4.2).

    [sink] receives a typed {!Rrs_obs.Event.t} for every round-phase
    action (drop, arrival, mini-round start, charged reconfiguration,
    execution).  Reconfigure/Drop/Execute events carry post-projection
    colors, so the event stream always reproduces the cost accounting.
    With the default {!Rrs_obs.Sink.null} the engine allocates nothing
    for tracing and pays one predictable branch per potential event.

    Fault probes ({!Rrs_fault.probe}): ["engine.run"] once per run,
    ["engine.round"] at the top of every round — free without an
    installed plan, and the hooks an injection campaign uses to crash
    or stall a run mid-flight.

    Profiling spans ({!Rrs_prof}): ["engine.run"], per-round
    ["engine.round"] with child spans ["engine.drop"],
    ["engine.arrival"], ["engine.reconfigure"] and ["engine.execute"]
    per mini-round.  With no profiler attached each span site is one
    atomic load and a branch (see doc/TELEMETRY.md, "Profiling").

    [registry], when given, receives the engine's self-measurement:
    the ["engine_round_latency_us"] histogram (exact per-round wall
    latency in microseconds, clamped at 65535), the
    ["alloc_minor_words_per_round"] / ["alloc_promoted_words_per_round"]
    / ["alloc_major_words_per_round"] gauges (GC counter deltas over
    the run divided by rounds), and the ["engine_rounds"] counter.
    Without it the engine takes no clock readings and no GC samples.

    [heartbeat] receives one {!Rrs_obs.Heartbeat.observe_round} per
    round (this round's recolorings/executions/drops plus its wall
    latency); when the config carries none, the ambient heartbeat
    ({!Rrs_obs.Heartbeat.with_heartbeat}) is observed instead.  A
    heartbeat only reads the engine's counters — it cannot perturb a
    decision (doc/TELEMETRY.md, "Live telemetry"). *)

type config = {
  n : int;  (** resources given to the policy *)
  mini_rounds : int;  (** 1 = uni-speed, 2 = double-speed *)
  record_schedule : bool;
  cost_projection : (Types.color -> Types.color) option;
  sink : Rrs_obs.Sink.t;  (** round-phase event sink *)
  registry : Rrs_obs.Metrics.t option;
      (** round-latency / allocation self-measurement target *)
  heartbeat : Rrs_obs.Heartbeat.t option;
      (** per-round health reporting; [None] = observe the ambient one *)
}

val round_latency_max_us : int
(** Top bucket of the ["engine_round_latency_us"] histogram (65535 µs);
    slower rounds clamp into it. *)

val config :
  ?mini_rounds:int ->
  ?record_schedule:bool ->
  ?cost_projection:(Types.color -> Types.color) ->
  ?sink:Rrs_obs.Sink.t ->
  ?registry:Rrs_obs.Metrics.t ->
  ?heartbeat:Rrs_obs.Heartbeat.t ->
  n:int ->
  unit ->
  config
(** @raise Invalid_argument if [n < 1] or [mini_rounds < 1]. *)

type result = {
  cost : Cost.t;
  executed : int;
  dropped : int;
  reconfigurations : int;  (** recolorings charged (post-projection) *)
  drops_by_color : int array;
  executions_by_color : int array;
  rounds_simulated : int;
  schedule : Schedule.t option;
  final_cache : Types.color array;
}

(** A persistent, incrementally stepped engine.

    A session is the batch loop of {!run} taken apart: it holds the
    cache, the pending-job store (and through the policy the
    eligibility state, ranking index and super-epochs), and the cost
    accounting as live state, and exposes the round as an explicit
    {!Session.step}.  Two construction modes:

    - {!Session.of_instance} preloads a built workload — the batch
      path.  {!run} and {!run_policy} are thin drivers over it, so a
      stepped session is decision-identical to the monolithic loop.
    - {!Session.create} opens an arrival {e stream}: jobs enter through
      {!Session.feed} and capacity / delay-bound / Δ parameters may
      change between rounds through {!Session.reconfigure} (the paper's
      namesake operation, lifted from the instance to the session).
      Arrival buckets are discarded as their round executes, so a
      streamed session's memory is bounded by its feed lookahead and
      the pending-job population, never by the rounds elapsed.

    Determinism contract: a session's evolution is a pure function of
    its creation parameters and the sequence of [feed]/[reconfigure]/
    [step] calls.  Replaying that sequence reproduces the schedule
    byte-identically — the foundation of the service layer's
    journal-replay restore (doc/SERVICE.md). *)
module Session : sig
  type t

  val of_instance : config -> Instance.t -> Policy.t -> t
  (** Batch session over a preloaded instance; the policy must be
      instantiated for this instance and [config.n].  Stepping it
      [instance.horizon + 1] times and calling {!finish} is exactly
      {!run_policy}. *)

  val create :
    ?name:string -> config -> delta:int -> delay:int array -> Policy.factory -> t
  (** Streamed session: [delay.(c)] is color [c]'s delay bound, the
      array length the color universe.  The factory is retained so
      {!reconfigure} can re-instantiate the policy at a new operating
      point.
      @raise Invalid_argument on invalid [delta]/[delay] (as
      {!Instance.create}) or more than {!Packed.max_colors} colors. *)

  (** {2 Driving} *)

  type feed_error =
    [ `Color_out_of_range of int * int  (** color, universe size *)
    | `Count_not_positive of int
    | `Round_in_past of int * int  (** requested round, current round *)
    | `Preloaded  (** session was built by {!of_instance} *)
    | `Finished ]

  val string_of_feed_error : feed_error -> string

  val feed :
    t -> round:int -> color:int -> count:int -> (unit, feed_error) Stdlib.result
  (** Inject [count] jobs of [color] arriving at [round] (current round
      or later).  Feeds for one round accumulate; order within a round
      follows feed order. *)

  val step : t -> unit
  (** Execute the next round: drop → arrival → [mini_rounds] ×
      (reconfigure → execute), with the same event emission, fault
      probes, profiling spans and heartbeat observation as {!run}.
      @raise Invalid_argument if the session is finished, or if the
      policy returns a malformed assignment. *)

  type reconfigure_error =
    [ `Bad_delta of int
    | `Bad_n of int
    | `Bad_delay of int * int  (** color, requested delay *)
    | `Unknown_color of int
    | `Delay_reduced_while_pending of int
      (** shrinking a delay bound with jobs of that color still pending
          would reorder their deadlines; drain the color first *)
    | `No_factory  (** {!of_instance} sessions can't re-derive a policy *)
    | `Policy_rejected of string
    | `Finished ]

  val string_of_reconfigure_error : reconfigure_error -> string

  val reconfigure :
    t ->
    ?delta:int ->
    ?n:int ->
    ?delay:(int * int) list ->
    unit ->
    (unit, reconfigure_error) Stdlib.result
  (** Change Δ, the resource count and/or per-color delay bounds
      [(color, bound)] between rounds.  Validates everything before
      mutating anything; on success the policy is re-instantiated at
      the new operating point (cache colors persist — growing [n]
      black-pads, shrinking truncates).  Reconfiguration itself is not
      charged; subsequent recolorings are charged at the Δ in force
      when they happen. *)

  val finish : ?expect_drained:bool -> t -> result
  (** Seal the session and return its accounting.  [expect_drained]
      asserts no jobs are pending (the batch drivers' invariant at
      horizon).  The session accepts no calls afterwards. *)

  (** {2 Observation} *)

  val round : t -> int
  (** Next round to execute = rounds executed so far. *)

  val n : t -> int

  val delta : t -> int

  val delay : t -> int array
  (** A copy. *)

  val num_colors : t -> int

  val pending_jobs : t -> int

  val pending_of : t -> Types.color -> int

  val nonidle_colors : t -> int

  val future_arrivals : t -> int
  (** Jobs fed (or preloaded) for the current round or later that have
      not yet entered the pending store. *)

  val cache : t -> Types.color array
  (** A copy of the current configuration. *)

  val executed : t -> int

  val dropped : t -> int

  val reconfigurations : t -> int

  val cost : t -> Cost.t
  (** Accounting so far; the same value {!finish} will seal. *)

  val finished : t -> bool

  val set_heartbeat : t -> Rrs_obs.Heartbeat.t option -> unit
  (** Replace the session's heartbeat.  The service layer restores a
      session with no heartbeat (journal replay must not beat), then
      attaches the live one. *)
end

val run : config -> Instance.t -> Policy.factory -> result
(** Runs the policy on the instance to completion.
    @raise Invalid_argument if the policy returns an assignment of the
    wrong length or with an out-of-range color. *)

val run_policy : config -> Instance.t -> Policy.t -> result
(** Same with an already-instantiated policy (single use: policies are
    stateful). *)
