(** Algorithm ΔLRU-EDF (paper Section 3.1.3) — the paper's main
    contribution: a combination of ΔLRU and EDF that is resource
    competitive for rate-limited [Δ | 1 | D_ℓ | D_ℓ] with power-of-two
    delay bounds (Theorem 1).

    Reconfiguration scheme per round (with [n] resources, [n] a multiple
    of 4):
    - the ΔLRU component selects the [n/4] eligible colors with the most
      recent timestamps (the {e LRU colors});
    - the remaining eligible colors are ranked EDF-style; every nonidle
      color among the top [n/4] rankings that is not already cached is
      brought in;
    - when the distinct capacity [n/2] overflows, the lowest-ranked
      non-LRU cached color is evicted (repeatedly);
    - the second half of the cache replicates the first, so every cached
      color executes up to two jobs per round.

    The LRU component stops the thrashing that sinks pure EDF; the EDF
    component stops the underutilization that sinks pure ΔLRU.

    {!make_tuned} exposes the design space around the paper's point for
    ablation studies: the split of the distinct capacity between the two
    components, and the replication invariant. *)

type instrumented = { policy : Policy.t; eligibility : Eligibility.t }

val make :
  ?sink:Rrs_obs.Sink.t ->
  ?registry:Rrs_obs.Metrics.t ->
  ?mode:Ranking.mode ->
  Instance.t ->
  n:int ->
  instrumented
(** The paper's configuration: [n/4] LRU slots, [n/4] EDF slots,
    replicated.  [sink] is handed to the underlying
    {!Eligibility.create}, streaming the analysis events.  [mode]
    (default [Incremental]) selects the {!Ranking.Index}-backed hot
    path or the original per-round re-sorts; both make identical
    decisions.  [registry], when given, receives the ["ranking_update"]
    counter.
    @raise Invalid_argument if [n] is not a positive multiple of 4. *)

val policy : Policy.factory

val oracle_policy : Policy.factory
(** [policy] forced to [Rebuild] mode — the differential oracle. *)

val make_tuned :
  ?sink:Rrs_obs.Sink.t ->
  ?registry:Rrs_obs.Metrics.t ->
  ?mode:Ranking.mode ->
  lru_slots:int ->
  distinct_slots:int ->
  replicated:bool ->
  Instance.t ->
  n:int ->
  instrumented
(** Ablation variant: [lru_slots] of the [distinct_slots] go to the ΔLRU
    component, the rest to the EDF component (whose addition quota equals
    its slot count).  [lru_slots = distinct_slots] degenerates to ΔLRU,
    [lru_slots = 0] to EDF.  When [replicated], [n] must equal
    [2 * distinct_slots]; otherwise [n = distinct_slots].
    @raise Invalid_argument on inconsistent sizes. *)

val lru_slots : n:int -> int
(** [n/4] — size of the ΔLRU component's quota in the paper's layout. *)

val distinct_capacity : n:int -> int
(** [n/2] — total distinct colors cached in the paper's layout. *)
