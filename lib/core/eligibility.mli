(** The per-color bookkeeping shared by ΔLRU, EDF and ΔLRU-EDF
    (paper Section 3.1, "common aspects"): counters, counter wrapping
    events, eligibility, color deadlines, and the ΔLRU timestamp.

    The three algorithms differ only in their reconfiguration schemes; a
    policy owns one [Eligibility.t] and calls {!begin_round} at the start
    of every [reconfigure] call.  The call is idempotent within a round,
    so double-speed policies (two mini-rounds) stay correct.

    Life of a color [ℓ] (delay bound [D], reconfiguration cost [Δ]):
    - at every multiple of [D] (drop phase): the timestamp becomes the
      round of the latest wrap event before this multiple; if [ℓ] is
      eligible and not cached it turns ineligible, its counter resets,
      and its current epoch ends;
    - on arrival of [c] jobs: the counter grows by [c]; reaching [Δ]
      wraps it (modulo [Δ]) — a {e counter wrapping event} — and makes
      the color eligible.

    The module also keeps the quantities the paper's analysis is built
    on: epochs (Section 3.2), wrap events (Lemma 3.11), and the
    eligible/ineligible drop split (Lemma 3.2 / Lemma 3.4). *)

type t

val create : ?sink:Rrs_obs.Sink.t -> Instance.t -> t
(** [sink] (default {!Rrs_obs.Sink.null}) receives the analysis events
    as they happen: [Epoch_open]/[Epoch_close], [Counter_wrap] (plus a
    [Credit] of [Δ] per wrap — the charging currency of Lemmas 3.3/3.11)
    and [Timestamp_update].  The event stream is a faithful superset of
    the counters below: counting events of a kind reproduces the
    corresponding totals exactly. *)

val begin_round :
  t -> view:Policy.view -> in_cache:(Types.color -> bool) -> unit
(** Process this round's drop-phase and arrival-phase bookkeeping.
    [in_cache] must reflect the cache as of the drop phase, i.e. before
    this round's reconfiguration — pass a membership test on
    [view.cache].  Safe to call once per mini-round (subsequent calls in
    the same round are no-ops). *)

val is_eligible : t -> Types.color -> bool
val timestamp : t -> Types.color -> int
(** [-1] when no counter wrapping event is visible yet. *)

val color_deadline : t -> Types.color -> int
(** The color's deadline [ℓ.dd] — end of its current batch window. *)

val counter : t -> Types.color -> int
val eligible_colors : t -> Types.color list
(** Ascending color order. *)

(** {2 Change notifications} *)

(** The typed per-color state transitions, published as they happen so
    consumers (the incremental ranking {!Ranking.Index}, telemetry) can
    pay only for state that changed instead of re-deriving color lists
    every round.  Each constructor names the input of the EDF/ΔLRU rank
    keys that just changed:
    - [Became_eligible]/[Became_ineligible]: the eligibility flag
      flipped (arrival-phase wrap / drop-phase epoch end);
    - [Deadline_moved]: the color deadline [ℓ.dd] advanced to the end
      of a new batch window (fires at every window boundary);
    - [Timestamp_bumped]: the ΔLRU timestamp took a new value;
    - [Wrapped]: a counter wrapping event (no rank-key change by
      itself; exposed for completeness and telemetry). *)
type change =
  | Became_eligible of Types.color
  | Became_ineligible of Types.color
  | Deadline_moved of Types.color
  | Timestamp_bumped of Types.color
  | Wrapped of Types.color

val on_change : t -> (change -> unit) -> unit
(** Register a listener called synchronously at every {!change}, after
    the state mutation it describes (reading the [Eligibility.t] from
    the listener sees the new state).  Listeners run in registration
    order and must not call {!begin_round}. *)

(** {2 Analysis instrumentation} *)

val on_timestamp_update : t -> (Types.color -> Types.round -> unit) -> unit
(** Register a listener called at every {e timestamp update event}
    (Section 3.4): the drop-phase moment a color's timestamp changes
    value.  Listeners drive the super-epoch bookkeeping
    ({!Super_epochs}); multiple listeners are called in registration
    order. *)

val epochs_total : t -> int
(** [numEpochs] so far: completed epochs plus, per color, one incomplete
    epoch if any job arrived since the last epoch end. *)

val epochs_ended : t -> Types.color -> int
val wrap_events_total : t -> int
val eligible_drops : t -> int
(** Jobs dropped while their color was eligible. *)

val ineligible_drops : t -> int
(** Jobs dropped while their color was ineligible. *)
