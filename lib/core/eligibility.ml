type color_info = {
  mutable cnt : int;
  mutable dd : int;
  mutable eligible : bool;
  mutable last_wrap : int; (* round of the latest wrap event; -1 = none *)
  mutable timestamp : int; (* snapshot of last_wrap at the latest multiple *)
  mutable epochs_ended : int;
  mutable active_epoch : bool; (* a job arrived since the last epoch end *)
  mutable wrap_events : int;
}

type change =
  | Became_eligible of Types.color
  | Became_ineligible of Types.color
  | Deadline_moved of Types.color
  | Timestamp_bumped of Types.color
  | Wrapped of Types.color

type t = {
  delta : int;
  delay : int array;
  info : color_info array;
  boundary : Rrs_dstruct.Int_heap.t; (* packed (next multiple, color) *)
  mutable last_round : int;
  mutable total_epochs_ended : int;
  mutable eligible_drops : int;
  mutable ineligible_drops : int;
  (* listeners stored in registration order once, iterated by index
     without allocating (no List.rev per event, no l @ [f] per
     registration) *)
  mutable timestamp_listeners : (int -> int -> unit) array;
  mutable timestamp_listener_count : int;
  mutable change_listeners : (change -> unit) array;
  mutable change_listener_count : int;
  sink : Rrs_obs.Sink.t;
  tracing : bool;
}

let create ?(sink = Rrs_obs.Sink.null) (instance : Instance.t) =
  if instance.num_colors > Packed.max_colors then
    invalid_arg "Eligibility.create: num_colors exceeds the packed color field";
  let info =
    Array.init instance.num_colors (fun _ ->
        {
          cnt = 0;
          dd = 0;
          eligible = false;
          last_wrap = -1;
          timestamp = -1;
          epochs_ended = 0;
          active_epoch = false;
          wrap_events = 0;
        })
  in
  let boundary =
    Rrs_dstruct.Int_heap.create
      ~initial_capacity:(Stdlib.max 16 instance.num_colors) ()
  in
  (* round 0 is a multiple of every delay bound *)
  Array.iteri
    (fun color _ ->
      Rrs_dstruct.Int_heap.add boundary (Packed.pack_pair ~value:0 ~color))
    instance.delay;
  {
    delta = instance.delta;
    delay = instance.delay;
    info;
    boundary;
    last_round = -1;
    total_epochs_ended = 0;
    eligible_drops = 0;
    ineligible_drops = 0;
    timestamp_listeners = [||];
    timestamp_listener_count = 0;
    change_listeners = [||];
    change_listener_count = 0;
    sink;
    tracing = Rrs_obs.Sink.enabled sink;
  }

let append listeners count f =
  if count = Array.length listeners then begin
    let bigger = Array.make (Stdlib.max 4 (2 * count)) f in
    Array.blit listeners 0 bigger 0 count;
    bigger
  end
  else begin
    listeners.(count) <- f;
    listeners
  end

let on_change t f =
  let a = append t.change_listeners t.change_listener_count f in
  a.(t.change_listener_count) <- f;
  t.change_listeners <- a;
  t.change_listener_count <- t.change_listener_count + 1

let on_timestamp_update t f =
  let a = append t.timestamp_listeners t.timestamp_listener_count f in
  a.(t.timestamp_listener_count) <- f;
  t.timestamp_listeners <- a;
  t.timestamp_listener_count <- t.timestamp_listener_count + 1

let notify t change =
  for i = 0 to t.change_listener_count - 1 do
    (Array.unsafe_get t.change_listeners i) change
  done

let classify_drop t color count =
  if t.info.(color).eligible then t.eligible_drops <- t.eligible_drops + count
  else t.ineligible_drops <- t.ineligible_drops + count

(* Drop-phase bookkeeping for a color whose batch window ends this round. *)
let process_boundary t ~round ~in_cache color =
  let ci = t.info.(color) in
  (* timestamp: latest wrap event before this multiple.  Wraps of this
     round happen later (arrival phase), so last_wrap is always < round
     here. *)
  if ci.timestamp <> ci.last_wrap then begin
    ci.timestamp <- ci.last_wrap;
    if t.tracing then
      Rrs_obs.Sink.emit t.sink
        (Rrs_obs.Event.Timestamp_update { round; color });
    for i = 0 to t.timestamp_listener_count - 1 do
      (Array.unsafe_get t.timestamp_listeners i) color round
    done;
    notify t (Timestamp_bumped color)
  end;
  if ci.eligible && not (in_cache color) then begin
    ci.eligible <- false;
    ci.cnt <- 0;
    ci.epochs_ended <- ci.epochs_ended + 1;
    ci.active_epoch <- false;
    t.total_epochs_ended <- t.total_epochs_ended + 1;
    if t.tracing then
      Rrs_obs.Sink.emit t.sink
        (Rrs_obs.Event.Epoch_close
           { round; color; epochs_ended = ci.epochs_ended });
    notify t (Became_ineligible color)
  end;
  ci.dd <- round + t.delay.(color);
  Rrs_dstruct.Int_heap.add t.boundary
    (Packed.pack_pair ~value:(round + t.delay.(color)) ~color);
  notify t (Deadline_moved color)

let process_arrival t ~round color count =
  if count > 0 then begin
    let ci = t.info.(color) in
    if not ci.active_epoch then begin
      ci.active_epoch <- true;
      if t.tracing then
        Rrs_obs.Sink.emit t.sink (Rrs_obs.Event.Epoch_open { round; color })
    end;
    ci.cnt <- ci.cnt + count;
    if ci.cnt >= t.delta then begin
      ci.cnt <- ci.cnt mod t.delta;
      ci.last_wrap <- round;
      ci.wrap_events <- ci.wrap_events + 1;
      if t.tracing then begin
        Rrs_obs.Sink.emit t.sink
          (Rrs_obs.Event.Counter_wrap { round; color; wraps = ci.wrap_events });
        (* each wrap banks Δ credit: the charging currency of
           Lemmas 3.3/3.11 (the epoch's reconfigurations are paid for by
           the credits its wraps earned) *)
        Rrs_obs.Sink.emit t.sink
          (Rrs_obs.Event.Credit { round; color; amount = t.delta })
      end;
      notify t (Wrapped color);
      if not ci.eligible then begin
        ci.eligible <- true;
        notify t (Became_eligible color)
      end
    end
  end

(* Plain recursion instead of List.iter closures: begin_round runs once
   per round on the hot path and must not allocate. *)
let rec classify_drops t = function
  | [] -> ()
  | (color, count) :: rest ->
      classify_drop t color count;
      classify_drops t rest

let rec process_arrivals t ~round = function
  | [] -> ()
  | (color, count) :: rest ->
      process_arrival t ~round color count;
      process_arrivals t ~round rest

let begin_round_body t ~(view : Policy.view) ~in_cache =
  t.last_round <- view.round;
  (* 1. drop-phase classification uses the pre-transition eligibility,
     so classify before any boundary processing *)
  classify_drops t view.dropped;
  (* 2. boundary (drop-phase) transitions for every color whose batch
     window ends this round *)
  let continue = ref true in
  while !continue do
    if Rrs_dstruct.Int_heap.is_empty t.boundary then continue := false
    else begin
      let packed = Rrs_dstruct.Int_heap.min t.boundary in
      (* a boundary < view.round can only belong to colors added late;
         process them at the first opportunity *)
      if Packed.pair_value packed <= view.round then begin
        ignore (Rrs_dstruct.Int_heap.pop_min t.boundary);
        process_boundary t ~round:view.round ~in_cache
          (Packed.pair_color packed)
      end
      else continue := false
    end
  done;
  (* 3. arrival-phase counter updates *)
  process_arrivals t ~round:view.round view.arrivals

let begin_round t ~(view : Policy.view) ~in_cache =
  if view.round > t.last_round then begin
    (* the round's whole eligibility transition batch — and therefore
       the Ranking.Index update batch it feeds — profiles as one span.
       enter/leave with an exception match instead of Rrs_prof.span:
       same balance guarantee, no per-round closure. *)
    Rrs_prof.enter "eligibility.begin_round";
    match begin_round_body t ~view ~in_cache with
    | () -> Rrs_prof.leave "eligibility.begin_round"
    | exception e ->
        Rrs_prof.leave "eligibility.begin_round";
        raise e
  end

let is_eligible t color = t.info.(color).eligible
let timestamp t color = t.info.(color).timestamp
let color_deadline t color = t.info.(color).dd
let counter t color = t.info.(color).cnt

let eligible_colors t =
  let out = ref [] in
  for color = Array.length t.info - 1 downto 0 do
    if t.info.(color).eligible then out := color :: !out
  done;
  !out

let epochs_total t =
  Array.fold_left
    (fun acc ci -> acc + ci.epochs_ended + if ci.active_epoch then 1 else 0)
    0 t.info

let epochs_ended t color = t.info.(color).epochs_ended
let wrap_events_total t =
  Array.fold_left (fun acc ci -> acc + ci.wrap_events) 0 t.info

let eligible_drops t = t.eligible_drops
let ineligible_drops t = t.ineligible_drops
