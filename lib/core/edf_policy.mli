(** Algorithm EDF (paper Section 3.1.2) and its analysis variant Seq-EDF
    (Section 3.3).

    EDF's reconfiguration scheme: rank the eligible colors (nonidle
    first, then ascending deadline, ties by increasing delay bound then
    the consistent color order); every nonidle eligible color in the top
    [n/2] rankings that is not cached is brought in, evicting the
    lowest-ranked cached colors when the cache is full.  Captures only
    the deadline aspect; Appendix B shows it is not resource competitive
    (it thrashes).

    Seq-EDF is the same scheme given the full capacity for distinct
    colors (no replication half); DS-Seq-EDF is Seq-EDF run by a
    double-speed engine ([mini_rounds = 2]). *)

type instrumented = { policy : Policy.t; eligibility : Eligibility.t }

val make :
  ?sink:Rrs_obs.Sink.t ->
  ?registry:Rrs_obs.Metrics.t ->
  ?mode:Ranking.mode ->
  Instance.t ->
  n:int ->
  instrumented
(** Standard EDF: [n/2] distinct slots, replicated.  [sink] is handed
    to the underlying {!Eligibility.create}.  [mode] (default
    [Incremental]) selects the {!Ranking.Index}-backed hot path or the
    original per-round re-sort; both make identical decisions.
    [registry], when given, receives the ["ranking_update"] counter.
    @raise Invalid_argument if [n] is not a positive multiple of 2. *)

val policy : Policy.factory

val oracle_policy : Policy.factory
(** [policy] forced to [Rebuild] mode — the differential oracle. *)

val make_seq :
  ?sink:Rrs_obs.Sink.t ->
  ?registry:Rrs_obs.Metrics.t ->
  ?mode:Ranking.mode ->
  Instance.t ->
  n:int ->
  instrumented
(** Seq-EDF: [n] distinct slots, no replication.
    @raise Invalid_argument if [n < 1]. *)

val seq_policy : Policy.factory

val seq_oracle_policy : Policy.factory
(** [seq_policy] forced to [Rebuild] mode. *)
