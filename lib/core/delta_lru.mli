(** Algorithm ΔLRU (paper Section 3.1.1).

    Reconfiguration scheme: keep the [n/2] eligible colors with the most
    recent timestamps cached (ties by the consistent color order),
    replicated into the second half of the cache.  Captures only the
    recency aspect of the input; Appendix A shows it is not resource
    competitive (it can pin idle colors and underutilize). *)

type instrumented = { policy : Policy.t; eligibility : Eligibility.t }
(** The policy plus analysis access to its eligibility machinery
    (epochs, wrap events, eligible/ineligible drop split). *)

val make :
  ?sink:Rrs_obs.Sink.t ->
  ?registry:Rrs_obs.Metrics.t ->
  ?mode:Ranking.mode ->
  Instance.t ->
  n:int ->
  instrumented
(** [sink] is handed to the underlying {!Eligibility.create}, streaming
    the analysis events (epochs, wraps, timestamp updates).  [mode]
    (default [Incremental]) selects the {!Ranking.Index}-backed hot path
    or the original per-round re-sort; both make identical decisions.
    [registry], when given, receives the ["ranking_update"] counter.
    @raise Invalid_argument if [n] is not a positive multiple of 2. *)

val policy : Policy.factory
(** [make] with the instrumentation discarded — for plain engine runs. *)

val oracle_policy : Policy.factory
(** [policy] forced to [Rebuild] mode — the differential oracle. *)
