type mapping = {
  sub_instance : Instance.t;
  orig_of_sub : int array;
  subs_of_orig : int list array;
}

let transform (instance : Instance.t) =
  if not (Instance.is_batched instance) then
    invalid_arg "Distribute.transform: instance is not batched";
  Rrs_prof.span "distribute.transform" @@ fun () ->
  (* subcolors needed per color: the largest batch, in chunks of D *)
  let max_batch = Array.make instance.num_colors 0 in
  Array.iter
    (fun (a : Types.arrival) ->
      if a.count > max_batch.(a.color) then max_batch.(a.color) <- a.count)
    instance.arrivals;
  let subs_needed =
    Array.mapi
      (fun color batch ->
        if batch = 0 then 0
        else (batch + instance.delay.(color) - 1) / instance.delay.(color))
      max_batch
  in
  let first_sub = Array.make instance.num_colors 0 in
  let total_subs = ref 0 in
  Array.iteri
    (fun color needed ->
      first_sub.(color) <- !total_subs;
      total_subs := !total_subs + needed)
    subs_needed;
  let orig_of_sub = Array.make (max !total_subs 1) Types.black in
  let subs_of_orig = Array.make instance.num_colors [] in
  Array.iteri
    (fun color needed ->
      for j = needed - 1 downto 0 do
        let sub = first_sub.(color) + j in
        orig_of_sub.(sub) <- color;
        subs_of_orig.(color) <- sub :: subs_of_orig.(color)
      done)
    subs_needed;
  let sub_delay =
    Array.init (max !total_subs 1) (fun sub ->
        let orig = orig_of_sub.(sub) in
        if orig = Types.black then 1 else instance.delay.(orig))
  in
  let sub_arrivals = ref [] in
  Array.iter
    (fun (a : Types.arrival) ->
      let d = instance.delay.(a.color) in
      let rec split j remaining =
        if remaining > 0 then begin
          let chunk = min d remaining in
          sub_arrivals :=
            {
              Types.round = a.round;
              color = first_sub.(a.color) + j;
              count = chunk;
            }
            :: !sub_arrivals;
          split (j + 1) (remaining - chunk)
        end
      in
      split 0 a.count)
    instance.arrivals;
  let sub_instance =
    Instance.create
      ~name:(instance.name ^ "+distribute")
      ~delta:instance.delta ~delay:sub_delay ~arrivals:!sub_arrivals ()
  in
  { sub_instance; orig_of_sub; subs_of_orig }

let project mapping color =
  if color = Types.black then Types.black else mapping.orig_of_sub.(color)

let run ?(policy = Lru_edf.policy) ?sink instance ~n =
  let mapping = transform instance in
  let cfg = Engine.config ~n ~cost_projection:(project mapping) ?sink () in
  Engine.run cfg mapping.sub_instance policy
