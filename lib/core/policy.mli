(** Online reconfiguration policies.

    A policy is consulted once per mini-round, in the reconfiguration
    phase, and answers with the desired resource coloring.  It observes
    only the past and present ({!view}); the engine enforces nothing else
    about it, so offline/oracle schedules are expressed as policies too
    (closures over the whole instance).

    The engine charges [Δ] for every resource whose color differs from
    the previous assignment and then runs the execution phase on the new
    coloring. *)

type view = {
  round : Types.round;
  mini_round : int;  (** 0 for uni-speed; 0 and 1 for double-speed *)
  arrivals : (Types.color * int) list;
      (** this round's arrival batches (empty in mini-round > 0 views and
          rounds with no request) *)
  dropped : (Types.color * int) list;
      (** jobs expired in this round's drop phase *)
  cache : Types.color array;
      (** current coloring (before this reconfiguration); read-only *)
  pending : Pending.t;  (** read-only by convention *)
}

type t = {
  name : string;
  reconfigure : view -> Types.color array;
      (** must return an array of length [n]; entries are colors or
          {!Types.black} *)
}

type factory = Instance.t -> n:int -> t
(** Policies are instantiated per run with the instance's static
    parameters (they may not inspect [arrivals] of future rounds — online
    policies only read [delta], [delay] and [num_colors]; oracle policies
    deliberately read everything and say so in their name). *)

val take : int -> 'a list -> 'a list
(** [take k xs] is the first [min k (length xs)] elements of [xs] — the
    prefix-of-ranking helper shared by every reconfiguration scheme
    (a non-negative [k] never raises; [k <= 0] is the empty list). *)

val sort_int_prefix : int array -> int -> unit
(** [sort_int_prefix a len] sorts [a.(0 .. len-1)] ascending in place
    (insertion sort — allocation-free, and fast on the small candidate
    sets the flat policies rank).  Packed rank keys embed the color as
    the last tie-break, so sorting the ints is sorting (color, key)
    pairs by rank. *)

val stable_assign :
  current:Types.color array -> desired:Types.color list -> Types.color array
(** Shared slot-assignment helper: keep every color of [desired] that is
    already cached in its current slot, place newcomers into the slots
    whose occupants were not retained (in ascending slot order), and
    leave leftover slots untouched... except that occupants which are no
    longer desired but whose slot is not needed by a newcomer are kept in
    place (avoiding spurious recolorings — eviction is lazy, matching the
    cost model of the paper's analysis).  [desired] must be duplicate-free
    and no longer than [current].
    @raise Invalid_argument otherwise. *)

val replicate : distinct:Types.color array -> n:int -> Types.color array
(** Mirror a [n/2]-slot distinct assignment into a full [n]-slot cache
    (paper invariant: every cached color occupies two locations).
    @raise Invalid_argument if [n <> 2 * Array.length distinct]. *)
