(** Algorithm VarBatch (paper Section 5): reduces the main problem
    [Δ | 1 | D_ℓ | 1] (arbitrary arrival rounds) to the batched problem,
    then solves via {!Distribute} + ΔLRU-EDF — the composition behind
    Theorem 3.

    A job of color [ℓ] with delay bound [D >= 2] arriving in
    [halfBlock(D', i)] (where [D' = 2^(⌊log2 D⌋ - 1)], i.e. [D/2] when
    [D] is a power of two — the Section 5.3 extension covers the rest) is
    delayed to the start of [halfBlock(D', i+1)] and must execute within
    that half-block: its new delay bound is [D'].  The transformed window
    always sits inside the original [arrival, arrival + D) window, so
    any schedule for the transformed instance is feasible for the
    original.  Colors with [D = 1] are already batched and pass through
    unchanged. *)

val batched_delay : int -> int
(** The transformed delay bound: 1 for 1, [2^(⌊log2 D⌋ - 1)] otherwise.
    @raise Invalid_argument if [D < 1]. *)

val transform : Instance.t -> Instance.t
(** The batched instance over the same color ids. *)

val run :
  ?policy:Policy.factory ->
  ?sink:Rrs_obs.Sink.t ->
  Instance.t ->
  n:int ->
  Engine.result
(** Full pipeline: VarBatch → Distribute → policy (default ΔLRU-EDF),
    with cost projection back to original colors.  [sink] receives the
    engine's round-phase events in original colors.  Works on any
    instance. *)
