(** Mutable distinct-slot cache state shared by the policy
    implementations: tracks the distinct half of the cache, offers an O(1)
    membership test, and produces the engine-facing assignment (with or
    without the replication half). *)

type t

val create : num_colors:int -> distinct_slots:int -> t
val mem : t -> Types.color -> bool
val cached_colors : t -> Types.color list
(** Ascending color order; excludes black. *)

val assign : t -> desired:Types.color list -> unit
(** Update the distinct slots with {!Policy.stable_assign} placement
    semantics (desired colors in place stay; newcomers fill, in desired
    order, the left-to-right slots whose occupants are unwanted).
    @raise Invalid_argument exactly when [Policy.stable_assign] would. *)

val assign_array : t -> int array -> int -> unit
(** [assign_array t buf len]: {!assign} over [buf.(0 .. len-1)] without
    touching the list — the zero-alloc hot-path entry (policies keep
    [buf] as reusable scratch). *)

val live_slots : t -> Types.color array
(** The live distinct-slot array itself, {e not} a copy — read-only
    borrow for the policies' candidate scans; callers must not mutate
    it and must not hold it across an {!assign}. *)

val to_assignment : t -> replicated:bool -> Types.color array
(** The full engine assignment: the distinct slots, doubled when
    [replicated] (paper invariant: each cached color in two locations). *)

val distinct : t -> Types.color array
(** The raw distinct slots (copy). *)
