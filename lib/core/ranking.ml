(* Rank keys compare lexicographically:
   class (0 = eligible nonidle, 1 = eligible idle, 2 = ineligible),
   then deadline, then delay bound, then color id. *)
type key = { klass : int; deadline : int; delay : int; color : int }

let compare a b =
  match Stdlib.compare a.klass b.klass with
  | 0 -> (
      match Stdlib.compare a.deadline b.deadline with
      | 0 -> (
          match Stdlib.compare a.delay b.delay with
          | 0 -> Stdlib.compare a.color b.color
          | c -> c)
      | c -> c)
  | c -> c

let key_of_color elig pending ~delay color =
  if not (Eligibility.is_eligible elig color) then
    { klass = 2; deadline = 0; delay = 0; color }
  else
    match Pending.earliest_deadline pending color with
    | Some d -> { klass = 0; deadline = d; delay = delay.(color); color }
    | None ->
        {
          klass = 1;
          deadline = Eligibility.color_deadline elig color;
          delay = delay.(color);
          color;
        }

let is_nonidle_eligible k = k.klass = 0

let ranked_eligible elig pending ~delay ~exclude =
  let keyed =
    List.filter_map
      (fun color ->
        if exclude color then None
        else Some (color, key_of_color elig pending ~delay color))
      (Eligibility.eligible_colors elig)
  in
  List.sort (fun (_, a) (_, b) -> compare a b) keyed

let timestamp_order elig colors =
  (* most recent timestamp first; stable tie-break on ascending id comes
     from sorting pairs (negated timestamp, id) *)
  let keyed =
    List.map (fun color -> (-Eligibility.timestamp elig color, color)) colors
  in
  List.map snd (List.sort Stdlib.compare keyed)

type mode = Incremental | Rebuild

let mode_to_string = function
  | Incremental -> "incremental"
  | Rebuild -> "rebuild"

module Index = struct
  module Iheap = Rrs_dstruct.Indexed_heap

  type t = {
    elig : Eligibility.t;
    pending : Pending.t;
    delay : int array;
    rank : key Iheap.t; (* eligible colors, by EDF rank key *)
    recency : (int * int) Iheap.t; (* eligible colors, by (-ts, id) *)
    counter : Rrs_obs.Metrics.counter option;
    mutable updates : int;
  }

  let tick t =
    t.updates <- t.updates + 1;
    match t.counter with Some c -> Rrs_obs.Metrics.inc c 1 | None -> ()

  (* Both heaps hold exactly the eligible colors; keys are recomputed
     from the live Eligibility/Pending state at every refresh, so a heap
     priority is always the same tuple the list-sort oracle would
     compute.  [Iheap.update] inserts absent keys, which makes refresh
     idempotent. *)
  let refresh_rank t color =
    if Eligibility.is_eligible t.elig color then begin
      Iheap.update t.rank color
        (key_of_color t.elig t.pending ~delay:t.delay color);
      tick t
    end

  let refresh_recency t color =
    if Eligibility.is_eligible t.elig color then begin
      Iheap.update t.recency color (-Eligibility.timestamp t.elig color, color);
      tick t
    end

  let drop t color =
    if Iheap.mem t.rank color then begin
      Iheap.remove t.rank color;
      tick t
    end;
    if Iheap.mem t.recency color then begin
      Iheap.remove t.recency color;
      tick t
    end

  let create ?counter elig pending ~delay =
    let capacity = max (Pending.num_colors pending) 1 in
    let t =
      {
        elig;
        pending;
        delay;
        rank = Iheap.create ~cmp:compare ~capacity;
        recency = Iheap.create ~cmp:Stdlib.compare ~capacity;
        counter;
        updates = 0;
      }
    in
    Rrs_prof.span "ranking.index.build" (fun () ->
        List.iter
          (fun color ->
            refresh_rank t color;
            refresh_recency t color)
          (Eligibility.eligible_colors elig));
    Eligibility.on_change elig (function
      | Eligibility.Became_eligible color ->
          refresh_rank t color;
          refresh_recency t color
      | Eligibility.Became_ineligible color -> drop t color
      | Eligibility.Deadline_moved color -> refresh_rank t color
      | Eligibility.Timestamp_bumped color -> refresh_recency t color
      | Eligibility.Wrapped _ -> ());
    Pending.on_front_change pending (fun color -> refresh_rank t color);
    t

  (* Policies must not build the index before their first [reconfigure]
     (the state it snapshots would be stale), so they all share this
     memoizing constructor instead of open-coding the ref cell. *)
  let lazily ?counter elig ~delay =
    let cell = ref None in
    fun pending ->
      match !cell with
      | Some t -> t
      | None ->
          let t = create ?counter elig pending ~delay in
          cell := Some t;
          t

  let eligible_count t = Iheap.length t.rank
  let updates t = t.updates

  let ranked_prefix t ~k =
    Rrs_prof.enter "ranking.query";
    let r = Iheap.smallest t.rank k in
    Rrs_prof.leave "ranking.query";
    r

  let ranked_prefix_excluding t ~k ~excluded ~exclude =
    Rrs_prof.enter "ranking.query";
    let r =
      Iheap.smallest t.rank (k + excluded)
      |> List.filter (fun (color, _) -> not (exclude color))
      |> Policy.take k
    in
    Rrs_prof.leave "ranking.query";
    r

  let ranked_all t = Iheap.smallest t.rank (Iheap.length t.rank)

  let recency_prefix t ~k =
    Rrs_prof.enter "ranking.query";
    let r = List.map fst (Iheap.smallest t.recency k) in
    Rrs_prof.leave "ranking.query";
    r

  let recency_all t =
    List.map fst (Iheap.smallest t.recency (Iheap.length t.recency))
end
