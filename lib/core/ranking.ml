(* Rank keys compare lexicographically:
   class (0 = eligible nonidle, 1 = eligible idle, 2 = ineligible),
   then deadline, then delay bound, then color id.

   A key is the four fields packed into one tagged int (Packed), so the
   lexicographic order is plain integer [<] and the flat
   Int_indexed_heap can hold keys without boxing. *)
type key = int

let compare : key -> key -> int = Int.compare

let pack_key = Packed.pack_key
let key_klass = Packed.key_klass
let key_deadline = Packed.key_deadline
let key_delay = Packed.key_delay
let key_color = Packed.key_color

let key_of_color elig pending ~delay color =
  if not (Eligibility.is_eligible elig color) then
    Packed.pack_key ~klass:2 ~deadline:0 ~delay:0 ~color
  else begin
    let d = Pending.front_deadline pending color in
    if d >= 0 then
      Packed.pack_key ~klass:0 ~deadline:d
        ~delay:(Array.unsafe_get delay color)
        ~color
    else
      Packed.pack_key ~klass:1
        ~deadline:(Eligibility.color_deadline elig color)
        ~delay:(Array.unsafe_get delay color)
        ~color
  end

let is_nonidle_eligible k = Packed.key_klass k = 0

let ranked_eligible elig pending ~delay ~exclude =
  let keyed =
    List.filter_map
      (fun color ->
        if exclude color then None
        else Some (color, key_of_color elig pending ~delay color))
      (Eligibility.eligible_colors elig)
  in
  List.sort (fun (_, a) (_, b) -> compare a b) keyed

let timestamp_order elig colors =
  (* most recent timestamp first; stable tie-break on ascending id comes
     from sorting pairs (negated timestamp, id) *)
  let keyed =
    List.map (fun color -> (-Eligibility.timestamp elig color, color)) colors
  in
  List.map snd (List.sort Stdlib.compare keyed)

type mode = Incremental | Rebuild

let mode_to_string = function
  | Incremental -> "incremental"
  | Rebuild -> "rebuild"

module Index = struct
  module Iheap = Rrs_dstruct.Int_indexed_heap

  type t = {
    elig : Eligibility.t;
    pending : Pending.t;
    delay : int array;
    rank : Iheap.t; (* eligible colors, by packed EDF rank key *)
    recency : Iheap.t; (* eligible colors, by packed (-ts, id) *)
    counter : Rrs_obs.Metrics.counter option;
    mutable updates : int;
    qbuf : int array; (* scratch for the filtered prefix query *)
  }

  let tick t =
    t.updates <- t.updates + 1;
    match t.counter with Some c -> Rrs_obs.Metrics.inc c 1 | None -> ()

  (* Both heaps hold exactly the eligible colors; keys are recomputed
     from the live Eligibility/Pending state at every refresh, so a heap
     priority is always the packed form of the tuple the list-sort
     oracle would compute.  [Iheap.update] inserts absent keys, which
     makes refresh idempotent. *)
  let refresh_rank t color =
    if Eligibility.is_eligible t.elig color then begin
      Iheap.update t.rank color
        (key_of_color t.elig t.pending ~delay:t.delay color);
      tick t
    end

  let refresh_recency t color =
    if Eligibility.is_eligible t.elig color then begin
      Iheap.update t.recency color
        (Packed.pack_recency
           ~timestamp:(Eligibility.timestamp t.elig color)
           ~color);
      tick t
    end

  let drop t color =
    if Iheap.mem t.rank color then begin
      Iheap.remove t.rank color;
      tick t
    end;
    if Iheap.mem t.recency color then begin
      Iheap.remove t.recency color;
      tick t
    end

  let create ?counter elig pending ~delay =
    let capacity = Stdlib.max (Pending.num_colors pending) 1 in
    (* field-width validation at build time: every key the index will
       ever pack stays inside the Packed layout, so the per-pack guards
       never fire later *)
    if capacity > Packed.max_colors then
      invalid_arg "Ranking.Index: num_colors exceeds the packed color field";
    Array.iter
      (fun d ->
        if d < 0 || d >= Packed.max_delay then
          invalid_arg "Ranking.Index: delay bound exceeds the packed field")
      delay;
    let t =
      {
        elig;
        pending;
        delay;
        rank = Iheap.create ~capacity;
        recency = Iheap.create ~capacity;
        counter;
        updates = 0;
        qbuf = Array.make capacity 0;
      }
    in
    Rrs_prof.span "ranking.index.build" (fun () ->
        List.iter
          (fun color ->
            refresh_rank t color;
            refresh_recency t color)
          (Eligibility.eligible_colors elig));
    Eligibility.on_change elig (function
      | Eligibility.Became_eligible color ->
          refresh_rank t color;
          refresh_recency t color
      | Eligibility.Became_ineligible color -> drop t color
      | Eligibility.Deadline_moved color -> refresh_rank t color
      | Eligibility.Timestamp_bumped color -> refresh_recency t color
      | Eligibility.Wrapped _ -> ());
    Pending.on_front_change pending (fun color -> refresh_rank t color);
    t

  (* Policies must not build the index before their first [reconfigure]
     (the state it snapshots would be stale), so they all share this
     memoizing constructor instead of open-coding the ref cell. *)
  let lazily ?counter elig ~delay =
    let cell = ref None in
    fun pending ->
      match !cell with
      | Some t -> t
      | None ->
          let t = create ?counter elig pending ~delay in
          cell := Some t;
          t

  let eligible_count t = Iheap.length t.rank
  let updates t = t.updates

  (* Scratch-buffer queries: the hot path.  Spans use enter/leave with
     an exception match — balanced on raise like Rrs_prof.span, without
     allocating a closure per query. *)

  let ranked_prefix_into t ~k ~out =
    Rrs_prof.enter "ranking.query";
    match Iheap.smallest_into t.rank k ~out with
    | n ->
        Rrs_prof.leave "ranking.query";
        n
    | exception e ->
        Rrs_prof.leave "ranking.query";
        raise e

  let ranked_prefix_excluding_into t ~k ~excluded ~exclude ~out =
    Rrs_prof.enter "ranking.query";
    match
      let m = Iheap.smallest_into t.rank (k + excluded) ~out:t.qbuf in
      let kept = ref 0 in
      let i = ref 0 in
      while !i < m && !kept < k do
        let color = Array.unsafe_get t.qbuf !i in
        if not (exclude color) then begin
          out.(!kept) <- color;
          incr kept
        end;
        incr i
      done;
      !kept
    with
    | n ->
        Rrs_prof.leave "ranking.query";
        n
    | exception e ->
        Rrs_prof.leave "ranking.query";
        raise e

  let recency_prefix_into t ~k ~out =
    Rrs_prof.enter "ranking.query";
    match Iheap.smallest_into t.recency k ~out with
    | n ->
        Rrs_prof.leave "ranking.query";
        n
    | exception e ->
        Rrs_prof.leave "ranking.query";
        raise e

  let rank_key t color = Iheap.priority t.rank color

  (* List-building wrappers over the scratch queries: cold paths for the
     oracle comparisons and tests. *)

  let keyed_list t out n =
    List.init n (fun i -> (out.(i), Iheap.priority t.rank out.(i)))

  let ranked_prefix t ~k =
    let out = Array.make (Stdlib.max 1 (Stdlib.min k (eligible_count t))) 0 in
    let n = ranked_prefix_into t ~k ~out in
    keyed_list t out n

  let ranked_prefix_excluding t ~k ~excluded ~exclude =
    let out = Array.make (Stdlib.max 1 (Stdlib.min k (eligible_count t))) 0 in
    let n = ranked_prefix_excluding_into t ~k ~excluded ~exclude ~out in
    keyed_list t out n

  let ranked_all t = ranked_prefix t ~k:(eligible_count t)

  let recency_prefix t ~k =
    let out = Array.make (Stdlib.max 1 (Stdlib.min k (eligible_count t))) 0 in
    let n = recency_prefix_into t ~k ~out in
    List.init n (fun i -> out.(i))

  let recency_all t = recency_prefix t ~k:(Iheap.length t.recency)
end
