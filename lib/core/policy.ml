type view = {
  round : Types.round;
  mini_round : int;
  arrivals : (Types.color * int) list;
  dropped : (Types.color * int) list;
  cache : Types.color array;
  pending : Pending.t;
}

type t = {
  name : string;
  reconfigure : view -> Types.color array;
}

type factory = Instance.t -> n:int -> t

let rec take_impl k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take_impl (k - 1) rest

let take k xs =
  (* Fun.protect-backed span: balanced even if the traversal raises
     (this is an oracle/cold path, so the closure is acceptable) *)
  Rrs_prof.span "policy.take" (fun () -> take_impl k xs)

(* Ascending insertion sort of a.(0 .. len-1) — the flat-buffer
   selection sort for candidate sets of O(cache size) packed keys,
   where insertion sort on an int array beats an allocating merge
   sort.  Since packed rank keys embed the color as the last tie-break,
   sorting the ints is exactly sorting (color, key) pairs by rank. *)
let sort_int_prefix (a : int array) len =
  for i = 1 to len - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

let stable_assign ~current ~desired =
  let q = Array.length current in
  if List.length desired > q then
    invalid_arg "Policy.stable_assign: too many desired colors";
  let wanted = Hashtbl.create (2 * q) in
  List.iter
    (fun c ->
      if Hashtbl.mem wanted c then
        invalid_arg "Policy.stable_assign: duplicate desired color";
      Hashtbl.add wanted c `Unplaced)
    desired;
  let result = Array.copy current in
  (* pass 1: desired colors already in place stay *)
  Array.iter
    (fun c ->
      match Hashtbl.find_opt wanted c with
      | Some `Unplaced -> Hashtbl.replace wanted c `Placed
      | Some `Placed | None -> ())
    result;
  let newcomers =
    List.filter (fun c -> Hashtbl.find_opt wanted c = Some `Unplaced) desired
  in
  (* pass 2: newcomers take the slots whose occupants are not desired *)
  let remaining = ref newcomers in
  Array.iteri
    (fun slot occupant ->
      match !remaining with
      | [] -> ()
      | c :: rest ->
          if not (Hashtbl.mem wanted occupant) then begin
            result.(slot) <- c;
            remaining := rest
          end)
    result;
  if !remaining <> [] then
    invalid_arg "Policy.stable_assign: no free slot for a desired color";
  result

let replicate ~distinct ~n =
  let half = Array.length distinct in
  if n <> 2 * half then invalid_arg "Policy.replicate";
  Array.init n (fun i -> if i < half then distinct.(i) else distinct.(i - half))
