type view = {
  round : Types.round;
  mini_round : int;
  arrivals : (Types.color * int) list;
  dropped : (Types.color * int) list;
  cache : Types.color array;
  pending : Pending.t;
}

type t = {
  name : string;
  reconfigure : view -> Types.color array;
}

type factory = Instance.t -> n:int -> t

let rec take_impl k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take_impl (k - 1) rest

let take k xs =
  Rrs_prof.enter "policy.take";
  let r = take_impl k xs in
  Rrs_prof.leave "policy.take";
  r

let stable_assign ~current ~desired =
  let q = Array.length current in
  if List.length desired > q then
    invalid_arg "Policy.stable_assign: too many desired colors";
  let wanted = Hashtbl.create (2 * q) in
  List.iter
    (fun c ->
      if Hashtbl.mem wanted c then
        invalid_arg "Policy.stable_assign: duplicate desired color";
      Hashtbl.add wanted c `Unplaced)
    desired;
  let result = Array.copy current in
  (* pass 1: desired colors already in place stay *)
  Array.iter
    (fun c ->
      match Hashtbl.find_opt wanted c with
      | Some `Unplaced -> Hashtbl.replace wanted c `Placed
      | Some `Placed | None -> ())
    result;
  let newcomers =
    List.filter (fun c -> Hashtbl.find_opt wanted c = Some `Unplaced) desired
  in
  (* pass 2: newcomers take the slots whose occupants are not desired *)
  let remaining = ref newcomers in
  Array.iteri
    (fun slot occupant ->
      match !remaining with
      | [] -> ()
      | c :: rest ->
          if not (Hashtbl.mem wanted occupant) then begin
            result.(slot) <- c;
            remaining := rest
          end)
    result;
  if !remaining <> [] then
    invalid_arg "Policy.stable_assign: no free slot for a desired color";
  result

let replicate ~distinct ~n =
  let half = Array.length distinct in
  if n <> 2 * half then invalid_arg "Policy.replicate";
  Array.init n (fun i -> if i < half then distinct.(i) else distinct.(i - half))
