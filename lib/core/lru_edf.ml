type instrumented = { policy : Policy.t; eligibility : Eligibility.t }

let lru_slots ~n = n / 4
let distinct_capacity ~n = n / 2

let make_tuned ?sink ?registry ?(mode = Ranking.Incremental) ~lru_slots:quota
    ~distinct_slots ~replicated (instance : Instance.t) ~n =
  let expected_n = if replicated then 2 * distinct_slots else distinct_slots in
  if n <> expected_n then
    invalid_arg
      (Printf.sprintf
         "Lru_edf.make_tuned: n = %d inconsistent with distinct_slots = %d \
          (replicated = %b)"
         n distinct_slots replicated);
  if quota < 0 || quota > distinct_slots then
    invalid_arg "Lru_edf.make_tuned: lru_slots out of range";
  let eligibility = Eligibility.create ?sink instance in
  let cache =
    Cache_state.create ~num_colors:instance.num_colors ~distinct_slots
  in
  let delay = instance.delay in
  let edf_quota = distinct_slots - quota in
  let counter =
    Option.map (fun r -> Rrs_obs.Metrics.counter r "ranking_update") registry
  in
  let index = Ranking.Index.lazily ?counter eligibility ~delay in
  (* Both ranking queries, incremental or rebuilt.  Incremental prefix
     queries on the delta-maintained index return exactly the prefixes
     the Rebuild re-sorts (the differential oracle) would. *)
  let lru_prefix (view : Policy.view) =
    match mode with
    | Ranking.Rebuild ->
        Policy.take quota
          (Ranking.timestamp_order eligibility
             (Eligibility.eligible_colors eligibility))
    | Ranking.Incremental ->
        Ranking.Index.recency_prefix (index view.pending) ~k:quota
  in
  let edf_prefix (view : Policy.view) ~excluded ~exclude =
    match mode with
    | Ranking.Rebuild ->
        Policy.take edf_quota
          (Ranking.ranked_eligible eligibility view.pending ~delay ~exclude)
    | Ranking.Incremental ->
        Ranking.Index.ranked_prefix_excluding (index view.pending) ~k:edf_quota
          ~excluded ~exclude
  in
  let reconfigure (view : Policy.view) =
    Eligibility.begin_round eligibility ~view ~in_cache:(Cache_state.mem cache);
    (* ΔLRU component: the [quota] eligible colors with the freshest
       timestamps are unconditionally cached *)
    let lru_set = lru_prefix view in
    let is_lru =
      let flags = Hashtbl.create (2 * (quota + 1)) in
      List.iter (fun c -> Hashtbl.replace flags c ()) lru_set;
      fun c -> Hashtbl.mem flags c
    in
    (* EDF component: rank the eligible non-LRU colors; the nonidle ones
       in the top [edf_quota] rankings that are not cached come in *)
    let additions =
      List.filter_map
        (fun (color, key) ->
          if Ranking.is_nonidle_eligible key && not (Cache_state.mem cache color)
          then Some color
          else None)
        (edf_prefix view ~excluded:(List.length lru_set) ~exclude:is_lru)
    in
    (* capacity pressure evicts the worst-ranked non-LRU colors *)
    let stay_candidates =
      List.filter (fun c -> not (is_lru c)) (Cache_state.cached_colors cache)
      @ additions
    in
    let room = distinct_slots - List.length lru_set in
    let kept_non_lru =
      stay_candidates
      |> List.map (fun color ->
             (color, Ranking.key_of_color eligibility view.pending ~delay color))
      |> List.sort (fun (_, a) (_, b) -> Ranking.compare a b)
      |> Policy.take room
      |> List.map fst
    in
    Cache_state.assign cache ~desired:(lru_set @ kept_non_lru);
    Cache_state.to_assignment cache ~replicated
  in
  let name =
    if quota = lru_slots ~n:(2 * distinct_slots) && replicated then "dlru-edf"
    else Printf.sprintf "dlru-edf[lru=%d/%d%s]" quota distinct_slots
           (if replicated then "" else ",norepl")
  in
  { policy = { Policy.name; reconfigure }; eligibility }

let make ?sink ?registry ?mode (instance : Instance.t) ~n =
  if n < 4 || n mod 4 <> 0 then
    invalid_arg "Lru_edf.make: n must be a positive multiple of 4";
  make_tuned ?sink ?registry ?mode ~lru_slots:(lru_slots ~n)
    ~distinct_slots:(distinct_capacity ~n)
    ~replicated:true instance ~n

let policy instance ~n = (make instance ~n).policy
let oracle_policy instance ~n = (make ~mode:Ranking.Rebuild instance ~n).policy
