type instrumented = { policy : Policy.t; eligibility : Eligibility.t }

let lru_slots ~n = n / 4
let distinct_capacity ~n = n / 2

let make_tuned ?sink ?registry ?(mode = Ranking.Incremental) ~lru_slots:quota
    ~distinct_slots ~replicated (instance : Instance.t) ~n =
  let expected_n = if replicated then 2 * distinct_slots else distinct_slots in
  if n <> expected_n then
    invalid_arg
      (Printf.sprintf
         "Lru_edf.make_tuned: n = %d inconsistent with distinct_slots = %d \
          (replicated = %b)"
         n distinct_slots replicated);
  if quota < 0 || quota > distinct_slots then
    invalid_arg "Lru_edf.make_tuned: lru_slots out of range";
  let eligibility = Eligibility.create ?sink instance in
  let cache =
    Cache_state.create ~num_colors:instance.num_colors ~distinct_slots
  in
  let in_cache = Cache_state.mem cache in
  let delay = instance.delay in
  let edf_quota = distinct_slots - quota in
  let counter =
    Option.map (fun r -> Rrs_obs.Metrics.counter r "ranking_update") registry
  in
  let index = Ranking.Index.lazily ?counter eligibility ~delay in
  (* Reusable per-policy scratch: the whole round runs on flat buffers,
     allocating only the engine-facing assignment array.
     - [lru_buf]/[edf_buf]: prefix query results;
     - [is_lru]: flag array replacing the per-round Hashtbl;
     - [cand]: candidate set as packed rank keys (the key embeds the
       color, so sorting the ints is sorting (color, key) by rank);
     - [desired]: the final desired set for assign_array. *)
  let lru_buf = Array.make (max 1 quota) 0 in
  let edf_buf = Array.make (max 1 edf_quota) 0 in
  let is_lru = Array.make (max 1 instance.num_colors) false in
  let cand = Array.make (max 1 (distinct_slots + edf_quota)) 0 in
  let desired = Array.make (max 1 distinct_slots) 0 in
  let exclude c = Array.unsafe_get is_lru c in
  (* Both ranking queries, incremental or rebuilt.  Incremental prefix
     queries on the delta-maintained index return exactly the prefixes
     the Rebuild re-sorts (the differential oracle) would; both land in
     the same scratch buffers so everything downstream is shared. *)
  let lru_prefix (view : Policy.view) =
    match mode with
    | Ranking.Rebuild ->
        let lru_set =
          Policy.take quota
            (Ranking.timestamp_order eligibility
               (Eligibility.eligible_colors eligibility))
        in
        List.iteri (fun i c -> lru_buf.(i) <- c) lru_set;
        List.length lru_set
    | Ranking.Incremental ->
        Ranking.Index.recency_prefix_into (index view.pending) ~k:quota
          ~out:lru_buf
  in
  (* the top-[edf_quota] ranked non-LRU eligible colors, with their
     packed keys readable afterwards; [excluded] upper-bounds the LRU
     colors the rank prefix may contain *)
  let edf_prefix (view : Policy.view) ~excluded =
    match mode with
    | Ranking.Rebuild ->
        let ranked =
          Policy.take edf_quota
            (Ranking.ranked_eligible eligibility view.pending ~delay ~exclude)
        in
        List.iteri (fun i (c, _) -> edf_buf.(i) <- c) ranked;
        List.length ranked
    | Ranking.Incremental ->
        Ranking.Index.ranked_prefix_excluding_into (index view.pending)
          ~k:edf_quota ~excluded ~exclude ~out:edf_buf
  in
  let reconfigure (view : Policy.view) =
    Eligibility.begin_round eligibility ~view ~in_cache;
    (* ΔLRU component: the [quota] eligible colors with the freshest
       timestamps are unconditionally cached *)
    let lru_len = lru_prefix view in
    for i = 0 to lru_len - 1 do
      is_lru.(lru_buf.(i)) <- true
    done;
    (* EDF component: rank the eligible non-LRU colors; the nonidle ones
       in the top [edf_quota] rankings that are not cached come in *)
    let edf_len = edf_prefix view ~excluded:lru_len in
    (* candidate keep-set: currently cached non-LRU colors plus the
       nonidle uncached EDF additions, priced by their live rank key *)
    let ncand = ref 0 in
    let slots = Cache_state.live_slots cache in
    for s = 0 to Array.length slots - 1 do
      let c = slots.(s) in
      if c <> Types.black && not is_lru.(c) then begin
        cand.(!ncand) <-
          (Ranking.key_of_color eligibility view.pending ~delay c :> int);
        incr ncand
      end
    done;
    for i = 0 to edf_len - 1 do
      let c = edf_buf.(i) in
      let key = Ranking.key_of_color eligibility view.pending ~delay c in
      if Ranking.is_nonidle_eligible key && not (Cache_state.mem cache c)
      then begin
        cand.(!ncand) <- (key :> int);
        incr ncand
      end
    done;
    (* capacity pressure evicts the worst-ranked non-LRU colors *)
    Policy.sort_int_prefix cand !ncand;
    let room = distinct_slots - lru_len in
    let keep = min room !ncand in
    for i = 0 to lru_len - 1 do
      desired.(i) <- lru_buf.(i)
    done;
    for i = 0 to keep - 1 do
      desired.(lru_len + i) <- Packed.key_color cand.(i)
    done;
    for i = 0 to lru_len - 1 do
      is_lru.(lru_buf.(i)) <- false
    done;
    Cache_state.assign_array cache desired (lru_len + keep);
    Cache_state.to_assignment cache ~replicated
  in
  let name =
    if quota = lru_slots ~n:(2 * distinct_slots) && replicated then "dlru-edf"
    else Printf.sprintf "dlru-edf[lru=%d/%d%s]" quota distinct_slots
           (if replicated then "" else ",norepl")
  in
  { policy = { Policy.name; reconfigure }; eligibility }

let make ?sink ?registry ?mode (instance : Instance.t) ~n =
  if n < 4 || n mod 4 <> 0 then
    invalid_arg "Lru_edf.make: n must be a positive multiple of 4";
  make_tuned ?sink ?registry ?mode ~lru_slots:(lru_slots ~n)
    ~distinct_slots:(distinct_capacity ~n)
    ~replicated:true instance ~n

let policy instance ~n = (make instance ~n).policy
let oracle_policy instance ~n = (make ~mode:Ranking.Rebuild instance ~n).policy
