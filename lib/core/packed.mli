(** Bit-packing of the ranking hot path's composite keys into single
    tagged ints, so the flat heaps ({!Rrs_dstruct.Int_indexed_heap},
    {!Rrs_dstruct.Int_heap}) can order them with native [<].

    All packed values occupy the low 62 bits of a native int and are
    non-negative; because every field is non-negative and fits its
    width, integer comparison of packed values is {e exactly} the
    lexicographic comparison of the unpacked tuples.  Packers raise
    [Invalid_argument] on any field overflow — and [Ranking.Index]
    validates the whole instance once at build time, so the guards are
    never hit on accepted instances.

    Layout (high to low): rank key = [klass(2) | deadline(23) |
    delay(20) | color(17)]; recency = [2^44 - timestamp (45) |
    color(17)]; pair = [value(45) | color(17)]. *)

val color_bits : int
val max_colors : int
(** [2^17]: exclusive upper bound on color ids in any packed value. *)

val max_delay : int
(** [2^20]: exclusive upper bound on a delay bound in a rank key. *)

val max_deadline : int
(** [2^23]: exclusive upper bound on a deadline in a rank key. *)

val max_pair_value : int
(** [2^45]: exclusive upper bound on the value half of {!pack_pair}. *)

val pack_key : klass:int -> deadline:int -> delay:int -> color:int -> int
(** The EDF rank key [(klass, deadline, delay, color)] as one int;
    ascending int order = ascending lexicographic order.
    @raise Invalid_argument on overflow of any field. *)

val key_klass : int -> int
val key_deadline : int -> int
val key_delay : int -> int
val key_color : int -> int

val pack_recency : timestamp:int -> color:int -> int
(** The ΔLRU recency key [(-timestamp, color)] as one int (timestamp
    [>= -1], biased to stay non-negative); ascending int order = most
    recent timestamp first, ties by ascending color.
    @raise Invalid_argument on overflow. *)

val recency_timestamp : int -> int
val recency_color : int -> int

val pack_pair : value:int -> color:int -> int
(** A generic [(value, color)] event-heap entry (due deadline, window
    boundary) as one int; ascending int order = ascending pair order.
    @raise Invalid_argument on overflow. *)

val pair_value : int -> int
val pair_color : int -> int
