type config = {
  n : int;
  mini_rounds : int;
  record_schedule : bool;
  cost_projection : (Types.color -> Types.color) option;
  sink : Rrs_obs.Sink.t;
}

let config ?(mini_rounds = 1) ?(record_schedule = false) ?cost_projection
    ?(sink = Rrs_obs.Sink.null) ~n () =
  if n < 1 then invalid_arg "Engine.config: n < 1";
  if mini_rounds < 1 then invalid_arg "Engine.config: mini_rounds < 1";
  { n; mini_rounds; record_schedule; cost_projection; sink }

type result = {
  cost : Cost.t;
  executed : int;
  dropped : int;
  reconfigurations : int;
  drops_by_color : int array;
  executions_by_color : int array;
  rounds_simulated : int;
  schedule : Schedule.t option;
  final_cache : Types.color array;
}

let check_assignment cfg instance assignment =
  if Array.length assignment <> cfg.n then
    invalid_arg "Engine: policy returned an assignment of the wrong length";
  Array.iter
    (fun c ->
      if c <> Types.black && (c < 0 || c >= instance.Instance.num_colors) then
        invalid_arg "Engine: policy returned an out-of-range color")
    assignment

let run_policy cfg (instance : Instance.t) (policy : Policy.t) =
  Rrs_fault.probe "engine.run";
  let pending = Pending.create ~num_colors:instance.num_colors in
  let cache = Array.make cfg.n Types.black in
  let arrivals = Instance.arrivals_by_round instance in
  let project = match cfg.cost_projection with Some f -> f | None -> Fun.id in
  let sink = cfg.sink in
  let tracing = Rrs_obs.Sink.enabled sink in
  let events = if cfg.record_schedule then Some (ref []) else None in
  let record round e =
    match events with Some evs -> evs := (round, e) :: !evs | None -> ()
  in
  let reconfig_charges = ref 0 in
  let executed = ref 0 in
  let dropped = ref 0 in
  let drops_by_color = Array.make instance.num_colors 0 in
  let executions_by_color = Array.make instance.num_colors 0 in
  let end_round = instance.horizon in
  for round = 0 to end_round do
    Rrs_fault.probe "engine.round";
    (* drop phase *)
    let expired = Pending.expire pending ~now:round in
    List.iter
      (fun (color, count) ->
        dropped := !dropped + count;
        drops_by_color.(color) <- drops_by_color.(color) + count;
        record round (Schedule.Drop { color = project color; count });
        if tracing then
          Rrs_obs.Sink.emit sink
            (Rrs_obs.Event.Drop { round; color = project color; count }))
      expired;
    (* arrival phase *)
    let batch = if round < Array.length arrivals then arrivals.(round) else [] in
    List.iter
      (fun (color, count) ->
        Pending.add pending color
          ~deadline:(round + instance.delay.(color))
          ~count;
        if tracing then
          Rrs_obs.Sink.emit sink (Rrs_obs.Event.Arrival { round; color; count }))
      batch;
    (* reconfiguration + execution, [mini_rounds] times *)
    for mini_round = 0 to cfg.mini_rounds - 1 do
      if tracing then
        Rrs_obs.Sink.emit sink (Rrs_obs.Event.Mini_round { round; mini_round });
      let view =
        {
          Policy.round;
          mini_round;
          arrivals = (if mini_round = 0 then batch else []);
          dropped = (if mini_round = 0 then expired else []);
          cache;
          pending;
        }
      in
      let assignment = policy.Policy.reconfigure view in
      check_assignment cfg instance assignment;
      for resource = 0 to cfg.n - 1 do
        let old_color = cache.(resource) in
        let new_color = assignment.(resource) in
        if old_color <> new_color then begin
          if project old_color <> project new_color then begin
            incr reconfig_charges;
            record round
              (Schedule.Reconfigure
                 {
                   resource;
                   mini_round;
                   from_color = project old_color;
                   to_color = project new_color;
                 });
            if tracing then
              Rrs_obs.Sink.emit sink
                (Rrs_obs.Event.Reconfigure
                   {
                     round;
                     mini_round;
                     resource;
                     from_color = project old_color;
                     to_color = project new_color;
                   })
          end;
          cache.(resource) <- new_color
        end
      done;
      (* execution phase: one pending job per configured resource *)
      for resource = 0 to cfg.n - 1 do
        let color = cache.(resource) in
        if color <> Types.black then
          match Pending.execute_one pending color with
          | Some _deadline ->
              incr executed;
              executions_by_color.(color) <- executions_by_color.(color) + 1;
              record round
                (Schedule.Execute
                   { resource; mini_round; color = project color });
              if tracing then
                Rrs_obs.Sink.emit sink
                  (Rrs_obs.Event.Execute
                     { round; mini_round; resource; color = project color })
          | None -> ()
      done
    done
  done;
  assert (Pending.grand_total pending = 0);
  let schedule =
    match events with
    | None -> None
    | Some evs ->
        Some
          {
            Schedule.n = cfg.n;
            mini_rounds = cfg.mini_rounds;
            events = Array.of_list (List.rev !evs);
          }
  in
  {
    cost =
      Cost.make ~reconfig:(instance.delta * !reconfig_charges) ~drop:!dropped;
    executed = !executed;
    dropped = !dropped;
    reconfigurations = !reconfig_charges;
    drops_by_color;
    executions_by_color;
    rounds_simulated = end_round + 1;
    schedule;
    final_cache = Array.copy cache;
  }

let run cfg instance factory = run_policy cfg instance (factory instance ~n:cfg.n)
