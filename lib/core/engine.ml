type config = {
  n : int;
  mini_rounds : int;
  record_schedule : bool;
  cost_projection : (Types.color -> Types.color) option;
  sink : Rrs_obs.Sink.t;
  registry : Rrs_obs.Metrics.t option;
  heartbeat : Rrs_obs.Heartbeat.t option;
}

let config ?(mini_rounds = 1) ?(record_schedule = false) ?cost_projection
    ?(sink = Rrs_obs.Sink.null) ?registry ?heartbeat ~n () =
  if n < 1 then invalid_arg "Engine.config: n < 1";
  if mini_rounds < 1 then invalid_arg "Engine.config: mini_rounds < 1";
  { n; mini_rounds; record_schedule; cost_projection; sink; registry; heartbeat }

type result = {
  cost : Cost.t;
  executed : int;
  dropped : int;
  reconfigurations : int;
  drops_by_color : int array;
  executions_by_color : int array;
  rounds_simulated : int;
  schedule : Schedule.t option;
  final_cache : Types.color array;
}

(* Round-latency and allocation telemetry, active only when the config
   carries a registry: the latency of every round lands in an exact
   µs histogram (clamped at ~65 ms — far beyond any simulated round),
   and the run's GC counter deltas become allocations-per-round gauges.
   Without a registry the engine pays one branch per round and
   allocates nothing for this. *)
let round_latency_max_us = 65535

type telemetry = {
  latency : Rrs_obs.Metrics.histogram;
  reg : Rrs_obs.Metrics.t;
  minor0 : float;
  promoted0 : float;
  major0 : float;
}

let telemetry_start = function
  | None -> None
  | Some reg ->
      let minor0, promoted0, major0 = Gc.counters () in
      Some
        {
          latency =
            Rrs_obs.Metrics.histogram reg "engine_round_latency_us"
              ~max_value:round_latency_max_us;
          reg;
          minor0;
          promoted0;
          major0;
        }

let telemetry_finish t ~rounds =
  match t with
  | None -> ()
  | Some t ->
      let minor1, promoted1, major1 = Gc.counters () in
      let per_round v0 v1 = (v1 -. v0) /. float_of_int (max rounds 1) in
      let gauge name v =
        Rrs_obs.Metrics.set (Rrs_obs.Metrics.gauge t.reg name) v
      in
      gauge "alloc_minor_words_per_round" (per_round t.minor0 minor1);
      gauge "alloc_promoted_words_per_round" (per_round t.promoted0 promoted1);
      gauge "alloc_major_words_per_round" (per_round t.major0 major1);
      Rrs_obs.Metrics.inc
        (Rrs_obs.Metrics.counter t.reg "engine_rounds")
        rounds

module Session = struct
  (* Where the next round's arrival batch comes from.  A batch run
     ([Engine.run]) preloads the instance's dense per-round lists and
     pays exactly what the monolithic loop used to pay; a streamed
     session buckets fed arrivals per future round and discards each
     bucket as its round executes, so memory is bounded by the feed
     lookahead, never by the history. *)
  type arrivals_source =
    | Preloaded of (Types.color * int) list array
    | Stream of (int, (Types.color * int) list) Hashtbl.t
        (* per-round buckets, reverse feed order *)

  type t = {
    (* geometry and wiring fixed at creation *)
    mini_rounds : int;
    num_colors : int;
    name : string;
    sink : Rrs_obs.Sink.t;
    tracing : bool;
    project : Types.color -> Types.color;
    factory : Policy.factory option;
    (* parameters a live [reconfigure] may change between rounds *)
    mutable n : int;
    mutable delta : int;
    mutable delay : int array;
    mutable policy : Policy.t;
    (* live state *)
    pending : Pending.t;
    mutable cache : Types.color array;
    source : arrivals_source;
    mutable round : int;  (** next round to execute *)
    mutable reconfig_charges : int;
    mutable reconfig_cost : int;  (** Δ accumulated at charge time *)
    mutable executed : int;
    mutable dropped : int;
    drops_by_color : int array;
    executions_by_color : int array;
    events : (int * Schedule.event) list ref option;
    (* telemetry *)
    telemetry : telemetry option;
    mutable heartbeat : Rrs_obs.Heartbeat.t option;
    mutable need_clock : bool;
    mutable finished : bool;
  }

  (* Shared tail of both constructors.  Call order matters for exact
     batch parity: the caller creates pending/cache/arrival storage
     {e before} this function samples the GC baseline
     ([telemetry_start]), mirroring the original monolithic loop. *)
  let make (cfg : config) ~name ~delta ~delay ~num_colors ~factory ~source
      ~policy ~pending ~cache =
    let project =
      match cfg.cost_projection with Some f -> f | None -> Fun.id
    in
    let telemetry = telemetry_start cfg.registry in
    (* An explicit config heartbeat wins; otherwise pick up the ambient
       one (Heartbeat.with_heartbeat), so a sweep installs one heartbeat
       and every engine under it reports without config plumbing. *)
    let heartbeat =
      match cfg.heartbeat with
      | Some _ as h -> h
      | None -> Rrs_obs.Heartbeat.ambient ()
    in
    {
      mini_rounds = cfg.mini_rounds;
      num_colors;
      name;
      sink = cfg.sink;
      tracing = Rrs_obs.Sink.enabled cfg.sink;
      project;
      factory;
      n = cfg.n;
      delta;
      delay;
      policy;
      pending;
      cache;
      source;
      round = 0;
      reconfig_charges = 0;
      reconfig_cost = 0;
      executed = 0;
      dropped = 0;
      drops_by_color = Array.make num_colors 0;
      executions_by_color = Array.make num_colors 0;
      events = (if cfg.record_schedule then Some (ref []) else None);
      telemetry;
      heartbeat;
      need_clock = Option.is_some telemetry || Option.is_some heartbeat;
      finished = false;
    }

  let of_instance (cfg : config) (instance : Instance.t) policy =
    Rrs_fault.probe "engine.run";
    Rrs_prof.enter "engine.run";
    let pending = Pending.create ~num_colors:instance.num_colors in
    let cache = Array.make cfg.n Types.black in
    let source = Preloaded (Instance.arrivals_by_round instance) in
    make cfg ~name:instance.name ~delta:instance.delta ~delay:instance.delay
      ~num_colors:instance.num_colors ~factory:None ~source ~policy ~pending
      ~cache

  let create ?(name = "session") (cfg : config) ~delta ~delay factory =
    if Array.length delay > Packed.max_colors then
      invalid_arg
        (Printf.sprintf
           "Engine.Session.create: %d colors exceed Packed.max_colors (%d)"
           (Array.length delay) Packed.max_colors);
    (* an empty-arrival instance carries the static parameters online
       policies read (delta, delay, num_colors) — the stream has no
       pre-built workload value by design *)
    let params = Instance.create ~name ~delta ~delay:(Array.copy delay) ~arrivals:[] () in
    let policy = factory params ~n:cfg.n in
    Rrs_fault.probe "engine.run";
    Rrs_prof.enter "engine.run";
    let pending = Pending.create ~num_colors:params.num_colors in
    let cache = Array.make cfg.n Types.black in
    let source = Stream (Hashtbl.create 64) in
    make cfg ~name ~delta:params.delta ~delay:params.delay
      ~num_colors:params.num_colors ~factory:(Some factory) ~source ~policy
      ~pending ~cache

  (* ---- observers ------------------------------------------------- *)

  let round t = t.round
  let n t = t.n
  let delta t = t.delta
  let delay t = Array.copy t.delay
  let num_colors t = t.num_colors
  let pending_jobs t = Pending.grand_total t.pending
  let pending_of t color = Pending.total t.pending color
  let nonidle_colors t = Pending.nonidle_count t.pending
  let cache t = Array.copy t.cache
  let executed t = t.executed
  let dropped t = t.dropped
  let reconfigurations t = t.reconfig_charges
  let cost t = Cost.make ~reconfig:t.reconfig_cost ~drop:t.dropped
  let finished t = t.finished

  let future_arrivals t =
    match t.source with
    | Preloaded arr ->
        let total = ref 0 in
        for r = t.round to Array.length arr - 1 do
          List.iter (fun (_, count) -> total := !total + count) arr.(r)
        done;
        !total
    | Stream tbl ->
        Hashtbl.fold
          (fun _ batch acc ->
            List.fold_left (fun acc (_, count) -> acc + count) acc batch)
          tbl 0

  (* ---- feeding the stream ---------------------------------------- *)

  type feed_error =
    [ `Color_out_of_range of int * int  (** color, num_colors *)
    | `Count_not_positive of int
    | `Round_in_past of int * int  (** requested, current *)
    | `Preloaded
    | `Finished ]

  let string_of_feed_error : feed_error -> string = function
    | `Color_out_of_range (color, num_colors) ->
        Printf.sprintf "color %d out of range (universe has %d colors, max %d)"
          color num_colors Packed.max_colors
    | `Count_not_positive count ->
        Printf.sprintf "count %d is not positive" count
    | `Round_in_past (requested, current) ->
        Printf.sprintf "round %d already executed (current round is %d)"
          requested current
    | `Preloaded -> "session runs a preloaded instance; it takes no feed"
    | `Finished -> "session is finished"

  let feed t ~round ~color ~count : (unit, feed_error) Stdlib.result =
    if t.finished then Error `Finished
    else
      match t.source with
      | Preloaded _ -> Error `Preloaded
      | Stream buckets ->
          if color < 0 || color >= t.num_colors then
            Error (`Color_out_of_range (color, t.num_colors))
          else if count <= 0 then Error (`Count_not_positive count)
          else if round < t.round then Error (`Round_in_past (round, t.round))
          else begin
            let prev =
              match Hashtbl.find_opt buckets round with
              | Some batch -> batch
              | None -> []
            in
            Hashtbl.replace buckets round ((color, count) :: prev);
            Ok ()
          end

  (* ---- reconfiguration between rounds ----------------------------- *)

  type reconfigure_error =
    [ `Bad_delta of int
    | `Bad_n of int
    | `Bad_delay of int * int  (** color, requested delay *)
    | `Unknown_color of int
    | `Delay_reduced_while_pending of int
    | `No_factory
    | `Policy_rejected of string
    | `Finished ]

  let string_of_reconfigure_error : reconfigure_error -> string = function
    | `Bad_delta d -> Printf.sprintf "delta %d must be >= 1" d
    | `Bad_n n -> Printf.sprintf "n %d must be >= 1" n
    | `Bad_delay (color, d) ->
        Printf.sprintf "delay %d for color %d out of range [1, %d)" d color
          Packed.max_delay
    | `Unknown_color color -> Printf.sprintf "unknown color %d" color
    | `Delay_reduced_while_pending color ->
        Printf.sprintf
          "cannot reduce the delay bound of color %d while it has pending jobs"
          color
    | `No_factory ->
        "session was built from an instantiated policy; capacity and \
         delay-bound reconfiguration need a policy factory"
    | `Policy_rejected msg -> Printf.sprintf "policy rejected parameters: %s" msg
    | `Finished -> "session is finished"

  let reconfigure t ?delta ?n ?(delay = []) () :
      (unit, reconfigure_error) Stdlib.result =
    if t.finished then Error `Finished
    else
      let bad =
        match delta with
        | Some d when d < 1 -> Some (`Bad_delta d)
        | _ -> (
            match n with
            | Some v when v < 1 -> Some (`Bad_n v)
            | _ ->
                List.fold_left
                  (fun acc (color, d) ->
                    match acc with
                    | Some _ -> acc
                    | None ->
                        if color < 0 || color >= t.num_colors then
                          Some (`Unknown_color color)
                        else if d < 1 || d >= Packed.max_delay then
                          Some (`Bad_delay (color, d))
                        else if
                          (* a shrunk bound would let a later arrival's
                             deadline undercut this color's pending back
                             bucket, which Pending.add rejects deep in the
                             hot path — surface it as a typed error here *)
                          d < t.delay.(color) && Pending.total t.pending color > 0
                        then Some (`Delay_reduced_while_pending color)
                        else None)
                  None delay)
      in
      match bad with
      | Some e -> Error e
      | None -> (
          let new_delta = Option.value ~default:t.delta delta in
          let new_n = Option.value ~default:t.n n in
          let new_delay =
            if delay = [] then t.delay
            else begin
              let d = Array.copy t.delay in
              List.iter (fun (color, v) -> d.(color) <- v) delay;
              d
            end
          in
          let changed =
            new_delta <> t.delta || new_n <> t.n || new_delay != t.delay
          in
          if not changed then Ok ()
          else
            (* any parameter change re-instantiates the policy: Δ feeds
               eligibility credits, the delay bounds feed the ranking
               keys, and n fixes the component quotas — a fresh policy
               at the new operating point is the reconfiguration
               semantics, and replaying the same op sequence re-creates
               it identically (doc/SERVICE.md, "Restart semantics") *)
            match t.factory with
            | None -> Error `No_factory
            | Some factory -> (
                let params =
                  Instance.create ~name:t.name ~delta:new_delta
                    ~delay:(Array.copy new_delay) ~arrivals:[] ()
                in
                match factory params ~n:new_n with
                | exception Invalid_argument msg -> Error (`Policy_rejected msg)
                | policy ->
                    t.delta <- new_delta;
                    t.delay <- new_delay;
                    if new_n <> t.n then begin
                      let fresh = Array.make new_n Types.black in
                      Array.blit t.cache 0 fresh 0 (min t.n new_n);
                      t.cache <- fresh;
                      t.n <- new_n
                    end;
                    t.policy <- policy;
                    Ok ()))

  (* ---- the round stepper ------------------------------------------ *)

  let check_assignment t assignment =
    if Array.length assignment <> t.n then
      invalid_arg "Engine: policy returned an assignment of the wrong length";
    for i = 0 to Array.length assignment - 1 do
      let c = assignment.(i) in
      if c <> Types.black && (c < 0 || c >= t.num_colors) then
        invalid_arg "Engine: policy returned an out-of-range color"
    done

  let take_batch t round =
    match t.source with
    | Preloaded arr -> if round < Array.length arr then arr.(round) else []
    | Stream buckets -> (
        match Hashtbl.find_opt buckets round with
        | None -> []
        | Some rev ->
            Hashtbl.remove buckets round;
            List.rev rev)

  let step t =
    if t.finished then invalid_arg "Engine.Session.step: session is finished";
    Rrs_fault.probe "engine.round";
    Rrs_prof.enter "engine.round";
    let round = t.round in
    let round_t0 = if t.need_clock then Unix.gettimeofday () else 0. in
    (* this round's increments for the heartbeat: plain int reads, no
       allocation on the hot path whether or not one is attached *)
    let hb_charges0 = t.reconfig_charges in
    let hb_executed0 = t.executed in
    let hb_dropped0 = t.dropped in
    let cache = t.cache in
    (* drop phase *)
    Rrs_prof.enter "engine.drop";
    let expired = Pending.expire t.pending ~now:round in
    List.iter
      (fun (color, count) ->
        t.dropped <- t.dropped + count;
        t.drops_by_color.(color) <- t.drops_by_color.(color) + count;
        (match t.events with
        | Some evs ->
            evs := (round, Schedule.Drop { color = t.project color; count }) :: !evs
        | None -> ());
        if t.tracing then
          Rrs_obs.Sink.emit t.sink
            (Rrs_obs.Event.Drop { round; color = t.project color; count }))
      expired;
    Rrs_prof.leave "engine.drop";
    (* arrival phase *)
    Rrs_prof.enter "engine.arrival";
    let batch = take_batch t round in
    List.iter
      (fun (color, count) ->
        Pending.add t.pending color
          ~deadline:(round + t.delay.(color))
          ~count;
        if t.tracing then
          Rrs_obs.Sink.emit t.sink (Rrs_obs.Event.Arrival { round; color; count }))
      batch;
    Rrs_prof.leave "engine.arrival";
    (* reconfiguration + execution, [mini_rounds] times *)
    for mini_round = 0 to t.mini_rounds - 1 do
      if t.tracing then
        Rrs_obs.Sink.emit t.sink (Rrs_obs.Event.Mini_round { round; mini_round });
      Rrs_prof.enter "engine.reconfigure";
      let view =
        {
          Policy.round;
          mini_round;
          arrivals = (if mini_round = 0 then batch else []);
          dropped = (if mini_round = 0 then expired else []);
          cache;
          pending = t.pending;
        }
      in
      let assignment = t.policy.Policy.reconfigure view in
      check_assignment t assignment;
      for resource = 0 to t.n - 1 do
        let old_color = cache.(resource) in
        let new_color = assignment.(resource) in
        if old_color <> new_color then begin
          if t.project old_color <> t.project new_color then begin
            t.reconfig_charges <- t.reconfig_charges + 1;
            t.reconfig_cost <- t.reconfig_cost + t.delta;
            (match t.events with
            | Some evs ->
                evs :=
                  ( round,
                    Schedule.Reconfigure
                      {
                        resource;
                        mini_round;
                        from_color = t.project old_color;
                        to_color = t.project new_color;
                      } )
                  :: !evs
            | None -> ());
            if t.tracing then
              Rrs_obs.Sink.emit t.sink
                (Rrs_obs.Event.Reconfigure
                   {
                     round;
                     mini_round;
                     resource;
                     from_color = t.project old_color;
                     to_color = t.project new_color;
                   })
          end;
          cache.(resource) <- new_color
        end
      done;
      Rrs_prof.leave "engine.reconfigure";
      (* execution phase: one pending job per configured resource *)
      Rrs_prof.enter "engine.execute";
      for resource = 0 to t.n - 1 do
        let color = cache.(resource) in
        if color <> Types.black && Pending.execute t.pending color then begin
          t.executed <- t.executed + 1;
          t.executions_by_color.(color) <- t.executions_by_color.(color) + 1;
          (match t.events with
          | Some evs ->
              evs :=
                ( round,
                  Schedule.Execute
                    { resource; mini_round; color = t.project color } )
                :: !evs
          | None -> ());
          if t.tracing then
            Rrs_obs.Sink.emit t.sink
              (Rrs_obs.Event.Execute
                 { round; mini_round; resource; color = t.project color })
        end
      done;
      Rrs_prof.leave "engine.execute"
    done;
    if t.need_clock then begin
      let latency_us =
        int_of_float ((Unix.gettimeofday () -. round_t0) *. 1e6)
      in
      (match t.telemetry with
      | None -> ()
      | Some tl -> Rrs_obs.Metrics.observe tl.latency latency_us);
      match t.heartbeat with
      | None -> ()
      | Some hb ->
          Rrs_obs.Heartbeat.observe_round hb ~round ~delta:t.delta
            ~recolorings:(t.reconfig_charges - hb_charges0)
            ~executed:(t.executed - hb_executed0)
            ~dropped:(t.dropped - hb_dropped0)
            ~latency_us
    end;
    Rrs_prof.leave "engine.round";
    t.round <- round + 1

  let set_heartbeat t heartbeat =
    t.heartbeat <- heartbeat;
    t.need_clock <- Option.is_some t.telemetry || Option.is_some heartbeat

  let finish ?(expect_drained = false) t =
    if t.finished then invalid_arg "Engine.Session.finish: already finished";
    t.finished <- true;
    if expect_drained then assert (Pending.grand_total t.pending = 0);
    telemetry_finish t.telemetry ~rounds:t.round;
    let schedule =
      match t.events with
      | None -> None
      | Some evs ->
          Some
            {
              Schedule.n = t.n;
              mini_rounds = t.mini_rounds;
              events = Array.of_list (List.rev !evs);
            }
    in
    Rrs_prof.leave "engine.run";
    {
      cost = Cost.make ~reconfig:t.reconfig_cost ~drop:t.dropped;
      executed = t.executed;
      dropped = t.dropped;
      reconfigurations = t.reconfig_charges;
      drops_by_color = t.drops_by_color;
      executions_by_color = t.executions_by_color;
      rounds_simulated = t.round;
      schedule;
      final_cache = Array.copy t.cache;
    }
end

(* The batch entry points are thin drivers over a preloaded session:
   every round of the instance (through the horizon, whose final drop
   phase expires the last pending jobs) is one [Session.step]. *)
let run_policy cfg (instance : Instance.t) (policy : Policy.t) =
  let session = Session.of_instance cfg instance policy in
  for _ = 0 to instance.horizon do
    Session.step session
  done;
  Session.finish ~expect_drained:true session

let run cfg instance factory = run_policy cfg instance (factory instance ~n:cfg.n)
