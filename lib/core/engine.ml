type config = {
  n : int;
  mini_rounds : int;
  record_schedule : bool;
  cost_projection : (Types.color -> Types.color) option;
  sink : Rrs_obs.Sink.t;
  registry : Rrs_obs.Metrics.t option;
  heartbeat : Rrs_obs.Heartbeat.t option;
}

let config ?(mini_rounds = 1) ?(record_schedule = false) ?cost_projection
    ?(sink = Rrs_obs.Sink.null) ?registry ?heartbeat ~n () =
  if n < 1 then invalid_arg "Engine.config: n < 1";
  if mini_rounds < 1 then invalid_arg "Engine.config: mini_rounds < 1";
  { n; mini_rounds; record_schedule; cost_projection; sink; registry; heartbeat }

type result = {
  cost : Cost.t;
  executed : int;
  dropped : int;
  reconfigurations : int;
  drops_by_color : int array;
  executions_by_color : int array;
  rounds_simulated : int;
  schedule : Schedule.t option;
  final_cache : Types.color array;
}

let check_assignment cfg instance assignment =
  if Array.length assignment <> cfg.n then
    invalid_arg "Engine: policy returned an assignment of the wrong length";
  for i = 0 to Array.length assignment - 1 do
    let c = assignment.(i) in
    if c <> Types.black && (c < 0 || c >= instance.Instance.num_colors) then
      invalid_arg "Engine: policy returned an out-of-range color"
  done

(* Round-latency and allocation telemetry, active only when the config
   carries a registry: the latency of every round lands in an exact
   µs histogram (clamped at ~65 ms — far beyond any simulated round),
   and the run's GC counter deltas become allocations-per-round gauges.
   Without a registry the engine pays one branch per round and
   allocates nothing for this. *)
let round_latency_max_us = 65535

type telemetry = {
  latency : Rrs_obs.Metrics.histogram;
  reg : Rrs_obs.Metrics.t;
  minor0 : float;
  promoted0 : float;
  major0 : float;
}

let telemetry_start = function
  | None -> None
  | Some reg ->
      let minor0, promoted0, major0 = Gc.counters () in
      Some
        {
          latency =
            Rrs_obs.Metrics.histogram reg "engine_round_latency_us"
              ~max_value:round_latency_max_us;
          reg;
          minor0;
          promoted0;
          major0;
        }

let telemetry_finish t ~rounds =
  match t with
  | None -> ()
  | Some t ->
      let minor1, promoted1, major1 = Gc.counters () in
      let per_round v0 v1 = (v1 -. v0) /. float_of_int (max rounds 1) in
      let gauge name v =
        Rrs_obs.Metrics.set (Rrs_obs.Metrics.gauge t.reg name) v
      in
      gauge "alloc_minor_words_per_round" (per_round t.minor0 minor1);
      gauge "alloc_promoted_words_per_round" (per_round t.promoted0 promoted1);
      gauge "alloc_major_words_per_round" (per_round t.major0 major1);
      Rrs_obs.Metrics.inc
        (Rrs_obs.Metrics.counter t.reg "engine_rounds")
        rounds

let run_policy cfg (instance : Instance.t) (policy : Policy.t) =
  Rrs_fault.probe "engine.run";
  Rrs_prof.enter "engine.run";
  let pending = Pending.create ~num_colors:instance.num_colors in
  let cache = Array.make cfg.n Types.black in
  let arrivals = Instance.arrivals_by_round instance in
  let project = match cfg.cost_projection with Some f -> f | None -> Fun.id in
  let sink = cfg.sink in
  let tracing = Rrs_obs.Sink.enabled sink in
  let telemetry = telemetry_start cfg.registry in
  (* An explicit config heartbeat wins; otherwise pick up the ambient
     one (Heartbeat.with_heartbeat), so a sweep installs one heartbeat
     and every engine under it reports without config plumbing. *)
  let heartbeat =
    match cfg.heartbeat with
    | Some _ as h -> h
    | None -> Rrs_obs.Heartbeat.ambient ()
  in
  let need_clock = Option.is_some telemetry || Option.is_some heartbeat in
  let events = if cfg.record_schedule then Some (ref []) else None in
  let record round e =
    match events with Some evs -> evs := (round, e) :: !evs | None -> ()
  in
  let reconfig_charges = ref 0 in
  let executed = ref 0 in
  let dropped = ref 0 in
  let drops_by_color = Array.make instance.num_colors 0 in
  let executions_by_color = Array.make instance.num_colors 0 in
  let end_round = instance.horizon in
  for round = 0 to end_round do
    Rrs_fault.probe "engine.round";
    Rrs_prof.enter "engine.round";
    let round_t0 = if need_clock then Unix.gettimeofday () else 0. in
    (* this round's increments for the heartbeat: plain int reads, no
       allocation on the hot path whether or not one is attached *)
    let hb_charges0 = !reconfig_charges in
    let hb_executed0 = !executed in
    let hb_dropped0 = !dropped in
    (* drop phase *)
    Rrs_prof.enter "engine.drop";
    let expired = Pending.expire pending ~now:round in
    List.iter
      (fun (color, count) ->
        dropped := !dropped + count;
        drops_by_color.(color) <- drops_by_color.(color) + count;
        record round (Schedule.Drop { color = project color; count });
        if tracing then
          Rrs_obs.Sink.emit sink
            (Rrs_obs.Event.Drop { round; color = project color; count }))
      expired;
    Rrs_prof.leave "engine.drop";
    (* arrival phase *)
    Rrs_prof.enter "engine.arrival";
    let batch = if round < Array.length arrivals then arrivals.(round) else [] in
    List.iter
      (fun (color, count) ->
        Pending.add pending color
          ~deadline:(round + instance.delay.(color))
          ~count;
        if tracing then
          Rrs_obs.Sink.emit sink (Rrs_obs.Event.Arrival { round; color; count }))
      batch;
    Rrs_prof.leave "engine.arrival";
    (* reconfiguration + execution, [mini_rounds] times *)
    for mini_round = 0 to cfg.mini_rounds - 1 do
      if tracing then
        Rrs_obs.Sink.emit sink (Rrs_obs.Event.Mini_round { round; mini_round });
      Rrs_prof.enter "engine.reconfigure";
      let view =
        {
          Policy.round;
          mini_round;
          arrivals = (if mini_round = 0 then batch else []);
          dropped = (if mini_round = 0 then expired else []);
          cache;
          pending;
        }
      in
      let assignment = policy.Policy.reconfigure view in
      check_assignment cfg instance assignment;
      for resource = 0 to cfg.n - 1 do
        let old_color = cache.(resource) in
        let new_color = assignment.(resource) in
        if old_color <> new_color then begin
          if project old_color <> project new_color then begin
            incr reconfig_charges;
            record round
              (Schedule.Reconfigure
                 {
                   resource;
                   mini_round;
                   from_color = project old_color;
                   to_color = project new_color;
                 });
            if tracing then
              Rrs_obs.Sink.emit sink
                (Rrs_obs.Event.Reconfigure
                   {
                     round;
                     mini_round;
                     resource;
                     from_color = project old_color;
                     to_color = project new_color;
                   })
          end;
          cache.(resource) <- new_color
        end
      done;
      Rrs_prof.leave "engine.reconfigure";
      (* execution phase: one pending job per configured resource *)
      Rrs_prof.enter "engine.execute";
      for resource = 0 to cfg.n - 1 do
        let color = cache.(resource) in
        if color <> Types.black && Pending.execute pending color then begin
          incr executed;
          executions_by_color.(color) <- executions_by_color.(color) + 1;
          record round
            (Schedule.Execute { resource; mini_round; color = project color });
          if tracing then
            Rrs_obs.Sink.emit sink
              (Rrs_obs.Event.Execute
                 { round; mini_round; resource; color = project color })
        end
      done;
      Rrs_prof.leave "engine.execute"
    done;
    if need_clock then begin
      let latency_us =
        int_of_float ((Unix.gettimeofday () -. round_t0) *. 1e6)
      in
      (match telemetry with
      | None -> ()
      | Some t -> Rrs_obs.Metrics.observe t.latency latency_us);
      match heartbeat with
      | None -> ()
      | Some hb ->
          Rrs_obs.Heartbeat.observe_round hb ~round ~delta:instance.delta
            ~recolorings:(!reconfig_charges - hb_charges0)
            ~executed:(!executed - hb_executed0)
            ~dropped:(!dropped - hb_dropped0)
            ~latency_us
    end;
    Rrs_prof.leave "engine.round"
  done;
  assert (Pending.grand_total pending = 0);
  telemetry_finish telemetry ~rounds:(end_round + 1);
  let schedule =
    match events with
    | None -> None
    | Some evs ->
        Some
          {
            Schedule.n = cfg.n;
            mini_rounds = cfg.mini_rounds;
            events = Array.of_list (List.rev !evs);
          }
  in
  Rrs_prof.leave "engine.run";
  {
    cost =
      Cost.make ~reconfig:(instance.delta * !reconfig_charges) ~drop:!dropped;
    executed = !executed;
    dropped = !dropped;
    reconfigurations = !reconfig_charges;
    drops_by_color;
    executions_by_color;
    rounds_simulated = end_round + 1;
    schedule;
    final_cache = Array.copy cache;
  }

let run cfg instance factory = run_policy cfg instance (factory instance ~n:cfg.n)
