(** Pending-job bookkeeping for all colors of one simulation.

    Jobs of one color all share one delay bound, so arrival order equals
    deadline order and a per-color FIFO of [(deadline, count)] buckets is
    simultaneously FIFO and earliest-deadline-first.  A global heap of
    due dates makes the engine's drop phase event-driven: only colors
    with a bucket expiring this round are touched. *)

type t

val create : num_colors:int -> t
(** @raise Invalid_argument if [num_colors] exceeds the packed color
    field ({!Packed.max_colors}). *)

val num_colors : t -> int

val add : t -> Types.color -> deadline:int -> count:int -> unit
(** Enqueue [count] jobs.  Deadlines of one color must be enqueued in
    nondecreasing order (the engine guarantees this: deadline = arrival
    round + fixed per-color delay).
    @raise Invalid_argument on a negative count or on a deadline earlier
    than the color's current latest bucket. *)

val total : t -> Types.color -> int
(** Pending job count of a color; O(1). *)

val grand_total : t -> int
(** Pending jobs over all colors; O(1). *)

val is_idle : t -> Types.color -> bool
(** A color is idle iff it has no pending jobs (paper, Section 3.1). *)

val earliest_deadline : t -> Types.color -> int option

val front_deadline : t -> Types.color -> int
(** {!earliest_deadline} without the option box: the color's earliest
    pending deadline, or [-1] when it is idle (deadlines are
    non-negative).  The zero-alloc accessor the ranking hot path uses. *)

val execute : t -> Types.color -> bool
(** Consume the earliest-deadline pending job of the color; [false] if
    the color is idle.  Zero-alloc — the engine's per-resource execution
    call. *)

val execute_one : t -> Types.color -> int option
(** {!execute}, additionally returning the consumed job's deadline
    (allocates the option). *)

val expire : t -> now:int -> (Types.color * int) list
(** Drop every pending job whose deadline is [<= now]; returns the drop
    counts per affected color (ascending color order).  Amortised O(log n)
    per expired bucket. *)

val drop_all : t -> Types.color -> int
(** Drop every pending job of one color (the batched-algorithms' drop
    phase); returns the count. *)

val nonidle_count : t -> int
(** Number of colors with at least one pending job; O(1). *)

val iter_nonidle : t -> (Types.color -> int -> unit) -> unit
(** [iter_nonidle t f] calls [f color pending_count] for each nonidle
    color in ascending color order; O(num_colors). *)

val snapshot : t -> (int * int) list array
(** Per-color bucket lists [(deadline, count)], front first — for tests
    and the offline search. *)

val on_front_change : t -> (Types.color -> unit) -> unit
(** Register a listener called whenever a color's {e front} changes:
    its earliest pending deadline moved or its idleness flipped (first
    bucket created, front bucket consumed or expired, [drop_all]).
    Appends behind an existing front do {e not} fire — they are
    invisible to deadline-keyed consumers.  This is the delta feed the
    incremental ranking ({!Ranking.Index}) and incremental Par-EDF are
    driven by; listeners run in registration order and must not mutate
    the [Pending.t] they observe. *)
