type t = {
  slots : Types.color array;
  flags : bool array; (* color -> currently in a distinct slot *)
  wanted : int array; (* color -> scratch for assign_array; 0 outside *)
  mutable desired_buf : int array; (* scratch for the list-based assign *)
}

let create ~num_colors ~distinct_slots =
  {
    slots = Array.make distinct_slots Types.black;
    flags = Array.make (max num_colors 1) false;
    wanted = Array.make (max num_colors 1) 0;
    desired_buf = [||];
  }

let mem t color = color >= 0 && color < Array.length t.flags && t.flags.(color)

let cached_colors t =
  let out = ref [] in
  for color = Array.length t.flags - 1 downto 0 do
    if t.flags.(color) then out := color :: !out
  done;
  !out

(* Stable slot assignment over the pre-validated [desired] prefix of
   [buf] — the allocation-free equivalent of [Policy.stable_assign]
   (same placement, same error conditions): desired colors already in a
   slot stay put; newcomers take, in desired order, the left-to-right
   slots whose occupants are not desired.  [t.wanted] is the scratch
   Hashtbl replacement (0 = not desired, 1 = desired unplaced,
   2 = desired placed); it is restored to all-zero before returning or
   raising, so the next call starts clean. *)
let assign_array t buf len =
  let slots = t.slots in
  let q = Array.length slots in
  let fail msg =
    (* restore the scratch before raising; entries past a failed
       validation may be out of range and were never set *)
    for i = 0 to len - 1 do
      let c = buf.(i) in
      if c >= 0 && c < Array.length t.wanted then t.wanted.(c) <- 0
    done;
    invalid_arg msg
  in
  if len > q then fail "Policy.stable_assign: too many desired colors";
  for i = 0 to len - 1 do
    let c = buf.(i) in
    if c < 0 || c >= Array.length t.wanted then
      fail "Cache_state.assign: color out of range";
    if t.wanted.(c) <> 0 then
      fail "Policy.stable_assign: duplicate desired color";
    t.wanted.(c) <- 1
  done;
  (* pass 1: desired colors already in place stay *)
  for slot = 0 to q - 1 do
    let c = slots.(slot) in
    if c >= 0 && t.wanted.(c) = 1 then t.wanted.(c) <- 2
  done;
  (* pass 2: unplaced desired colors, in desired order, take the slots
     whose occupants are not desired (left to right) *)
  let slot = ref 0 in
  for i = 0 to len - 1 do
    let c = buf.(i) in
    if t.wanted.(c) = 1 then begin
      while
        !slot < q
        && (let occ = slots.(!slot) in
            occ >= 0 && t.wanted.(occ) <> 0)
      do
        incr slot
      done;
      if !slot >= q then fail "Policy.stable_assign: no free slot for a desired color";
      (let evicted = slots.(!slot) in
       if evicted >= 0 then t.flags.(evicted) <- false);
      slots.(!slot) <- c;
      t.wanted.(c) <- 2
    end
  done;
  (* refresh membership flags and clear the scratch *)
  for i = 0 to len - 1 do
    t.wanted.(buf.(i)) <- 0
  done;
  for s = 0 to q - 1 do
    let c = slots.(s) in
    if c >= 0 then t.flags.(c) <- true
  done

let assign t ~desired =
  let len = List.length desired in
  if Array.length t.desired_buf < len then
    t.desired_buf <- Array.make (max 4 len) 0;
  List.iteri (fun i c -> t.desired_buf.(i) <- c) desired;
  assign_array t t.desired_buf len

let to_assignment t ~replicated =
  if replicated then
    Policy.replicate ~distinct:t.slots ~n:(2 * Array.length t.slots)
  else Array.copy t.slots

let distinct t = Array.copy t.slots
let live_slots t = t.slots
