type instrumented = { policy : Policy.t; eligibility : Eligibility.t }

let make ?sink ?registry ?(mode = Ranking.Incremental) (instance : Instance.t)
    ~n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Delta_lru.make: n must be a positive multiple of 2";
  let eligibility = Eligibility.create ?sink instance in
  let cache =
    Cache_state.create ~num_colors:instance.num_colors ~distinct_slots:(n / 2)
  in
  let in_cache = Cache_state.mem cache in
  let counter =
    Option.map (fun r -> Rrs_obs.Metrics.counter r "ranking_update") registry
  in
  let index =
    Ranking.Index.lazily ?counter eligibility ~delay:instance.delay
  in
  let k = n / 2 in
  (* reusable scratch: the desired-set buffer the recency prefix lands
     in, so a round allocates no list *)
  let buf = Array.make (max 1 k) 0 in
  (* The n/2 eligible colors with the freshest timestamps.  Incremental:
     a prefix query on the delta-maintained recency index, written into
     scratch.  Rebuild: the original full re-sort — the differential
     oracle. *)
  let reconfigure (view : Policy.view) =
    Eligibility.begin_round eligibility ~view ~in_cache;
    let len =
      match mode with
      | Ranking.Rebuild ->
          let desired =
            Policy.take k
              (Ranking.timestamp_order eligibility
                 (Eligibility.eligible_colors eligibility))
          in
          List.iteri (fun i c -> buf.(i) <- c) desired;
          List.length desired
      | Ranking.Incremental ->
          Ranking.Index.recency_prefix_into (index view.pending) ~k ~out:buf
    in
    Cache_state.assign_array cache buf len;
    Cache_state.to_assignment cache ~replicated:true
  in
  { policy = { Policy.name = "dlru"; reconfigure }; eligibility }

let policy instance ~n = (make instance ~n).policy
let oracle_policy instance ~n = (make ~mode:Ranking.Rebuild instance ~n).policy
