(* Layout: one profile holds a lock-free list of per-domain tracks; a
   domain writes only to its own track, so event recording needs no
   lock.  The disabled fast path is a single process-global atomic load
   ([installed = 0]) so that instrumented hot loops pay one predictable
   branch per call site when nobody is profiling — the DLS lookup only
   happens once some profiler is attached somewhere. *)

type ev = {
  ph : char; (* 'B' begin, 'E' end, 'i' instant *)
  name : string;
  ts : float; (* microseconds from the profile epoch *)
  minor : float; (* Gc.counters at the event *)
  promoted : float;
  major : float;
}

let dummy_ev =
  { ph = 'i'; name = ""; ts = 0.; minor = 0.; promoted = 0.; major = 0. }

type track = {
  domain_id : int;
  mutable buf : ev array;
  mutable len : int;
  mutable last_ts : float;
  mutable stack : string list; (* innermost open span first *)
}

type t = {
  epoch : float; (* gettimeofday at create; ts origin *)
  tracks : track list Atomic.t;
  total : int Atomic.t;
}

let create () =
  {
    epoch = Unix.gettimeofday ();
    tracks = Atomic.make [];
    total = Atomic.make 0;
  }

(* How many with_profiler scopes are live process-wide.  Zero means
   every instrumented call site is a load-and-branch no-op. *)
let installed = Atomic.make 0

let scope : t option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> None)

(* The per-domain track is cached in a second key that children must
   NOT inherit: a spawned worker shares the profile but needs its own
   track (tracks have a single writer by construction). *)
let track_cache : (t * track) option Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:(fun _ -> None) (fun () -> None)

let rec register_track t track =
  let old = Atomic.get t.tracks in
  if not (Atomic.compare_and_set t.tracks old (track :: old)) then
    register_track t track

let track_for t =
  match Domain.DLS.get track_cache with
  | Some (owner, track) when owner == t -> track
  | _ ->
      let track =
        {
          domain_id = (Domain.self () :> int);
          buf = Array.make 256 dummy_ev;
          len = 0;
          last_ts = 0.;
          stack = [];
        }
      in
      register_track t track;
      Domain.DLS.set track_cache (Some (t, track));
      track

let push t track ev =
  if track.len = Array.length track.buf then begin
    let bigger = Array.make (2 * track.len) dummy_ev in
    Array.blit track.buf 0 bigger 0 track.len;
    track.buf <- bigger
  end;
  track.buf.(track.len) <- ev;
  track.len <- track.len + 1;
  Atomic.incr t.total

(* gettimeofday is not monotonic; Chrome traces must be (per track), so
   clamp against the track's high-water mark. *)
let stamp t track =
  let ts = (Unix.gettimeofday () -. t.epoch) *. 1e6 in
  let ts = if ts < track.last_ts then track.last_ts else ts in
  track.last_ts <- ts;
  ts

let record t ph name =
  let track = track_for t in
  let minor, promoted, major = Gc.counters () in
  let ts = stamp t track in
  push t track { ph; name; ts; minor; promoted; major };
  track

let active () =
  Atomic.get installed > 0 && Domain.DLS.get scope <> None

let enter name =
  if Atomic.get installed > 0 then
    match Domain.DLS.get scope with
    | None -> ()
    | Some t ->
        let track = record t 'B' name in
        track.stack <- name :: track.stack

let leave _name =
  if Atomic.get installed > 0 then
    match Domain.DLS.get scope with
    | None -> ()
    | Some t -> (
        let track = track_for t in
        match track.stack with
        | [] -> () (* unbalanced leave: drop it, keep the trace valid *)
        | open_name :: rest ->
            track.stack <- rest;
            ignore (record t 'E' open_name))

let instant name =
  if Atomic.get installed > 0 then
    match Domain.DLS.get scope with
    | None -> ()
    | Some t -> ignore (record t 'i' name)

let with_profiler t thunk =
  let outer = Domain.DLS.get scope in
  Domain.DLS.set scope (Some t);
  Atomic.incr installed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr installed;
      Domain.DLS.set scope outer)
    thunk

let span name thunk =
  if active () then begin
    enter name;
    Fun.protect ~finally:(fun () -> leave name) thunk
  end
  else thunk ()

let events t = Atomic.get t.total

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_event buf ~first ~tid ~ph ~name ~ts ~args =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf "{\"name\":\"";
  add_escaped buf name;
  Buffer.add_string buf (Printf.sprintf "\",\"ph\":\"%c\"" ph);
  if ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
  Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" tid);
  Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f" ts);
  (match args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf (Printf.sprintf "\":%.0f" v))
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

(* Span-end events carry the words allocated within the span (inclusive
   of children), computed by replaying the begin/end structure: the
   counters are absolute at both boundaries, the delta is theirs. *)
let render_track buf ~first track =
  let tid = track.domain_id in
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
       tid tid);
  (* sort tracks by domain id in Perfetto's timeline, not by first-event
     time (domain 0 on top even when a spawned domain profiles first) *)
  Buffer.add_string buf
    (Printf.sprintf
       ",{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
       tid tid);
  let open_spans = ref [] in
  let close ev (b : ev) =
    add_event buf ~first ~tid ~ph:'E' ~name:ev.name ~ts:ev.ts
      ~args:
        [
          ("minor_words", ev.minor -. b.minor);
          ("promoted_words", ev.promoted -. b.promoted);
          ("major_words", ev.major -. b.major);
        ]
  in
  for i = 0 to track.len - 1 do
    let ev = track.buf.(i) in
    match ev.ph with
    | 'B' ->
        open_spans := ev :: !open_spans;
        add_event buf ~first ~tid ~ph:'B' ~name:ev.name ~ts:ev.ts ~args:[]
    | 'E' -> (
        match !open_spans with
        | b :: rest ->
            open_spans := rest;
            close ev b
        | [] -> ())
    | _ -> add_event buf ~first ~tid ~ph:'i' ~name:ev.name ~ts:ev.ts ~args:[]
  done;
  (* spans an exception (or an abandoned domain) left open: close them
     at the track's last timestamp so the trace stays balanced *)
  List.iter
    (fun (b : ev) -> close { b with ph = 'E'; ts = track.last_ts } b)
    !open_spans

let to_chrome_string t =
  let tracks =
    List.sort
      (fun a b -> compare a.domain_id b.domain_id)
      (Atomic.get t.tracks)
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  (* process-level metadata first, so Perfetto labels the single pid *)
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"rrs\"}}";
  let first = ref false in
  List.iter (fun track -> render_track buf ~first track) tracks;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_chrome t path =
  let temp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  Out_channel.with_open_text temp (fun oc ->
      output_string oc (to_chrome_string t));
  Sys.rename temp path
