(** A DLS-scoped hierarchical span profiler with GC/allocation sampling
    and Chrome trace-event export.

    The profiler answers the question the metrics registry cannot:
    {e where inside one run} the time and the allocation go.  A profile
    is a set of per-domain {e tracks}; each track is a balanced sequence
    of span begin/end events with wall-clock timestamps and the GC
    allocation counters ([Gc.counters]) sampled at both boundaries, so
    every span knows its duration {e and} the words it allocated.

    {b Scoping.}  Like the fault plane ([Rrs_fault]) and the telemetry
    scope ([Harness.with_telemetry]), the active profiler is dynamically
    scoped through [Domain.DLS] and {e inherited by spawned domains}:
    a [Pool] worker or a [Supervisor] runner domain started inside
    {!with_profiler} records onto the same profile, on its own track
    (tracks are keyed by [Domain.self ()], so tracks never interleave
    writers).

    {b Zero cost when disabled.}  Instrumented call sites use
    {!enter}/{!leave} (or {!span}).  When no profiler is attached
    {e anywhere in the process}, both are one relaxed atomic load and a
    conditional branch — no DLS lookup, no closure, no allocation.  The
    per-round overhead of a fully instrumented engine run with profiling
    off is below the measurement noise (see doc/TELEMETRY.md for
    numbers); [test/test_prof.ml] checks the decisions are bit-identical
    with and without an attached profiler.

    {b Thread safety.}  Each domain writes only to its own track; track
    registration is lock-free.  Read ({!to_chrome_string}, {!events})
    only after the domains recording into the profile have finished. *)

type t
(** One profile: an epoch (its time origin) plus the tracks recorded
    under it. *)

val create : unit -> t

val with_profiler : t -> (unit -> 'a) -> 'a
(** Attach [t] for the dynamic extent of the thunk (also on raise).
    Domains spawned inside inherit the attachment.  Nesting installs
    the inner profiler for the inner extent. *)

val active : unit -> bool
(** Is a profiler attached to this domain right now?  When [false],
    {!enter}/{!leave}/{!instant} are no-ops. *)

val enter : string -> unit
(** Open a span on the calling domain's track.  Spans nest: {!leave}
    closes the innermost open span.  The branchless-when-off primitive
    for hot call sites where wrapping a closure ({!span}) would itself
    allocate. *)

val leave : string -> unit
(** Close the innermost open span.  The argument is documentation (call
    sites read as balanced pairs); the emitted end event always carries
    the name of the span actually open, so traces stay balanced even if
    a call site mislabels its leave.  A [leave] with no open span is
    ignored. *)

val span : string -> (unit -> 'a) -> 'a
(** [enter]/[leave] around the thunk, exception-safe ([Fun.protect]).
    For cold call sites; the closure argument is evaluated (and
    allocated by the caller) whether or not profiling is on. *)

val instant : string -> unit
(** A zero-duration marker event on the calling domain's track. *)

val events : t -> int
(** Total events recorded so far across all tracks. *)

(** {2 Export}

    Chrome trace-event JSON (the ["traceEvents"] array format), loadable
    in Perfetto ({: https://ui.perfetto.dev}) or [chrome://tracing].
    Every track becomes one named thread; timestamps are microseconds
    from the profile's creation, clamped monotone per track; span-end
    events carry [args] with the minor/promoted/major words allocated
    inside the span (inclusive of children).  Spans still open at export
    (e.g. after an exception) are closed at the track's last
    timestamp. *)

val to_chrome_string : t -> string

val write_chrome : t -> string -> unit
(** Write {!to_chrome_string} to a path via a temp file and atomic
    rename, so readers never observe a torn trace. *)
