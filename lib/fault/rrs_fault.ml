module Rng = Rrs_prng.Rng

exception Injected of { point : string; hit : int; transient : bool }

type trigger = Nth of int | Every of int | Prob of float | Always
type action = Fail of { transient : bool } | Delay of float
type rule = { point : string; trigger : trigger; action : action }

let validate_trigger = function
  | Nth n when n < 1 -> invalid_arg "Rrs_fault.plan: Nth < 1"
  | Every k when k < 1 -> invalid_arg "Rrs_fault.plan: Every < 1"
  | Prob p when not (p >= 0.0 && p <= 1.0) ->
      invalid_arg "Rrs_fault.plan: Prob outside [0, 1]"
  | Nth _ | Every _ | Prob _ | Always -> ()

let fail_on ?(transient = false) point trigger =
  { point; trigger; action = Fail { transient } }

let delay_on point trigger ~seconds = { point; trigger; action = Delay seconds }

type point_stats = { total_hits : int Atomic.t; fired : int Atomic.t }

type plan = {
  seed : int;
  sleep : float -> unit;
  order : string list; (* distinct points, rule order *)
  rules_by_point : (string, rule list) Hashtbl.t;
  stats : (string, point_stats) Hashtbl.t;
  (* each domain entering the plan's scope takes the next index, which
     seeds its private RNG stream deterministically *)
  domain_counter : int Atomic.t;
}

let plan ?(seed = 0) ?(sleep = Unix.sleepf) rules =
  List.iter (fun r -> validate_trigger r.trigger) rules;
  let rules_by_point = Hashtbl.create 8 in
  let stats = Hashtbl.create 8 in
  let order =
    List.fold_left
      (fun acc r ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt rules_by_point r.point)
        in
        Hashtbl.replace rules_by_point r.point (existing @ [ r ]);
        if Hashtbl.mem stats r.point then acc
        else begin
          Hashtbl.add stats r.point
            { total_hits = Atomic.make 0; fired = Atomic.make 0 };
          r.point :: acc
        end)
      [] rules
    |> List.rev
  in
  { seed; sleep; order; rules_by_point; stats; domain_counter = Atomic.make 0 }

let points t = t.order

(* ------------------------------------------------------------------ *)
(* the per-domain instance: private hit counters + private RNG stream  *)
(* ------------------------------------------------------------------ *)

type inst = {
  plan : plan;
  local_hits : (string, int ref) Hashtbl.t;
  rng : Rng.t;
}

let derive plan =
  let index = Atomic.fetch_and_add plan.domain_counter 1 in
  {
    plan;
    local_hits = Hashtbl.create 8;
    (* decorrelate sibling streams; the mix constant is splitmix64's *)
    rng = Rng.create ~seed:(plan.seed + (index * 0x9e3779b9));
  }

let scope : inst option Domain.DLS.key =
  Domain.DLS.new_key
    ~split_from_parent:(function
      | None -> None
      | Some inst -> Some (derive inst.plan))
    (fun () -> None)

let with_plan plan thunk =
  let outer = Domain.DLS.get scope in
  Domain.DLS.set scope (Some (derive plan));
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope outer) thunk

let active () = Domain.DLS.get scope <> None

let hit inst point rules =
  let count =
    match Hashtbl.find_opt inst.local_hits point with
    | Some r ->
        incr r;
        !r
    | None ->
        Hashtbl.add inst.local_hits point (ref 1);
        1
  in
  let stats = Hashtbl.find inst.plan.stats point in
  ignore (Atomic.fetch_and_add stats.total_hits 1);
  let matches = function
    | Nth n -> count = n
    | Every k -> count mod k = 0
    | Prob p -> Rng.bernoulli inst.rng p
    | Always -> true
  in
  match List.find_opt (fun r -> matches r.trigger) rules with
  | None -> ()
  | Some r -> (
      ignore (Atomic.fetch_and_add stats.fired 1);
      match r.action with
      | Delay seconds -> inst.plan.sleep seconds
      | Fail { transient } -> raise (Injected { point; hit = count; transient }))

let probe point =
  match Domain.DLS.get scope with
  | None -> ()
  | Some inst -> (
      match Hashtbl.find_opt inst.plan.rules_by_point point with
      | None -> ()
      | Some rules -> hit inst point rules)

let read field t =
  List.map (fun point -> (point, Atomic.get (field (Hashtbl.find t.stats point)))) t.order

let hits t = read (fun s -> s.total_hits) t
let injected t = read (fun s -> s.fired) t

let standard_points =
  [
    "engine.run";
    "engine.round";
    "harness.run_policy";
    "sink.jsonl";
    "pool.worker";
    "serve.command";
    "serve.journal";
    "serve.accept";
    "serve.write";
  ]
