(** Deterministic fault injection, dynamically scoped per domain.

    The execution substrate (engine, experiment harness, JSONL sinks,
    pool workers) carries named {e probe points} — plain
    [Rrs_fault.probe "engine.round"] calls.  With no plan installed a
    probe is one domain-local read and a branch: nothing allocates,
    nothing can fire, so instrumented hot paths stay free in
    production (the robust bench measures this).

    A {e plan} maps probe points to rules.  Installing it with
    {!with_plan} scopes it to the calling domain — and, through
    [Domain.DLS] inheritance, to every domain spawned under the scope
    (the [Rrs_parallel.Pool] workers of a parallel sweep).  Each domain
    gets its {e own} hit counters and its own seeded RNG stream, so
    triggers are deterministic per domain and never race across
    siblings; the shared {!hits}/{!injected} totals are aggregated with
    atomics and are exact.

    Plans are deterministic by construction: [Nth]/[Every] fire on
    exact per-domain hit counts, [Prob] draws from a generator derived
    from the plan seed and the domain's spawn index ({!Rrs_prng.Rng} —
    no wall-clock anywhere), and [Delay] calls the plan's [sleep]
    function, injectable so tests never block. *)

exception Injected of { point : string; hit : int; transient : bool }
(** Raised by a matching [Fail] rule.  [hit] is the per-domain hit
    count of the probe point at the moment of injection; [transient]
    tells supervisors ({!Rrs_robust.Supervisor}) whether retrying can
    help. *)

type trigger =
  | Nth of int  (** fire on exactly the n-th per-domain hit (1-based) *)
  | Every of int  (** fire on every k-th per-domain hit *)
  | Prob of float  (** fire with this probability, seeded per domain *)
  | Always

type action =
  | Fail of { transient : bool }  (** raise {!Injected} *)
  | Delay of float  (** call the plan's [sleep] with this many seconds *)

type rule = { point : string; trigger : trigger; action : action }

val fail_on : ?transient:bool -> string -> trigger -> rule
(** Fail rule for the given point; [transient] defaults to [false]. *)

val delay_on : string -> trigger -> seconds:float -> rule
(** Delay rule for the given point. *)

type plan

val plan : ?seed:int -> ?sleep:(float -> unit) -> rule list -> plan
(** [seed] (default 0) drives every [Prob] draw; [sleep] (default
    [Unix.sleepf]) serves [Delay] actions — pass [ignore]-like
    functions in tests.
    @raise Invalid_argument on a non-positive [Nth]/[Every] or a
    [Prob] outside [0, 1]. *)

val points : plan -> string list
(** The distinct probe points the plan has rules for, in rule order. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Install the plan for the dynamic extent of the thunk on this
    domain and its descendants; restores the outer plan (or none) on
    exit, also on raise.  The same plan may be installed repeatedly
    (e.g. once per campaign seed); shared counters keep accumulating. *)

val active : unit -> bool
(** Is a plan installed in the current domain's scope? *)

val probe : string -> unit
(** The probe-point entry: no-op without a plan or when the plan has no
    rule for this point; otherwise counts the hit and applies the first
    rule whose trigger matches.
    @raise Injected when a [Fail] rule fires. *)

val hits : plan -> (string * int) list
(** Per-point probe evaluations, aggregated over every domain that ran
    under the plan, in {!points} order. *)

val injected : plan -> (string * int) list
(** Per-point count of rules that fired (both [Fail] and [Delay]),
    aggregated over every domain, in {!points} order. *)

val standard_points : string list
(** The probe points planted across the repo (see doc/ROBUSTNESS.md):
    ["engine.run"], ["engine.round"], ["harness.run_policy"],
    ["sink.jsonl"], ["pool.worker"], and the service plane's
    ["serve.command"], ["serve.journal"], ["serve.accept"],
    ["serve.write"]. *)
