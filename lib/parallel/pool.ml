(* Nested-parallelism guard: a worker spawned (or run inline) by [map] /
   [map_reduce] marks its domain, and the mark is inherited by any
   domain it spawns in turn.  Inner pool calls then default to one
   domain instead of fanning out again — an experiment that sweeps
   (family, seed) pairs with [map] can itself be run as one item of an
   outer [map] without oversubscribing the machine. *)
let inside_pool : bool Domain.DLS.key =
  Domain.DLS.new_key ~split_from_parent:Fun.id (fun () -> false)

let marked thunk =
  let outer = Domain.DLS.get inside_pool in
  Domain.DLS.set inside_pool true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_pool outer) thunk

let sequential thunk = marked thunk

let num_domains () =
  if Domain.DLS.get inside_pool then 1
  else max 1 (Domain.recommended_domain_count ())

type 'b outcome =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let reraise_first_failure results =
  Array.iter
    (function
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Done _ | Pending -> ())
    results

let collect results =
  Array.to_list
    (Array.map
       (function
         | Done v -> v
         | Pending | Failed _ -> assert false (* all slots visited *))
       results)

let resolve_domains ~name domains n =
  let requested = match domains with Some d -> d | None -> num_domains () in
  if requested < 1 then invalid_arg (name ^ ": domains < 1");
  min requested n

let run_task f x =
  match
    Rrs_fault.probe "pool.worker";
    f x
  with
  | v -> Done v
  | exception e -> Failed (e, Printexc.get_raw_backtrace ())

(* work stealing by atomic counter: workers pull the next index *)
let stealing_worker f items results =
  let n = Array.length items in
  let next = Atomic.make 0 in
  fun () ->
    marked (fun () ->
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else results.(i) <- run_task f items.(i)
        done)

let steal_all f items workers =
  let results = Array.make (Array.length items) Pending in
  let worker = stealing_worker f items results in
  let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  results

let probed f x =
  Rrs_fault.probe "pool.worker";
  f x

let map ?domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let workers = resolve_domains ~name:"Pool.map" domains n in
  if workers <= 1 then List.map (probed f) xs
  else begin
    let results = steal_all f items workers in
    (* surface the first failure in input order, if any *)
    reraise_first_failure results;
    collect results
  end

let map_results ?domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let workers = resolve_domains ~name:"Pool.map_results" domains n in
  let results =
    if workers <= 1 then Array.map (run_task f) items
    else steal_all f items workers
  in
  Array.to_list results
  |> List.map (function
       | Done v -> Ok v
       | Failed (e, bt) -> Error (e, bt)
       | Pending -> assert false)

let map_reduce ?domains ~init ~f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let workers = resolve_domains ~name:"Pool.map_reduce" domains n in
  if n = 0 then ([], [])
  else if workers <= 1 then begin
    let acc = init () in
    (List.map (probed (f acc)) xs, [ acc ])
  end
  else begin
    let results = Array.make n Pending in
    (* Static block partition (not work stealing): item -> shard
       assignment must be a function of (n, workers) alone, so the
       shard list — and any order-sensitive fold over it — is the same
       on every run.  Shard w covers the contiguous block
       [w*ceil(n/workers), ...), i.e. input order across shards. *)
    let block = (n + workers - 1) / workers in
    let shards = Array.init workers (fun _ -> None) in
    let worker w () =
      marked (fun () ->
          let acc = init () in
          shards.(w) <- Some acc;
          let lo = w * block and hi = min n ((w + 1) * block) in
          for i = lo to hi - 1 do
            results.(i) <- run_task (f acc) items.(i)
          done)
    in
    let spawned =
      List.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    reraise_first_failure results;
    let accs =
      Array.to_list shards
      |> List.filter_map Fun.id
    in
    (collect results, accs)
  end

let run_both f g =
  let d = Domain.spawn g in
  let a = f () in
  let b = Domain.join d in
  (a, b)
