(** Minimal domain pool built on OCaml 5 multicore primitives (stdlib
    [Domain] + [Atomic] only — no external dependency).

    Simulation runs are embarrassingly parallel: each (workload, seed,
    policy) engine run touches only its own state.  The experiment
    sweeps use {!map} to spread runs over cores; results come back in
    input order and determinism is preserved (the tasks themselves are
    deterministic and share nothing).  For tasks that additionally
    accumulate into shared telemetry, {!map_reduce} gives every worker
    a private shard (e.g. an [Rrs_obs.Metrics.t]) with a deterministic
    item→shard assignment, so the merged totals are reproducible.

    {b Nesting.}  Code running inside a parallel {!map}/{!map_reduce}
    section is marked (the mark is inherited by domains it spawns):
    there, {!num_domains} returns 1, so nested pool calls that use the
    default degrade to sequential instead of oversubscribing the
    machine.  An explicit [~domains] always wins.  {!sequential} applies
    the same mark to an arbitrary thunk — a fully sequential run of
    code that would otherwise fan out, e.g. as a bench baseline.

    Exceptions raised by a task are captured {e with their backtrace}
    and re-raised in the caller (via [Printexc.raise_with_backtrace],
    so the worker's trace survives) once every worker has stopped.
    {!map_results} instead hands every per-task outcome back as a
    [result], so one poisoned item cannot take its siblings' results
    down with it — supervised sweeps build on it.

    Every task evaluation passes the ["pool.worker"] fault probe
    ({!Rrs_fault.probe}) — also on the sequential degrade path, so an
    injection campaign behaves the same at any [~domains]. *)

val num_domains : unit -> int
(** Recommended parallelism: [Domain.recommended_domain_count], at
    least 1 — or exactly 1 inside a parallel pool section (see the
    nesting note above). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, spreading work over
    [domains] (default {!num_domains}, capped by the list length).
    Results are in input order.  With [domains = 1] (or a short list)
    this degrades to [List.map].
    @raise Invalid_argument if [domains < 1].  Re-raises the first task
    exception (by input order, with its backtrace) after all workers
    finish. *)

val map_results :
  ?domains:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** {!map} that contains failures instead of re-raising: every task
    runs to its own conclusion and the outcomes come back in input
    order, [Error] carrying the task's exception and backtrace.  The
    sweep itself never raises (short of asserts), whatever the tasks
    do.
    @raise Invalid_argument if [domains < 1]. *)

val map_reduce :
  ?domains:int ->
  init:(unit -> 'acc) ->
  f:('acc -> 'a -> 'b) ->
  'a list ->
  'b list * 'acc list
(** [map_reduce ~init ~f xs] is {!map} with a per-worker accumulator:
    each worker creates one ['acc] with [init] and applies [f acc] to
    its items.  Unlike {!map} (work stealing), items are assigned to
    workers in {e static contiguous blocks} in input order, so which
    shard each item lands in is a pure function of (length, domains) —
    reproducible run to run.  Returns the mapped results in input order
    and the shards in block order (shard [w] covers the [w]-th block),
    so a left fold over the shard list merges partial aggregates in
    input order.  With one worker this is a plain sequential fold: one
    shard, items in order — parallel totals built from commutative
    updates (e.g. [Rrs_obs.Metrics] counters) are identical to the
    sequential run's.
    @raise Invalid_argument if [domains < 1].  Re-raises the first task
    exception like {!map}; shards are discarded on failure. *)

val sequential : (unit -> 'a) -> 'a
(** Run the thunk with the pool mark set: every {!map}/{!map_reduce}
    under it (transitively, including in domains it spawns) that relies
    on the default parallelism runs on the calling domain alone. *)

val run_both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run two independent thunks, the second on a fresh domain. *)
