(* Specialized Indexed_heap: int keys, int priorities, -1 sentinels.

   The generic Indexed_heap stores its priorities in an ['a option
   array] and compares through a closure — every [update] allocates a
   [Some] box and every sift step pays an indirect call.  Here the
   priority array is a flat [int array] (presence is tracked by the
   [pos] sentinel, so no option is needed), comparison is native [<],
   and the heap is 4-ary so the children of a node share a cache line.

   Layout: parent of slot i is (i-1)/4; children are 4i+1 .. 4i+4.

   Safe/unsafe split (after the vicare binary-heaps exemplar): the
   [unsafe_] tier reads and writes without bounds checks and is only
   reachable from the public operations, which validate keys and
   establish 0 <= slot < size first; [check_invariant] exercises the
   full structure (heap property + both index directions) under test. *)

type t = {
  heap : int array; (* heap slot -> key, for slots < size *)
  pos : int array; (* key -> heap slot, or -1 if absent *)
  prio : int array; (* key -> priority; meaningful iff pos.(key) >= 0 *)
  mutable size : int;
  mutable scratch : int array; (* side-heap of slots for [smallest_into] *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Int_indexed_heap.create";
  let cap = max capacity 1 in
  {
    heap = Array.make cap (-1);
    pos = Array.make cap (-1);
    prio = Array.make cap min_int;
    size = 0;
    scratch = [||];
  }

let capacity h = Array.length h.heap
let length h = h.size
let is_empty h = h.size = 0

let check_key h key =
  if key < 0 || key >= Array.length h.pos then
    invalid_arg "Int_indexed_heap: key out of range"

let mem h key =
  check_key h key;
  h.pos.(key) >= 0

let priority h key =
  check_key h key;
  if h.pos.(key) < 0 then raise Not_found;
  h.prio.(key)

(* -- unsafe tier: callers guarantee 0 <= slot < size ---------------- *)

let[@inline] unsafe_key h slot = Array.unsafe_get h.heap slot

let[@inline] unsafe_slot_prio h slot =
  Array.unsafe_get h.prio (Array.unsafe_get h.heap slot)

let[@inline] unsafe_place h slot key =
  Array.unsafe_set h.heap slot key;
  Array.unsafe_set h.pos key slot

let rec sift_up h slot =
  if slot > 0 then begin
    let parent = (slot - 1) lsr 2 in
    if unsafe_slot_prio h slot < unsafe_slot_prio h parent then begin
      let k = unsafe_key h slot and pk = unsafe_key h parent in
      unsafe_place h slot pk;
      unsafe_place h parent k;
      sift_up h parent
    end
  end

let rec sift_down h slot =
  let first = (slot lsl 2) + 1 in
  if first < h.size then begin
    let size = h.size in
    let best = first in
    let best =
      if
        first + 1 < size
        && unsafe_slot_prio h (first + 1) < unsafe_slot_prio h best
      then first + 1
      else best
    in
    let best =
      if
        first + 2 < size
        && unsafe_slot_prio h (first + 2) < unsafe_slot_prio h best
      then first + 2
      else best
    in
    let best =
      if
        first + 3 < size
        && unsafe_slot_prio h (first + 3) < unsafe_slot_prio h best
      then first + 3
      else best
    in
    if unsafe_slot_prio h best < unsafe_slot_prio h slot then begin
      let k = unsafe_key h slot and bk = unsafe_key h best in
      unsafe_place h slot bk;
      unsafe_place h best k;
      sift_down h best
    end
  end

(* -- safe public operations ----------------------------------------- *)

let insert h key p =
  check_key h key;
  if h.pos.(key) >= 0 then invalid_arg "Int_indexed_heap.insert: key present";
  let slot = h.size in
  h.heap.(slot) <- key;
  h.pos.(key) <- slot;
  h.prio.(key) <- p;
  h.size <- slot + 1;
  sift_up h slot

let update h key p =
  check_key h key;
  let slot = h.pos.(key) in
  if slot < 0 then insert h key p
  else begin
    h.prio.(key) <- p;
    sift_up h slot;
    sift_down h h.pos.(key)
  end

let remove h key =
  check_key h key;
  let slot = h.pos.(key) in
  if slot >= 0 then begin
    let last = h.size - 1 in
    h.size <- last;
    h.pos.(key) <- -1;
    if slot <> last then begin
      let moved = h.heap.(last) in
      h.heap.(slot) <- moved;
      h.pos.(moved) <- slot;
      sift_up h slot;
      sift_down h h.pos.(moved)
    end;
    h.heap.(last) <- -1
  end

let min_key h = if h.size = 0 then raise Not_found else h.heap.(0)

let min h =
  if h.size = 0 then raise Not_found;
  let key = h.heap.(0) in
  (key, h.prio.(key))

let pop_min h =
  let binding = min h in
  remove h (fst binding);
  binding

let pop_min_opt h = if h.size = 0 then None else Some (pop_min h)
let peek_min_opt h = if h.size = 0 then None else Some (min h)

let clear h =
  for slot = 0 to h.size - 1 do
    h.pos.(h.heap.(slot)) <- -1;
    h.heap.(slot) <- -1
  done;
  h.size <- 0

let iter f h =
  for slot = 0 to h.size - 1 do
    let key = h.heap.(slot) in
    f key h.prio.(key)
  done

(* -- k-smallest without modifying the heap --------------------------

   Top-down exploration with a side binary heap of candidate *slots*
   (ordered by the slot's priority in [h]), so only O(k) nodes of the
   4-ary heap are touched and the main heap stays untouched.  The side
   heap lives in [h.scratch], reused across queries: a warm query
   allocates nothing. *)

let rec side_up h side i =
  if i > 0 then begin
    let parent = (i - 1) lsr 1 in
    let s = Array.unsafe_get side i and ps = Array.unsafe_get side parent in
    if unsafe_slot_prio h s < unsafe_slot_prio h ps then begin
      Array.unsafe_set side i ps;
      Array.unsafe_set side parent s;
      side_up h side parent
    end
  end

let rec side_down h side n i =
  let left = (i lsl 1) + 1 in
  if left < n then begin
    let best =
      if
        left + 1 < n
        && unsafe_slot_prio h (Array.unsafe_get side (left + 1))
           < unsafe_slot_prio h (Array.unsafe_get side left)
      then left + 1
      else left
    in
    let s = Array.unsafe_get side i and bs = Array.unsafe_get side best in
    if unsafe_slot_prio h bs < unsafe_slot_prio h s then begin
      Array.unsafe_set side i bs;
      Array.unsafe_set side best s;
      side_down h side n best
    end
  end

let ensure_scratch h n =
  if Array.length h.scratch < n then
    h.scratch <- Array.make (Stdlib.max n (2 * Array.length h.scratch)) 0

let smallest_into h k ~out =
  let wanted = Stdlib.min k h.size in
  if wanted <= 0 then 0
  else begin
    if Array.length out < wanted then
      invalid_arg "Int_indexed_heap.smallest_into: out buffer too small";
    (* each extraction pops one slot and pushes at most 4 children:
       the side heap never exceeds 3*wanted + 1 entries *)
    ensure_scratch h ((3 * wanted) + 1);
    let side = h.scratch in
    Array.unsafe_set side 0 0;
    let n = ref 1 in
    let taken = ref 0 in
    while !taken < wanted do
      let slot = Array.unsafe_get side 0 in
      Array.unsafe_set out !taken (unsafe_key h slot);
      incr taken;
      decr n;
      Array.unsafe_set side 0 (Array.unsafe_get side !n);
      side_down h side !n 0;
      let first = (slot lsl 2) + 1 in
      let last = Stdlib.min (first + 3) (h.size - 1) in
      for child = first to last do
        Array.unsafe_set side !n child;
        side_up h side !n;
        incr n
      done
    done;
    wanted
  end

let smallest h k =
  let wanted = Stdlib.min k h.size in
  if wanted <= 0 then []
  else begin
    let out = Array.make wanted 0 in
    let n = smallest_into h k ~out in
    List.init n (fun i -> (out.(i), h.prio.(out.(i))))
  end

let check_invariant h =
  let ok = ref (h.size >= 0 && h.size <= Array.length h.heap) in
  (* slot -> key mapping must be a valid partial bijection first; only
     then is reading priorities through it safe *)
  if !ok then
    for slot = 0 to h.size - 1 do
      let key = h.heap.(slot) in
      if key < 0 || key >= Array.length h.pos then ok := false
      else if h.pos.(key) <> slot then ok := false
    done;
  if !ok then begin
    for slot = 1 to h.size - 1 do
      if h.prio.(h.heap.((slot - 1) lsr 2)) > h.prio.(h.heap.(slot)) then
        ok := false
    done;
    Array.iteri
      (fun key slot ->
        if slot >= h.size then ok := false
        else if slot >= 0 && h.heap.(slot) <> key then ok := false)
      h.pos
  end;
  !ok
