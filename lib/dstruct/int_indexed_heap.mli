(** 4-ary min-heap over the integer keys [0 .. capacity-1] with an
    inverse position index and {e int} priorities — the flat, option-free
    specialization of {!Indexed_heap}.

    This is the ranking hot path's structure: each color is a key, its
    priority is its rank key packed into a single tagged int
    ([Rrs_core.Packed]), and every priority change is an O(log n)
    in-place adjustment.  Because priorities are native ints ordered by
    [<], the heap stores three flat [int array]s and performs zero
    allocation on every operation except the first warm-up of the
    {!smallest_into} scratch buffer.

    Absence is encoded by [-1] sentinels in the position index (keys and
    priorities need no option boxing).  The inner sift loops run on a
    bounds-check-free [unsafe_] accessor tier reachable only through the
    safe public operations, which validate keys first;
    {!check_invariant} exercises the full structure under test (see the
    4-ary storm tests in [test/test_dstruct.ml]). *)

type t

val create : capacity:int -> t
(** Empty heap accepting keys [0 .. capacity-1].
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool

val mem : t -> int -> bool
(** [mem h key] is [true] iff [key] is currently in the heap.
    @raise Invalid_argument if [key] is out of range. *)

val priority : t -> int -> int
(** Current priority of a present key.
    @raise Not_found if the key is absent. *)

val insert : t -> int -> int -> unit
(** [insert h key prio] adds [key] with priority [prio]; zero-alloc.
    @raise Invalid_argument if [key] is out of range or present. *)

val update : t -> int -> int -> unit
(** [update h key prio] changes the priority of a present key (any
    direction), or inserts it if absent; O(log n), zero-alloc. *)

val remove : t -> int -> unit
(** Remove a key if present; no-op otherwise; zero-alloc. *)

val min_key : t -> int
(** Key with the smallest priority, not removed; O(1), zero-alloc.
    @raise Not_found on an empty heap. *)

val min : t -> int * int
(** [(key, prio)] of the minimum; allocates the pair.
    @raise Not_found on an empty heap. *)

val pop_min : t -> int * int
val pop_min_opt : t -> (int * int) option
val peek_min_opt : t -> (int * int) option

val clear : t -> unit

val iter : (int -> int -> unit) -> t -> unit
(** Iterate over present bindings in unspecified order. *)

val smallest_into : t -> int -> out:int array -> int
(** [smallest_into h k ~out] writes the [min k (length h)] smallest keys
    into [out.(0) ..] in ascending priority order and returns how many
    were written, without modifying the heap; O(k log k) via a side heap
    of slots kept in an internal scratch buffer, so a warm call
    allocates nothing.
    @raise Invalid_argument if [out] cannot hold [min k (length h)]
    keys. *)

val smallest : t -> int -> (int * int) list
(** List-building convenience over {!smallest_into} (allocates; for
    tests and cold oracle paths). *)

val check_invariant : t -> bool
(** 4-ary heap property and position-index consistency in both
    directions; exposed for tests. *)
