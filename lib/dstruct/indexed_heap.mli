(** Binary min-heap over the integer keys [0 .. capacity-1] with an inverse
    position index, supporting O(log n) priority changes and removal of
    arbitrary keys.

    This is the structure the EDF-style reconfiguration schemes need: each
    color is a key; its priority is its current rank tuple; when a color's
    deadline or idleness changes we adjust its priority in place instead of
    rebuilding the heap.

    Priorities are compared with the [cmp] function supplied at creation.
    Each key is present at most once. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> capacity:int -> 'a t
(** [create ~cmp ~capacity] is an empty heap accepting keys
    [0 .. capacity-1].
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val mem : 'a t -> int -> bool
(** [mem h key] is [true] iff [key] is currently in the heap. *)

val priority : 'a t -> int -> 'a
(** Current priority of a present key.
    @raise Not_found if the key is absent. *)

val insert : 'a t -> int -> 'a -> unit
(** [insert h key prio] adds [key] with priority [prio].
    @raise Invalid_argument if [key] is out of range or already present. *)

val update : 'a t -> int -> 'a -> unit
(** [update h key prio] changes the priority of a present key (any
    direction), or inserts it if absent. *)

val remove : 'a t -> int -> unit
(** Remove a key if present; no-op otherwise. *)

val min : 'a t -> int * 'a
(** Key with the smallest priority.
    @raise Not_found on an empty heap. *)

val pop_min : 'a t -> int * 'a
(** Remove and return the minimum binding.
    @raise Not_found on an empty heap. *)

val pop_min_opt : 'a t -> (int * 'a) option

val peek_min_opt : 'a t -> (int * 'a) option
(** The minimum binding without removing it; [None] on an empty heap. *)

val clear : 'a t -> unit

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Iterate over present bindings in unspecified order. *)

val smallest : 'a t -> int -> (int * 'a) list
(** [smallest h k] is the [min k (length h)] smallest bindings in ascending
    priority order, without modifying the heap; O(k log n) via a side
    heap. *)

val check_invariant : 'a t -> bool
(** Heap property and position-index consistency; exposed for tests. *)
