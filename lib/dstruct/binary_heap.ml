type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
  hint : int; (* requested initial capacity; first grow allocates exactly it *)
}

let create ~cmp ?(initial_capacity = 16) () =
  if initial_capacity < 1 then invalid_arg "Binary_heap.create";
  (* The backing array stays empty until the first [add] supplies a seed
     element, but the capacity hint is honored: the first allocation is
     exactly [initial_capacity], so [initial_capacity] adds never grow. *)
  { cmp; data = [||]; size = 0; hint = initial_capacity }

let length h = h.size
let is_empty h = h.size = 0
let capacity h =
  if Array.length h.data = 0 then h.hint else Array.length h.data

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && h.cmp h.data.(left) h.data.(!smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp h.data.(right) h.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h x =
  (* [x] seeds the fresh array; slots beyond [size] are never read.  The
     first allocation honors the creation-time capacity hint exactly;
     subsequent growth doubles. *)
  let capacity = max h.hint (2 * Array.length h.data) in
  let data = Array.make capacity x in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let add h x =
  if h.size = Array.length h.data then grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min h = if h.size = 0 then raise Not_found else h.data.(0)
let peek_min_opt h = if h.size = 0 then None else Some h.data.(0)

let pop_min h =
  if h.size = 0 then raise Not_found;
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  top

let pop_min_opt h = if h.size = 0 then None else Some (pop_min h)
let clear h = h.size <- 0

let of_array ~cmp a =
  let h =
    { cmp; data = Array.copy a; size = Array.length a; hint = 16 }
  in
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done;
  h

let iter f h =
  for i = 0 to h.size - 1 do
    f h.data.(i)
  done

let fold f init h =
  let acc = ref init in
  for i = 0 to h.size - 1 do
    acc := f !acc h.data.(i)
  done;
  !acc

let to_sorted_list h =
  let copy = { h with data = Array.sub h.data 0 h.size } in
  let rec drain acc =
    match pop_min_opt copy with
    | None -> List.rev acc
    | Some x -> drain (x :: acc)
  in
  drain []

let check_invariant h =
  let ok = ref true in
  for i = 1 to h.size - 1 do
    if h.cmp h.data.((i - 1) / 2) h.data.(i) > 0 then ok := false
  done;
  !ok
