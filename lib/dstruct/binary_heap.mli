(** Resizable array-based binary min-heap.

    The heap is mutable and parameterised at creation time by an ordering
    function [cmp].  All operations preserve the heap invariant: for every
    node [i] with parent [p], [cmp h.(p) h.(i) <= 0].

    Complexities: [add] and [pop_min] are O(log n), [min] is O(1),
    [of_array] is O(n) (bottom-up heapify). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> ?initial_capacity:int -> unit -> 'a t
(** [create ~cmp ()] is a fresh empty heap ordered by [cmp].
    [initial_capacity] (default 16) is honored: the first backing-array
    allocation is exactly that size, so the first [initial_capacity]
    [add]s never reallocate.
    @raise Invalid_argument if [initial_capacity < 1]. *)

val capacity : 'a t -> int
(** Current backing-array capacity (the creation-time hint until the
    first [add] materializes it).  Exposed for capacity-regression
    tests. *)

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** [of_array ~cmp a] heapifies a copy of [a] in O(n). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** Insert an element, growing the backing array if needed. *)

val min : 'a t -> 'a
(** Smallest element without removing it.
    @raise Not_found on an empty heap. *)

val peek_min_opt : 'a t -> 'a option
(** Smallest element without removing it, [None] on an empty heap — the
    O(1) guard that lets event-driven drains stop at the first
    not-yet-due entry without a pop-then-re-add round trip. *)

val pop_min : 'a t -> 'a
(** Remove and return the smallest element.
    @raise Not_found on an empty heap. *)

val pop_min_opt : 'a t -> 'a option

val clear : 'a t -> unit
(** Remove all elements (keeps the backing array). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate in unspecified (array) order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold in unspecified (array) order. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructively extract all elements in ascending order; O(n log n). *)

val check_invariant : 'a t -> bool
(** [true] iff the internal array satisfies the heap property.  Exposed for
    tests. *)
