type 'a t = {
  cmp : 'a -> 'a -> int;
  keys : int array;      (* heap slot -> key *)
  pos : int array;       (* key -> heap slot, or -1 if absent *)
  prio : 'a option array; (* key -> current priority *)
  mutable size : int;
}

let create ~cmp ~capacity =
  if capacity < 0 then invalid_arg "Indexed_heap.create";
  {
    cmp;
    keys = Array.make (max capacity 1) (-1);
    pos = Array.make (max capacity 1) (-1);
    prio = Array.make (max capacity 1) None;
    size = 0;
  }

let capacity h = Array.length h.keys
let length h = h.size
let is_empty h = h.size = 0

let check_key h key =
  if key < 0 || key >= Array.length h.keys then
    invalid_arg "Indexed_heap: key out of range"

let mem h key =
  check_key h key;
  h.pos.(key) >= 0

let prio_exn h key =
  match h.prio.(key) with
  | Some p -> p
  | None -> raise Not_found

let priority h key =
  check_key h key;
  if h.pos.(key) < 0 then raise Not_found;
  prio_exn h key

let cmp_slots h i j = h.cmp (prio_exn h h.keys.(i)) (prio_exn h h.keys.(j))

let swap h i j =
  let ki = h.keys.(i) and kj = h.keys.(j) in
  h.keys.(i) <- kj;
  h.keys.(j) <- ki;
  h.pos.(ki) <- j;
  h.pos.(kj) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cmp_slots h i parent < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && cmp_slots h left !smallest < 0 then smallest := left;
  if right < h.size && cmp_slots h right !smallest < 0 then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let insert h key p =
  check_key h key;
  if h.pos.(key) >= 0 then invalid_arg "Indexed_heap.insert: key present";
  let slot = h.size in
  h.keys.(slot) <- key;
  h.pos.(key) <- slot;
  h.prio.(key) <- Some p;
  h.size <- h.size + 1;
  sift_up h slot

let reheap_at h slot =
  sift_up h slot;
  sift_down h slot

let update h key p =
  check_key h key;
  if h.pos.(key) < 0 then insert h key p
  else begin
    h.prio.(key) <- Some p;
    reheap_at h h.pos.(key)
  end

let remove h key =
  check_key h key;
  let slot = h.pos.(key) in
  if slot >= 0 then begin
    let last = h.size - 1 in
    if slot <> last then swap h slot last;
    h.size <- last;
    h.pos.(key) <- -1;
    h.prio.(key) <- None;
    if slot < h.size then reheap_at h slot
  end

let min h =
  if h.size = 0 then raise Not_found;
  let key = h.keys.(0) in
  (key, prio_exn h key)

let pop_min h =
  let binding = min h in
  remove h (fst binding);
  binding

let pop_min_opt h = if h.size = 0 then None else Some (pop_min h)
let peek_min_opt h = if h.size = 0 then None else Some (min h)

let clear h =
  for slot = 0 to h.size - 1 do
    let key = h.keys.(slot) in
    h.pos.(key) <- -1;
    h.prio.(key) <- None
  done;
  h.size <- 0

let iter f h =
  for slot = 0 to h.size - 1 do
    let key = h.keys.(slot) in
    f key (prio_exn h key)
  done

let smallest h k =
  (* Explore the heap top-down with a side heap of candidate slots, so we
     never touch more than O(k) nodes. *)
  let wanted = Stdlib.min k h.size in
  if wanted <= 0 then []
  else begin
    let side = Binary_heap.create ~cmp:(fun i j -> cmp_slots h i j) () in
    Binary_heap.add side 0;
    let out = ref [] in
    let taken = ref 0 in
    while !taken < wanted do
      let slot = Binary_heap.pop_min side in
      let key = h.keys.(slot) in
      out := (key, prio_exn h key) :: !out;
      incr taken;
      let left = (2 * slot) + 1 in
      let right = left + 1 in
      if left < h.size then Binary_heap.add side left;
      if right < h.size then Binary_heap.add side right
    done;
    List.rev !out
  end

let check_invariant h =
  let ok = ref true in
  for slot = 1 to h.size - 1 do
    if cmp_slots h ((slot - 1) / 2) slot > 0 then ok := false
  done;
  for slot = 0 to h.size - 1 do
    if h.pos.(h.keys.(slot)) <> slot then ok := false
  done;
  Array.iteri (fun key slot -> if slot >= h.size && slot >= 0 then ok := false;
                if slot >= 0 && h.keys.(slot) <> key then ok := false)
    h.pos;
  !ok
