(** Flat 4-ary min-heap of plain ints, ordered by [<].

    The zero-allocation replacement for [(int * int) Binary_heap.t] in
    the engine's event heaps: entries are packed ints (see
    [Rrs_core.Packed]), so the backing store is one unboxed [int array],
    comparisons are native, and the 4-ary layout keeps all children of a
    node in one cache line.  The inner sift loops use a bounds-check-free
    [unsafe_] tier reachable only through the safe public operations;
    {!check_invariant} exercises it under test. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** Empty heap.  [initial_capacity] (default 16) is honored exactly by
    the first backing-array allocation.
    @raise Invalid_argument if [initial_capacity < 1]. *)

val length : t -> int
val is_empty : t -> bool

val capacity : t -> int
(** Current backing-array capacity (the creation-time hint until the
    first [add] materializes it). *)

val add : t -> int -> unit
(** O(log n); allocates only when the backing array must grow. *)

val min : t -> int
(** Smallest element, not removed; O(1).
    @raise Not_found on an empty heap. *)

val pop_min : t -> int
(** Remove and return the smallest element; O(log n), zero-alloc.
    @raise Not_found on an empty heap. *)

val clear : t -> unit
(** Remove all elements (keeps the backing array). *)

val iter : (int -> unit) -> t -> unit
(** Iterate in unspecified (array) order. *)

val to_sorted_list : t -> int list
(** Non-destructive ascending extraction; O(n log n), for tests. *)

val check_invariant : t -> bool
(** 4-ary heap property over the live prefix; exposed for tests. *)
