(* Flat 4-ary min-heap of plain ints.

   The hot event heaps (Pending.due, Eligibility.boundary) used to hold
   (int * int) tuples under a polymorphic comparator: one two-word block
   per entry plus a closure-indirected compare per sift step.  Packing
   the pair into a single tagged int (Rrs_core.Packed) makes every entry
   unboxed, every comparison a native [<], and the 4-ary layout keeps a
   parent's children in one cache line.

   Layout: parent of slot i is (i-1)/4; children are 4i+1 .. 4i+4.

   Safe/unsafe split (after the vicare binary-heaps exemplar): the
   [unsafe_] tier skips bounds checks and is only reachable from the
   public operations, which establish 0 <= slot < size before calling
   it; [check_invariant] exercises the whole structure under test. *)

type t = { mutable data : int array; mutable size : int; hint : int }

let create ?(initial_capacity = 16) () =
  if initial_capacity < 1 then invalid_arg "Int_heap.create";
  { data = [||]; size = 0; hint = initial_capacity }

let length h = h.size
let is_empty h = h.size = 0

let capacity h =
  if Array.length h.data = 0 then h.hint else Array.length h.data

let clear h = h.size <- 0

(* -- unsafe tier: callers guarantee 0 <= i < size ------------------- *)

let[@inline] unsafe_get h i = Array.unsafe_get h.data i
let[@inline] unsafe_set h i v = Array.unsafe_set h.data i v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) lsr 2 in
    let v = unsafe_get h i and pv = unsafe_get h parent in
    if v < pv then begin
      unsafe_set h i pv;
      unsafe_set h parent v;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let first = (i lsl 2) + 1 in
  if first < h.size then begin
    let size = h.size in
    let best = first in
    let best =
      if first + 1 < size && unsafe_get h (first + 1) < unsafe_get h best then
        first + 1
      else best
    in
    let best =
      if first + 2 < size && unsafe_get h (first + 2) < unsafe_get h best then
        first + 2
      else best
    in
    let best =
      if first + 3 < size && unsafe_get h (first + 3) < unsafe_get h best then
        first + 3
      else best
    in
    let v = unsafe_get h i and bv = unsafe_get h best in
    if bv < v then begin
      unsafe_set h i bv;
      unsafe_set h best v;
      sift_down h best
    end
  end

(* -- safe public operations ----------------------------------------- *)

let grow h =
  let capacity = max h.hint (2 * Array.length h.data) in
  let data = Array.make capacity 0 in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let add h x =
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let min h = if h.size = 0 then raise Not_found else h.data.(0)

let pop_min h =
  if h.size = 0 then raise Not_found;
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  top

let iter f h =
  for i = 0 to h.size - 1 do
    f h.data.(i)
  done

let to_sorted_list h =
  let copy = { h with data = Array.sub h.data 0 h.size } in
  let rec drain acc =
    if is_empty copy then List.rev acc else drain (pop_min copy :: acc)
  in
  drain []

let check_invariant h =
  let ok = ref true in
  for i = 1 to h.size - 1 do
    if h.data.((i - 1) lsr 2) > h.data.(i) then ok := false
  done;
  h.size >= 0 && h.size <= Array.length h.data && !ok
