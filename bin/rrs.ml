(* rrs — command-line driver for the reconfigurable-resource-scheduling
   reproduction.

     rrs list                         show workload families and experiments
     rrs simulate -f router -p dlru-edf -n 8 --validate
     rrs experiment EXP-A             run one experiment (or all, no arg)
     rrs opt -f uniform -s 1 -m 1     bracket / solve the offline optimum *)

open Cmdliner
open Rrs_core
module Families = Rrs_workload.Families
module Table = Rrs_report.Table

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let family_arg =
  let doc =
    "Workload family id (see $(b,rrs list)).  The family determines which \
     solver layer applies."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "f"; "family" ] ~docv:"FAMILY" ~doc)

let seed_arg =
  let doc = "Generator seed; the (family, seed) pair is reproducible." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let resources_arg =
  let doc = "Resources given to the online algorithm (multiple of 4)." in
  Arg.(value & opt int 8 & info [ "n"; "resources" ] ~docv:"N" ~doc)

let lookup_family id =
  match Families.find id with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown family %S; known: %s" id
           (String.concat ", " (Families.ids ())))

(* ------------------------------------------------------------------ *)
(* rrs list                                                            *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    let table = Table.create ~columns:[ "family"; "layer"; "description" ] in
    List.iter
      (fun (f : Families.family) ->
        Table.add_row table
          [ f.id; Families.layer_to_string f.layer; f.description ])
      Families.all;
    Table.print ~title:"workload families" table;
    let table = Table.create ~columns:[ "experiment" ] in
    List.iter
      (fun id -> Table.add_row table [ id ])
      (Rrs_experiments.Registry.ids ());
    Table.print ~title:"experiments (run with: rrs experiment <id>)" table;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List workload families and experiments")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* rrs simulate                                                        *)
(* ------------------------------------------------------------------ *)

let policy_arg =
  let policies =
    [
      ("dlru-edf", `Lru_edf);
      ("dlru", `Dlru);
      ("edf", `Edf);
      ("seq-edf", `Seq_edf);
      ("black", `Black);
      ("pipeline", `Pipeline);
      ("greedy", `Greedy);
      ("greedy-hysteresis", `Greedy_hysteresis);
      ("round-robin", `Round_robin);
    ]
  in
  let doc =
    "Policy: $(b,dlru-edf) (the paper's algorithm), $(b,dlru), $(b,edf), \
     $(b,seq-edf), $(b,black) (drop everything), $(b,pipeline) (VarBatch + \
     Distribute + dLRU-EDF; required for unbatched families), or the naive \
     baselines $(b,greedy), $(b,greedy-hysteresis), $(b,round-robin)."
  in
  Arg.(
    value
    & opt (enum policies) `Lru_edf
    & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let validate_arg =
  let doc = "Replay the schedule through the independent validator." in
  Arg.(value & flag & info [ "validate" ] ~doc)

let metrics_arg =
  let doc =
    "Write per-round metrics (backlog, cache, cumulative costs) to this \
     file as JSONL (one $(b,metrics_sample) object per round plus a final \
     $(b,metrics_registry) line; see doc/TELEMETRY.md).  Not available \
     with the pipeline policy."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Stream every engine and analysis event (drops, arrivals, \
     reconfigurations, executions, epochs, wraps, super-epochs, credits) \
     to this JSONL file, followed by one $(b,run_summary) line.  See \
     doc/TELEMETRY.md for the schema."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let save_instance_arg =
  let doc = "Also save the generated instance to this CSV file." in
  Arg.(
    value
    & opt (some string) None
    & info [ "save-instance" ] ~docv:"FILE" ~doc)

let colors_arg =
  let doc =
    "Generate the workload at $(docv) colors instead of the family \
     default — the scaling knob the core bench sweeps.  Only synthetic \
     families support it (scenario families have a fixed cast)."
  in
  Arg.(value & opt (some int) None & info [ "colors" ] ~docv:"COLORS" ~doc)

let ranking_arg =
  let doc =
    "Ranking maintenance for the ΔLRU/EDF policy family: \
     $(b,incremental) (the delta-driven index, default) or $(b,rebuild) \
     (the original per-round re-sort — the differential oracle).  Both \
     make byte-identical decisions."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("incremental", Ranking.Incremental); ("rebuild", Ranking.Rebuild);
           ])
        Ranking.Incremental
    & info [ "ranking" ] ~docv:"MODE" ~doc)

let policy_id = function
  | `Lru_edf -> "dlru-edf"
  | `Dlru -> "dlru"
  | `Edf -> "edf"
  | `Seq_edf -> "seq-edf"
  | `Black -> "black"
  | `Pipeline -> "pipeline"
  | `Greedy -> "greedy"
  | `Greedy_hysteresis -> "greedy-hysteresis"
  | `Round_robin -> "round-robin"

(* The ΔLRU family also streams the analysis layer: eligibility events
   via [make ~sink] and super-epoch completions (m = n/8, the Theorem 1
   offline adversary) via an attached observer. *)
let with_analysis sink ~n ({ policy; eligibility } : Lru_edf.instrumented) =
  if Rrs_obs.Sink.enabled sink then
    ignore (Super_epochs.attach ~sink eligibility ~m:(max 1 (n / 8)));
  policy

let simulate family seed n policy validate metrics_file trace_file
    save_instance colors mode =
  let build_instance (f : Families.family) =
    match colors with
    | None -> Ok (f.build ~seed)
    | Some c when c < 1 -> Error "--colors must be at least 1"
    | Some c -> (
        match f.scale with
        | Some scale -> Ok (scale ~num_colors:c ~seed)
        | None ->
            Error
              (Printf.sprintf
                 "family %S has a fixed scenario cast and does not support \
                  --colors; pick a synthetic family (e.g. uniform, zipf)"
                 f.id))
  in
  match Result.bind (lookup_family family) build_instance with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok instance -> (
      Format.printf "%a@." Instance.pp instance;
      Option.iter
        (fun path ->
          Rrs_trace.Instance_io.save path instance;
          Format.printf "instance saved to %s@." path)
        save_instance;
      let simulate_with oc_opt =
        let sink =
          match oc_opt with
          | None -> Rrs_obs.Sink.null
          | Some oc -> Rrs_obs.Sink.jsonl oc
        in
        let run_plain make_policy =
          let cfg = Engine.config ~n ~record_schedule:validate ~sink () in
          (* one registry shared by the policy (ranking_update) and the
             per-round collector (drops/recolorings/backlog), so a single
             metrics_registry line carries everything *)
          let registry =
            Option.map (fun _ -> Rrs_obs.Metrics.create ()) metrics_file
          in
          let collector, policy =
            let policy = make_policy sink registry in
            match registry with
            | None -> (None, policy)
            | Some registry ->
                let m, p = Rrs_trace.Metrics.instrument ~registry policy in
                (Some m, p)
          in
          let t0 = Unix.gettimeofday () in
          let r = Engine.run_policy cfg instance policy in
          let seconds = Unix.gettimeofday () -. t0 in
          (match (collector, metrics_file) with
          | Some m, Some path ->
              Out_channel.with_open_text path (fun oc ->
                  output_string oc (Rrs_trace.Metrics.to_jsonl m));
              Format.printf "metrics written to %s@." path
          | _ -> ());
          ( (r, seconds),
            if validate then Some (Validator.check_result instance r) else None
          )
        in
        let outcome =
          match policy with
          | `Lru_edf ->
              run_plain (fun sink registry ->
                  with_analysis sink ~n
                    (Lru_edf.make ~sink ?registry ~mode instance ~n))
          | `Dlru ->
              run_plain (fun sink registry ->
                  let { Delta_lru.policy; eligibility } =
                    Delta_lru.make ~sink ?registry ~mode instance ~n
                  in
                  with_analysis sink ~n { Lru_edf.policy; eligibility })
          | `Edf ->
              run_plain (fun sink registry ->
                  (Edf_policy.make ~sink ?registry ~mode instance ~n).policy)
          | `Seq_edf ->
              run_plain (fun sink registry ->
                  (Edf_policy.make_seq ~sink ?registry ~mode instance ~n).policy)
          | `Black -> run_plain (fun _ _ -> Static_policy.black instance ~n)
          | `Greedy ->
              run_plain (fun _ _ -> Naive_policies.greedy_backlog instance ~n)
          | `Greedy_hysteresis ->
              run_plain (fun _ _ ->
                  Naive_policies.greedy_backlog_hysteresis
                    ~threshold:instance.delta instance ~n)
          | `Round_robin ->
              run_plain (fun _ _ -> Naive_policies.round_robin instance ~n)
          | `Pipeline ->
              let t0 = Unix.gettimeofday () in
              let r = Var_batch.run instance ~n ~sink in
              ((r, Unix.gettimeofday () -. t0), None)
        in
        let (r, seconds), _ = outcome in
        Option.iter
          (fun oc ->
            Rrs_obs.Run_summary.write oc
              (Rrs_obs.Run_summary.make
                 ~id:(Printf.sprintf "%s-s%d" family seed)
                 ~kind:"simulate" ~seed
                 ~config:
                   [
                     ("family", family);
                     ("policy", policy_id policy);
                     ("n", string_of_int n);
                     ("ranking", Ranking.mode_to_string mode);
                     ("colors", string_of_int instance.num_colors);
                   ]
                 ~reconfig_cost:r.reconfigurations ~drop_cost:r.dropped
                 ~analysis:
                   [
                     ("executed", float_of_int r.executed);
                     ("rounds", float_of_int r.rounds_simulated);
                   ]
                 ~timings:
                   [
                     { Rrs_obs.Run_summary.phase = "engine"; seconds; count = 1 };
                   ]
                 ()))
          oc_opt;
        outcome
      in
      let outcome =
        match trace_file with
        | None -> simulate_with None
        | Some path ->
            let result =
              Out_channel.with_open_text path (fun oc -> simulate_with (Some oc))
            in
            Format.printf "trace written to %s@." path;
            result
      in
      match outcome with
      | (r, _), report ->
          Format.printf "cost: %a@." Cost.pp r.cost;
          Format.printf "executed %d, dropped %d, %d recolorings over %d rounds@."
            r.executed r.dropped r.reconfigurations r.rounds_simulated;
          let lb = Offline_bounds.lower_bound instance ~m:(max 1 (n / 8)) in
          Format.printf "OPT(m=%d) lower bound: %d (ratio upper estimate %.2f)@."
            (max 1 (n / 8))
            lb
            (Cost.ratio r.cost (Cost.make ~reconfig:lb ~drop:0));
          (match report with
          | Some report ->
              Format.printf "validator: %a@." Validator.pp_report report;
              if not report.ok then exit 2
          | None -> ());
          0)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one policy on one workload")
    Term.(
      const simulate $ family_arg $ seed_arg $ resources_arg $ policy_arg
      $ validate_arg $ metrics_arg $ trace_arg $ save_instance_arg
      $ colors_arg $ ranking_arg)

(* ------------------------------------------------------------------ *)
(* rrs experiment                                                      *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (e.g. EXP-A); omit to run every experiment." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let markdown_arg =
    let doc = "Emit GitHub-markdown tables (for EXPERIMENTS.md updates)." in
    Arg.(value & flag & info [ "markdown" ] ~doc)
  in
  let out_arg =
    let doc =
      "Append one canonical $(b,run_summary) JSONL line per experiment \
       (engine cost deltas, run counts, wall time) to this file.  Read it \
       back with Rrs_obs.Run_summary.load; see doc/TELEMETRY.md."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let jobs_arg =
    let doc =
      "Spread the experiments over $(docv) domains (0 = one per \
       recommended core).  Telemetry is domain-safe: cost totals and \
       run-summary artifacts are identical to a sequential run, only \
       wall-clock fields differ (see doc/TELEMETRY.md)."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let run id markdown out jobs =
    let emit =
      if markdown then Rrs_experiments.Harness.print_markdown
      else Rrs_experiments.Harness.print
    in
    let jobs =
      if jobs <= 0 then Rrs_parallel.Pool.num_domains () else jobs
    in
    let ids =
      match id with
      | None -> Ok (Rrs_experiments.Registry.ids ())
      | Some id ->
          if Rrs_experiments.Registry.find id <> None then Ok [ id ]
          else Error id
    in
    match ids with
    | Error id ->
        Printf.eprintf "unknown experiment %s; known: %s\n" id
          (String.concat ", " (Rrs_experiments.Registry.ids ()));
        1
    | Ok ids ->
        let results = Rrs_experiments.Registry.run_many ~jobs ids in
        (match out with
        | None -> List.iter (fun (_, (outcome, _)) -> emit outcome) results
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                List.iter
                  (fun (_, (outcome, summary)) ->
                    emit outcome;
                    Rrs_obs.Run_summary.write oc summary)
                  results);
            Format.printf "run summaries written to %s@." path);
        0
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a reproduction experiment")
    Term.(const run $ id_arg $ markdown_arg $ out_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* rrs opt                                                             *)
(* ------------------------------------------------------------------ *)

let opt_cmd =
  let m_arg =
    let doc = "Offline resources." in
    Arg.(value & opt int 1 & info [ "m" ] ~docv:"M" ~doc)
  in
  let exact_arg =
    let doc = "Also run the exact exponential search (tiny instances only)." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run family seed m exact =
    match lookup_family family with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok f ->
        let instance = f.build ~seed in
        Format.printf "%a@." Instance.pp instance;
        let lb = Offline_bounds.lower_bound instance ~m in
        let ub =
          min
            (Offline_bounds.static_upper_bound instance ~m)
            (Offline_heuristics.upper_bound instance ~m)
        in
        Format.printf "OPT(m=%d) in [%d, %d]@." m lb ub;
        if exact then
          (match Offline_opt.solve instance ~m with
          | Some opt -> Format.printf "exact OPT = %d@." opt
          | None -> Format.printf "exact search exceeded its state budget@.");
        0
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Bracket (and optionally solve) the offline optimum")
    Term.(const run $ family_arg $ seed_arg $ m_arg $ exact_arg)

(* ------------------------------------------------------------------ *)
(* rrs describe                                                        *)
(* ------------------------------------------------------------------ *)

let describe_cmd =
  let run family seed =
    match lookup_family family with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok f ->
        let instance = f.build ~seed in
        Format.printf "%a@." Instance.pp instance;
        Format.printf "layer: %s, %s@."
          (Families.layer_to_string f.layer)
          (Solve.layer_to_string (Solve.classify instance));
        let stats = Instance_stats.compute instance in
        Format.printf "%a" Instance_stats.pp stats;
        Format.printf "fluid capacity estimate: >= %d resources@."
          (Instance_stats.min_resources_estimate instance);
        0
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Print load statistics and capacity estimates for a workload")
    Term.(const run $ family_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* rrs replay                                                          *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let file_arg =
    let doc = "Instance CSV file (format of $(b,--save-instance))." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let gantt_arg =
    let doc = "Render a Gantt view of the schedule (small instances)." in
    Arg.(value & flag & info [ "gantt" ] ~doc)
  in
  let run file n gantt =
    match Rrs_trace.Instance_io.load file with
    | Error msg ->
        Printf.eprintf "cannot load %s: %s\n" file msg;
        1
    | Ok instance ->
        Format.printf "%a@." Instance.pp instance;
        let layer, r = Solve.run instance ~n in
        Format.printf "layer: %s@." (Solve.layer_to_string layer);
        Format.printf "cost: %a (executed %d, dropped %d)@." Cost.pp r.cost
          r.executed r.dropped;
        if gantt then begin
          (* re-run recording the schedule (Solve does not record) *)
          let cfg = Engine.config ~n ~record_schedule:true () in
          match Solve.classify instance with
          | Solve.Direct ->
              let r = Engine.run cfg instance Lru_edf.policy in
              print_string
                (Rrs_trace.Schedule_io.render_gantt (Option.get r.schedule))
          | Solve.Distributed | Solve.Pipelined ->
              Format.printf
                "(gantt view is only available for rate-limited instances)@."
        end;
        0
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Load an instance from CSV and solve it with the right layer")
    Term.(const run $ file_arg $ resources_arg $ gantt_arg)

(* ------------------------------------------------------------------ *)

let main =
  let doc = "reconfigurable resource scheduling with variable delay bounds" in
  let info = Cmd.info "rrs" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ list_cmd; simulate_cmd; experiment_cmd; opt_cmd; replay_cmd; describe_cmd ]

let () = exit (Cmd.eval' main)
