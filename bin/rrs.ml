(* rrs — command-line driver for the reconfigurable-resource-scheduling
   reproduction.

     rrs list                         show workload families and experiments
     rrs simulate -f router -p dlru-edf -n 8 --validate
     rrs experiment EXP-A             run one experiment (or all, no arg)
     rrs opt -f uniform -s 1 -m 1     bracket / solve the offline optimum *)

open Cmdliner
open Rrs_core
module Families = Rrs_workload.Families
module Table = Rrs_report.Table

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let family_arg =
  let doc =
    "Workload family id (see $(b,rrs list)).  The family determines which \
     solver layer applies."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "f"; "family" ] ~docv:"FAMILY" ~doc)

let seed_arg =
  let doc = "Generator seed; the (family, seed) pair is reproducible." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let resources_arg =
  let doc = "Resources given to the online algorithm (multiple of 4)." in
  Arg.(value & opt int 8 & info [ "n"; "resources" ] ~docv:"N" ~doc)

let lookup_family id =
  match Families.find id with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown family %S; known: %s" id
           (String.concat ", " (Families.ids ())))

(* ------------------------------------------------------------------ *)
(* rrs list                                                            *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    let table = Table.create ~columns:[ "family"; "layer"; "description" ] in
    List.iter
      (fun (f : Families.family) ->
        Table.add_row table
          [ f.id; Families.layer_to_string f.layer; f.description ])
      Families.all;
    Table.print ~title:"workload families" table;
    let table = Table.create ~columns:[ "experiment" ] in
    List.iter
      (fun id -> Table.add_row table [ id ])
      (Rrs_experiments.Registry.ids ());
    Table.print ~title:"experiments (run with: rrs experiment <id>)" table;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List workload families and experiments")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* rrs simulate                                                        *)
(* ------------------------------------------------------------------ *)

let policy_arg =
  let policies =
    [
      ("dlru-edf", `Lru_edf);
      ("dlru", `Dlru);
      ("edf", `Edf);
      ("seq-edf", `Seq_edf);
      ("black", `Black);
      ("pipeline", `Pipeline);
      ("greedy", `Greedy);
      ("greedy-hysteresis", `Greedy_hysteresis);
      ("round-robin", `Round_robin);
    ]
  in
  let doc =
    "Policy: $(b,dlru-edf) (the paper's algorithm), $(b,dlru), $(b,edf), \
     $(b,seq-edf), $(b,black) (drop everything), $(b,pipeline) (VarBatch + \
     Distribute + dLRU-EDF; required for unbatched families), or the naive \
     baselines $(b,greedy), $(b,greedy-hysteresis), $(b,round-robin)."
  in
  Arg.(
    value
    & opt (enum policies) `Lru_edf
    & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let validate_arg =
  let doc = "Replay the schedule through the independent validator." in
  Arg.(value & flag & info [ "validate" ] ~doc)

let metrics_arg =
  let doc =
    "Write per-round metrics (backlog, cache, cumulative costs) to this \
     file as JSONL (one $(b,metrics_sample) object per round plus a final \
     $(b,metrics_registry) line; see doc/TELEMETRY.md).  Not available \
     with the pipeline policy."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Stream every engine and analysis event (drops, arrivals, \
     reconfigurations, executions, epochs, wraps, super-epochs, credits) \
     to this JSONL file, followed by one $(b,run_summary) line.  See \
     doc/TELEMETRY.md for the schema."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Profile the run with hierarchical spans and write a Chrome \
     trace-event JSON file (open in Perfetto / $(b,chrome://tracing)).  \
     One track per domain; span end events carry minor/promoted/major \
     allocation word deltas.  See doc/TELEMETRY.md, \"Profiling\"."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let heartbeat_arg =
  let doc =
    "Stream live health snapshots to this JSONL file (one \
     $(b,heartbeat) object per beat, flushed immediately so the file \
     can be tailed), plus an atomically-replaced single-line status \
     file at $(docv)$(b,.status) and a Prometheus text exposition at \
     $(docv)$(b,.prom).  Render the latest beat with $(b,rrs status); \
     see doc/TELEMETRY.md, \"Live telemetry\"."
  in
  Arg.(value & opt (some string) None & info [ "heartbeat" ] ~docv:"FILE" ~doc)

let heartbeat_every_arg =
  let doc = "Beat every $(docv) engine rounds (with $(b,--heartbeat))." in
  Arg.(
    value & opt int 64 & info [ "heartbeat-every" ] ~docv:"ROUNDS" ~doc)

(* Run [f] with an ambient heartbeat committed on the way out — shared
   by simulate and experiment.  The engine(s) under [f] pick the
   heartbeat up through Heartbeat.ambient, so this also covers runs
   the CLI never configures directly (the pipeline policy's inner
   engines, every experiment of a sweep). *)
let with_heartbeat heartbeat_file ~every ?registry f =
  match heartbeat_file with
  | None -> f ()
  | Some path ->
      if every < 1 then begin
        prerr_endline "--heartbeat-every must be at least 1";
        exit 1
      end;
      let hb =
        Rrs_obs.Heartbeat.create ~every_rounds:every ~path
          ~status_path:(path ^ ".status")
          ?expose_path:(Option.map (fun _ -> path ^ ".prom") registry)
          ?registry ()
      in
      let finally () =
        Rrs_obs.Heartbeat.finish hb;
        Format.printf "heartbeat written to %s (%d beats over %d rounds)@."
          path
          (Rrs_obs.Heartbeat.beats hb)
          (Rrs_obs.Heartbeat.rounds_observed hb)
      in
      Fun.protect ~finally (fun () -> Rrs_obs.Heartbeat.with_heartbeat hb f)

(* Run [f] under a fresh profiler scope and commit the Chrome trace —
   shared by simulate and experiment. *)
let with_profile profile_file f =
  match profile_file with
  | None -> f ()
  | Some path ->
      let prof = Rrs_prof.create () in
      let finally () =
        Rrs_prof.write_chrome prof path;
        Format.printf "profile written to %s (%d events)@." path
          (Rrs_prof.events prof)
      in
      Fun.protect ~finally (fun () -> Rrs_prof.with_profiler prof f)

(* The engine's self-measurement registry, folded into a run summary:
   round-latency percentiles (in seconds, so strip_timings covers them)
   and the allocations-per-round gauges. *)
let registry_analysis = function
  | None -> []
  | Some reg ->
      let h =
        Rrs_obs.Metrics.histogram_stats
          (Rrs_obs.Metrics.histogram reg "engine_round_latency_us"
             ~max_value:Engine.round_latency_max_us)
      in
      let latency =
        if Rrs_stats.Histogram.count h = 0 then []
        else
          List.map
            (fun (name, q) ->
              (name, float_of_int (Rrs_stats.Histogram.quantile h q) /. 1e6))
            [
              ("round_latency_p50_seconds", 0.5);
              ("round_latency_p95_seconds", 0.95);
              ("round_latency_p99_seconds", 0.99);
            ]
      in
      let gauges =
        List.filter_map
          (fun name ->
            let v =
              Rrs_obs.Metrics.gauge_value (Rrs_obs.Metrics.gauge reg name)
            in
            if Float.is_nan v then None else Some (name, v))
          [
            "alloc_minor_words_per_round";
            "alloc_promoted_words_per_round";
            "alloc_major_words_per_round";
          ]
      in
      latency @ gauges

let save_instance_arg =
  let doc = "Also save the generated instance to this CSV file." in
  Arg.(
    value
    & opt (some string) None
    & info [ "save-instance" ] ~docv:"FILE" ~doc)

let colors_arg =
  let doc =
    "Generate the workload at $(docv) colors instead of the family \
     default — the scaling knob the core bench sweeps.  Only synthetic \
     families support it (scenario families have a fixed cast)."
  in
  Arg.(value & opt (some int) None & info [ "colors" ] ~docv:"COLORS" ~doc)

let ranking_arg =
  let doc =
    "Ranking maintenance for the ΔLRU/EDF policy family: \
     $(b,incremental) (the delta-driven index, default) or $(b,rebuild) \
     (the original per-round re-sort — the differential oracle).  Both \
     make byte-identical decisions."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("incremental", Ranking.Incremental); ("rebuild", Ranking.Rebuild);
           ])
        Ranking.Incremental
    & info [ "ranking" ] ~docv:"MODE" ~doc)

let policy_id = function
  | `Lru_edf -> "dlru-edf"
  | `Dlru -> "dlru"
  | `Edf -> "edf"
  | `Seq_edf -> "seq-edf"
  | `Black -> "black"
  | `Pipeline -> "pipeline"
  | `Greedy -> "greedy"
  | `Greedy_hysteresis -> "greedy-hysteresis"
  | `Round_robin -> "round-robin"

(* The ΔLRU family also streams the analysis layer: eligibility events
   via [make ~sink] and super-epoch completions (m = n/8, the Theorem 1
   offline adversary) via an attached observer. *)
let with_analysis sink ~n ({ policy; eligibility } : Lru_edf.instrumented) =
  if Rrs_obs.Sink.enabled sink then
    ignore (Super_epochs.attach ~sink eligibility ~m:(max 1 (n / 8)));
  policy

let simulate family seed n policy validate metrics_file trace_file
    save_instance colors mode profile_file heartbeat_file heartbeat_every =
  let build_instance (f : Families.family) =
    match colors with
    | None -> Ok (f.build ~seed)
    | Some c ->
        Result.map_error
          (fun e ->
            Printf.sprintf "--colors: %s" (Families.string_of_scale_error e))
          (Families.scale_to f ~num_colors:c ~seed)
  in
  match Result.bind (lookup_family family) build_instance with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok instance -> (
      Format.printf "%a@." Instance.pp instance;
      Option.iter
        (fun path ->
          Rrs_trace.Instance_io.save path instance;
          Format.printf "instance saved to %s@." path)
        save_instance;
      (* one registry shared by the policy (ranking_update), the
         per-round collector (drops/recolorings/backlog), the engine's
         own round-latency/allocation telemetry, and the heartbeat's
         Prometheus exposition, so a single metrics_registry line (and
         .prom file) carries everything.  A trace run gets the registry
         too: its run_summary line then carries latency percentiles and
         allocation gauges. *)
      let registry =
        if
          Option.is_some metrics_file || Option.is_some trace_file
          || Option.is_some heartbeat_file
        then Some (Rrs_obs.Metrics.create ())
        else None
      in
      let simulate_with sink_opt =
        let sink = Option.value ~default:Rrs_obs.Sink.null sink_opt in
        let run_plain make_policy =
          let cfg =
            Engine.config ~n ~record_schedule:validate ~sink ?registry ()
          in
          let collector, policy =
            let policy = make_policy sink registry in
            match (registry, metrics_file) with
            | Some registry, Some _ ->
                let m, p = Rrs_trace.Metrics.instrument ~registry policy in
                (Some m, p)
            | _ -> (None, policy)
          in
          let t0 = Unix.gettimeofday () in
          let r = Engine.run_policy cfg instance policy in
          let seconds = Unix.gettimeofday () -. t0 in
          (match (collector, metrics_file) with
          | Some m, Some path ->
              Out_channel.with_open_text path (fun oc ->
                  output_string oc (Rrs_trace.Metrics.to_jsonl m));
              Format.printf "metrics written to %s@." path
          | _ -> ());
          ( (r, seconds),
            registry,
            if validate then Some (Validator.check_result instance r) else None
          )
        in
        let outcome =
          match policy with
          | `Lru_edf ->
              run_plain (fun sink registry ->
                  with_analysis sink ~n
                    (Lru_edf.make ~sink ?registry ~mode instance ~n))
          | `Dlru ->
              run_plain (fun sink registry ->
                  let { Delta_lru.policy; eligibility } =
                    Delta_lru.make ~sink ?registry ~mode instance ~n
                  in
                  with_analysis sink ~n { Lru_edf.policy; eligibility })
          | `Edf ->
              run_plain (fun sink registry ->
                  (Edf_policy.make ~sink ?registry ~mode instance ~n).policy)
          | `Seq_edf ->
              run_plain (fun sink registry ->
                  (Edf_policy.make_seq ~sink ?registry ~mode instance ~n).policy)
          | `Black -> run_plain (fun _ _ -> Static_policy.black instance ~n)
          | `Greedy ->
              run_plain (fun _ _ -> Naive_policies.greedy_backlog instance ~n)
          | `Greedy_hysteresis ->
              run_plain (fun _ _ ->
                  Naive_policies.greedy_backlog_hysteresis
                    ~threshold:instance.delta instance ~n)
          | `Round_robin ->
              run_plain (fun _ _ -> Naive_policies.round_robin instance ~n)
          | `Pipeline ->
              let t0 = Unix.gettimeofday () in
              let r = Var_batch.run instance ~n ~sink in
              ((r, Unix.gettimeofday () -. t0), None, None)
        in
        let (r, seconds), registry, _ = outcome in
        Option.iter
          (fun sink ->
            Rrs_obs.Sink.write_line sink
              (Rrs_obs.Run_summary.to_line
                 (Rrs_obs.Run_summary.make
                 ~id:(Printf.sprintf "%s-s%d" family seed)
                 ~kind:"simulate" ~seed
                 ~config:
                   [
                     ("family", family);
                     ("policy", policy_id policy);
                     ("n", string_of_int n);
                     ("ranking", Ranking.mode_to_string mode);
                     ("colors", string_of_int instance.num_colors);
                   ]
                 ~reconfig_cost:r.reconfigurations ~drop_cost:r.dropped
                 ~analysis:
                   ([
                      ("executed", float_of_int r.executed);
                      ("rounds", float_of_int r.rounds_simulated);
                    ]
                   @ registry_analysis registry)
                 ~timings:
                   [
                     { Rrs_obs.Run_summary.phase = "engine"; seconds; count = 1 };
                   ]
                 ())))
          sink_opt;
        outcome
      in
      let outcome =
        with_profile profile_file @@ fun () ->
        with_heartbeat heartbeat_file ~every:heartbeat_every ?registry
        @@ fun () ->
        match trace_file with
        | None -> simulate_with None
        | Some path ->
            let result =
              Rrs_obs.Sink.with_jsonl path (fun sink ->
                  simulate_with (Some sink))
            in
            Format.printf "trace written to %s@." path;
            result
      in
      match outcome with
      | (r, _), _, report ->
          Format.printf "cost: %a@." Cost.pp r.cost;
          Format.printf "executed %d, dropped %d, %d recolorings over %d rounds@."
            r.executed r.dropped r.reconfigurations r.rounds_simulated;
          let lb = Offline_bounds.lower_bound instance ~m:(max 1 (n / 8)) in
          Format.printf "OPT(m=%d) lower bound: %d (ratio upper estimate %.2f)@."
            (max 1 (n / 8))
            lb
            (Cost.ratio r.cost (Cost.make ~reconfig:lb ~drop:0));
          (match report with
          | Some report ->
              Format.printf "validator: %a@." Validator.pp_report report;
              if not report.ok then exit 2
          | None -> ());
          0)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one policy on one workload")
    Term.(
      const simulate $ family_arg $ seed_arg $ resources_arg $ policy_arg
      $ validate_arg $ metrics_arg $ trace_arg $ save_instance_arg
      $ colors_arg $ ranking_arg $ profile_arg $ heartbeat_arg
      $ heartbeat_every_arg)

(* ------------------------------------------------------------------ *)
(* rrs experiment                                                      *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment ids (e.g. EXP-A); omit to run every experiment." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let markdown_arg =
    let doc = "Emit GitHub-markdown tables (for EXPERIMENTS.md updates)." in
    Arg.(value & flag & info [ "markdown" ] ~doc)
  in
  let out_arg =
    let doc =
      "Append one canonical $(b,run_summary) JSONL line per experiment \
       (engine cost deltas, run counts, wall time) to this file.  Read it \
       back with Rrs_obs.Run_summary.load; see doc/TELEMETRY.md."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let jobs_arg =
    let doc =
      "Spread the experiments over $(docv) domains (0 = one per \
       recommended core).  Telemetry is domain-safe: cost totals and \
       run-summary artifacts are identical to a sequential run, only \
       wall-clock fields differ (see doc/TELEMETRY.md)."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let exp_metrics_arg =
    let doc =
      "Write one $(b,metrics_registry) JSONL line per experiment (the \
       experiment's private telemetry registry — counters, gauges, \
       histograms, timers) to this file, in requested-id order.  The \
       lines are identical for every $(b,--jobs); failed experiments \
       get no line.  Same registry schema as $(b,rrs simulate \
       --metrics); see doc/TELEMETRY.md."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let timeout_arg =
    let doc =
      "Abandon an experiment after $(docv) wall-clock seconds (counts as a \
       transient failure, so it retries under $(b,--retries))."
    in
    Arg.(
      value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let retries_arg =
    let doc =
      "Retry a transiently failing experiment up to $(docv) more times \
       (deterministic exponential backoff)."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let keep_going_arg =
    let doc =
      "Keep running the remaining experiments after one fails (the failures \
       are listed at the end either way).  Without this flag, experiments \
       not yet started when a failure lands are skipped."
    in
    Arg.(value & flag & info [ "k"; "keep-going" ] ~doc)
  in
  let resume_arg =
    let doc =
      "With $(b,--out): read the artifact left by a previous (possibly \
       crashed) run, skip the experiments it already records — tolerating \
       a torn final line — and write the merged artifact."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let run id markdown out jobs timeout retries keep_going resume metrics_out
      profile_file heartbeat_file heartbeat_every =
    let module Registry = Rrs_experiments.Registry in
    let module Supervisor = Rrs_robust.Supervisor in
    let emit =
      if markdown then Rrs_experiments.Harness.print_markdown
      else Rrs_experiments.Harness.print
    in
    let jobs =
      if jobs <= 0 then Rrs_parallel.Pool.num_domains () else jobs
    in
    let ids =
      match id with
      | [] -> Ok (Registry.ids ())
      | ids -> (
          match List.find_opt (fun id -> Registry.find id = None) ids with
          | Some bad -> Error bad
          | None -> Ok ids)
    in
    match ids with
    | Error id ->
        Printf.eprintf "unknown experiment %s; known: %s\n" id
          (String.concat ", " (Registry.ids ()));
        1
    | Ok ids -> (
        let previous =
          match (resume, out) with
          | false, _ -> Ok []
          | true, None ->
              Error "--resume only makes sense together with --out"
          | true, Some path when not (Sys.file_exists path) -> Ok []
          | true, Some path -> (
              match Rrs_obs.Run_summary.load_tolerant path with
              | Error msg -> Error msg
              | Ok (summaries, torn) ->
                  (* a torn trailing line means the previous run died
                     mid-write: its experiment will re-run, but say so
                     loudly — silently shrinking the artifact reads as
                     data loss *)
                  Option.iter
                    (fun { Rrs_obs.Run_summary.lineno; reason } ->
                      Format.eprintf
                        "warning: resume: skipped torn trailing line %d of \
                         %s (%s); its experiment will re-run@."
                        lineno path reason)
                    torn;
                  Ok summaries)
        in
        match previous with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok previous ->
            let done_ids =
              List.map (fun s -> s.Rrs_obs.Run_summary.id) previous
            in
            let todo =
              List.filter (fun id -> not (List.mem id done_ids)) ids
            in
            if resume && List.length todo < List.length ids then
              Format.printf "resume: %d of %d experiments already recorded@."
                (List.length ids - List.length todo)
                (List.length ids);
            let policy = { Supervisor.default with timeout; retries } in
            (* the always-on black-box: every experiment sweep runs
               under a flight recorder armed to dump next to the run
               artifact (or into the working directory), so any
               classified failure ships a crash-<id>.jsonl window of
               its last engine events *)
            let dump_dir =
              match out with Some path -> Filename.dirname path | None -> "."
            in
            let recorder = Rrs_obs.Flight_recorder.create () in
            let results =
              with_profile profile_file (fun () ->
                  Rrs_obs.Flight_recorder.with_recorder ~dump_dir recorder
                    (fun () ->
                      with_heartbeat heartbeat_file ~every:heartbeat_every
                        ~registry:Rrs_experiments.Harness.telemetry (fun () ->
                          Registry.run_many ~jobs ~policy ~keep_going todo)))
            in
            List.iter
              (fun (_, r) ->
                match r with
                | Ok s -> emit s.Registry.outcome
                | Error _ -> ())
              results;
            (match metrics_out with
            | None -> ()
            | Some path ->
                Rrs_obs.Sink.with_jsonl path (fun sink ->
                    List.iter
                      (fun id ->
                        match List.assoc_opt id results with
                        | Some (Ok s) ->
                            Rrs_obs.Sink.write_line sink
                              (Rrs_obs.Json.to_string
                                 (Rrs_obs.Json.Assoc
                                    [
                                      ( "type",
                                        Rrs_obs.Json.String "metrics_registry"
                                      );
                                      ("id", Rrs_obs.Json.String id);
                                      ("registry", s.Registry.metrics);
                                    ]))
                        | Some (Error _) | None -> ())
                      ids);
                Format.printf "metrics registries written to %s@." path);
            (match out with
            | None -> ()
            | Some path ->
                Rrs_obs.Sink.with_jsonl path (fun sink ->
                    let line s =
                      Rrs_obs.Sink.write_line sink
                        (Rrs_obs.Run_summary.to_line s)
                    in
                    (* requested order: the prior run's line if it has
                       one, else this run's (failed ids get no line, so
                       a further --resume completes exactly them) *)
                    List.iter
                      (fun id ->
                        match
                          List.find_opt
                            (fun s -> s.Rrs_obs.Run_summary.id = id)
                            previous
                        with
                        | Some s -> line s
                        | None -> (
                            match List.assoc_opt id results with
                            | Some (Ok s) -> line s.Registry.summary
                            | Some (Error _) | None -> ()))
                      ids;
                    (* summaries of ids outside this invocation survive *)
                    List.iter
                      (fun s ->
                        if not (List.mem s.Rrs_obs.Run_summary.id ids) then
                          line s)
                      previous);
                Format.printf "run summaries written to %s@." path);
            let failures = Registry.failures results in
            List.iter
              (fun (_, f) ->
                Format.eprintf "%a@." Supervisor.pp_failure f;
                let dump =
                  Rrs_obs.Flight_recorder.crash_dump_path ~dir:dump_dir
                    ~name:f.Supervisor.name
                in
                if Sys.file_exists dump then
                  Format.eprintf "  crash dump: %s@." dump;
                let bt = Printexc.raw_backtrace_to_string f.backtrace in
                if String.trim bt <> "" then prerr_string bt)
              failures;
            if failures = [] then 0
            else begin
              Printf.eprintf "%d of %d experiments failed\n"
                (List.length failures) (List.length todo);
              1
            end)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a reproduction experiment")
    Term.(
      const run $ id_arg $ markdown_arg $ out_arg $ jobs_arg $ timeout_arg
      $ retries_arg $ keep_going_arg $ resume_arg $ exp_metrics_arg
      $ profile_arg $ heartbeat_arg $ heartbeat_every_arg)

(* ------------------------------------------------------------------ *)
(* rrs status                                                          *)
(* ------------------------------------------------------------------ *)

let status_cmd =
  let file_arg =
    let doc =
      "A heartbeat stream ($(b,--heartbeat) FILE) or its single-line \
       $(b,.status) companion."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let watch_arg =
    let doc =
      "Poll the file every $(docv) seconds and re-render whenever a new \
       beat lands; exits 0 once the final beat ($(b,\"final\":true)) is \
       seen.  A file that does not exist yet is waited for — the live \
       session may not have beaten."
    in
    Arg.(value & opt (some float) None & info [ "watch" ] ~docv:"SECS" ~doc)
  in
  let module J = Rrs_obs.Json in
  (* distinguish the failure modes instead of raising: a path that is
     not there, a file with no bytes, and a file with bytes but no
     parseable heartbeat line each get their own message *)
  let last_beat file =
    if not (Sys.file_exists file) then Error `Missing
    else
      let lines = In_channel.with_open_text file In_channel.input_lines in
      if List.for_all (fun l -> String.trim l = "") lines then Error `Empty
      else
        let heartbeat_line acc line =
          match J.parse line with
          | Ok j when J.member "type" j = Some (J.String "heartbeat") -> Some j
          | _ -> acc
        in
        match List.fold_left heartbeat_line None lines with
        | None -> Error `No_beat
        | Some j -> Ok j
  in
  let describe_error file = function
    | `Missing ->
        Printf.sprintf
          "status: %s: no such file (give the --heartbeat stream or its \
           .status companion)"
          file
    | `Empty -> Printf.sprintf "status: %s: file is empty (no beat yet?)" file
    | `No_beat -> Printf.sprintf "status: no heartbeat line in %s" file
  in
  let render j =
        let int name =
          Option.bind (J.member name j) (fun v -> Result.to_option (J.to_int v))
        in
        let float name =
          Option.bind (J.member name j) (fun v ->
              Result.to_option (J.to_float v))
        in
        let i0 name = Option.value ~default:0 (int name) in
        let final = J.member "final" j = Some (J.Bool true) in
        Format.printf "beat %d%s — round %d, %d rounds observed@." (i0 "beat")
          (if final then " (final)" else " (running)")
          (i0 "round") (i0 "rounds");
        Format.printf
          "cost: reconfig %d + drop %d = %d (%d recolorings, %d executed)@."
          (i0 "reconfig_cost") (i0 "drop_cost") (i0 "total_cost")
          (i0 "recolorings") (i0 "executed");
        (match (int "round_latency_p50_us", int "round_latency_p95_us",
                int "round_latency_p99_us")
         with
        | Some p50, Some p95, Some p99 ->
            Format.printf "round latency p50/p95/p99: %d/%d/%d us@." p50 p95
              p99
        | _ -> ());
        (match
           (float "alloc_minor_words_per_round", int "major_collections")
         with
        | Some minor, Some majors ->
            Format.printf
              "alloc: %.0f minor words/round, %d major collections@." minor
              majors
        | _ -> ());
        (* service beats (rrs serve --socket/--tcp) carry the overload
           and recovery counters; render them when present *)
        (match int "serve_ops" with
        | None -> ()
        | Some ops ->
            Format.printf
              "service: %d ops; overload busy %d, shed %d, slow drops %d, \
               wedged %d@."
              ops (i0 "serve_busy") (i0 "serve_shed") (i0 "serve_slow_drops")
              (i0 "serve_wedged");
            Format.printf
              "recovery: %d restores (%d session restarts) — torn tail %d, \
               quarantined %d, refused %d@."
              (i0 "serve_restores")
              (i0 "serve_session_restarts")
              (i0 "serve_recovery_torn_tail")
              (i0 "serve_recovery_quarantined")
              (i0 "serve_recovery_refused"));
        Format.printf "window: %d rounds, %.3fs since previous beat@."
          (i0 "rounds_since")
          (Option.value ~default:0. (float "seconds_since"));
        if not final then
          Format.printf "(stream still open — run had not finished here)@.";
        final
  in
  let run file watch =
    match watch with
    | None -> (
        match last_beat file with
        | Error e ->
            prerr_endline (describe_error file e);
            1
        | Ok j ->
            ignore (render j);
            0)
    | Some secs ->
        if secs <= 0. then begin
          prerr_endline "status: --watch must be positive";
          exit 1
        end;
        let rec poll ~warned last_shown =
          let state =
            match last_beat file with
            | Error e -> Error e
            | Ok j ->
                let beat =
                  Option.bind (J.member "beat" j) (fun v ->
                      Result.to_option (J.to_int v))
                in
                Ok (j, beat)
          in
          let warned, next_shown, final =
            match state with
            | Error e ->
                (* a live session may simply not have beaten yet *)
                if not warned then
                  Format.printf "(waiting: %s)@." (describe_error file e);
                (true, last_shown, false)
            | Ok (j, beat) ->
                if beat <> last_shown || last_shown = None then
                  (warned, beat, render j)
                else (warned, last_shown, false)
          in
          if final then 0
          else begin
            Unix.sleepf secs;
            poll ~warned next_shown
          end
        in
        poll ~warned:false None
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Render the latest heartbeat of a run (live or finished) \
          human-readably")
    Term.(const run $ file_arg $ watch_arg)

(* ------------------------------------------------------------------ *)
(* rrs serve                                                           *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let module Server = Rrs_service.Server in
  let module Stream = Rrs_workload.Arrival_stream in
  let policy_arg =
    let doc =
      Printf.sprintf
        "Streaming policy: %s (the online subset of the simulate table; \
         the pipeline policy needs the whole instance up front)."
        (String.concat ", "
           (List.map (fun (id, _) -> "$(b," ^ id ^ ")") Server.policies))
    in
    Arg.(
      value & opt string "dlru-edf" & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)
  in
  let delta_arg =
    let doc = "Reconfiguration charge Δ of the session." in
    Arg.(value & opt int 4 & info [ "delta" ] ~docv:"DELTA" ~doc)
  in
  let colors_arg =
    let doc = "Size of the color universe." in
    Arg.(value & opt int 8 & info [ "colors" ] ~docv:"COLORS" ~doc)
  in
  let delay_bound_arg =
    let doc = "Delay bound given to every color (see also $(b,--family))." in
    Arg.(value & opt int 8 & info [ "delay-bound" ] ~docv:"ROUNDS" ~doc)
  in
  let mini_rounds_arg =
    let doc = "Mini-rounds per round (2 = double-speed)." in
    Arg.(value & opt int 1 & info [ "mini-rounds" ] ~docv:"K" ~doc)
  in
  let family_arg =
    let doc =
      "Take Δ, the color universe and the per-color delay bounds from this \
       workload family (with $(b,--seed)) instead of \
       $(b,--delta)/$(b,--colors)/$(b,--delay-bound) — the same parameters \
       $(b,--emit-script) bakes into its script, so the two sides of the \
       pipe always agree."
    in
    Arg.(
      value & opt (some string) None & info [ "f"; "family" ] ~docv:"FAMILY" ~doc)
  in
  let emit_script_arg =
    let doc =
      "Do not serve: print the $(b,--family) workload as a protocol script \
       (submit/step lines, final state + quit) for piping into a serve \
       process, then exit."
    in
    Arg.(value & flag & info [ "emit-script" ] ~doc)
  in
  let step_chunk_arg =
    let doc = "Rounds per $(b,step) line in $(b,--emit-script) output." in
    Arg.(value & opt int 64 & info [ "step-chunk" ] ~docv:"ROUNDS" ~doc)
  in
  let checkpoint_dir_arg =
    let doc =
      "Durable state directory ($(b,journal.jsonl) + $(b,checkpoint.json)); \
       a restart with the same directory restores the session.  Without it \
       the session is ephemeral."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)
  in
  let checkpoint_every_arg =
    let doc =
      "Commit a checkpoint every $(docv) applied commands (0 = only on \
       explicit $(b,checkpoint) commands and at quit)."
    in
    Arg.(value & opt int 256 & info [ "checkpoint-every" ] ~docv:"OPS" ~doc)
  in
  let retries_arg =
    let doc =
      "In-process restarts granted to transient faults (the supervisor \
       replays the journal and resumes reading)."
    in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let crash_after_arg =
    let doc =
      "Testing hook: abandon the process (exit 70, no checkpoint, no \
       goodbye) right after journaling the $(docv)-th applied command — a \
       deterministic kill for restart drills."
    in
    Arg.(value & opt (some int) None & info [ "crash-after" ] ~docv:"OPS" ~doc)
  in
  let socket_arg =
    let doc =
      "Serve many concurrent clients on a Unix-domain socket at $(docv) \
       instead of stdin/stdout; clients multiplex named sessions with \
       $(b,open)/$(b,attach).  SIGTERM/SIGINT drain gracefully (final \
       checkpoint per session)."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc =
      "Serve on a TCP listener at $(docv) (HOST:PORT; port 0 picks a free \
       port, printed on stderr when bound).  Same semantics as \
       $(b,--socket)."
    in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let max_conns_arg =
    let doc =
      "Connections accepted at once (socket modes); later clients get \
       $(b,busy connections ...) and are closed."
    in
    Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let queue_limit_arg =
    let doc =
      "Commands queued per session before admission control answers \
       $(b,busy queue ... retry-after=...) instead of enqueueing (socket \
       modes)."
    in
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N" ~doc)
  in
  let shed_threshold_arg =
    let doc =
      "Total queued commands above which read-only commands \
       ($(b,state)/$(b,sessions)/$(b,help)) are shed with $(b,busy shed \
       ...) so the cycles go to $(b,submit)/$(b,step) (socket modes)."
    in
    Arg.(value & opt int 256 & info [ "shed-threshold" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-command apply budget in seconds (socket modes); a command that \
       overruns wedges its session (the next command restores it from its \
       journal) and the client gets $(b,err deadline ...)."
    in
    Arg.(
      value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)
  in
  let serve_counters metrics =
    let count name =
      Rrs_obs.Metrics.(value (counter metrics name))
    in
    [
      ("serve_ops", "ops");
      ("serve_busy", "busy");
      ("serve_shed", "shed");
      ("serve_slow_client_drops", "slow_drops");
      ("serve_wedged", "wedged");
      ("serve_session_restarts", "session_restarts");
      ("serve_restores", "restores");
      ("serve_recovery_torn_tail", "recovery_torn_tail");
      ("serve_recovery_checkpoint_quarantined", "recovery_quarantined");
      ("serve_recovery_refused", "recovery_refused");
    ]
    |> List.map (fun (counter, field) ->
           ("serve_" ^ field, Rrs_obs.Json.Int (count counter)))
  in
  let run policy n delta colors delay_bound mini_rounds family seed emit_script
      step_chunk checkpoint_dir checkpoint_every retries crash_after
      heartbeat_file heartbeat_every socket tcp max_conns queue_limit
      shed_threshold deadline =
    let params =
      match family with
      | None ->
          if colors < 1 then Error "--colors must be at least 1"
          else Ok (delta, Array.make colors delay_bound, None)
      | Some id -> (
          match lookup_family id with
          | Error msg -> Error msg
          | Ok f ->
              let instance = f.build ~seed in
              Ok
                ( instance.Instance.delta,
                  Array.copy instance.Instance.delay,
                  Some instance ))
    in
    match params with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok (delta, delay, instance) ->
        if emit_script then begin
          match instance with
          | None ->
              prerr_endline "--emit-script needs --family";
              1
          | Some instance ->
              let stream = Stream.of_instance instance in
              let buf = Buffer.create 4096 in
              Buffer.add_string buf
                (Printf.sprintf
                   "# %s: %d rounds, %d colors, delta=%d\n"
                   instance.Instance.name (Stream.rounds stream)
                   (Stream.num_colors stream) (Stream.delta stream));
              Stream.to_script ~step_chunk stream buf;
              print_string (Buffer.contents buf);
              0
        end
        else begin
          let address =
            match (socket, tcp) with
            | Some _, Some _ -> Error "--socket and --tcp are exclusive"
            | Some path, None ->
                Ok (Some (Rrs_service.Transport.Unix_socket path))
            | None, Some hostport -> (
                match String.rindex_opt hostport ':' with
                | None -> Error "--tcp wants HOST:PORT"
                | Some i -> (
                    let host = String.sub hostport 0 i in
                    let port =
                      String.sub hostport (i + 1)
                        (String.length hostport - i - 1)
                    in
                    match int_of_string_opt port with
                    | Some port when port >= 0 && port < 65536 ->
                        Ok (Some (Rrs_service.Transport.Tcp (host, port)))
                    | _ -> Error ("--tcp: bad port " ^ port)))
            | None, None -> Ok None
          in
          match address with
          | Error msg ->
              prerr_endline msg;
              2
          | Ok address ->
              (* socket modes count overload/recovery in a registry the
                 heartbeat also reports from, so `rrs status` shows them *)
              let metrics =
                match address with
                | None -> None
                | Some _ -> Some (Rrs_obs.Metrics.create ())
              in
              let heartbeat =
                match heartbeat_file with
                | None -> None
                | Some path ->
                    let extra =
                      Option.map (fun m () -> serve_counters m) metrics
                    in
                    (* exposition needs the registry: only in socket modes *)
                    let expose_path =
                      Option.map (fun _ -> path ^ ".prom") metrics
                    in
                    Some
                      (Rrs_obs.Heartbeat.create ~every_rounds:heartbeat_every
                         ~path
                         ~status_path:(path ^ ".status")
                         ?registry:metrics ?expose_path ?extra ())
              in
              let config =
                {
                  Server.policy;
                  n;
                  delta;
                  delay;
                  mini_rounds;
                  checkpoint_dir;
                  checkpoint_every;
                  crash_after;
                  retries;
                  heartbeat;
                  metrics;
                }
              in
              let code =
                match address with
                | None -> Server.serve config stdin stdout
                | Some address -> (
                    let module Transport = Rrs_service.Transport in
                    let stop = Atomic.make false in
                    let previous =
                      List.map
                        (fun s ->
                          ( s,
                            Sys.signal s
                              (Sys.Signal_handle
                                 (fun _ -> Atomic.set stop true)) ))
                        [ Sys.sigterm; Sys.sigint ]
                    in
                    let restore () =
                      List.iter
                        (fun (s, d) -> try Sys.set_signal s d with _ -> ())
                        previous
                    in
                    let limits =
                      {
                        Transport.default_limits with
                        max_conns;
                        queue_limit;
                        shed_threshold;
                        command_deadline = deadline;
                      }
                    in
                    let result =
                      Fun.protect ~finally:restore (fun () ->
                          Transport.run ~limits
                            ~stop:(fun () -> Atomic.get stop)
                            ~on_ready:(fun bound ->
                              Format.eprintf "serving on %a@."
                                Transport.pp_address bound)
                            config address)
                    in
                    match result with
                    | Ok stats ->
                        Format.eprintf
                          "served %d connections, %d commands (busy %d, \
                           shed %d, slow drops %d, wedges %d)@."
                          stats.Transport.conns_accepted
                          stats.Transport.commands stats.Transport.busy
                          stats.Transport.shed stats.Transport.slow_drops
                          stats.Transport.wedges;
                        0
                    | Error msg ->
                        prerr_endline ("serve: " ^ msg);
                        2)
              in
              Option.iter Rrs_obs.Heartbeat.finish heartbeat;
              code
        end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduler as a long-lived service: line commands on \
          stdin (submit/step/state/reconfigure/checkpoint/quit), journaled \
          and checkpointed for crash restart (see doc/SERVICE.md)")
    Term.(
      const run $ policy_arg $ resources_arg $ delta_arg $ colors_arg
      $ delay_bound_arg $ mini_rounds_arg $ family_arg $ seed_arg
      $ emit_script_arg $ step_chunk_arg $ checkpoint_dir_arg
      $ checkpoint_every_arg $ retries_arg $ crash_after_arg $ heartbeat_arg
      $ heartbeat_every_arg $ socket_arg $ tcp_arg $ max_conns_arg
      $ queue_limit_arg $ shed_threshold_arg $ deadline_arg)

(* ------------------------------------------------------------------ *)
(* rrs benchdiff                                                       *)
(* ------------------------------------------------------------------ *)

let benchdiff_cmd =
  let baseline_arg =
    let doc = "Baseline run-summary JSONL artifact (the committed one)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc)
  in
  let current_arg =
    let doc = "Current run-summary JSONL artifact (the freshly measured one)." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc)
  in
  let report_arg =
    let doc = "Also write the rendered delta report to this file." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let run baseline current report_file =
    match Rrs_obs.Benchdiff.compare_files ~baseline ~current () with
    | Error msg ->
        Printf.eprintf "benchdiff: %s\n" msg;
        2
    | Ok report ->
        let text = Rrs_obs.Benchdiff.render report in
        print_string text;
        Option.iter
          (fun path ->
            Out_channel.with_open_text path (fun oc -> output_string oc text))
          report_file;
        if Rrs_obs.Benchdiff.ok report then 0 else 1
  in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:
         "Compare two run-summary artifacts metric by metric \
          (deterministic metrics exactly, performance metrics with \
          per-metric noise tolerances) and fail on regression")
    Term.(const run $ baseline_arg $ current_arg $ report_arg)

(* ------------------------------------------------------------------ *)
(* rrs opt                                                             *)
(* ------------------------------------------------------------------ *)

let opt_cmd =
  let m_arg =
    let doc = "Offline resources." in
    Arg.(value & opt int 1 & info [ "m" ] ~docv:"M" ~doc)
  in
  let exact_arg =
    let doc = "Also run the exact exponential search (tiny instances only)." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run family seed m exact =
    match lookup_family family with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok f ->
        let instance = f.build ~seed in
        Format.printf "%a@." Instance.pp instance;
        let lb = Offline_bounds.lower_bound instance ~m in
        let ub =
          min
            (Offline_bounds.static_upper_bound instance ~m)
            (Offline_heuristics.upper_bound instance ~m)
        in
        Format.printf "OPT(m=%d) in [%d, %d]@." m lb ub;
        if exact then
          (match Offline_opt.solve instance ~m with
          | Some opt -> Format.printf "exact OPT = %d@." opt
          | None -> Format.printf "exact search exceeded its state budget@.");
        0
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Bracket (and optionally solve) the offline optimum")
    Term.(const run $ family_arg $ seed_arg $ m_arg $ exact_arg)

(* ------------------------------------------------------------------ *)
(* rrs describe                                                        *)
(* ------------------------------------------------------------------ *)

let describe_cmd =
  let run family seed =
    match lookup_family family with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok f ->
        let instance = f.build ~seed in
        Format.printf "%a@." Instance.pp instance;
        Format.printf "layer: %s, %s@."
          (Families.layer_to_string f.layer)
          (Solve.layer_to_string (Solve.classify instance));
        let stats = Instance_stats.compute instance in
        Format.printf "%a" Instance_stats.pp stats;
        Format.printf "fluid capacity estimate: >= %d resources@."
          (Instance_stats.min_resources_estimate instance);
        0
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Print load statistics and capacity estimates for a workload")
    Term.(const run $ family_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* rrs replay                                                          *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let file_arg =
    let doc = "Instance CSV file (format of $(b,--save-instance))." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let gantt_arg =
    let doc = "Render a Gantt view of the schedule (small instances)." in
    Arg.(value & flag & info [ "gantt" ] ~doc)
  in
  let run file n gantt =
    match Rrs_trace.Instance_io.load file with
    | Error msg ->
        Printf.eprintf "cannot load %s: %s\n" file msg;
        1
    | Ok instance ->
        Format.printf "%a@." Instance.pp instance;
        let layer, r = Solve.run instance ~n in
        Format.printf "layer: %s@." (Solve.layer_to_string layer);
        Format.printf "cost: %a (executed %d, dropped %d)@." Cost.pp r.cost
          r.executed r.dropped;
        if gantt then begin
          (* re-run recording the schedule (Solve does not record) *)
          let cfg = Engine.config ~n ~record_schedule:true () in
          match Solve.classify instance with
          | Solve.Direct ->
              let r = Engine.run cfg instance Lru_edf.policy in
              print_string
                (Rrs_trace.Schedule_io.render_gantt (Option.get r.schedule))
          | Solve.Distributed | Solve.Pipelined ->
              Format.printf
                "(gantt view is only available for rate-limited instances)@."
        end;
        0
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Load an instance from CSV and solve it with the right layer")
    Term.(const run $ file_arg $ resources_arg $ gantt_arg)

(* ------------------------------------------------------------------ *)

let main =
  let doc = "reconfigurable resource scheduling with variable delay bounds" in
  let info = Cmd.info "rrs" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      list_cmd;
      simulate_cmd;
      experiment_cmd;
      serve_cmd;
      status_cmd;
      benchdiff_cmd;
      opt_cmd;
      replay_cmd;
      describe_cmd;
    ]

let () =
  Printexc.record_backtrace true;
  exit (Cmd.eval' main)
