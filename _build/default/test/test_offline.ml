(* Tests for the exact offline optimum and the certified bounds. *)

open Rrs_core
module Rng = Rrs_prng.Rng

let arr round color count = { Types.round; color; count }

let mk ?(delta = 2) ~delay arrivals = Instance.create ~delta ~delay ~arrivals ()

let solve ?max_states i ~m =
  match Offline_opt.solve ?max_states i ~m with
  | Some v -> v
  | None -> Alcotest.fail "offline search exceeded its state budget"

let test_empty_instance () =
  let i = mk ~delay:[| 4 |] [] in
  Alcotest.(check int) "OPT of empty" 0 (solve i ~m:1)

let test_single_color_cache_or_drop () =
  (* 3 jobs, delta=2: caching costs 2, dropping costs 3 -> cache *)
  let i = mk ~delta:2 ~delay:[| 4 |] [ arr 0 0 3 ] in
  Alcotest.(check int) "caches" 2 (solve i ~m:1);
  (* 1 job, delta=2: dropping is cheaper *)
  let i2 = mk ~delta:2 ~delay:[| 4 |] [ arr 0 0 1 ] in
  Alcotest.(check int) "drops" 1 (solve i2 ~m:1)

let test_capacity_forces_drops () =
  (* 6 jobs, window 4, one resource: cache (2) + 2 drops = 4 *)
  let i = mk ~delta:2 ~delay:[| 4 |] [ arr 0 0 6 ] in
  Alcotest.(check int) "cache + drops" 4 (solve i ~m:1);
  (* with 2 resources all jobs fit: 2 configs (4) vs 4+... -> 4 *)
  Alcotest.(check int) "two resources" 4 (solve i ~m:2)

let test_two_colors_one_resource () =
  (* both colors have 3 jobs in disjoint windows: serve both with 2
     reconfigs (delta=1 -> cost 2) *)
  let i =
    Instance.create ~delta:1 ~delay:[| 4; 4 |]
      ~arrivals:[ arr 0 0 3; arr 4 1 3 ]
      ()
  in
  Alcotest.(check int) "serves both" 2 (solve i ~m:1)

let test_interleaved_colors () =
  (* delta high enough that thrashing is worse than dropping one color *)
  let i =
    Instance.create ~delta:4 ~delay:[| 2; 2 |]
      ~arrivals:
        [ arr 0 0 2; arr 0 1 2; arr 2 0 2; arr 2 1 2 ]
      ()
  in
  (* one resource: caching one color costs 4 and serves 4 jobs; the other
     4 jobs drop: total 8.  Caching both costs >= 8 with no drops.
     Dropping everything costs 8.  OPT = 8. *)
  Alcotest.(check int) "opt" 8 (solve i ~m:1)

let test_opt_within_bracket () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 15 do
    let num_colors = 1 + Rng.int rng 3 in
    let delta = 1 + Rng.int rng 2 in
    let delay = Array.init num_colors (fun _ -> 1 lsl Rng.int rng 3) in
    let arrivals =
      List.concat
        (List.init 4 (fun b ->
             List.filter_map
               (fun c ->
                 if Rng.bernoulli rng 0.5 then
                   Some (arr (b * 4) c (1 + Rng.int rng 3))
                 else None)
               (List.init num_colors Fun.id)))
    in
    let i = Instance.create ~delta ~delay ~arrivals () in
    let m = 1 + Rng.int rng 2 in
    let lower, upper = Offline_bounds.opt_bracket i ~m in
    match Offline_opt.solve ~max_states:500_000 i ~m with
    | None -> ()
    | Some opt ->
        if not (lower <= opt && opt <= upper) then
          Alcotest.failf "OPT %d outside bracket [%d, %d] on %s" opt lower
            upper
            (Format.asprintf "%a" Instance.pp_full i)
  done

let test_opt_monotone_in_resources () =
  let rng = Rng.create ~seed:17 in
  for _ = 1 to 10 do
    let delay = [| 2; 4 |] in
    let arrivals =
      List.concat
        (List.init 3 (fun b ->
             [ arr (b * 4) 0 (Rng.int rng 3); arr (b * 4) 1 (Rng.int rng 4) ]))
    in
    let i = Instance.create ~delta:2 ~delay ~arrivals () in
    let o1 = solve i ~m:1 in
    let o2 = solve i ~m:2 in
    if o2 > o1 then
      Alcotest.failf "OPT(2)=%d > OPT(1)=%d: more resources hurt" o2 o1
  done

let test_online_at_least_opt () =
  (* no online policy can beat OPT with the same resources *)
  let rng = Rng.create ~seed:23 in
  for _ = 1 to 10 do
    let delay = [| 2; 2 |] in
    let arrivals =
      List.concat
        (List.init 4 (fun b ->
             [ arr (b * 2) 0 (Rng.int rng 3); arr (b * 2) 1 (Rng.int rng 3) ]))
    in
    let i = Instance.create ~delta:2 ~delay ~arrivals () in
    let opt = solve i ~m:4 in
    List.iter
      (fun factory ->
        let r = Engine.run (Engine.config ~n:4 ()) i factory in
        if Cost.total r.cost < opt then
          Alcotest.failf "online %d < OPT %d" (Cost.total r.cost) opt)
      [ Lru_edf.policy; Delta_lru.policy; Edf_policy.policy ]
  done

(* An independent brute-force optimum: plain recursion over ALL cache
   assignments (every color, not just pending ones; no memoization, no
   multiset canonicalization).  Exponentially slower than Offline_opt,
   usable only on the tiniest instances — which is the point: agreement
   between two very different implementations. *)
let brute_force_opt (instance : Instance.t) ~m =
  let arrivals = Instance.arrivals_by_round instance in
  (* pending as per-color (deadline, count) lists, like the real one *)
  let rec tuples k colors =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> List.map (fun c -> c :: rest) colors)
        (tuples (k - 1) colors)
  in
  let all_caches =
    tuples m (Types.black :: List.init instance.num_colors Fun.id)
  in
  let rec go round cache pending =
    if round > instance.horizon then 0
    else begin
      let dropped = ref 0 in
      let pending =
        Array.map
          (List.filter (fun (deadline, count) ->
               if deadline <= round then begin
                 dropped := !dropped + count;
                 false
               end
               else true))
          pending
      in
      (if round < Array.length arrivals then arrivals.(round) else [])
      |> List.iter (fun (color, count) ->
             pending.(color) <-
               pending.(color) @ [ (round + instance.delay.(color), count) ]);
      let best = ref max_int in
      List.iter
        (fun choice ->
          let reconfig =
            instance.delta
            * List.length
                (List.filteri (fun i c -> List.nth cache i <> c) choice)
          in
          let after = Array.map (fun l -> l) (Array.copy pending) in
          List.iter
            (fun color ->
              if color >= 0 then
                match after.(color) with
                | (_, 1) :: rest -> after.(color) <- rest
                | (d, k) :: rest -> after.(color) <- (d, k - 1) :: rest
                | [] -> ())
            choice;
          let v = reconfig + go (round + 1) choice after in
          if v < !best then best := v)
        all_caches;
      !dropped + !best
    end
  in
  go 0 (List.init m (fun _ -> Types.black)) (Array.make instance.num_colors [])

let test_brute_force_agreement () =
  (* the memoized search and the naive enumeration agree exactly *)
  let rng = Rng.create ~seed:97 in
  for _ = 1 to 8 do
    let num_colors = 1 + Rng.int rng 2 in
    let delta = 1 + Rng.int rng 2 in
    let delay = Array.init num_colors (fun _ -> 1 lsl Rng.int rng 2) in
    let arrivals =
      List.concat
        (List.init 2 (fun b ->
             List.filter_map
               (fun c ->
                 if Rng.bernoulli rng 0.7 then
                   Some (arr (b * 4) c (1 + Rng.int rng 2))
                 else None)
               (List.init num_colors Fun.id)))
    in
    let i = Instance.create ~delta ~delay ~arrivals () in
    let fast = solve i ~m:1 in
    let brute = brute_force_opt i ~m:1 in
    if fast <> brute then
      Alcotest.failf "disagreement: memoized %d vs brute force %d on %s" fast
        brute
        (Format.asprintf "%a" Instance.pp_full i)
  done

let test_budget_exhaustion_returns_none () =
  let i =
    Instance.create ~delta:1 ~delay:[| 2; 2; 2; 2 |]
      ~arrivals:
        (List.concat
           (List.init 8 (fun b ->
                List.init 4 (fun c -> arr (b * 2) c 2))))
      ()
  in
  match Offline_opt.solve ~max_states:50 i ~m:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected budget exhaustion"

let test_bounds_basics () =
  let i = mk ~delta:3 ~delay:[| 4; 4 |] [ arr 0 0 5; arr 0 1 1 ] in
  (* per-color: min(3,5) + min(3,1) = 4 *)
  Alcotest.(check int) "per-color lb" 4 (Offline_bounds.per_color_lb i);
  (* Par-EDF with 2 resources executes everything (6 jobs, 4 rounds x 2) *)
  Alcotest.(check int) "par-edf lb" 0 (Offline_bounds.par_edf_drop_lb i ~m:2);
  Alcotest.(check int) "combined" 4 (Offline_bounds.lower_bound i ~m:2);
  let ub = Offline_bounds.static_upper_bound i ~m:2 in
  Alcotest.(check bool) "ub >= lb" true (ub >= 4)

let () =
  Alcotest.run "offline"
    [
      ( "exact OPT",
        [
          Alcotest.test_case "empty" `Quick test_empty_instance;
          Alcotest.test_case "cache or drop" `Quick
            test_single_color_cache_or_drop;
          Alcotest.test_case "capacity drops" `Quick test_capacity_forces_drops;
          Alcotest.test_case "two colors sequential" `Quick
            test_two_colors_one_resource;
          Alcotest.test_case "interleaved" `Quick test_interleaved_colors;
          Alcotest.test_case "budget exhaustion" `Quick
            test_budget_exhaustion_returns_none;
          Alcotest.test_case "brute-force agreement" `Slow
            test_brute_force_agreement;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "opt within bracket" `Slow test_opt_within_bracket;
          Alcotest.test_case "monotone in resources" `Slow
            test_opt_monotone_in_resources;
          Alcotest.test_case "online >= OPT" `Slow test_online_at_least_opt;
          Alcotest.test_case "bound basics" `Quick test_bounds_basics;
        ] );
    ]
