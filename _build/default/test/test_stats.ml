(* Tests for the statistics substrate. *)

module Running = Rrs_stats.Running
module Histogram = Rrs_stats.Histogram
module Summary = Rrs_stats.Summary
module Regression = Rrs_stats.Regression

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps
let check_f name ?eps expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6f ~ %.6f" name expected actual)
    true (feq ?eps expected actual)

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let test_running_empty () =
  let r = Running.create () in
  Alcotest.(check int) "count" 0 (Running.count r);
  check_f "mean" 0.0 (Running.mean r);
  check_f "variance" 0.0 (Running.variance r);
  Alcotest.(check bool) "min" true (Running.min r = infinity);
  Alcotest.(check bool) "max" true (Running.max r = neg_infinity)

let test_running_known () =
  let r = Running.create () in
  List.iter (Running.add r) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Running.count r);
  check_f "mean" 5.0 (Running.mean r);
  (* sample variance of this classic dataset: 32/7 *)
  check_f "variance" (32.0 /. 7.0) (Running.variance r);
  check_f "min" 2.0 (Running.min r);
  check_f "max" 9.0 (Running.max r);
  check_f "sum" 40.0 (Running.sum r)

let test_running_single () =
  let r = Running.create () in
  Running.add_int r 5;
  check_f "mean" 5.0 (Running.mean r);
  check_f "variance (n<2)" 0.0 (Running.variance r)

let test_running_merge () =
  let xs = List.init 50 (fun i -> float_of_int (i * i) /. 7.0) in
  let a = Running.create () and b = Running.create () and whole = Running.create () in
  List.iteri
    (fun i x ->
      Running.add whole x;
      if i < 20 then Running.add a x else Running.add b x)
    xs;
  let merged = Running.merge a b in
  Alcotest.(check int) "count" (Running.count whole) (Running.count merged);
  check_f ~eps:1e-6 "mean" (Running.mean whole) (Running.mean merged);
  check_f ~eps:1e-6 "variance" (Running.variance whole) (Running.variance merged);
  check_f "min" (Running.min whole) (Running.min merged);
  check_f "max" (Running.max whole) (Running.max merged)

let test_running_merge_empty () =
  let a = Running.create () in
  Running.add a 3.0;
  let merged = Running.merge a (Running.create ()) in
  check_f "merge with empty" 3.0 (Running.mean merged);
  let merged' = Running.merge (Running.create ()) a in
  check_f "empty with merge" 3.0 (Running.mean merged')

let prop_welford_matches_naive =
  QCheck.Test.make ~count:200 ~name:"Welford matches two-pass variance"
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let r = Running.create () in
      List.iter (Running.add r) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      feq ~eps:1e-6 (Running.mean r) mean
      && feq ~eps:1e-6 (Running.variance r) var)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_basics () =
  let h = Histogram.create ~max_value:10 in
  List.iter (Histogram.add h) [ 1; 2; 2; 3; 3; 3; 10 ];
  Alcotest.(check int) "count" 7 (Histogram.count h);
  Alcotest.(check int) "count_at 3" 3 (Histogram.count_at h 3);
  Alcotest.(check int) "count_le 2" 3 (Histogram.count_le h 2);
  Alcotest.(check int) "median" 3 (Histogram.median h);
  Alcotest.(check int) "q0 is min" 1 (Histogram.quantile h 0.0);
  Alcotest.(check int) "q1 is max" 10 (Histogram.quantile h 1.0);
  Alcotest.(check (list (pair int int)))
    "assoc"
    [ (1, 1); (2, 2); (3, 3); (10, 1) ]
    (Histogram.to_assoc h)

let test_histogram_clamping () =
  let h = Histogram.create ~max_value:5 in
  Histogram.add h 99;
  Histogram.add h (-2);
  Alcotest.(check int) "clamped" 2 (Histogram.clamped h);
  Alcotest.(check int) "top bucket" 1 (Histogram.count_at h 5);
  Alcotest.(check int) "bottom bucket" 1 (Histogram.count_at h 0)

let test_histogram_empty () =
  let h = Histogram.create ~max_value:4 in
  Alcotest.check_raises "quantile empty" Not_found (fun () ->
      ignore (Histogram.median h))

let test_histogram_add_many () =
  let h = Histogram.create ~max_value:4 in
  Histogram.add_many h 2 10;
  Alcotest.(check int) "bulk" 10 (Histogram.count_at h 2);
  Histogram.add_many h 3 0;
  Alcotest.(check int) "zero bulk" 10 (Histogram.count h)

let prop_histogram_quantile =
  QCheck.Test.make ~count:200 ~name:"histogram quantile = sorted list rank"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 100) (int_bound 50))
        (float_range 0.01 1.0))
    (fun (xs, q) ->
      let h = Histogram.create ~max_value:50 in
      List.iter (Histogram.add h) xs;
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      Histogram.quantile h q = List.nth sorted (rank - 1))

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_known () =
  let s = Summary.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check int) "count" 5 s.count;
  check_f "mean" 3.0 s.mean;
  check_f "median" 3.0 s.median;
  check_f "min" 1.0 s.min;
  check_f "max" 5.0 s.max;
  check_f "p25" 2.0 s.p25;
  check_f "p75" 4.0 s.p75

let test_summary_interpolation () =
  check_f "interpolated"
    1.5
    (Summary.percentile [| 1.0; 2.0 |] 0.5);
  check_f "single" 7.0 (Summary.percentile [| 7.0 |] 0.9)

let test_summary_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array") (fun () ->
      ignore (Summary.of_array [||]))

let test_geometric_mean () =
  check_f "geomean" 2.0 (Summary.geometric_mean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Summary.geometric_mean") (fun () ->
      ignore (Summary.geometric_mean [ 1.0; 0.0 ]))

(* ------------------------------------------------------------------ *)
(* Regression                                                          *)
(* ------------------------------------------------------------------ *)

let test_linear_exact () =
  let points = List.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 2.0)) in
  let fit = Regression.linear points in
  check_f "slope" 3.0 fit.slope;
  check_f "intercept" 2.0 fit.intercept;
  check_f "r2" 1.0 fit.r2

let test_log_linear () =
  (* y = 5 * e^(0.7 x) *)
  let points =
    List.init 8 (fun i ->
        let x = float_of_int i in
        (x, 5.0 *. exp (0.7 *. x)))
  in
  let fit = Regression.log_linear points in
  check_f ~eps:1e-6 "slope" 0.7 fit.slope;
  check_f ~eps:1e-6 "intercept" (log 5.0) fit.intercept

let test_doubling_slope () =
  (* y doubles per unit x *)
  let points = List.init 6 (fun i -> (float_of_int i, 2.0 ** float_of_int i)) in
  check_f ~eps:1e-6 "doubling slope" 1.0 (Regression.doubling_slope points)

let test_regression_errors () =
  Alcotest.check_raises "too few" (Invalid_argument "Regression.linear")
    (fun () -> ignore (Regression.linear [ (1.0, 1.0) ]));
  Alcotest.check_raises "degenerate x"
    (Invalid_argument "Regression.linear: degenerate x") (fun () ->
      ignore (Regression.linear [ (1.0, 1.0); (1.0, 2.0) ]));
  Alcotest.check_raises "log of nonpositive"
    (Invalid_argument "Regression.log_linear") (fun () ->
      ignore (Regression.log_linear [ (1.0, 1.0); (2.0, -3.0) ]))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "running",
        [
          Alcotest.test_case "empty" `Quick test_running_empty;
          Alcotest.test_case "known dataset" `Quick test_running_known;
          Alcotest.test_case "single" `Quick test_running_single;
          Alcotest.test_case "merge" `Quick test_running_merge;
          Alcotest.test_case "merge empty" `Quick test_running_merge_empty;
          q prop_welford_matches_naive;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "clamping" `Quick test_histogram_clamping;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "add_many" `Quick test_histogram_add_many;
          q prop_histogram_quantile;
        ] );
      ( "summary",
        [
          Alcotest.test_case "known" `Quick test_summary_known;
          Alcotest.test_case "interpolation" `Quick test_summary_interpolation;
          Alcotest.test_case "errors" `Quick test_summary_errors;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        ] );
      ( "regression",
        [
          Alcotest.test_case "linear exact" `Quick test_linear_exact;
          Alcotest.test_case "log-linear" `Quick test_log_linear;
          Alcotest.test_case "doubling slope" `Quick test_doubling_slope;
          Alcotest.test_case "errors" `Quick test_regression_errors;
        ] );
    ]
