(* Tests for the Aggregate transformation (paper Section 4.3 / Lemma
   4.1): for feasible offline schedules T of batched instances, the
   transformed schedule T' must be feasible for the distributed
   sub-instance with 3x resources, execute exactly as many jobs, and pay
   a bounded multiple of T's reconfiguration cost. *)

open Rrs_core
module Synthetic = Rrs_workload.Synthetic
module Rng = Rrs_prng.Rng

let arr round color count = { Types.round; color; count }

let record ~n instance factory =
  let cfg = Engine.config ~n ~record_schedule:true () in
  Engine.run cfg instance factory

let test_single_mono_resource () =
  (* one color, batch within D: one static resource is monochromatic;
     the transform must produce the same executions on triple head 0 *)
  let i = Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 0 0 3 ] () in
  let mapping = Distribute.transform i in
  let t = Option.get (record ~n:1 i (Static_policy.static [ 0 ])).schedule in
  match Aggregate.verify i ~mapping t with
  | Error msg -> Alcotest.fail msg
  | Ok (t', report) ->
      Alcotest.(check int) "3x resources" 3 t'.Schedule.n;
      Alcotest.(check int) "same executions" (Schedule.execute_count t)
        report.executed;
      Alcotest.(check int) "one reconfiguration" 1
        (Schedule.reconfig_count t')

let test_oversized_batch_uses_two_subcolors () =
  (* batch of 6 with D=4 splits into subcolors of 4 and 2; T with two
     static resources executes all 6, so T' must use both subcolors *)
  let i = Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 0 0 6 ] () in
  let mapping = Distribute.transform i in
  let t = Option.get (record ~n:2 i (Static_policy.static [ 0; 0 ])).schedule in
  Alcotest.(check int) "T executes 6" 6 (Schedule.execute_count t);
  match Aggregate.verify i ~mapping t with
  | Error msg -> Alcotest.fail msg
  | Ok (t', report) ->
      Alcotest.(check int) "T' executes 6" 6 report.executed;
      (* both subcolors appear in the executions *)
      let subcolors = Hashtbl.create 4 in
      Array.iter
        (fun (_, e) ->
          match e with
          | Schedule.Execute { color; _ } -> Hashtbl.replace subcolors color ()
          | _ -> ())
        t'.Schedule.events;
      Alcotest.(check int) "two subcolors" 2 (Hashtbl.length subcolors)

let test_label_persistence_avoids_reconfigs () =
  (* a static resource serving the same color across many blocks must
     keep one subcolor stream: exactly one reconfiguration in T' *)
  let i =
    Instance.create ~delta:1 ~delay:[| 4 |]
      ~arrivals:(List.init 8 (fun b -> arr (4 * b) 0 3))
      ()
  in
  let mapping = Distribute.transform i in
  let t = Option.get (record ~n:1 i (Static_policy.static [ 0 ])).schedule in
  match Aggregate.verify i ~mapping t with
  | Error msg -> Alcotest.fail msg
  | Ok (t', _) ->
      Alcotest.(check int) "single stream, single reconfig" 1
        (Schedule.reconfig_count t')

let test_rejects_bad_inputs () =
  let unbatched =
    Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 1 0 1 ] ()
  in
  let batched =
    Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 0 0 1 ] ()
  in
  let mapping = Distribute.transform batched in
  let t = Option.get (record ~n:1 batched (Static_policy.static [ 0 ])).schedule in
  (match Aggregate.transform unbatched ~mapping t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unbatched accepted");
  let odd = Instance.create ~delta:1 ~delay:[| 6 |] ~arrivals:[ arr 0 0 1 ] () in
  (match Aggregate.transform odd ~mapping t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-pow2 accepted");
  let ds = { t with Schedule.mini_rounds = 2 } in
  match Aggregate.transform batched ~mapping ds with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double-speed accepted"

(* property-style sweep over generated batched instances and several
   offline schedules *)
let offline_schedules instance ~m =
  [
    ("static", Static_policy.static (List.init (min m instance.Instance.num_colors) Fun.id));
    ("interval-8", Offline_heuristics.interval_plan instance ~m ~window:8);
    ("interval-32", Offline_heuristics.interval_plan instance ~m ~window:32);
  ]

let test_online_schedule_as_input () =
  (* any feasible schedule is a valid input — including churny online
     ones, which stress the monochromatic/multichromatic classification
     far harder than piecewise-static plans *)
  let rng = Rng.create ~seed:66 in
  for _ = 1 to 4 do
    let instance =
      Synthetic.batched_oversized (Rng.split rng)
        { Synthetic.default_batched with num_colors = 6; load = 1.4; horizon = 128 }
    in
    let mapping = Distribute.transform instance in
    List.iter
      (fun (name, policy) ->
        let result = record ~n:4 instance policy in
        let t = Option.get result.schedule in
        match Aggregate.verify instance ~mapping t with
        | Error msg -> Alcotest.failf "%s input: %s" name msg
        | Ok (_, report) ->
            Alcotest.(check int)
              (name ^ ": executions preserved")
              result.executed report.executed)
      [
        ("lru-edf", Lru_edf.policy);
        ("edf", Edf_policy.policy);
        ("greedy", Naive_policies.greedy_backlog);
      ]
  done

let test_lemma_4_1_shape () =
  let rng = Rng.create ~seed:55 in
  let checked = ref 0 in
  for _ = 1 to 6 do
    let instance =
      Synthetic.batched_oversized (Rng.split rng)
        {
          Synthetic.default_batched with
          num_colors = 5;
          load = 1.6;
          horizon = 128;
        }
    in
    let mapping = Distribute.transform instance in
    let m = 3 in
    List.iter
      (fun (name, policy) ->
        incr checked;
        let result = record ~n:m instance policy in
        let t = Option.get result.schedule in
        match Aggregate.verify instance ~mapping t with
        | Error msg -> Alcotest.failf "%s: %s" name msg
        | Ok (t', report) ->
            (* Lemma 4.5: same drop cost <=> same executions *)
            Alcotest.(check int)
              (name ^ ": executions preserved")
              result.executed report.executed;
            (* Lemma 4.6 shape: reconfiguration cost within a constant
               factor (the paper's constants sum to < 10; allow slack,
               plus the warm-up term for initially coloring resources) *)
            let in_cost = max 1 (Schedule.reconfig_count t) in
            let out_cost = Schedule.reconfig_count t' in
            if out_cost > (10 * in_cost) + (3 * m) then
              Alcotest.failf "%s: reconfigs %d vs input %d - unbounded?" name
                out_cost in_cost)
      (offline_schedules instance ~m)
  done;
  Alcotest.(check bool) "checked some" true (!checked > 0)

let test_transform_of_rate_limited_is_cheap () =
  (* when batches already fit in D, the sub-instance equals the original
     (one subcolor per color) and T' mirrors T *)
  let i =
    Instance.create ~delta:1 ~delay:[| 2; 4 |]
      ~arrivals:[ arr 0 0 2; arr 0 1 3; arr 4 1 2 ]
      ()
  in
  let mapping = Distribute.transform i in
  let t = Option.get (record ~n:2 i (Static_policy.static [ 0; 1 ])).schedule in
  match Aggregate.verify i ~mapping t with
  | Error msg -> Alcotest.fail msg
  | Ok (_, report) ->
      Alcotest.(check int) "executions preserved" (Schedule.execute_count t)
        report.executed

let () =
  Alcotest.run "aggregate"
    [
      ( "unit",
        [
          Alcotest.test_case "single mono resource" `Quick
            test_single_mono_resource;
          Alcotest.test_case "oversized batch" `Quick
            test_oversized_batch_uses_two_subcolors;
          Alcotest.test_case "label persistence" `Quick
            test_label_persistence_avoids_reconfigs;
          Alcotest.test_case "input validation" `Quick test_rejects_bad_inputs;
        ] );
      ( "lemma 4.1",
        [
          Alcotest.test_case "shape sweep" `Slow test_lemma_4_1_shape;
          Alcotest.test_case "online schedules as input" `Slow
            test_online_schedule_as_input;
          Alcotest.test_case "rate-limited passthrough" `Quick
            test_transform_of_rate_limited_is_cheap;
        ] );
    ]
