test/test_paper_lemmas.ml: Alcotest Array Cost Edf_policy Eligibility Engine Instance Instance_ops List Lru_edf Offline_bounds Par_edf Printf Rrs_core Rrs_prng Rrs_workload Static_policy Types
