test/test_schedule_io.ml: Alcotest Array Engine Instance List Option Rrs_core Rrs_trace Schedule Static_policy String Types
