test/test_aggregate.mli:
