test/test_schedule.ml: Alcotest Array Cost Engine Format Instance List Option Rrs_core Schedule Static_policy String Types
