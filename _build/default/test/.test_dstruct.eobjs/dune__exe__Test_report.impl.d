test/test_report.ml: Alcotest List Rrs_report String
