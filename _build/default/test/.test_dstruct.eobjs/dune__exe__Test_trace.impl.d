test/test_trace.ml: Alcotest Array Edf_policy Engine Filename Fun Instance List QCheck QCheck_alcotest Result Rrs_core Rrs_trace Rrs_workload Static_policy Sys Types
