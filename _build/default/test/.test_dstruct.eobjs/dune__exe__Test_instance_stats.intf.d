test/test_instance_stats.mli:
