test/test_validator.ml: Alcotest Array Cost Engine Instance List Option Rrs_core Schedule Static_policy Types Validator
