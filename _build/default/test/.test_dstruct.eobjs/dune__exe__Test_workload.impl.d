test/test_workload.ml: Alcotest Array Distribute Engine Fun Instance List Lru_edf Option Printf Rrs_core Rrs_prng Rrs_workload Types Var_batch
