test/test_solve.mli:
