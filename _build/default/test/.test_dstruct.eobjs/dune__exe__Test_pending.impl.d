test/test_pending.ml: Alcotest Array List Pending QCheck QCheck_alcotest Rrs_core Test
