test/test_ranking.mli:
