test/test_punctual.mli:
