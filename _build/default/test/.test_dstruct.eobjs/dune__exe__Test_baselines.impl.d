test/test_baselines.ml: Alcotest Array Delta_lru Engine Instance List Lru_edf Naive_policies Par_edf Printf Result Rrs_core Rrs_prng Rrs_workload Types
