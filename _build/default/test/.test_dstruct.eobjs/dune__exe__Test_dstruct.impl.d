test/test_dstruct.ml: Alcotest Array Fun Hashtbl List QCheck QCheck_alcotest Rrs_dstruct Stdlib Test
