test/test_instance_ops.mli:
