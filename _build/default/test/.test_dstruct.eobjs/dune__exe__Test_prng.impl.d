test/test_prng.ml: Alcotest Array Fun List Printf Rrs_prng
