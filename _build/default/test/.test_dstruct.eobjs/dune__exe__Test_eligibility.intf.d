test/test_eligibility.mli:
