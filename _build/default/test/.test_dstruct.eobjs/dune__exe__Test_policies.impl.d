test/test_policies.ml: Alcotest Array Delta_lru Edf_policy Engine Fun Hashtbl Instance List Lru_edf Option Policy Rrs_core Types
