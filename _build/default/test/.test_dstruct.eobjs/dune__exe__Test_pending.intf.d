test/test_pending.mli:
