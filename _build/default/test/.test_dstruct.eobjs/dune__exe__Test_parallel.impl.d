test/test_parallel.ml: Alcotest Cost Engine Fun List Lru_edf Rrs_core Rrs_parallel Rrs_workload
