test/test_instance.ml: Alcotest Array Instance List QCheck QCheck_alcotest Rrs_core Types
