test/test_ablation.ml: Alcotest Array Cost Delta_lru Edf_policy Engine Instance List Lru_edf Rrs_core Rrs_workload Types
