test/test_ranking.ml: Alcotest Array Cache_state Eligibility Fun Gen Instance List Pending Policy QCheck QCheck_alcotest Ranking Rrs_core Test Types
