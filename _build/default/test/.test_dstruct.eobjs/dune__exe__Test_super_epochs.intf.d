test/test_super_epochs.mli:
