test/test_adversarial.ml: Alcotest Array Cost Delta_lru Edf_policy Engine Instance Lru_edf Printf Result Rrs_core Rrs_workload
