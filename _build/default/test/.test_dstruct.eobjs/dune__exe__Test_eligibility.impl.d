test/test_eligibility.ml: Alcotest Array Eligibility Engine Instance List Option Policy Rrs_core Types
