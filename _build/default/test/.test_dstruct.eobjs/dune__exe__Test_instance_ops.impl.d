test/test_instance_ops.ml: Alcotest Array Delta_lru Engine Instance Instance_ops Printf QCheck QCheck_alcotest Rrs_core Rrs_prng Rrs_workload Types
