test/test_experiments.ml: Alcotest List Option Rrs_experiments Rrs_report String
