test/test_solve.ml: Alcotest Cost Engine Instance List Lru_edf Rrs_core Rrs_prng Rrs_workload Solve Types Var_batch
