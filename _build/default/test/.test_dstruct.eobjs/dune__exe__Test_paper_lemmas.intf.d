test/test_paper_lemmas.mli:
