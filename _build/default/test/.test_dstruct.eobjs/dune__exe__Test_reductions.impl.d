test/test_reductions.ml: Alcotest Array Cost Distribute Engine Format Instance List Lru_edf Option Printf QCheck QCheck_alcotest Rrs_core Rrs_prng Rrs_workload Types Validator Var_batch
