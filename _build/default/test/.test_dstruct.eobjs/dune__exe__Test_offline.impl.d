test/test_offline.ml: Alcotest Array Cost Delta_lru Edf_policy Engine Format Fun Instance List Lru_edf Offline_bounds Offline_opt Rrs_core Rrs_prng Types
