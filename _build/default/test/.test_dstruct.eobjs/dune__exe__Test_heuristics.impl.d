test/test_heuristics.ml: Alcotest Engine Instance List Offline_bounds Offline_heuristics Offline_opt Option Policy Printf Rrs_core Rrs_prng Rrs_workload Types Validator
