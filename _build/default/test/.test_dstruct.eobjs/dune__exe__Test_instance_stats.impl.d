test/test_instance_stats.ml: Alcotest Format Instance Instance_stats List Option Par_edf Rrs_core Rrs_workload String Types
