test/test_super_epochs.ml: Alcotest Eligibility Engine Instance List Lru_edf Offline_opt Rrs_core Rrs_prng Rrs_workload Super_epochs Types
