(* Tests for instance construction, normalisation and classification. *)

open Rrs_core

let arr round color count = { Types.round; color; count }

let mk ?(delta = 2) ?(delay = [| 4; 2 |]) arrivals =
  Instance.create ~delta ~delay ~arrivals ()

let test_normalisation () =
  let i =
    mk [ arr 4 0 1; arr 0 1 2; arr 0 1 3; arr 2 0 0; arr 0 0 1 ]
  in
  (* zero counts dropped, duplicates merged, sorted *)
  Alcotest.(check int) "batches" 3 (Array.length i.arrivals);
  Alcotest.(check int) "merged count" 5 i.arrivals.(1).count;
  Alcotest.(check int) "total" 7 (Instance.total_jobs i);
  Alcotest.(check bool) "sorted" true
    (i.arrivals.(0).round <= i.arrivals.(1).round
    && (i.arrivals.(0).round, i.arrivals.(0).color)
       <= (i.arrivals.(1).round, i.arrivals.(1).color))

let test_horizon () =
  let i = mk [ arr 0 0 1; arr 6 1 1 ] in
  (* color 0 deadline 0+4, color 1 deadline 6+2 *)
  Alcotest.(check int) "horizon" 8 i.horizon;
  let empty = mk [] in
  Alcotest.(check int) "empty horizon" 0 empty.horizon

let test_validation_errors () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "delta" (fun () ->
      Instance.create ~delta:0 ~delay:[| 1 |] ~arrivals:[] ());
  expect_invalid "delay" (fun () ->
      Instance.create ~delta:1 ~delay:[| 0 |] ~arrivals:[] ());
  expect_invalid "negative round" (fun () -> mk [ arr (-1) 0 1 ]);
  expect_invalid "color range" (fun () -> mk [ arr 0 2 1 ]);
  expect_invalid "negative count" (fun () -> mk [ arr 0 0 (-1) ])

let test_per_color () =
  let i = mk [ arr 0 0 3; arr 4 0 2; arr 0 1 1 ] in
  Alcotest.(check (list int)) "per color" [ 5; 1 ]
    (Array.to_list (Instance.jobs_per_color i));
  Alcotest.(check int) "of color" 5 (Instance.jobs_of_color i 0);
  Alcotest.(check int) "max delay" 4 (Instance.max_delay i);
  Alcotest.(check int) "last arrival" 4 (Instance.last_arrival_round i);
  Alcotest.(check int) "no arrivals" (-1) (Instance.last_arrival_round (mk []))

let test_batched_classification () =
  (* color 0 has D=4: arrivals at 0, 4, 8 are batched *)
  let batched = mk [ arr 0 0 2; arr 4 0 4; arr 8 1 1 ] in
  Alcotest.(check bool) "batched" true (Instance.is_batched batched);
  Alcotest.(check bool) "rate-limited" true (Instance.is_rate_limited batched);
  let oversize = mk [ arr 0 0 5 ] in
  Alcotest.(check bool) "oversized batch is batched" true
    (Instance.is_batched oversize);
  Alcotest.(check bool) "oversized not rate-limited" false
    (Instance.is_rate_limited oversize);
  let unaligned = mk [ arr 3 0 1 ] in
  Alcotest.(check bool) "unaligned not batched" false
    (Instance.is_batched unaligned);
  (* merging across duplicate entries can push a batch over D *)
  let merged_oversize = mk [ arr 0 1 1; arr 0 1 1; arr 0 1 1 ] in
  Alcotest.(check bool) "merged oversize detected" false
    (Instance.is_rate_limited merged_oversize)

let test_power_of_two () =
  Alcotest.(check bool) "4,2 are powers" true
    (Instance.delays_are_powers_of_two (mk []));
  let i = Instance.create ~delta:1 ~delay:[| 3 |] ~arrivals:[] () in
  Alcotest.(check bool) "3 is not" false (Instance.delays_are_powers_of_two i)

let test_arrivals_by_round () =
  let i = mk [ arr 0 0 1; arr 0 1 2; arr 4 0 3 ] in
  let by_round = Instance.arrivals_by_round i in
  Alcotest.(check int) "length" (i.horizon + 1) (Array.length by_round);
  Alcotest.(check (list (pair int int))) "round 0 in color order"
    [ (0, 1); (1, 2) ]
    by_round.(0);
  Alcotest.(check (list (pair int int))) "round 4" [ (0, 3) ] by_round.(4);
  Alcotest.(check (list (pair int int))) "empty round" [] by_round.(1)

let test_pow2_helpers () =
  Alcotest.(check bool) "1" true (Types.is_power_of_two 1);
  Alcotest.(check bool) "6" false (Types.is_power_of_two 6);
  Alcotest.(check bool) "0" false (Types.is_power_of_two 0);
  Alcotest.(check bool) "-4" false (Types.is_power_of_two (-4));
  Alcotest.(check int) "floor 9" 8 (Types.floor_pow2 9);
  Alcotest.(check int) "floor 8" 8 (Types.floor_pow2 8);
  Alcotest.(check int) "ceil 9" 16 (Types.ceil_pow2 9);
  Alcotest.(check int) "ceil 1" 1 (Types.ceil_pow2 1);
  Alcotest.check_raises "floor 0" (Invalid_argument "Types.floor_pow2")
    (fun () -> ignore (Types.floor_pow2 0))

let prop_normalise_preserves_jobs =
  QCheck.Test.make ~count:200 ~name:"normalisation preserves total job count"
    QCheck.(list (tup3 (int_bound 20) (int_bound 1) (int_bound 5)))
    (fun triples ->
      let arrivals = List.map (fun (r, c, n) -> arr r c n) triples in
      let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 triples in
      Instance.total_jobs (mk arrivals) = total)

let () =
  Alcotest.run "instance"
    [
      ( "construction",
        [
          Alcotest.test_case "normalisation" `Quick test_normalisation;
          Alcotest.test_case "horizon" `Quick test_horizon;
          Alcotest.test_case "validation" `Quick test_validation_errors;
          Alcotest.test_case "per-color stats" `Quick test_per_color;
        ] );
      ( "classification",
        [
          Alcotest.test_case "batched/rate-limited" `Quick
            test_batched_classification;
          Alcotest.test_case "powers of two" `Quick test_power_of_two;
          Alcotest.test_case "arrivals_by_round" `Quick test_arrivals_by_round;
          Alcotest.test_case "pow2 helpers" `Quick test_pow2_helpers;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_normalise_preserves_jobs ] );
    ]
