(* Tests for the domain pool, including running real engine sweeps in
   parallel and checking bit-identical results against sequential runs. *)

open Rrs_core
module Pool = Rrs_parallel.Pool
module Families = Rrs_workload.Families

let test_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "order preserved" (List.map f xs)
    (Pool.map ~domains:4 f xs);
  Alcotest.(check (list int)) "single domain" (List.map f xs)
    (Pool.map ~domains:1 f xs);
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 f []);
  Alcotest.(check (list int)) "short list" [ 1 ] (Pool.map ~domains:8 f [ 0 ])

let test_exceptions_propagate () =
  match
    Pool.map ~domains:3
      (fun x -> if x = 5 then failwith "boom" else x)
      (List.init 10 Fun.id)
  with
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "exception swallowed"

let test_domains_validation () =
  match Pool.map ~domains:0 Fun.id [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains = 0 accepted"

let test_run_both () =
  let a, b = Pool.run_both (fun () -> 6 * 7) (fun () -> "ok") in
  Alcotest.(check int) "first" 42 a;
  Alcotest.(check string) "second" "ok" b

let test_parallel_engine_runs_deterministic () =
  (* the real use: run (family, seed) sweeps on several domains and
     compare with the sequential costs *)
  let tasks =
    List.concat_map
      (fun (f : Families.family) ->
        if f.layer = Families.Rate_limited then
          List.map (fun seed -> (f, seed)) [ 1; 2 ]
        else [])
      Families.all
  in
  let run ((f : Families.family), seed) =
    let instance = f.build ~seed in
    let r = Engine.run (Engine.config ~n:8 ()) instance Lru_edf.policy in
    (f.id, seed, Cost.total r.cost, r.executed)
  in
  let sequential = List.map run tasks in
  let parallel = Pool.map ~domains:4 run tasks in
  Alcotest.(check bool) "identical results" true (sequential = parallel)

let test_num_domains_positive () =
  Alcotest.(check bool) "at least one" true (Pool.num_domains () >= 1)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map = sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "exceptions" `Quick test_exceptions_propagate;
          Alcotest.test_case "validation" `Quick test_domains_validation;
          Alcotest.test_case "run_both" `Quick test_run_both;
          Alcotest.test_case "num_domains" `Quick test_num_domains_positive;
        ] );
      ( "integration",
        [
          Alcotest.test_case "parallel engine sweep" `Slow
            test_parallel_engine_runs_deterministic;
        ] );
    ]
