(* Tests for the table renderer. *)

module Table = Rrs_report.Table

let test_alignment () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "23" ];
  let s = Table.to_string t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: sep :: _ ->
      Alcotest.(check int) "separator as wide as header" (String.length header)
        (String.length sep)
  | _ -> Alcotest.fail "too few lines");
  (* numeric column is right-aligned: " 1" under "23" *)
  Alcotest.(check bool) "right-aligned numbers" true
    (List.exists (fun l -> String.length l >= 2 && String.sub l (String.length l - 2) 2 = " 1") lines)

let test_arity_checked () =
  let t = Table.create ~columns:[ "a"; "b" ] in
  (match Table.add_row t [ "only one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong arity accepted");
  match Table.create ~columns:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty columns accepted"

let test_row_order_preserved () =
  let t = Table.create ~columns:[ "x" ] in
  List.iter (fun v -> Table.add_row t [ v ]) [ "first"; "second"; "third" ];
  Alcotest.(check int) "row count" 3 (Table.row_count t);
  let s = Table.to_string t in
  let pos needle =
    let rec find i =
      if i + String.length needle > String.length s then -1
      else if String.sub s i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "order" true (pos "first" < pos "second" && pos "second" < pos "third")

let test_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "inf" "inf" (Table.cell_float infinity);
  Alcotest.(check string) "cost" "7 (4+3)" (Table.cell_cost ~reconfig:4 ~drop:3)

let test_markdown () =
  let t = Table.create ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  let md = Table.to_markdown t in
  Alcotest.(check bool) "header row" true
    (String.length md > 0 && String.sub md 0 1 = "|");
  Alcotest.(check bool) "separator" true
    (String.length md > 0
    &&
    match String.split_on_char '\n' md with
    | _ :: sep :: _ -> sep = "| --- | --- |"
    | _ -> false)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "arity" `Quick test_arity_checked;
          Alcotest.test_case "row order" `Quick test_row_order_preserved;
          Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "markdown" `Quick test_markdown;
        ] );
    ]
