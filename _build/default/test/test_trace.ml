(* Tests for the trace substrate: CSV, instance interchange, metrics. *)

open Rrs_core
module Csv = Rrs_trace.Csv
module Instance_io = Rrs_trace.Instance_io
module Metrics = Rrs_trace.Metrics
module Families = Rrs_workload.Families

let arr round color count = { Types.round; color; count }

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_field "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape_field "a\nb")

let test_csv_parse_simple () =
  Alcotest.(check (list (list string)))
    "two rows"
    [ [ "a"; "b" ]; [ "1"; "2" ] ]
    (Csv.parse_exn "a,b\n1,2\n");
  Alcotest.(check (list (list string)))
    "no trailing newline"
    [ [ "a"; "b" ] ]
    (Csv.parse_exn "a,b");
  Alcotest.(check (list (list string)))
    "blank lines skipped"
    [ [ "a" ]; [ "b" ] ]
    (Csv.parse_exn "a\n\nb\n");
  Alcotest.(check (list (list string)))
    "crlf" [ [ "a"; "b" ] ] (Csv.parse_exn "a,b\r\n")

let test_csv_parse_quoted () =
  Alcotest.(check (list (list string)))
    "quoted comma"
    [ [ "a,b"; "c" ] ]
    (Csv.parse_exn "\"a,b\",c\n");
  Alcotest.(check (list (list string)))
    "escaped quote"
    [ [ "say \"hi\"" ] ]
    (Csv.parse_exn "\"say \"\"hi\"\"\"\n");
  Alcotest.(check (list (list string)))
    "embedded newline"
    [ [ "a\nb" ] ]
    (Csv.parse_exn "\"a\nb\"\n")

let test_csv_parse_errors () =
  Alcotest.(check bool) "unterminated" true
    (Result.is_error (Csv.parse "\"abc"));
  Alcotest.(check bool) "stray quote" true (Result.is_error (Csv.parse "ab\"c"));
  Alcotest.(check bool) "garbage after quote" true
    (Result.is_error (Csv.parse "\"a\"b"))

let prop_csv_roundtrip =
  let field =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; '\n'; 'x'; ' ' ]) (int_range 0 8))
  in
  QCheck.Test.make ~count:300 ~name:"csv render/parse round-trips"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 5) (list_size (int_range 1 4) field)))
    (fun rows ->
      (* rows whose fields are all empty render as blank lines, which the
         parser deliberately skips; normalise the expectation *)
      let expected = List.filter (fun row -> row <> [ "" ]) rows in
      match Csv.parse (Csv.render rows) with
      | Ok parsed -> parsed = expected
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Instance interchange                                                *)
(* ------------------------------------------------------------------ *)

let test_instance_roundtrip () =
  let original =
    Instance.create ~name:"io-test" ~delta:3 ~delay:[| 4; 2; 8 |]
      ~arrivals:[ arr 0 0 3; arr 2 1 5; arr 8 2 1 ]
      ()
  in
  match Instance_io.of_csv (Instance_io.to_csv original) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok loaded ->
      Alcotest.(check string) "name" original.name loaded.name;
      Alcotest.(check int) "delta" original.delta loaded.delta;
      Alcotest.(check (list int)) "delays" (Array.to_list original.delay)
        (Array.to_list loaded.delay);
      Alcotest.(check bool) "arrivals" true
        (original.arrivals = loaded.arrivals)

let test_instance_roundtrip_families () =
  List.iter
    (fun (f : Families.family) ->
      let original = f.build ~seed:3 in
      match Instance_io.of_csv (Instance_io.to_csv original) with
      | Error msg -> Alcotest.failf "%s: %s" f.id msg
      | Ok loaded ->
          if original.arrivals <> loaded.arrivals then
            Alcotest.failf "%s: arrivals changed" f.id)
    Families.all

let test_instance_io_errors () =
  let check_err name doc =
    match Instance_io.of_csv doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" name
  in
  check_err "missing delta" "delay,0,4\n";
  check_err "bad int" "meta,delta,four\ndelay,0,4\n";
  check_err "gap in colors" "meta,delta,2\ndelay,0,4\ndelay,2,4\n";
  check_err "unknown row" "meta,delta,2\ndelay,0,4\nwat,1\n";
  check_err "invalid instance" "meta,delta,0\ndelay,0,4\n"

let test_instance_file_io () =
  let path = Filename.temp_file "rrs" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let original =
        Instance.create ~delta:2 ~delay:[| 2 |] ~arrivals:[ arr 0 0 2 ] ()
      in
      Instance_io.save path original;
      match Instance_io.load path with
      | Ok loaded ->
          Alcotest.(check bool) "file round-trip" true
            (loaded.arrivals = original.arrivals)
      | Error msg -> Alcotest.fail msg)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_series () =
  let instance =
    Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 0 0 6; arr 4 0 2 ] ()
  in
  let metrics, policy =
    Metrics.instrument (Static_policy.static [ 0 ] instance ~n:1)
  in
  let r = Engine.run_policy (Engine.config ~n:1 ()) instance policy in
  let samples = Metrics.samples metrics in
  Alcotest.(check int) "one sample per round" r.rounds_simulated
    (List.length samples);
  let last = List.nth samples (List.length samples - 1) in
  Alcotest.(check int) "cumulative drops match engine" r.dropped
    last.Metrics.cumulative_drops;
  Alcotest.(check int) "recolorings match engine" r.reconfigurations
    last.Metrics.cumulative_recolorings;
  (* backlog at round 0 is the 6 arrivals (sampled before execution) *)
  let first = List.hd samples in
  Alcotest.(check int) "round-0 backlog" 6 first.Metrics.backlog;
  Alcotest.(check int) "round-0 cached" 1 first.Metrics.cached_colors

let test_metrics_csv () =
  let instance =
    Instance.create ~delta:1 ~delay:[| 2 |] ~arrivals:[ arr 0 0 2 ] ()
  in
  let metrics, policy =
    Metrics.instrument (Static_policy.static [ 0 ] instance ~n:1)
  in
  ignore (Engine.run_policy (Engine.config ~n:1 ()) instance policy);
  let rows = Csv.parse_exn (Metrics.to_csv metrics) in
  Alcotest.(check int) "header + rounds" (1 + 3) (List.length rows);
  Alcotest.(check int) "six columns" 6 (List.length (List.hd rows))

let test_metrics_double_speed_merged () =
  let instance =
    Instance.create ~delta:1 ~delay:[| 2 |] ~arrivals:[ arr 0 0 4 ] ()
  in
  let metrics, policy =
    Metrics.instrument (Edf_policy.seq_policy instance ~n:1)
  in
  let r = Engine.run_policy (Engine.config ~n:1 ~mini_rounds:2 ()) instance policy in
  let samples = Metrics.samples metrics in
  Alcotest.(check int) "mini-rounds merged" r.rounds_simulated
    (List.length samples)

let test_metrics_backlog_summary () =
  let instance =
    Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 0 0 4 ] ()
  in
  let metrics, policy = Metrics.instrument (Static_policy.black instance ~n:1) in
  ignore (Engine.run_policy (Engine.config ~n:1 ()) instance policy);
  let s = Metrics.backlog_summary metrics in
  (* black policy never executes: backlog stays 4 until the drop at 4 *)
  Alcotest.(check bool) "max backlog 4" true (s.max = 4.0);
  Alcotest.(check bool) "min backlog 0" true (s.min = 0.0)

let () =
  Alcotest.run "trace"
    [
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "parse simple" `Quick test_csv_parse_simple;
          Alcotest.test_case "parse quoted" `Quick test_csv_parse_quoted;
          Alcotest.test_case "parse errors" `Quick test_csv_parse_errors;
          QCheck_alcotest.to_alcotest prop_csv_roundtrip;
        ] );
      ( "instance io",
        [
          Alcotest.test_case "round-trip" `Quick test_instance_roundtrip;
          Alcotest.test_case "families round-trip" `Quick
            test_instance_roundtrip_families;
          Alcotest.test_case "errors" `Quick test_instance_io_errors;
          Alcotest.test_case "file io" `Quick test_instance_file_io;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "series" `Quick test_metrics_series;
          Alcotest.test_case "csv export" `Quick test_metrics_csv;
          Alcotest.test_case "double speed merged" `Quick
            test_metrics_double_speed_merged;
          Alcotest.test_case "backlog summary" `Quick
            test_metrics_backlog_summary;
        ] );
    ]
