(* Tests for the Schedule record and Cost arithmetic. *)

open Rrs_core

let arr round color count = { Types.round; color; count }

let sample_schedule () =
  let instance =
    Instance.create ~delta:2 ~delay:[| 4; 4 |]
      ~arrivals:[ arr 0 0 6; arr 0 1 2 ]
      ()
  in
  let cfg = Engine.config ~n:2 ~record_schedule:true () in
  let r = Engine.run cfg instance (Static_policy.static [ 0; 1 ]) in
  (instance, r, Option.get r.schedule)

let test_counts () =
  let _, r, sched = sample_schedule () in
  Alcotest.(check int) "reconfigs" r.reconfigurations
    (Schedule.reconfig_count sched);
  Alcotest.(check int) "executes" r.executed (Schedule.execute_count sched);
  Alcotest.(check int) "drops" r.dropped (Schedule.drop_count sched)

let test_cost_recomputation () =
  let instance, r, sched = sample_schedule () in
  Alcotest.(check bool) "cost equal" true
    (Cost.equal (Schedule.cost ~delta:instance.delta sched) r.cost)

let test_final_cache () =
  let _, r, sched = sample_schedule () in
  Alcotest.(check (list int)) "final cache" (Array.to_list r.final_cache)
    (Array.to_list (Schedule.final_cache sched))

let test_events_of_round () =
  let _, _, sched = sample_schedule () in
  let round0 = Schedule.events_of_round sched 0 in
  (* round 0: two reconfigurations then two executions *)
  Alcotest.(check int) "round 0 events" 4 (List.length round0);
  (match round0 with
  | Schedule.Reconfigure _ :: Schedule.Reconfigure _ :: Schedule.Execute _ :: _
    ->
      ()
  | _ -> Alcotest.fail "unexpected round-0 event order");
  Alcotest.(check (list int)) "no events beyond the horizon" []
    (List.map (fun _ -> 0) (Schedule.events_of_round sched 99))

let test_pp_does_not_raise () =
  let _, _, sched = sample_schedule () in
  let s = Format.asprintf "%a" Schedule.pp sched in
  Alcotest.(check bool) "nonempty" true (String.length s > 0)

(* Cost *)

let test_cost_arithmetic () =
  let c = Cost.make ~reconfig:6 ~drop:4 in
  Alcotest.(check int) "total" 10 (Cost.total c);
  let c2 = Cost.add c (Cost.make ~reconfig:1 ~drop:2) in
  Alcotest.(check int) "add" 13 (Cost.total c2);
  Alcotest.(check int) "add_reconfig" 12 (Cost.total (Cost.add_reconfig c 2));
  Alcotest.(check int) "add_drop" 11 (Cost.total (Cost.add_drop c 1));
  Alcotest.(check bool) "zero" true (Cost.equal Cost.zero (Cost.make ~reconfig:0 ~drop:0))

let test_cost_ratio () =
  let c = Cost.make ~reconfig:6 ~drop:4 in
  Alcotest.(check bool) "ratio" true
    (Cost.ratio c (Cost.make ~reconfig:5 ~drop:0) = 2.0);
  Alcotest.(check bool) "zero/zero" true (Cost.ratio Cost.zero Cost.zero = 1.0);
  Alcotest.(check bool) "x/zero" true (Cost.ratio c Cost.zero = infinity)

let test_cost_pp () =
  Alcotest.(check string) "pp" "total=10 (reconfig=6, drop=4)"
    (Cost.to_string (Cost.make ~reconfig:6 ~drop:4))

let () =
  Alcotest.run "schedule"
    [
      ( "schedule",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "cost recomputation" `Quick
            test_cost_recomputation;
          Alcotest.test_case "final cache" `Quick test_final_cache;
          Alcotest.test_case "events of round" `Quick test_events_of_round;
          Alcotest.test_case "pp" `Quick test_pp_does_not_raise;
        ] );
      ( "cost",
        [
          Alcotest.test_case "arithmetic" `Quick test_cost_arithmetic;
          Alcotest.test_case "ratio" `Quick test_cost_ratio;
          Alcotest.test_case "pp" `Quick test_cost_pp;
        ] );
    ]
