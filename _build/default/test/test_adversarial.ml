(* Tests for the Appendix A and B constructions: instance shape, the
   exact costs of the clairvoyant OFF schedules the paper states, and the
   qualitative behavior of each algorithm on them. *)

open Rrs_core
module Adv = Rrs_workload.Adversarial

let dlru_p : Adv.dlru_params = { n = 8; delta = 2; j = 5; k = 7 }
(* constraint: 2^7=128 > 2^6=64 > n*delta=16 *)

let edf_p : Adv.edf_params = { n = 4; delta = 6; j = 3; k = 5 }
(* constraint: 2^5=32 > 2^3=8 > delta=6 > n=4 *)

let test_dlru_constraints () =
  Alcotest.(check bool) "valid params" true (Adv.dlru_check dlru_p = Ok ());
  Alcotest.(check bool) "2^k too small rejected" true
    (Result.is_error (Adv.dlru_check { dlru_p with k = 5 }));
  Alcotest.(check bool) "2^(j+1) <= n delta rejected" true
    (Result.is_error (Adv.dlru_check { dlru_p with j = 2 }));
  Alcotest.(check bool) "odd n rejected" true
    (Result.is_error (Adv.dlru_check { dlru_p with n = 7 }))

let test_dlru_instance_shape () =
  let i = Adv.dlru_instance dlru_p in
  Alcotest.(check bool) "batched" true (Instance.is_batched i);
  Alcotest.(check bool) "rate-limited" true (Instance.is_rate_limited i);
  Alcotest.(check bool) "pow2 delays" true (Instance.delays_are_powers_of_two i);
  Alcotest.(check int) "colors" 5 i.num_colors;
  (* long color: 2^k jobs at round 0; shorts: delta per block *)
  Alcotest.(check int) "long jobs" 128 (Instance.jobs_of_color i 4);
  Alcotest.(check int) "short jobs" (2 * (128 / 32)) (Instance.jobs_of_color i 0);
  (* the input proceeds in 2^k rounds (last deadline = 0 + 2^k) *)
  Alcotest.(check int) "horizon" 128 i.horizon

let test_dlru_off_cost () =
  (* paper: OFF caches the long color; cost = delta + 2^(k-j-1) n delta *)
  let i = Adv.dlru_instance dlru_p in
  let r = Engine.run (Engine.config ~n:1 ()) i (Adv.dlru_off dlru_p) in
  let expected_drop =
    (1 lsl (dlru_p.k - dlru_p.j - 1)) * dlru_p.n * dlru_p.delta
  in
  Alcotest.(check int) "reconfig = delta" dlru_p.delta r.cost.reconfig;
  Alcotest.(check int) "drop = 2^(k-j-1) n delta" expected_drop r.cost.drop;
  (* OFF executes the whole long pile *)
  Alcotest.(check int) "long pile fully served" 128 r.executions_by_color.(4)

let test_dlru_starves_long_color () =
  (* paper: dLRU reconfig cost = n*delta (caches shorts once), drop cost
     >= 2^k (the whole long pile) *)
  let i = Adv.dlru_instance dlru_p in
  let r = Engine.run (Engine.config ~n:dlru_p.n ()) i Delta_lru.policy in
  Alcotest.(check int) "reconfig exactly n delta" (dlru_p.n * dlru_p.delta)
    r.cost.reconfig;
  Alcotest.(check bool) "drops at least the long pile" true
    (r.cost.drop >= 128);
  Alcotest.(check int) "long color never executed" 0 r.executions_by_color.(4)

let test_lru_edf_bounded_on_dlru_construction () =
  (* the combination must not starve the long color *)
  let i = Adv.dlru_instance dlru_p in
  let r = Engine.run (Engine.config ~n:dlru_p.n ()) i Lru_edf.policy in
  let off = Engine.run (Engine.config ~n:1 ()) i (Adv.dlru_off dlru_p) in
  let ratio = Cost.ratio r.cost off.cost in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f stays small" ratio)
    true (ratio < 3.0);
  Alcotest.(check bool) "long color served" true
    (r.executions_by_color.(4) > 100)

let test_edf_constraints () =
  Alcotest.(check bool) "valid params" true (Adv.edf_check edf_p = Ok ());
  Alcotest.(check bool) "delta <= n rejected" true
    (Result.is_error (Adv.edf_check { edf_p with delta = 4 }));
  Alcotest.(check bool) "2^j <= delta rejected" true
    (Result.is_error (Adv.edf_check { edf_p with j = 2 }))

let test_edf_instance_shape () =
  let i = Adv.edf_instance edf_p in
  Alcotest.(check bool) "batched" true (Instance.is_batched i);
  Alcotest.(check bool) "rate-limited" true (Instance.is_rate_limited i);
  Alcotest.(check int) "colors = n/2 + 1" 3 i.num_colors;
  (* short color: delta jobs per 2^j block until 2^(k-1) *)
  Alcotest.(check int) "short jobs" (6 * (16 / 8)) (Instance.jobs_of_color i 0);
  Alcotest.(check int) "long 0 jobs" 16 (Instance.jobs_of_color i 1);
  Alcotest.(check int) "long 1 jobs" 32 (Instance.jobs_of_color i 2);
  Alcotest.(check int) "horizon = 2^(k+n/2-1)" 64 i.horizon

let test_edf_off_cost () =
  (* paper: OFF pays (n/2 + 1) delta and drops nothing *)
  let i = Adv.edf_instance edf_p in
  let r = Engine.run (Engine.config ~n:1 ()) i (Adv.edf_off edf_p) in
  Alcotest.(check int) "no drops" 0 r.cost.drop;
  Alcotest.(check int) "reconfig = (n/2+1) delta"
    (((edf_p.n / 2) + 1) * edf_p.delta)
    r.cost.reconfig

let test_edf_thrashes () =
  (* EDF's reconfiguration cost must scale with the number of short
     blocks; we assert it clearly exceeds OFF's total cost *)
  let i = Adv.edf_instance edf_p in
  let edf = Engine.run (Engine.config ~n:edf_p.n ()) i Edf_policy.policy in
  let off = Engine.run (Engine.config ~n:1 ()) i (Adv.edf_off edf_p) in
  Alcotest.(check bool)
    (Printf.sprintf "EDF cost %d > 2x OFF cost %d" (Cost.total edf.cost)
       (Cost.total off.cost))
    true
    (Cost.total edf.cost > 2 * Cost.total off.cost)

let test_ratio_grows_with_j () =
  (* the heart of Appendix A: dLRU's ratio grows with j *)
  let ratio j k =
    let p = { dlru_p with j; k } in
    let i = Adv.dlru_instance p in
    let alg = Engine.run (Engine.config ~n:p.n ()) i Delta_lru.policy in
    let off = Engine.run (Engine.config ~n:1 ()) i (Adv.dlru_off p) in
    Cost.ratio alg.cost off.cost
  in
  let r1 = ratio 5 7 in
  let r2 = ratio 7 9 in
  let r3 = ratio 9 11 in
  Alcotest.(check bool)
    (Printf.sprintf "ratios grow: %.2f < %.2f < %.2f" r1 r2 r3)
    true
    (r1 < r2 && r2 < r3)

let test_edf_ratio_grows_with_k () =
  (* Appendix B: EDF's ratio grows with k - j *)
  let ratio k =
    let p = { edf_p with k } in
    let i = Adv.edf_instance p in
    let alg = Engine.run (Engine.config ~n:p.n ()) i Edf_policy.policy in
    let off = Engine.run (Engine.config ~n:1 ()) i (Adv.edf_off p) in
    Cost.ratio alg.cost off.cost
  in
  let r1 = ratio 5 and r2 = ratio 7 and r3 = ratio 9 in
  Alcotest.(check bool)
    (Printf.sprintf "ratios grow: %.2f < %.2f < %.2f" r1 r2 r3)
    true
    (r1 < r2 && r2 < r3)

let () =
  Alcotest.run "adversarial"
    [
      ( "appendix A (dlru)",
        [
          Alcotest.test_case "constraints" `Quick test_dlru_constraints;
          Alcotest.test_case "instance shape" `Quick test_dlru_instance_shape;
          Alcotest.test_case "OFF cost exact" `Quick test_dlru_off_cost;
          Alcotest.test_case "dlru starves long color" `Quick
            test_dlru_starves_long_color;
          Alcotest.test_case "lru-edf bounded" `Quick
            test_lru_edf_bounded_on_dlru_construction;
          Alcotest.test_case "ratio grows with j" `Slow test_ratio_grows_with_j;
        ] );
      ( "appendix B (edf)",
        [
          Alcotest.test_case "constraints" `Quick test_edf_constraints;
          Alcotest.test_case "instance shape" `Quick test_edf_instance_shape;
          Alcotest.test_case "OFF cost exact" `Quick test_edf_off_cost;
          Alcotest.test_case "edf thrashes" `Quick test_edf_thrashes;
          Alcotest.test_case "ratio grows with k-j" `Slow
            test_edf_ratio_grows_with_k;
        ] );
    ]
