(* Tests for the punctual transformation (paper Section 5.2). *)

open Rrs_core
module Synthetic = Rrs_workload.Synthetic
module Rng = Rrs_prng.Rng

let arr round color count = { Types.round; color; count }

let record ~n instance factory =
  let cfg = Engine.config ~n ~record_schedule:true () in
  let r = Engine.run cfg instance factory in
  (r, Option.get r.schedule)

let test_classify () =
  (* delay 8, half-block 4: arrival 5 sits in half-block 1 (rounds 4-7) *)
  Alcotest.(check bool) "early" true
    (Punctual.classify ~delay:8 ~arrival:5 ~execution:6 = Punctual.Early);
  Alcotest.(check bool) "punctual" true
    (Punctual.classify ~delay:8 ~arrival:5 ~execution:9 = Punctual.Punctual);
  Alcotest.(check bool) "late" true
    (Punctual.classify ~delay:8 ~arrival:5 ~execution:12 = Punctual.Late);
  Alcotest.(check bool) "delay 1" true
    (Punctual.classify ~delay:1 ~arrival:3 ~execution:3 = Punctual.Punctual);
  (match Punctual.classify ~delay:8 ~arrival:5 ~execution:13 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "infeasible execution accepted");
  match Punctual.classify ~delay:6 ~arrival:0 ~execution:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-pow2 delay accepted"

let test_census () =
  (* one color, delay 4 (half-block 2), jobs at round 0; a static
     schedule executes at rounds 0,1 (early: arrival hb 0 = rounds 0-1)
     and 2,3 (punctual) *)
  let i = Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 0 0 4 ] () in
  let _, t = record ~n:1 i (Static_policy.static [ 0 ]) in
  let early, punctual, late = Punctual.census i t in
  Alcotest.(check (list int)) "census" [ 2; 2; 0 ] [ early; punctual; late ];
  Alcotest.(check bool) "not punctual" false (Punctual.is_punctual i t)

let check_transform name instance t =
  let executed_in = Schedule.execute_count t in
  match Punctual.make_punctual instance t with
  | exception Invalid_argument msg -> Alcotest.failf "%s: %s" name msg
  | t' ->
      Alcotest.(check int) (name ^ ": 7x resources") (7 * t.Schedule.n)
        t'.Schedule.n;
      (* feasible for the original instance *)
      let report = Validator.check ~strict_drops:false instance t' in
      if not report.Validator.ok then
        Alcotest.failf "%s: invalid against original: %a" name
          Validator.pp_report report;
      Alcotest.(check int) (name ^ ": executions preserved") executed_in
        report.executed;
      (* all executions punctual *)
      Alcotest.(check bool) (name ^ ": punctual") true
        (Punctual.is_punctual instance t');
      (* a punctual schedule is feasible for the VarBatch instance *)
      let transformed = Var_batch.transform instance in
      let report' = Validator.check ~strict_drops:false transformed t' in
      if not report'.Validator.ok then
        Alcotest.failf "%s: invalid against VarBatch instance: %a" name
          Validator.pp_report report';
      t'

let test_simple_transform () =
  let i = Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 0 0 4 ] () in
  let _, t = record ~n:1 i (Static_policy.static [ 0 ]) in
  ignore (check_transform "simple" i t)

let test_special_stream_shifts () =
  (* a resource statically configured to one color across many blocks:
     all its early executions are special and shift by half a block,
     costing one reconfiguration on the special resource *)
  let i =
    Instance.create ~delta:1 ~delay:[| 8 |]
      ~arrivals:(List.init 4 (fun b -> arr (8 * b) 0 4))
      ()
  in
  let _, t = record ~n:1 i (Static_policy.static [ 0 ]) in
  let t' = check_transform "special stream" i t in
  (* specials keep a single stream: few reconfigurations *)
  Alcotest.(check bool) "few reconfigs" true
    (Schedule.reconfig_count t' <= 3)

let test_multi_resource_multi_color () =
  let rng = Rng.create ~seed:31 in
  for _ = 1 to 4 do
    let instance =
      Synthetic.rate_limited (Rng.split rng)
        {
          Synthetic.default_batched with
          num_colors = 4;
          min_exp = 1;
          max_exp = 3;
          horizon = 64;
          load = 0.9;
        }
    in
    List.iter
      (fun (name, policy) ->
        let _, t = record ~n:2 instance policy in
        ignore (check_transform name instance t))
      [
        ("static", Static_policy.static [ 0; 1 ]);
        ("interval", Offline_heuristics.interval_plan instance ~m:2 ~window:8);
      ]
  done

let test_unbatched_input () =
  (* the transformation works for arbitrary arrival rounds (that is its
     whole point: Lemma 5.3 feeds VarBatch) *)
  let i =
    Instance.create ~delta:1 ~delay:[| 8; 4 |]
      ~arrivals:[ arr 1 0 2; arr 3 1 2; arr 9 0 1; arr 10 1 3 ]
      ()
  in
  let _, t = record ~n:2 i (Static_policy.static [ 0; 1 ]) in
  ignore (check_transform "unbatched" i t)

let test_delay_one_passthrough () =
  let i =
    Instance.create ~delta:1 ~delay:[| 1 |]
      ~arrivals:[ arr 0 0 1; arr 2 0 1 ]
      ()
  in
  let _, t = record ~n:1 i (Static_policy.static [ 0 ]) in
  let t' = check_transform "delay-1" i t in
  Alcotest.(check int) "both executed" 2 (Schedule.execute_count t')

let test_reconfig_overhead_bounded () =
  let rng = Rng.create ~seed:71 in
  let instance =
    Synthetic.rate_limited (Rng.split rng)
      { Synthetic.default_batched with num_colors = 6; horizon = 256 }
  in
  let m = 2 in
  let _, t =
    record ~n:m instance (Offline_heuristics.interval_plan instance ~m ~window:16)
  in
  let t' = Punctual.make_punctual instance t in
  let in_cost = max 1 (Schedule.reconfig_count t) in
  let out_cost = Schedule.reconfig_count t' in
  Alcotest.(check bool)
    (Printf.sprintf "overhead bounded: %d vs %d" out_cost in_cost)
    true
    (out_cost <= (12 * in_cost) + (7 * m))

let test_online_schedules_as_input () =
  (* churny online schedules stress the special/nonspecial split *)
  let rng = Rng.create ~seed:83 in
  for _ = 1 to 4 do
    let instance =
      Synthetic.rate_limited (Rng.split rng)
        { Synthetic.default_batched with num_colors = 5; horizon = 128 }
    in
    List.iter
      (fun (name, policy) ->
        let _, t = record ~n:4 instance policy in
        ignore (check_transform name instance t))
      [
        ("lru-edf", Lru_edf.policy);
        ("edf", Edf_policy.policy);
        ("greedy", Naive_policies.greedy_backlog);
      ]
  done

let test_rejects_double_speed () =
  let i = Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 0 0 1 ] () in
  let _, t = record ~n:1 i (Static_policy.static [ 0 ]) in
  match Punctual.make_punctual i { t with Schedule.mini_rounds = 2 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double-speed accepted"

let () =
  Alcotest.run "punctual"
    [
      ( "classification",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "census" `Quick test_census;
        ] );
      ( "transformation",
        [
          Alcotest.test_case "simple" `Quick test_simple_transform;
          Alcotest.test_case "special stream" `Quick test_special_stream_shifts;
          Alcotest.test_case "multi resource/color" `Slow
            test_multi_resource_multi_color;
          Alcotest.test_case "unbatched input" `Quick test_unbatched_input;
          Alcotest.test_case "delay-1 passthrough" `Quick
            test_delay_one_passthrough;
          Alcotest.test_case "overhead bounded" `Slow
            test_reconfig_overhead_bounded;
          Alcotest.test_case "online schedules as input" `Slow
            test_online_schedules_as_input;
          Alcotest.test_case "rejects double speed" `Quick
            test_rejects_double_speed;
        ] );
    ]
