(* Tests for the clairvoyant offline heuristics. *)

open Rrs_core
module Rng = Rrs_prng.Rng
module Families = Rrs_workload.Families

let arr round color count = { Types.round; color; count }

let test_interval_plan_tracks_hot_set () =
  (* two colors hot in disjoint windows: the planner with window = 4 must
     serve both with one reconfiguration each (delta = 1, m = 1) *)
  let i =
    Instance.create ~delta:1 ~delay:[| 4; 4 |]
      ~arrivals:[ arr 0 0 3; arr 4 1 3 ]
      ()
  in
  let cost = Offline_heuristics.interval_cost i ~m:1 ~window:4 in
  Alcotest.(check int) "two reconfigs, no drops" 2 cost;
  (* a static single color drops one side: cost 1 + 3 *)
  Alcotest.(check int) "static is worse" 4
    (Offline_bounds.static_upper_bound i ~m:1)

let test_upper_bound_improves_on_static () =
  (* on the phase-shifting datacenter family, tracking the hot set beats
     any static choice *)
  let i = (Option.get (Families.find "datacenter")).build ~seed:1 in
  let interval = Offline_heuristics.upper_bound i ~m:4 in
  let static = Offline_bounds.static_upper_bound i ~m:4 in
  Alcotest.(check bool)
    (Printf.sprintf "interval %d <= static %d" interval static)
    true (interval <= static)

let test_upper_bound_is_above_opt () =
  let rng = Rng.create ~seed:77 in
  for _ = 1 to 10 do
    let delay = [| 2; 4 |] in
    let arrivals =
      List.concat
        (List.init 3 (fun b ->
             [ arr (b * 4) 0 (Rng.int rng 3); arr (b * 4) 1 (Rng.int rng 4) ]))
    in
    let i = Instance.create ~delta:2 ~delay ~arrivals () in
    match Offline_opt.solve i ~m:1 with
    | None -> ()
    | Some opt ->
        let ub = Offline_heuristics.upper_bound i ~m:1 in
        if ub < opt then
          Alcotest.failf "heuristic %d below exact OPT %d (infeasible!)" ub opt
  done

let test_plan_schedule_validates () =
  let i = (Option.get (Families.find "uniform")).build ~seed:2 in
  let cfg = Engine.config ~n:2 ~record_schedule:true () in
  let r = Engine.run cfg i (Offline_heuristics.interval_plan i ~m:2 ~window:8) in
  let report = Validator.check_result i r in
  if not report.ok then
    Alcotest.failf "interval plan produced an invalid schedule: %a"
      Validator.pp_report report

let test_window_validation () =
  let i = Instance.create ~delta:1 ~delay:[| 2 |] ~arrivals:[] () in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "window 0" (fun () ->
      ignore
        (Offline_heuristics.interval_plan i ~m:1 ~window:0 : Policy.factory));
  expect_invalid "m 0" (fun () ->
      ignore
        (Offline_heuristics.interval_plan i ~m:0 ~window:4 : Policy.factory))

let () =
  Alcotest.run "heuristics"
    [
      ( "interval planner",
        [
          Alcotest.test_case "tracks hot set" `Quick
            test_interval_plan_tracks_hot_set;
          Alcotest.test_case "improves on static" `Quick
            test_upper_bound_improves_on_static;
          Alcotest.test_case "above exact OPT" `Quick
            test_upper_bound_is_above_opt;
          Alcotest.test_case "schedule validates" `Quick
            test_plan_schedule_validates;
          Alcotest.test_case "validation" `Quick test_window_validation;
        ] );
    ]
