(* Tests for the descriptive statistics / fluid capacity bound. *)

open Rrs_core
module Families = Rrs_workload.Families

let arr round color count = { Types.round; color; count }

let test_hand_computed () =
  (* color 0: D=4, batches 4@r0 and 2@r4; color 1: D=2, batch 2@r0 *)
  let i =
    Instance.create ~delta:1 ~delay:[| 4; 2 |]
      ~arrivals:[ arr 0 0 4; arr 4 0 2; arr 0 1 2 ]
      ()
  in
  let s = Instance_stats.compute i in
  Alcotest.(check int) "total" 8 s.total_jobs;
  Alcotest.(check int) "horizon" 8 s.horizon;
  Alcotest.(check (float 1e-9)) "offered load" 1.0 s.offered_load;
  (* densities: rounds 0-1 have 4/4 + 2/2 = 2.0 *)
  Alcotest.(check (float 1e-9)) "peak load" 2.0 s.peak_concurrent_load;
  Alcotest.(check int) "fluid bound" 2 (Instance_stats.min_resources_estimate i);
  let c0 = List.nth s.per_color 0 in
  Alcotest.(check int) "c0 jobs" 6 c0.jobs;
  Alcotest.(check int) "c0 batches" 2 c0.batches;
  Alcotest.(check int) "c0 max batch" 4 c0.max_batch;
  Alcotest.(check (float 1e-9)) "c0 peak window" 1.0 c0.peak_window_load

let test_empty () =
  let i = Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[] () in
  let s = Instance_stats.compute i in
  Alcotest.(check int) "no jobs" 0 s.total_jobs;
  Alcotest.(check (float 1e-9)) "no load" 0.0 s.peak_concurrent_load;
  Alcotest.(check int) "zero resources" 0 (Instance_stats.min_resources_estimate i)

let test_fluid_bound_predicts_feasibility () =
  (* above the fluid bound and with aligned windows, Par-EDF clears
     everything; this sanity-checks the bound's direction on the
     registered families *)
  List.iter
    (fun (f : Families.family) ->
      let i = f.build ~seed:1 in
      let bound = Instance_stats.min_resources_estimate i in
      (* generously above the bound, drops should be rare; we check the
         much weaker (but universally true) direction: at the bound or
         above, Par-EDF drops at most what it drops with fewer *)
      let m_hi = max 1 (2 * bound) in
      let m_lo = max 1 (bound / 2) in
      let d_hi = Par_edf.drop_cost i ~m:m_hi in
      let d_lo = Par_edf.drop_cost i ~m:m_lo in
      if d_hi > d_lo then
        Alcotest.failf "%s: drops increased with more resources" f.id)
    Families.all

let test_rate_limited_peak_window_at_most_one () =
  (* by definition of rate limiting, every batch fits its window *)
  List.iter
    (fun (f : Families.family) ->
      if f.layer = Families.Rate_limited then begin
        let s = Instance_stats.compute (f.build ~seed:2) in
        List.iter
          (fun (c : Instance_stats.color_stats) ->
            if c.peak_window_load > 1.0 +. 1e-9 then
              Alcotest.failf "%s color %d: window load %.2f > 1" f.id c.color
                c.peak_window_load)
          s.per_color
      end)
    Families.all

let test_pp_renders () =
  let i = (Option.get (Families.find "uniform")).build ~seed:1 in
  let s = Instance_stats.compute i in
  let text = Format.asprintf "%a" Instance_stats.pp s in
  Alcotest.(check bool) "mentions jobs" true
    (String.length text > 0
    && String.split_on_char '\n' text |> List.length > i.num_colors)

let () =
  Alcotest.run "instance_stats"
    [
      ( "stats",
        [
          Alcotest.test_case "hand computed" `Quick test_hand_computed;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "fluid bound direction" `Slow
            test_fluid_bound_predicts_feasibility;
          Alcotest.test_case "rate-limited window load" `Quick
            test_rate_limited_peak_window_at_most_one;
          Alcotest.test_case "pp" `Quick test_pp_renders;
        ] );
    ]
