(* Tests for the two reductions: Distribute (Section 4) and VarBatch
   (Section 5). *)

open Rrs_core
module Synthetic = Rrs_workload.Synthetic
module Rng = Rrs_prng.Rng

let arr round color count = { Types.round; color; count }

(* ------------------------------------------------------------------ *)
(* Distribute                                                          *)
(* ------------------------------------------------------------------ *)

let test_transform_splits_batches () =
  (* one color, D=2, batch of 5 -> subcolors of sizes 2,2,1 *)
  let i = Instance.create ~delta:2 ~delay:[| 2 |] ~arrivals:[ arr 0 0 5 ] () in
  let m = Distribute.transform i in
  Alcotest.(check bool) "rate-limited" true
    (Instance.is_rate_limited m.sub_instance);
  Alcotest.(check int) "3 subcolors" 3 m.sub_instance.num_colors;
  Alcotest.(check int) "jobs conserved" 5 (Instance.total_jobs m.sub_instance);
  Alcotest.(check (list int)) "chunks" [ 2; 2; 1 ]
    (Array.to_list (Instance.jobs_per_color m.sub_instance));
  Alcotest.(check (list int)) "delays inherited" [ 2; 2; 2 ]
    (Array.to_list m.sub_instance.delay);
  Alcotest.(check int) "projection" 0 (Distribute.project m 0);
  Alcotest.(check int) "projection 2" 0 (Distribute.project m 2);
  Alcotest.(check int) "black projects to black" Types.black
    (Distribute.project m Types.black)

let test_transform_already_rate_limited_is_identityish () =
  (* batches within D need one subcolor per color *)
  let i =
    Instance.create ~delta:2 ~delay:[| 4; 2 |]
      ~arrivals:[ arr 0 0 3; arr 4 0 2; arr 0 1 2 ]
      ()
  in
  let m = Distribute.transform i in
  Alcotest.(check int) "one subcolor per color" 2 m.sub_instance.num_colors;
  Alcotest.(check int) "jobs conserved" 7 (Instance.total_jobs m.sub_instance)

let test_transform_rejects_unbatched () =
  let i = Instance.create ~delta:1 ~delay:[| 4 |] ~arrivals:[ arr 1 0 1 ] () in
  match Distribute.transform i with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unbatched instance accepted"

let test_subcolor_ranges () =
  let i =
    Instance.create ~delta:1 ~delay:[| 2; 4 |]
      ~arrivals:[ arr 0 0 5; arr 2 0 3; arr 0 1 9 ]
      ()
  in
  let m = Distribute.transform i in
  (* color 0: max batch 5 over D=2 -> 3 subs; color 1: 9 over 4 -> 3 subs *)
  Alcotest.(check int) "total subs" 6 m.sub_instance.num_colors;
  Alcotest.(check (list int)) "subs of color 0" [ 0; 1; 2 ] m.subs_of_orig.(0);
  Alcotest.(check (list int)) "subs of color 1" [ 3; 4; 5 ] m.subs_of_orig.(1);
  Array.iteri
    (fun sub orig ->
      if not (List.mem sub m.subs_of_orig.(orig)) then
        Alcotest.failf "sub %d not listed under %d" sub orig)
    m.orig_of_sub

let test_distribute_run_drop_costs_match () =
  (* Lemma 4.2: the projected schedule has the same drop cost and at most
     the reconfiguration cost of the sub-schedule *)
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 5 do
    let i =
      Synthetic.batched_oversized (Rng.split rng)
        { Synthetic.default_batched with load = 2.0; horizon = 128 }
    in
    let mapping = Distribute.transform i in
    let projected = Distribute.run i ~n:8 in
    let raw =
      Engine.run (Engine.config ~n:8 ()) mapping.sub_instance Lru_edf.policy
    in
    Alcotest.(check int) "drops equal" raw.dropped projected.dropped;
    Alcotest.(check bool) "projected reconfig <= raw" true
      (projected.cost.reconfig <= raw.cost.reconfig)
  done

let test_distribute_schedule_validates_against_original () =
  (* sub-instance deadlines coincide with the original's, so the projected
     schedule passes strict validation against the original instance *)
  let rng = Rng.create ~seed:11 in
  let i =
    Synthetic.batched_oversized (Rng.split rng)
      { Synthetic.default_batched with load = 1.8; horizon = 64 }
  in
  let mapping = Distribute.transform i in
  let cfg =
    Engine.config ~n:8 ~record_schedule:true
      ~cost_projection:(Distribute.project mapping) ()
  in
  let r = Engine.run cfg mapping.sub_instance Lru_edf.policy in
  let report =
    Validator.check ~strict_drops:true i (Option.get r.schedule)
  in
  if not report.ok then
    Alcotest.failf "projected schedule invalid: %s"
      (Format.asprintf "%a" Validator.pp_report report);
  Alcotest.(check bool) "cost matches too" true
    (Cost.equal report.recomputed_cost r.cost)

(* ------------------------------------------------------------------ *)
(* VarBatch                                                            *)
(* ------------------------------------------------------------------ *)

let test_batched_delay () =
  Alcotest.(check int) "1 -> 1" 1 (Var_batch.batched_delay 1);
  Alcotest.(check int) "2 -> 1" 1 (Var_batch.batched_delay 2);
  Alcotest.(check int) "4 -> 2" 2 (Var_batch.batched_delay 4);
  Alcotest.(check int) "8 -> 4" 4 (Var_batch.batched_delay 8);
  (* Section 5.3 extension: 2^j <= p < 2^(j+1) uses half-blocks of
     2^(j-1) *)
  Alcotest.(check int) "5 -> 2" 2 (Var_batch.batched_delay 5);
  Alcotest.(check int) "7 -> 2" 2 (Var_batch.batched_delay 7);
  Alcotest.(check int) "9 -> 4" 4 (Var_batch.batched_delay 9);
  Alcotest.check_raises "0 rejected" (Invalid_argument "Var_batch.batched_delay")
    (fun () -> ignore (Var_batch.batched_delay 0))

let test_transform_produces_batched () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10 do
    let i = Synthetic.unbatched (Rng.split rng) Synthetic.default_unbatched in
    let t = Var_batch.transform i in
    Alcotest.(check bool) "batched" true (Instance.is_batched t);
    Alcotest.(check int) "jobs conserved" (Instance.total_jobs i)
      (Instance.total_jobs t)
  done

let test_transform_windows_nest () =
  (* each transformed job's execution window sits inside the original's *)
  let i =
    Instance.create ~delta:1 ~delay:[| 12 |] ~arrivals:[ arr 7 0 1 ] ()
  in
  let t = Var_batch.transform i in
  (* D=12: 2^3 <= 12 < 2^4, half-block 4; arrival 7 is in half-block 1,
     delayed to round 8 with new bound 4: window [8,12) inside [7,19) *)
  Alcotest.(check int) "new delay" 4 t.delay.(0);
  Alcotest.(check int) "delayed arrival" 8 t.arrivals.(0).round;
  Alcotest.(check bool) "window inside" true
    (8 >= 7 && 8 + 4 <= 7 + 12)

let prop_windows_nest =
  QCheck.Test.make ~count:300 ~name:"VarBatch windows nest in the originals"
    QCheck.(pair (int_range 0 200) (int_range 2 100))
    (fun (round, d) ->
      let d' = Var_batch.batched_delay d in
      let i = round / d' in
      let new_round = (i + 1) * d' in
      new_round >= round && new_round + d' <= round + d)

let test_delay_one_passthrough () =
  let i =
    Instance.create ~delta:1 ~delay:[| 1 |] ~arrivals:[ arr 3 0 2 ] ()
  in
  let t = Var_batch.transform i in
  Alcotest.(check int) "round unchanged" 3 t.arrivals.(0).round;
  Alcotest.(check int) "delay unchanged" 1 t.delay.(0)

let test_pipeline_executions_feasible () =
  (* the full pipeline's schedule must be feasible for the original
     instance (lenient validation: drop timing differs by construction) *)
  let rng = Rng.create ~seed:21 in
  let i = Synthetic.unbatched (Rng.split rng) Synthetic.default_unbatched in
  let batched = Var_batch.transform i in
  let mapping = Distribute.transform batched in
  let cfg =
    Engine.config ~n:8 ~record_schedule:true
      ~cost_projection:(Distribute.project mapping) ()
  in
  let r = Engine.run cfg mapping.sub_instance Lru_edf.policy in
  let report =
    Validator.check ~strict_drops:false i (Option.get r.schedule)
  in
  if not report.ok then
    Alcotest.failf "pipeline schedule infeasible: %s"
      (Format.asprintf "%a" Validator.pp_report report);
  Alcotest.(check int) "same executions" r.executed report.executed;
  Alcotest.(check int) "same drops" r.dropped report.dropped

let test_pipeline_runs_on_anything () =
  let rng = Rng.create ~seed:31 in
  for _ = 1 to 5 do
    let i = Synthetic.unbatched (Rng.split rng) Synthetic.default_unbatched in
    let r = Var_batch.run i ~n:8 in
    Alcotest.(check int) "conservation"
      (Instance.total_jobs i)
      (r.executed + r.dropped)
  done

let test_pipeline_beats_black_under_load () =
  (* sanity: the pipeline executes a decent share of a feasible load *)
  let rng = Rng.create ~seed:41 in
  let i =
    Synthetic.unbatched (Rng.split rng)
      { Synthetic.default_unbatched with arrival_rate = 0.1; max_batch = 3 }
  in
  let r = Var_batch.run i ~n:16 in
  let total = Instance.total_jobs i in
  Alcotest.(check bool)
    (Printf.sprintf "executed %d of %d" r.executed total)
    true
    (float_of_int r.executed > 0.5 *. float_of_int total)

let () =
  Alcotest.run "reductions"
    [
      ( "distribute",
        [
          Alcotest.test_case "splits batches" `Quick test_transform_splits_batches;
          Alcotest.test_case "rate-limited passthrough" `Quick
            test_transform_already_rate_limited_is_identityish;
          Alcotest.test_case "rejects unbatched" `Quick
            test_transform_rejects_unbatched;
          Alcotest.test_case "subcolor ranges" `Quick test_subcolor_ranges;
          Alcotest.test_case "drop costs match (Lemma 4.2)" `Slow
            test_distribute_run_drop_costs_match;
          Alcotest.test_case "projected schedule validates" `Slow
            test_distribute_schedule_validates_against_original;
        ] );
      ( "varbatch",
        [
          Alcotest.test_case "batched_delay" `Quick test_batched_delay;
          Alcotest.test_case "produces batched" `Quick
            test_transform_produces_batched;
          Alcotest.test_case "windows nest" `Quick test_transform_windows_nest;
          QCheck_alcotest.to_alcotest prop_windows_nest;
          Alcotest.test_case "delay-1 passthrough" `Quick
            test_delay_one_passthrough;
        ] );
      ( "pipeline (Theorem 3)",
        [
          Alcotest.test_case "executions feasible" `Slow
            test_pipeline_executions_feasible;
          Alcotest.test_case "runs on anything" `Slow
            test_pipeline_runs_on_anything;
          Alcotest.test_case "serves feasible load" `Slow
            test_pipeline_beats_black_under_load;
        ] );
    ]
