(* Tests for schedule CSV export and the Gantt renderer. *)

open Rrs_core
module Schedule_io = Rrs_trace.Schedule_io
module Csv = Rrs_trace.Csv

let arr round color count = { Types.round; color; count }

let sample () =
  let instance =
    Instance.create ~delta:2 ~delay:[| 4; 4 |]
      ~arrivals:[ arr 0 0 6; arr 0 1 2 ]
      ()
  in
  let cfg = Engine.config ~n:2 ~record_schedule:true () in
  let r = Engine.run cfg instance (Static_policy.static [ 0; 1 ]) in
  (r, Option.get r.schedule)

let test_csv_shape () =
  let r, sched = sample () in
  let rows = Csv.parse_exn (Schedule_io.to_csv sched) in
  Alcotest.(check int) "header + events"
    (1 + Array.length sched.Schedule.events)
    (List.length rows);
  Alcotest.(check (list string)) "header"
    [ "kind"; "round"; "mini_round"; "resource"; "color"; "count"; "from_color" ]
    (List.hd rows);
  let kinds = List.map List.hd (List.tl rows) in
  let count k = List.length (List.filter (( = ) k) kinds) in
  Alcotest.(check int) "executes" r.executed (count "execute");
  Alcotest.(check int) "reconfigures" r.reconfigurations (count "reconfigure");
  Alcotest.(check bool) "drops present" true (count "drop" > 0)

let test_gantt_contents () =
  (* three resources, one left black: the grid must show all three cell
     kinds (held color, execution marker, idle dot) *)
  let instance =
    Instance.create ~delta:2 ~delay:[| 4; 4 |]
      ~arrivals:[ arr 0 0 6; arr 0 1 2 ]
      ()
  in
  let cfg = Engine.config ~n:3 ~record_schedule:true () in
  let r = Engine.run cfg instance (Static_policy.static [ 0; 1 ]) in
  let sched = Option.get r.schedule in
  let g = Schedule_io.render_gantt sched in
  (* resource rows and execution markers are present *)
  Alcotest.(check bool) "row r0" true
    (String.length g > 0
    &&
    let lines = String.split_on_char '\n' g in
    List.exists (fun l -> String.length l > 2 && String.sub l 0 2 = "r0") lines);
  Alcotest.(check bool) "execution marker" true
    (String.exists (( = ) '*') g);
  Alcotest.(check bool) "idle marker" true (String.exists (( = ) '.') g)

let test_gantt_clipping () =
  let _, sched = sample () in
  let g = Schedule_io.render_gantt ~max_rounds:2 ~max_resources:1 sched in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' g)
  in
  (* clipping note + header + one resource row *)
  Alcotest.(check int) "clipped rows" 3 (List.length lines);
  Alcotest.(check bool) "note" true
    (String.length (List.hd lines) > 0 && (List.hd lines).[0] = '(')

let () =
  Alcotest.run "schedule_io"
    [
      ( "csv",
        [ Alcotest.test_case "shape" `Quick test_csv_shape ] );
      ( "gantt",
        [
          Alcotest.test_case "contents" `Quick test_gantt_contents;
          Alcotest.test_case "clipping" `Quick test_gantt_clipping;
        ] );
    ]
