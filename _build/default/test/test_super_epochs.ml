(* Tests for the super-epoch instrumentation (paper Section 3.4) and the
   structural facts the analysis rests on. *)

open Rrs_core
module Families = Rrs_workload.Families
module Rng = Rrs_prng.Rng

let arr round color count = { Types.round; color; count }

let run_instrumented instance ~n ~m =
  let instr = Lru_edf.make instance ~n in
  let se = Super_epochs.attach instr.eligibility ~m in
  let result = Engine.run_policy (Engine.config ~n ()) instance instr.policy in
  (result, instr.eligibility, se)

let test_attach_validation () =
  let i = Instance.create ~delta:1 ~delay:[| 2 |] ~arrivals:[] () in
  let e = Eligibility.create i in
  match Super_epochs.attach e ~m:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "m = 0 accepted"

let test_hand_computed_super_epoch () =
  (* one color, delta = 1, arrivals every window: a timestamp update at
     every multiple after the first wrap.  With m = 1, a super-epoch ends
     when 2 colors update; a single color can never end one. *)
  let i =
    Instance.create ~delta:1 ~delay:[| 2 |]
      ~arrivals:(List.init 5 (fun w -> arr (2 * w) 0 1))
      ()
  in
  let instr = Lru_edf.make i ~n:4 in
  let se = Super_epochs.attach instr.eligibility ~m:1 in
  ignore (Engine.run_policy (Engine.config ~n:4 ()) i instr.policy);
  Alcotest.(check int) "no super-epoch ends" 0 (Super_epochs.completed se);
  Alcotest.(check int) "one active color" 1
    (Super_epochs.current_active_colors se);
  Alcotest.(check bool) "updates happened" true
    (Super_epochs.updates_total se >= 4)

let test_two_colors_end_super_epochs () =
  (* two alternating colors, m = 1: each time both update, an epoch ends *)
  let i =
    Instance.create ~delta:1 ~delay:[| 2; 2 |]
      ~arrivals:
        (List.concat (List.init 6 (fun w -> [ arr (2 * w) 0 1; arr (2 * w) 1 1 ])))
      ()
  in
  let instr = Lru_edf.make i ~n:4 in
  let se = Super_epochs.attach instr.eligibility ~m:1 in
  ignore (Engine.run_policy (Engine.config ~n:4 ()) i instr.policy);
  Alcotest.(check bool) "several super-epochs" true
    (Super_epochs.completed se >= 2);
  List.iter
    (fun active ->
      Alcotest.(check int) "exactly 2m active colors at the end" 2 active)
    (Super_epochs.active_colors_per_super_epoch se)

let families_runs () =
  List.concat_map
    (fun (f : Families.family) ->
      if f.layer = Families.Rate_limited then
        [ (f.id, run_instrumented (f.build ~seed:1) ~n:8 ~m:1) ]
      else [])
    Families.all

let test_super_epoch_sizes_are_exactly_2m () =
  List.iter
    (fun (id, (_, _, se)) ->
      List.iter
        (fun active ->
          if active <> 2 then
            Alcotest.failf "%s: super-epoch closed with %d active colors" id
              active)
        (Super_epochs.active_colors_per_super_epoch se))
    (families_runs ())

let test_epochs_bounded_by_super_epochs () =
  (* Lemma 3.16 + Corollary 3.2 imply:
     numEpochs <= 3 * (2m) * (completed super-epochs + 1) + 3 * colors.
     A generous but shape-correct empirical check. *)
  List.iter
    (fun (id, ((_ : Engine.result), elig, se)) ->
      let epochs = Eligibility.epochs_total elig in
      let m = 1 in
      let bound =
        (3 * 2 * m * (Super_epochs.completed se + 1))
        + (3 * Super_epochs.updates_total se)
      in
      if epochs > bound then
        Alcotest.failf "%s: epochs %d > structural bound %d" id epochs bound)
    (families_runs ())

let test_lemma_3_5_shape () =
  (* Lemma 3.5: when every color has >= delta jobs, Cost_OFF =
     Omega(numEpochs * delta).  Checked against the exact OPT on tiny
     instances with a conservative constant. *)
  let rng = Rng.create ~seed:123 in
  let checked = ref 0 in
  for _ = 1 to 12 do
    let delta = 1 + Rng.int rng 2 in
    let delay = [| 2; 4 |] in
    let arrivals =
      List.concat
        (List.init 4 (fun b ->
             [
               arr (b * 4) 0 (delta + Rng.int rng 2);
               arr (b * 4) 1 (delta + Rng.int rng 2);
             ]))
    in
    let i = Instance.create ~delta ~delay ~arrivals () in
    (* all colors have >= delta jobs by construction *)
    match Offline_opt.solve ~max_states:400_000 i ~m:1 with
    | None -> ()
    | Some opt ->
        incr checked;
        let instr = Lru_edf.make i ~n:8 in
        ignore (Engine.run_policy (Engine.config ~n:8 ()) i instr.policy);
        let epochs = Eligibility.epochs_total instr.eligibility in
        (* paper's constants are loose; 24 is far beyond its 3..6 range *)
        if epochs * delta > 24 * max opt 1 then
          Alcotest.failf "epochs*delta = %d far exceeds OPT %d" (epochs * delta)
            opt
  done;
  if !checked = 0 then Alcotest.fail "no instance solved"

let () =
  Alcotest.run "super_epochs"
    [
      ( "mechanics",
        [
          Alcotest.test_case "attach validation" `Quick test_attach_validation;
          Alcotest.test_case "single color never ends one" `Quick
            test_hand_computed_super_epoch;
          Alcotest.test_case "two colors end them" `Quick
            test_two_colors_end_super_epochs;
          Alcotest.test_case "sizes exactly 2m" `Slow
            test_super_epoch_sizes_are_exactly_2m;
        ] );
      ( "analysis shapes",
        [
          Alcotest.test_case "epochs vs super-epochs" `Slow
            test_epochs_bounded_by_super_epochs;
          Alcotest.test_case "Lemma 3.5 shape" `Slow test_lemma_3_5_shape;
        ] );
    ]
