(* Engine semantics tests: the four-phase round structure, cost
   accounting, deadline windows, mini-rounds (double speed), cost
   projection, and conservation properties over random instances. *)

open Rrs_core

let arr round color count = { Types.round; color; count }

let mk ?(delta = 2) ~delay arrivals = Instance.create ~delta ~delay ~arrivals ()

let run ?(n = 1) ?(mini_rounds = 1) ?(record = true) instance policy =
  let cfg = Engine.config ~n ~mini_rounds ~record_schedule:record () in
  Engine.run cfg instance policy

let check_cost name (result : Engine.result) ~reconfig ~drop =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s = reconfig %d + drop %d" name
       (Cost.to_string result.cost) reconfig drop)
    true
    (Cost.equal result.cost (Cost.make ~reconfig ~drop))

let test_static_executes_all () =
  (* 3 jobs, delay 4, one resource configured from round 0: executes at
     rounds 0, 1, 2 *)
  let i = mk ~delay:[| 4 |] [ arr 0 0 3 ] in
  let r = run i (Static_policy.static [ 0 ]) in
  check_cost "all executed" r ~reconfig:2 ~drop:0;
  Alcotest.(check int) "executed" 3 r.executed

let test_static_overflow_drops () =
  (* 6 jobs, window of 4 execution rounds -> 2 drops *)
  let i = mk ~delay:[| 4 |] [ arr 0 0 6 ] in
  let r = run i (Static_policy.static [ 0 ]) in
  check_cost "overflow" r ~reconfig:2 ~drop:2;
  Alcotest.(check int) "executed" 4 r.executed

let test_delay_one_window () =
  (* delay 1: exactly one execution opportunity, in the arrival round *)
  let i = mk ~delay:[| 1 |] [ arr 0 0 1; arr 2 0 2 ] in
  let r = run i (Static_policy.static [ 0 ]) in
  (* round 0: exec 1; round 2: one of the two jobs runs, other drops at 3 *)
  check_cost "delay-1" r ~reconfig:2 ~drop:1;
  Alcotest.(check int) "executed" 2 r.executed

let test_black_drops_everything () =
  let i = mk ~delay:[| 4; 2 |] [ arr 0 0 3; arr 2 1 2 ] in
  let r = run i Static_policy.black in
  check_cost "black" r ~reconfig:0 ~drop:5;
  Alcotest.(check (list int)) "drops by color" [ 3; 2 ]
    (Array.to_list r.drops_by_color)

let test_drop_phase_precedes_execution () =
  (* a job with deadline = round r cannot be executed in round r *)
  let i = mk ~delay:[| 2 |] [ arr 0 0 3 ] in
  (* configure only from round 2 on: jobs expired in round 2's drop phase *)
  let late = Static_policy.piecewise [ (0, []); (2, [ 0 ]) ] in
  let r = run i late in
  Alcotest.(check int) "all dropped" 3 r.dropped;
  Alcotest.(check int) "none executed" 0 r.executed

let test_reconfig_cost_per_switch () =
  let i = mk ~delta:3 ~delay:[| 8; 8 |] [ arr 0 0 1; arr 0 1 1 ] in
  let p = Static_policy.piecewise [ (0, [ 0 ]); (1, [ 1 ]); (2, [ 0 ]) ] in
  let r = run i p in
  (* three recolorings of the single resource at delta=3; executes one of
     each color in rounds 0 and 1 *)
  Alcotest.(check int) "reconfigurations" 3 r.reconfigurations;
  check_cost "switching" r ~reconfig:9 ~drop:0

let test_mini_rounds_double_throughput () =
  let i = mk ~delay:[| 4 |] [ arr 0 0 8 ] in
  let r1 = run i (Static_policy.static [ 0 ]) in
  let r2 = run ~mini_rounds:2 i (Static_policy.static [ 0 ]) in
  Alcotest.(check int) "uni-speed executes 4" 4 r1.executed;
  Alcotest.(check int) "double-speed executes 8" 8 r2.executed;
  Alcotest.(check int) "double-speed drops none" 0 r2.dropped

let test_multiple_resources_same_color () =
  (* two resources on one color execute two jobs per round *)
  let i = mk ~delay:[| 2 |] [ arr 0 0 4 ] in
  let r = run ~n:2 i (Static_policy.static [ 0; 0 ]) in
  Alcotest.(check int) "executed" 4 r.executed;
  check_cost "parallel" r ~reconfig:4 ~drop:0

let test_cost_projection () =
  (* two colors that project to the same original color: switching between
     them is free under projection *)
  let i = mk ~delay:[| 4; 4 |] [ arr 0 0 2; arr 0 1 2 ] in
  let p = Static_policy.piecewise [ (0, [ 0 ]); (2, [ 1 ]) ] in
  let cfg =
    Engine.config ~n:1 ~cost_projection:(fun c -> if c >= 0 then 0 else c) ()
  in
  let r = Engine.run cfg i p in
  Alcotest.(check int) "projected reconfigurations" 1 r.reconfigurations;
  Alcotest.(check int) "executed" 4 r.executed

let test_final_cache () =
  let i = mk ~delay:[| 4; 4 |] [ arr 0 0 1 ] in
  let r = run ~n:2 i (Static_policy.static [ 1; 0 ]) in
  Alcotest.(check (list int)) "final cache" [ 1; 0 ]
    (Array.to_list r.final_cache)

let test_policy_misbehavior_rejected () =
  let i = mk ~delay:[| 2 |] [ arr 0 0 1 ] in
  let bad_length _instance ~n:_ =
    { Policy.name = "bad"; reconfigure = (fun _ -> [| 0; 0 |]) }
  in
  (match run i bad_length with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong-length assignment accepted");
  let bad_color _instance ~n =
    { Policy.name = "bad"; reconfigure = (fun _ -> Array.make n 7) }
  in
  match run i bad_color with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range color accepted"

let test_view_contents () =
  (* the view must expose this round's arrivals and drops *)
  let i = mk ~delay:[| 2 |] [ arr 0 0 3 ] in
  let seen_arrivals = ref [] in
  let seen_drops = ref [] in
  let spy _instance ~n =
    {
      Policy.name = "spy";
      reconfigure =
        (fun view ->
          if view.arrivals <> [] then
            seen_arrivals := (view.round, view.arrivals) :: !seen_arrivals;
          if view.dropped <> [] then
            seen_drops := (view.round, view.dropped) :: !seen_drops;
          Array.make n Types.black);
    }
  in
  ignore (run i spy);
  Alcotest.(check (list (pair int (list (pair int int)))))
    "arrivals seen" [ (0, [ (0, 3) ]) ] !seen_arrivals;
  Alcotest.(check (list (pair int (list (pair int int)))))
    "drops seen at deadline" [ (2, [ (0, 3) ]) ] !seen_drops

(* random-instance generator for conservation properties *)
let gen_instance =
  QCheck.Gen.(
    let* num_colors = int_range 1 4 in
    let* delta = int_range 1 3 in
    let* delay =
      array_size (return num_colors) (map (fun e -> 1 lsl e) (int_range 0 3))
    in
    let* batches = list_size (int_range 0 20) (triple (int_range 0 30) (int_range 0 (num_colors - 1)) (int_range 1 4)) in
    let arrivals = List.map (fun (r, c, n) -> arr r c n) batches in
    return (Instance.create ~delta ~delay ~arrivals ()))

let arbitrary_instance =
  QCheck.make gen_instance ~print:(fun i -> Format.asprintf "%a" Instance.pp_full i)

let prop_conservation =
  QCheck.Test.make ~count:200 ~name:"executed + dropped = total jobs"
    arbitrary_instance
    (fun i ->
      List.for_all
        (fun policy ->
          let r = run ~n:4 i policy in
          r.executed + r.dropped = Instance.total_jobs i)
        [
          Static_policy.black;
          Static_policy.static [ 0 ];
          Lru_edf.policy;
          Delta_lru.policy;
          Edf_policy.policy;
        ])

let prop_engine_schedule_validates =
  QCheck.Test.make ~count:100 ~name:"engine schedules pass the validator"
    arbitrary_instance
    (fun i ->
      List.for_all
        (fun policy ->
          let r = run ~n:4 i policy in
          (Validator.check_result i r).ok)
        [
          Static_policy.static [ 0 ];
          Lru_edf.policy;
          Edf_policy.policy;
          Delta_lru.policy;
          Naive_policies.classic_lru;
          Naive_policies.greedy_backlog;
          Naive_policies.greedy_backlog_hysteresis ~threshold:2;
          Naive_policies.round_robin;
        ])

let prop_replication_invariant =
  QCheck.Test.make ~count:100
    ~name:"replicated policies cache every color exactly twice"
    arbitrary_instance
    (fun i ->
      List.for_all
        (fun policy ->
          let r = run ~n:4 ~record:false i policy in
          let counts = Hashtbl.create 8 in
          Array.iter
            (fun c ->
              if c <> Types.black then
                Hashtbl.replace counts c
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
            r.final_cache;
          Hashtbl.fold (fun _ k acc -> acc && k = 2) counts true)
        [ Lru_edf.policy; Delta_lru.policy; Edf_policy.policy ])

let prop_more_resources_never_hurt_static =
  QCheck.Test.make ~count:100
    ~name:"static policy with more copies drops no more" arbitrary_instance
    (fun i ->
      let r1 = run ~n:1 i (Static_policy.static [ 0 ]) in
      let r2 = run ~n:2 i (Static_policy.static [ 0; 0 ]) in
      r2.dropped <= r1.dropped)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "semantics",
        [
          Alcotest.test_case "static executes all" `Quick
            test_static_executes_all;
          Alcotest.test_case "overflow drops" `Quick test_static_overflow_drops;
          Alcotest.test_case "delay-1 window" `Quick test_delay_one_window;
          Alcotest.test_case "black drops all" `Quick test_black_drops_everything;
          Alcotest.test_case "drop before execution" `Quick
            test_drop_phase_precedes_execution;
          Alcotest.test_case "reconfig cost" `Quick test_reconfig_cost_per_switch;
          Alcotest.test_case "mini-rounds" `Quick
            test_mini_rounds_double_throughput;
          Alcotest.test_case "parallel same color" `Quick
            test_multiple_resources_same_color;
          Alcotest.test_case "cost projection" `Quick test_cost_projection;
          Alcotest.test_case "final cache" `Quick test_final_cache;
          Alcotest.test_case "misbehaving policy" `Quick
            test_policy_misbehavior_rejected;
          Alcotest.test_case "view contents" `Quick test_view_contents;
        ] );
      ( "properties",
        [
          q prop_conservation;
          q prop_engine_schedule_validates;
          q prop_replication_invariant;
          q prop_more_resources_never_hurt_static;
        ] );
    ]
