(* Theorem- and lemma-driven properties (paper Section 3.2-3.4), checked
   empirically on the registered workload families and on random
   rate-limited instances:

   - Lemma 3.1 mechanism: if every color has fewer than delta jobs,
     ΔLRU-EDF never reconfigures and its cost is exactly the job count.
   - Lemma 3.3: ReconfigCost(ΔLRU-EDF) <= 4 * numEpochs * delta.
   - Lemma 3.4: IneligibleDropCost(ΔLRU-EDF) <= numEpochs * delta.
   - Lemma 3.2 chain (via Lemmas 3.7-3.10): the eligible drop cost of
     ΔLRU-EDF with n resources is at most Par-EDF's drop cost with
     m = n/4 resources.
   - Lemma 3.7: Par-EDF's drop cost lower-bounds every feasible
     schedule's drop cost (checked against static oracles).
   - Lemma 3.8: on "nice" inputs (Par-EDF drops nothing with m),
     DS-Seq-EDF with m resources drops nothing.
   - Theorem 1 shape: ΔLRU-EDF with n = 8m is within a small constant of
     the certified OPT lower bound with m resources. *)

open Rrs_core
module Families = Rrs_workload.Families
module Synthetic = Rrs_workload.Synthetic
module Rng = Rrs_prng.Rng

let n = 8 (* ΔLRU-EDF resources; m = n/8 = 1 for Theorem-1 checks *)

let rate_limited_families =
  List.filter (fun f -> f.Families.layer = Families.Rate_limited) Families.all

let instances =
  List.concat_map
    (fun (f : Families.family) ->
      List.map (fun seed -> (f.id, f.build ~seed)) [ 1; 2; 3 ])
    rate_limited_families

let run_lru_edf instance =
  let instr = Lru_edf.make instance ~n in
  let r =
    Engine.run_policy (Engine.config ~n ()) instance instr.Lru_edf.policy
  in
  (r, instr.Lru_edf.eligibility)

let for_all_instances name check =
  List.iter
    (fun (id, instance) ->
      match check instance with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s violated on %s: %s" name id msg)
    instances

let test_lemma_3_1_sub_delta_colors () =
  (* every color below delta jobs: no reconfig, cost = total jobs *)
  let rng = Rng.create ~seed:99 in
  for _ = 1 to 20 do
    let num_colors = 1 + Rng.int rng 5 in
    let delta = 4 + Rng.int rng 4 in
    let delay = Array.init num_colors (fun _ -> 1 lsl Rng.int rng 4) in
    let arrivals =
      List.concat
        (List.init num_colors (fun c ->
             (* strictly fewer than delta jobs per color *)
             let jobs = Rng.int rng (min delta (delay.(c) + 1)) in
             if jobs = 0 then []
             else [ { Types.round = 0; color = c; count = jobs } ]))
    in
    let instance = Instance.create ~delta ~delay ~arrivals () in
    let r, _ = run_lru_edf instance in
    if r.cost.reconfig <> 0 then Alcotest.fail "reconfigured for tiny colors";
    if r.cost.drop <> Instance.total_jobs instance then
      Alcotest.fail "executed something without caching"
  done

let test_lemma_3_3_reconfig_bound () =
  for_all_instances "Lemma 3.3" (fun instance ->
      let r, elig = run_lru_edf instance in
      let bound = 4 * Eligibility.epochs_total elig * instance.delta in
      if r.cost.reconfig <= bound then Ok ()
      else
        Error
          (Printf.sprintf "reconfig %d > 4 * %d epochs * delta %d = %d"
             r.cost.reconfig
             (Eligibility.epochs_total elig)
             instance.delta bound))

let test_lemma_3_4_ineligible_drop_bound () =
  for_all_instances "Lemma 3.4" (fun instance ->
      let r, elig = run_lru_edf instance in
      ignore r;
      let bound = Eligibility.epochs_total elig * instance.delta in
      let ineligible = Eligibility.ineligible_drops elig in
      if ineligible <= bound then Ok ()
      else
        Error
          (Printf.sprintf "ineligible drops %d > %d epochs * delta %d"
             ineligible
             (Eligibility.epochs_total elig)
             instance.delta))

let test_lemma_3_2_chain_eligible_drops () =
  for_all_instances "Lemma 3.2 chain" (fun instance ->
      let _, elig = run_lru_edf instance in
      let eligible = Eligibility.eligible_drops elig in
      let par_edf = Par_edf.drop_cost instance ~m:(n / 4) in
      if eligible <= par_edf then Ok ()
      else
        Error
          (Printf.sprintf "eligible drops %d > Par-EDF(m=%d) drops %d" eligible
             (n / 4) par_edf))

let test_lemma_3_7_par_edf_is_drop_lower_bound () =
  (* Par-EDF(m) drops no more than any feasible m-resource schedule; we
     check against the static upper-bound schedules *)
  for_all_instances "Lemma 3.7" (fun instance ->
      let m = 2 in
      let par = Par_edf.drop_cost instance ~m in
      let check_policy policy =
        let r = Engine.run (Engine.config ~n:m ()) instance policy in
        par <= r.dropped
      in
      if
        List.for_all check_policy
          [
            Static_policy.static [ 0 ];
            Static_policy.static [ 0; 1 ];
            Static_policy.black;
          ]
      then Ok ()
      else Error "a static schedule dropped less than Par-EDF")

let test_lemma_3_8_nice_inputs () =
  (* if Par-EDF(m) drops nothing, DS-Seq-EDF(m) drops nothing, for
     rate-limited power-of-two instances.  The paper applies the lemma to
     the eligible-job subsequence (Lemma 3.10); with delta = 1 every job
     of a nonempty color is eligible, so the statement applies to the
     whole input. *)
  let rng = Rng.create ~seed:7 in
  let checked = ref 0 in
  for seed = 1 to 40 do
    ignore seed;
    let params =
      {
        Synthetic.default_batched with
        num_colors = 1 + Rng.int rng 4;
        delta = 1;
        load = 0.3 +. Rng.float rng 0.3;
        horizon = 128;
      }
    in
    let instance = Synthetic.rate_limited (Rng.split rng) params in
    let m = 2 in
    if Par_edf.drop_cost instance ~m = 0 then begin
      incr checked;
      let ds =
        Engine.run
          (Engine.config ~n:m ~mini_rounds:2 ())
          instance Edf_policy.seq_policy
      in
      if ds.dropped <> 0 then
        Alcotest.failf "DS-Seq-EDF dropped %d on a nice input (%s)" ds.dropped
          instance.name
    end
  done;
  if !checked = 0 then Alcotest.fail "no nice inputs generated"

let test_theorem_1_constant_ratio () =
  (* ΔLRU-EDF with n = 8m stays within a small constant of the certified
     OPT(m) lower bound on every rate-limited family *)
  let worst = ref 0.0 in
  List.iter
    (fun (id, instance) ->
      let r, _ = run_lru_edf instance in
      let lb = Offline_bounds.lower_bound instance ~m:(n / 8) in
      let ratio =
        if lb = 0 then if Cost.total r.cost = 0 then 1.0 else infinity
        else float_of_int (Cost.total r.cost) /. float_of_int lb
      in
      if ratio > !worst then worst := ratio;
      if ratio > 60.0 then
        Alcotest.failf "ratio %.1f on %s is not constant-like" ratio id)
    instances;
  (* the point is boundedness; record the worst ratio in the message *)
  Alcotest.(check bool)
    (Printf.sprintf "worst ratio %.2f bounded" !worst)
    true (!worst < 60.0)

let test_lemma_3_9_monotone_executions () =
  (* Lemma 3.9 flavour: on a subsequence of the input, DS-Seq-EDF (and
     Par-EDF) execute no more jobs than on the full input *)
  let rng = Rng.create ~seed:17 in
  for trial = 1 to 12 do
    let sigma =
      Synthetic.rate_limited (Rng.split rng)
        { Synthetic.default_batched with delta = 1; horizon = 128 }
    in
    let alpha = Instance_ops.subsequence ~p:0.6 ~seed:trial sigma in
    let executed instance =
      (Engine.run
         (Engine.config ~n:2 ~mini_rounds:2 ())
         instance Edf_policy.seq_policy)
        .executed
    in
    if executed alpha > executed sigma then
      Alcotest.failf "DS-Seq-EDF executed more on a subsequence (trial %d)"
        trial;
    let par instance = (Par_edf.run instance ~m:2).executed in
    if par alpha > par sigma then
      Alcotest.failf "Par-EDF executed more on a subsequence (trial %d)" trial
  done

let test_lemma_3_6_drop_monotone () =
  (* Lemma 3.6 flavour: the OPT lower bound never increases when jobs
     are removed *)
  let rng = Rng.create ~seed:29 in
  for trial = 1 to 12 do
    let sigma =
      Synthetic.rate_limited (Rng.split rng)
        { Synthetic.default_batched with horizon = 128 }
    in
    let alpha = Instance_ops.subsequence ~p:0.5 ~seed:trial sigma in
    let lb i = Offline_bounds.par_edf_drop_lb i ~m:2 in
    if lb alpha > lb sigma then
      Alcotest.failf "drop lower bound increased on a subsequence (trial %d)"
        trial
  done

let test_engine_determinism () =
  (* two identical runs produce identical results: the whole stack is
     deterministic (no wall-clock, no global RNG) *)
  List.iter
    (fun (id, instance) ->
      let run () =
        let r, elig = run_lru_edf instance in
        (r.cost, r.executed, Array.copy r.final_cache,
         Eligibility.epochs_total elig)
      in
      let c1, e1, f1, ep1 = run () in
      let c2, e2, f2, ep2 = run () in
      if not (Cost.equal c1 c2) || e1 <> e2 || f1 <> f2 || ep1 <> ep2 then
        Alcotest.failf "nondeterministic run on %s" id)
    instances

let test_epoch_consistency () =
  (* total drops split exactly into eligible + ineligible *)
  for_all_instances "epoch consistency" (fun instance ->
      let r, elig = run_lru_edf instance in
      let split =
        Eligibility.eligible_drops elig + Eligibility.ineligible_drops elig
      in
      if split <> r.dropped then
        Error (Printf.sprintf "drop split %d <> dropped %d" split r.dropped)
      else if Eligibility.epochs_total elig < 0 then Error "negative epochs"
      else Ok ())

let () =
  Alcotest.run "paper_lemmas"
    [
      ( "cost bounds",
        [
          Alcotest.test_case "Lemma 3.1 (sub-delta colors)" `Quick
            test_lemma_3_1_sub_delta_colors;
          Alcotest.test_case "Lemma 3.3 (reconfig <= 4 epochs delta)" `Slow
            test_lemma_3_3_reconfig_bound;
          Alcotest.test_case "Lemma 3.4 (ineligible drops <= epochs delta)"
            `Slow test_lemma_3_4_ineligible_drop_bound;
          Alcotest.test_case "Lemma 3.2 chain (eligible drops vs Par-EDF)"
            `Slow test_lemma_3_2_chain_eligible_drops;
        ] );
      ( "EDF optimality",
        [
          Alcotest.test_case "Lemma 3.7 (Par-EDF minimizes drops)" `Slow
            test_lemma_3_7_par_edf_is_drop_lower_bound;
          Alcotest.test_case "Lemma 3.8 (nice inputs)" `Slow
            test_lemma_3_8_nice_inputs;
          Alcotest.test_case "Lemma 3.9 (monotone executions)" `Slow
            test_lemma_3_9_monotone_executions;
          Alcotest.test_case "Lemma 3.6 (monotone drop LB)" `Slow
            test_lemma_3_6_drop_monotone;
        ] );
      ( "Theorem 1",
        [
          Alcotest.test_case "constant ratio vs OPT lower bound" `Slow
            test_theorem_1_constant_ratio;
          Alcotest.test_case "epoch/drop consistency" `Slow
            test_epoch_consistency;
          Alcotest.test_case "determinism" `Slow test_engine_determinism;
        ] );
    ]
