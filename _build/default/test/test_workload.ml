(* Tests for the workload generators: each family produces valid
   instances of its declared layer, deterministically in the seed. *)

open Rrs_core
module Families = Rrs_workload.Families
module Synthetic = Rrs_workload.Synthetic
module Scenarios = Rrs_workload.Scenarios
module Rng = Rrs_prng.Rng

let test_families_registry () =
  Alcotest.(check bool) "nonempty" true (Families.all <> []);
  Alcotest.(check bool) "find works" true
    (Option.is_some (Families.find "uniform"));
  Alcotest.(check bool) "find misses" true
    (Option.is_none (Families.find "nope"));
  let ids = Families.ids () in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_layer_contracts () =
  List.iter
    (fun (f : Families.family) ->
      let i = f.build ~seed:1 in
      if Instance.total_jobs i = 0 then
        Alcotest.failf "%s: empty instance" f.id;
      match f.layer with
      | Families.Rate_limited ->
          if not (Instance.is_rate_limited i) then
            Alcotest.failf "%s: claims rate-limited but is not" f.id;
          if not (Instance.delays_are_powers_of_two i) then
            Alcotest.failf "%s: rate-limited family must have pow2 delays" f.id
      | Families.Batched ->
          if not (Instance.is_batched i) then
            Alcotest.failf "%s: claims batched but is not" f.id
      | Families.Unbatched -> ())
    Families.all

let test_determinism () =
  List.iter
    (fun (f : Families.family) ->
      let a = f.build ~seed:7 in
      let b = f.build ~seed:7 in
      if a.arrivals <> b.arrivals then
        Alcotest.failf "%s: same seed, different instance" f.id;
      let c = f.build ~seed:8 in
      if a.arrivals = c.arrivals then
        Alcotest.failf "%s: different seed, same instance" f.id)
    Families.all

let test_oversized_actually_oversized () =
  (* the Distribute-input family must produce at least one batch above
     its color's delay bound, otherwise it does not exercise splitting *)
  let i =
    Synthetic.batched_oversized (Rng.create ~seed:1)
      { Synthetic.default_batched with load = 2.5 }
  in
  let oversized =
    Array.exists
      (fun (a : Types.arrival) -> a.count > i.delay.(a.color))
      i.arrivals
  in
  Alcotest.(check bool) "has oversized batch" true oversized

let test_unbatched_has_offgrid_arrivals () =
  let i = Synthetic.unbatched (Rng.create ~seed:2) Synthetic.default_unbatched in
  Alcotest.(check bool) "not batched" false (Instance.is_batched i);
  Alcotest.(check bool) "has non-pow2 delay" true
    (not (Instance.delays_are_powers_of_two i))

let test_zipf_skew () =
  (* the hot color must receive clearly more jobs than the coldest *)
  let i =
    Synthetic.zipf_batched (Rng.create ~seed:3) ~s:1.3
      { Synthetic.default_batched with num_colors = 10; horizon = 1024 }
  in
  let per = Instance.jobs_per_color i in
  Alcotest.(check bool)
    (Printf.sprintf "skew: hot=%d cold=%d" per.(0) per.(9))
    true
    (per.(0) > 2 * per.(9))

let test_background_structure () =
  let i = Scenarios.background_shortterm Scenarios.default_background in
  let p = Scenarios.default_background in
  (* last color is the background pile *)
  Alcotest.(check int) "background delay" (1 lsl p.long_exp)
    i.delay.(p.short_colors);
  Alcotest.(check bool) "background pile present" true
    (Instance.jobs_of_color i p.short_colors > 0);
  Alcotest.(check bool) "rate-limited" true (Instance.is_rate_limited i)

let test_router_load_rotates () =
  let i = Scenarios.router Scenarios.default_router in
  Alcotest.(check bool) "rate-limited" true (Instance.is_rate_limited i);
  (* every class sees some traffic over a full cycle *)
  Array.iteri
    (fun c jobs ->
      if jobs = 0 then Alcotest.failf "class %d silent over the horizon" c)
    (Instance.jobs_per_color i)

let test_datacenter_phases () =
  let p = { Scenarios.default_datacenter with phases = 4; services = 8 } in
  let i = Scenarios.datacenter p in
  Alcotest.(check bool) "rate-limited" true (Instance.is_rate_limited i);
  (* arrivals span several phases *)
  let last = Instance.last_arrival_round i in
  Alcotest.(check bool) "covers later phases" true
    (last >= 2 * p.phase_length)

let test_self_similar_burstiness () =
  (* long-range-dependent traffic has visibly higher variability than a
     Poisson stream of the same mean: compare coefficient of variation
     of per-window batch sizes for one color *)
  let i =
    Synthetic.self_similar (Rng.create ~seed:4) Synthetic.default_self_similar
  in
  Alcotest.(check bool) "rate-limited" true (Instance.is_rate_limited i);
  (* heavy-tailed on periods produce long silences: some color must have
     significantly fewer batches than windows *)
  let gaps =
    Array.exists
      (fun c ->
        let d = i.delay.(c) in
        let windows = 1024 / d in
        let batches =
          Array.fold_left
            (fun acc (a : Types.arrival) -> if a.color = c then acc + 1 else acc)
            0 i.arrivals
        in
        batches < (95 * windows) / 100)
      (Array.init i.num_colors Fun.id)
  in
  Alcotest.(check bool) "long silences exist" true gaps

let test_generator_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "zero colors" (fun () ->
      Synthetic.rate_limited (Rng.create ~seed:1)
        { Synthetic.default_batched with num_colors = 0 });
  expect_invalid "bad exponents" (fun () ->
      Synthetic.rate_limited (Rng.create ~seed:1)
        { Synthetic.default_batched with min_exp = 3; max_exp = 1 });
  expect_invalid "bad rate" (fun () ->
      Synthetic.unbatched (Rng.create ~seed:1)
        { Synthetic.default_unbatched with arrival_rate = 0.0 });
  expect_invalid "short >= long" (fun () ->
      Scenarios.background_shortterm
        { Scenarios.default_background with short_exp = 9; long_exp = 9 })

let test_all_families_runnable () =
  (* every family instance runs through its matching solver *)
  List.iter
    (fun (f : Families.family) ->
      let i = f.build ~seed:5 in
      let r =
        match f.layer with
        | Families.Rate_limited ->
            Engine.run (Engine.config ~n:8 ()) i Lru_edf.policy
        | Families.Batched -> Distribute.run i ~n:8
        | Families.Unbatched -> Var_batch.run i ~n:8
      in
      Alcotest.(check int)
        (f.id ^ " conservation")
        (Instance.total_jobs i)
        (r.executed + r.dropped))
    Families.all

let () =
  Alcotest.run "workload"
    [
      ( "registry",
        [
          Alcotest.test_case "registry" `Quick test_families_registry;
          Alcotest.test_case "layer contracts" `Quick test_layer_contracts;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "all runnable" `Slow test_all_families_runnable;
        ] );
      ( "generators",
        [
          Alcotest.test_case "oversized batches" `Quick
            test_oversized_actually_oversized;
          Alcotest.test_case "unbatched off-grid" `Quick
            test_unbatched_has_offgrid_arrivals;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "self-similar burstiness" `Quick
            test_self_similar_burstiness;
          Alcotest.test_case "validation" `Quick test_generator_validation;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "background" `Quick test_background_structure;
          Alcotest.test_case "router" `Quick test_router_load_rotates;
          Alcotest.test_case "datacenter" `Quick test_datacenter_phases;
        ] );
    ]
