(* Tests for the naive baseline policies and the urgency-inversion
   construction that defeats them. *)

open Rrs_core
module Adv = Rrs_workload.Adversarial

let arr round color count = { Types.round; color; count }

let greedy_p : Adv.greedy_params = { n = 8; delta = 4; w_exp = 4; k = 12 }

let test_greedy_params_checked () =
  Alcotest.(check bool) "valid" true (Adv.greedy_check greedy_p = Ok ());
  Alcotest.(check bool) "delta > window" true
    (Result.is_error (Adv.greedy_check { greedy_p with delta = 32 }));
  Alcotest.(check bool) "w >= k" true
    (Result.is_error (Adv.greedy_check { greedy_p with w_exp = 12 }));
  Alcotest.(check bool) "empty pile" true
    (Result.is_error (Adv.greedy_check { greedy_p with n = 8; k = 3 }))

let test_greedy_instance_shape () =
  let i = Adv.greedy_instance greedy_p in
  Alcotest.(check bool) "rate-limited" true (Instance.is_rate_limited i);
  Alcotest.(check int) "colors" 9 i.num_colors;
  (* heavies: 2^k / (2n) each; tight: delta per window over the horizon *)
  Alcotest.(check int) "heavy pile" (4096 / 16) (Instance.jobs_of_color i 0);
  Alcotest.(check int) "tight jobs" (4096 / 16 * 4) (Instance.jobs_of_color i 8);
  (* under-loaded for one offline resource: Par-EDF drops nothing *)
  Alcotest.(check int) "feasible for m=1" 0 (Par_edf.drop_cost i ~m:1)

let test_greedy_backlog_starves_tight_color () =
  let i = Adv.greedy_instance greedy_p in
  let r = Engine.run (Engine.config ~n:8 ()) i Naive_policies.greedy_backlog in
  (* the tight color (id 8) loses every batch while the piles drain *)
  Alcotest.(check bool)
    (Printf.sprintf "tight drops %d > 0" r.drops_by_color.(8))
    true
    (r.drops_by_color.(8) > 32)

let test_lru_edf_serves_tight_color () =
  let i = Adv.greedy_instance greedy_p in
  let r = Engine.run (Engine.config ~n:8 ()) i Lru_edf.policy in
  Alcotest.(check int) "no tight drops" 0 r.drops_by_color.(8)

let test_greedy_drops_grow_with_horizon () =
  let drops k =
    let i = Adv.greedy_instance { greedy_p with k } in
    let r = Engine.run (Engine.config ~n:8 ()) i Naive_policies.greedy_backlog in
    r.dropped
  in
  let d12 = drops 12 and d14 = drops 14 in
  Alcotest.(check bool)
    (Printf.sprintf "drops grow: %d < %d" d12 d14)
    true (d12 * 2 < d14)

let test_round_robin_executes () =
  (* round-robin is churny but must still serve a light load *)
  let i =
    Instance.create ~delta:1 ~delay:[| 4; 4 |]
      ~arrivals:[ arr 0 0 2; arr 0 1 2 ]
      ()
  in
  let r = Engine.run (Engine.config ~n:2 ()) i Naive_policies.round_robin in
  Alcotest.(check int) "all executed" 4 r.executed

let test_hysteresis_reduces_churn () =
  (* two colors with alternating small batches: plain greedy flips the
     cache; hysteresis keeps it put *)
  let i =
    Instance.create ~delta:8 ~delay:[| 2; 2 |]
      ~arrivals:
        (List.concat
           (List.init 16 (fun w ->
                if w mod 2 = 0 then [ arr (2 * w) 0 2; arr (2 * w) 1 1 ]
                else [ arr (2 * w) 0 1; arr (2 * w) 1 2 ])))
      ()
  in
  let churny =
    Engine.run (Engine.config ~n:1 ()) i Naive_policies.greedy_backlog
  in
  let steady =
    Engine.run (Engine.config ~n:1 ()) i
      (Naive_policies.greedy_backlog_hysteresis ~threshold:3)
  in
  Alcotest.(check bool)
    (Printf.sprintf "hysteresis reconfigures less: %d <= %d"
       steady.reconfigurations churny.reconfigurations)
    true
    (steady.reconfigurations <= churny.reconfigurations)

let test_classic_lru_pays_for_the_tail () =
  (* classic LRU reconfigures for sub-delta colors; dLRU never does
     (Lemma 3.1): on a pure-tail instance LRU's reconfig cost is ~delta
     per color while dLRU's is zero *)
  let i =
    Rrs_workload.Synthetic.longtail
      (Rrs_prng.Rng.create ~seed:9)
      { Rrs_workload.Synthetic.default_longtail with hot_colors = 1; tail_colors = 30 }
  in
  let lru = Engine.run (Engine.config ~n:4 ()) i Naive_policies.classic_lru in
  let dlru = Engine.run (Engine.config ~n:4 ()) i Delta_lru.policy in
  Alcotest.(check bool)
    (Printf.sprintf "lru reconfigs %d >> dlru %d" lru.cost.reconfig
       dlru.cost.reconfig)
    true
    (lru.cost.reconfig > 3 * max 1 dlru.cost.reconfig)

let test_classic_lru_recency () =
  (* with one slot, classic LRU holds the most recently requested color *)
  let i =
    Instance.create ~delta:1 ~delay:[| 8; 8 |]
      ~arrivals:
        [
          { Types.round = 0; color = 0; count = 1 };
          { Types.round = 8; color = 1; count = 1 };
        ]
      ()
  in
  let r =
    Engine.run (Engine.config ~n:1 ~record_schedule:true ()) i
      Naive_policies.classic_lru
  in
  Alcotest.(check int) "both executed" 2 r.executed;
  Alcotest.(check (list int)) "ends on color 1" [ 1 ]
    (Array.to_list r.final_cache)

let test_threshold_validation () =
  let i = Instance.create ~delta:1 ~delay:[| 2 |] ~arrivals:[ arr 0 0 1 ] () in
  match
    Engine.run (Engine.config ~n:1 ()) i
      (Naive_policies.greedy_backlog_hysteresis ~threshold:(-1))
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative threshold accepted"

let test_baselines_conserve_jobs () =
  let i = Adv.greedy_instance { greedy_p with k = 10 } in
  List.iter
    (fun factory ->
      let r = Engine.run (Engine.config ~n:4 ()) i factory in
      Alcotest.(check int) "conservation" (Instance.total_jobs i)
        (r.executed + r.dropped))
    [
      Naive_policies.round_robin;
      Naive_policies.greedy_backlog;
      Naive_policies.greedy_backlog_hysteresis ~threshold:2;
    ]

let () =
  Alcotest.run "baselines"
    [
      ( "urgency inversion",
        [
          Alcotest.test_case "params checked" `Quick test_greedy_params_checked;
          Alcotest.test_case "instance shape" `Quick test_greedy_instance_shape;
          Alcotest.test_case "greedy starves tight color" `Quick
            test_greedy_backlog_starves_tight_color;
          Alcotest.test_case "lru-edf serves tight color" `Quick
            test_lru_edf_serves_tight_color;
          Alcotest.test_case "drops grow with horizon" `Quick
            test_greedy_drops_grow_with_horizon;
        ] );
      ( "policies",
        [
          Alcotest.test_case "round robin executes" `Quick
            test_round_robin_executes;
          Alcotest.test_case "hysteresis reduces churn" `Quick
            test_hysteresis_reduces_churn;
          Alcotest.test_case "classic lru pays for tail" `Quick
            test_classic_lru_pays_for_the_tail;
          Alcotest.test_case "classic lru recency" `Quick
            test_classic_lru_recency;
          Alcotest.test_case "threshold validation" `Quick
            test_threshold_validation;
          Alcotest.test_case "conservation" `Quick test_baselines_conserve_jobs;
        ] );
    ]
