(* Tests for the one-call solver facade. *)

open Rrs_core
module Synthetic = Rrs_workload.Synthetic
module Families = Rrs_workload.Families
module Rng = Rrs_prng.Rng

let arr round color count = { Types.round; color; count }

let test_classify () =
  let rate_limited =
    Instance.create ~delta:2 ~delay:[| 4 |] ~arrivals:[ arr 0 0 3 ] ()
  in
  Alcotest.(check bool) "direct" true (Solve.classify rate_limited = Solve.Direct);
  let oversized =
    Instance.create ~delta:2 ~delay:[| 4 |] ~arrivals:[ arr 0 0 9 ] ()
  in
  Alcotest.(check bool) "distributed" true
    (Solve.classify oversized = Solve.Distributed);
  let offgrid =
    Instance.create ~delta:2 ~delay:[| 4 |] ~arrivals:[ arr 3 0 1 ] ()
  in
  Alcotest.(check bool) "pipelined (off-grid)" true
    (Solve.classify offgrid = Solve.Pipelined);
  let odd_delay =
    Instance.create ~delta:2 ~delay:[| 6 |] ~arrivals:[ arr 0 0 2 ] ()
  in
  Alcotest.(check bool) "pipelined (non-pow2 delay)" true
    (Solve.classify odd_delay = Solve.Pipelined)

let test_run_matches_direct_solvers () =
  (* Solve.run must produce exactly what calling the layer directly does *)
  let rng = Rng.create ~seed:4 in
  let rate_limited = Synthetic.rate_limited (Rng.split rng) Synthetic.default_batched in
  let layer, r = Solve.run rate_limited ~n:8 in
  let direct = Engine.run (Engine.config ~n:8 ()) rate_limited Lru_edf.policy in
  Alcotest.(check bool) "layer" true (layer = Solve.Direct);
  Alcotest.(check bool) "same cost" true (Cost.equal r.cost direct.cost);
  let unbatched = Synthetic.unbatched (Rng.split rng) Synthetic.default_unbatched in
  let layer, r = Solve.run unbatched ~n:8 in
  let direct = Var_batch.run unbatched ~n:8 in
  Alcotest.(check bool) "pipeline layer" true (layer = Solve.Pipelined);
  Alcotest.(check bool) "same pipeline cost" true (Cost.equal r.cost direct.cost)

let test_run_validates_n () =
  let i = Instance.create ~delta:1 ~delay:[| 2 |] ~arrivals:[] () in
  match Solve.run i ~n:6 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 6 accepted"

let test_conservation_across_layers () =
  List.iter
    (fun (f : Families.family) ->
      let instance = f.build ~seed:9 in
      let _, r = Solve.run instance ~n:8 in
      Alcotest.(check int)
        (f.id ^ " conservation")
        (Instance.total_jobs instance)
        (r.executed + r.dropped))
    Families.all

let test_ratio_upper_bound () =
  let i =
    Instance.create ~delta:2 ~delay:[| 4 |] ~arrivals:[ arr 0 0 4 ] ()
  in
  let ratio = Solve.ratio_upper_bound i ~n:8 ~m:1 in
  Alcotest.(check bool) "finite and positive" true (ratio > 0.0 && ratio < 10.0);
  let empty = Instance.create ~delta:2 ~delay:[| 4 |] ~arrivals:[] () in
  Alcotest.(check bool) "empty is 1.0" true
    (Solve.ratio_upper_bound empty ~n:8 ~m:1 = 1.0)

let test_layer_strings () =
  Alcotest.(check bool) "strings distinct" true
    (List.length
       (List.sort_uniq compare
          (List.map Solve.layer_to_string
             [ Solve.Direct; Solve.Distributed; Solve.Pipelined ]))
    = 3)

let () =
  Alcotest.run "solve"
    [
      ( "facade",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "matches direct solvers" `Quick
            test_run_matches_direct_solvers;
          Alcotest.test_case "validates n" `Quick test_run_validates_n;
          Alcotest.test_case "conservation" `Slow
            test_conservation_across_layers;
          Alcotest.test_case "ratio upper bound" `Quick test_ratio_upper_bound;
          Alcotest.test_case "layer strings" `Quick test_layer_strings;
        ] );
    ]
