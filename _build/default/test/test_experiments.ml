(* Smoke/regression tests for the experiment harness: every experiment
   runs, produces a non-empty table, and its findings report success
   (the finding strings contain explicit failure markers when a paper
   claim does not hold on the run). *)

module Registry = Rrs_experiments.Registry
module Harness = Rrs_experiments.Harness

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i =
    i + n <= h && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

let failure_markers = [ "investigate"; "VIOLATED"; "did not" ]

let check_outcome (outcome : Harness.outcome) =
  if Rrs_report.Table.row_count outcome.table = 0 then
    Alcotest.failf "%s: empty table" outcome.id;
  if outcome.findings = [] then Alcotest.failf "%s: no findings" outcome.id;
  List.iter
    (fun finding ->
      List.iter
        (fun marker ->
          if contains ~needle:marker finding then
            Alcotest.failf "%s: claim not reproduced: %s" outcome.id finding)
        failure_markers)
    outcome.findings

let test_registry_complete () =
  (* every id of the DESIGN.md index is registered *)
  let expected =
    [
      "EXP-A"; "EXP-B"; "EXP-1"; "EXP-2"; "EXP-3"; "EXP-4"; "EXP-5"; "EXP-6";
      "EXP-7"; "EXP-8"; "EXP-9"; "EXP-10"; "EXP-11"; "EXP-12"; "EXP-13";
    ]
  in
  Alcotest.(check (list string)) "ids" expected (Registry.ids ());
  Alcotest.(check bool) "find hit" true (Option.is_some (Registry.find "EXP-A"));
  Alcotest.(check bool) "find miss" true (Option.is_none (Registry.find "EXP-Z"))

let experiment_case (id, run) =
  Alcotest.test_case id `Slow (fun () ->
      let outcome = run () in
      Alcotest.(check string) "id matches" id outcome.Harness.id;
      check_outcome outcome)

let () =
  Alcotest.run "experiments"
    [
      ("registry", [ Alcotest.test_case "complete" `Quick test_registry_complete ]);
      ("runs", List.map experiment_case Registry.all);
    ]
