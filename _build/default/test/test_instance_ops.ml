(* Tests for the instance algebra and the composite generators. *)

open Rrs_core
module Composite = Rrs_workload.Composite
module Rng = Rrs_prng.Rng

let arr round color count = { Types.round; color; count }

let base =
  Instance.create ~name:"base" ~delta:2 ~delay:[| 4; 2 |]
    ~arrivals:[ arr 0 0 3; arr 4 0 1; arr 0 1 2 ]
    ()

let test_shift () =
  let shifted = Instance_ops.shift ~rounds:6 base in
  Alcotest.(check int) "jobs preserved" (Instance.total_jobs base)
    (Instance.total_jobs shifted);
  Alcotest.(check int) "first round" 6 shifted.arrivals.(0).round;
  Alcotest.(check int) "horizon moved" (base.horizon + 6) shifted.horizon;
  match Instance_ops.shift ~rounds:(-1) base with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative shift accepted"

let test_union () =
  let other =
    Instance.create ~delta:2 ~delay:[| 8 |] ~arrivals:[ arr 0 0 5 ] ()
  in
  let u = Instance_ops.union base other in
  Alcotest.(check int) "colors" 3 u.num_colors;
  Alcotest.(check (list int)) "delays" [ 4; 2; 8 ] (Array.to_list u.delay);
  Alcotest.(check int) "jobs" 11 (Instance.total_jobs u);
  Alcotest.(check int) "renumbered color" 5 (Instance.jobs_of_color u 2);
  let bad = Instance.create ~delta:3 ~delay:[| 2 |] ~arrivals:[] () in
  match Instance_ops.union base bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "delta mismatch accepted"

let test_overlay () =
  let extra =
    Instance.create ~delta:2 ~delay:[| 4; 2 |] ~arrivals:[ arr 0 0 2 ] ()
  in
  let o = Instance_ops.overlay base extra in
  Alcotest.(check int) "same colors" 2 o.num_colors;
  Alcotest.(check int) "merged batch" 5 o.arrivals.(0).count;
  let bad = Instance.create ~delta:2 ~delay:[| 4; 4 |] ~arrivals:[] () in
  match Instance_ops.overlay base bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "delay mismatch accepted"

let test_restrict () =
  let r = Instance_ops.restrict_colors ~keep:(fun c -> c = 1) base in
  Alcotest.(check int) "one color" 1 r.num_colors;
  Alcotest.(check (list int)) "delay kept" [ 2 ] (Array.to_list r.delay);
  Alcotest.(check int) "jobs" 2 (Instance.total_jobs r)

let test_scale () =
  let s = Instance_ops.scale_counts ~factor:3 base in
  Alcotest.(check int) "tripled" (3 * Instance.total_jobs base)
    (Instance.total_jobs s);
  Alcotest.(check bool) "no longer rate-limited" false
    (Instance.is_rate_limited s);
  let z = Instance_ops.scale_counts ~factor:0 base in
  Alcotest.(check int) "zeroed" 0 (Instance.total_jobs z)

let test_subsequence () =
  let all = Instance_ops.subsequence ~p:1.0 ~seed:1 base in
  Alcotest.(check int) "p=1 keeps all" (Instance.total_jobs base)
    (Instance.total_jobs all);
  let none = Instance_ops.subsequence ~p:0.0 ~seed:1 base in
  Alcotest.(check int) "p=0 keeps none" 0 (Instance.total_jobs none);
  (* deterministic in the seed *)
  let a = Instance_ops.subsequence ~p:0.5 ~seed:7 base in
  let b = Instance_ops.subsequence ~p:0.5 ~seed:7 base in
  Alcotest.(check bool) "deterministic" true (a.arrivals = b.arrivals);
  let big =
    Instance.create ~delta:1 ~delay:[| 2 |] ~arrivals:[ arr 0 0 10_000 ] ()
  in
  let half = Instance_ops.subsequence ~p:0.5 ~seed:3 big in
  let kept = Instance.total_jobs half in
  Alcotest.(check bool)
    (Printf.sprintf "roughly half kept (%d)" kept)
    true
    (kept > 4_500 && kept < 5_500)

let prop_union_job_sum =
  QCheck.Test.make ~count:100 ~name:"union preserves the job sum"
    QCheck.(pair (int_range 0 5) (int_range 0 5))
    (fun (a_jobs, b_jobs) ->
      let mk jobs =
        Instance.create ~delta:1 ~delay:[| 2 |]
          ~arrivals:(if jobs = 0 then [] else [ arr 0 0 jobs ])
          ()
      in
      Instance.total_jobs (Instance_ops.union (mk a_jobs) (mk b_jobs))
      = a_jobs + b_jobs)

let test_composites_run () =
  let fc =
    Composite.flash_crowd ~seed:3 ~base_load:0.3 ~spike_load:2.0 ~spike_at:128
      ~horizon:256
  in
  Alcotest.(check bool) "flash crowd batched" true (Instance.is_batched fc);
  let mt = Composite.mixed_tenants ~seed:3 in
  Alcotest.(check bool) "mixed tenants rate-limited" true
    (Instance.is_rate_limited mt);
  let an = Composite.adversarial_with_noise ~seed:3 in
  Alcotest.(check bool) "adv+noise rate-limited" true
    (Instance.is_rate_limited an);
  (* the adversarial core still starves dLRU inside the noise *)
  let r = Engine.run (Engine.config ~n:8 ()) an Delta_lru.policy in
  Alcotest.(check bool) "dlru still hurts" true (r.dropped >= 256)

let () =
  Alcotest.run "instance_ops"
    [
      ( "algebra",
        [
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "overlay" `Quick test_overlay;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "subsequence" `Quick test_subsequence;
          QCheck_alcotest.to_alcotest prop_union_job_sum;
        ] );
      ( "composites",
        [ Alcotest.test_case "generators run" `Quick test_composites_run ] );
    ]
