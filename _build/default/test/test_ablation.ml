(* Tests for the tunable ΔLRU-EDF variant used by the ablation
   experiments. *)

open Rrs_core
module Adv = Rrs_workload.Adversarial

let arr round color count = { Types.round; color; count }

let mk ?(delta = 2) ~delay arrivals = Instance.create ~delta ~delay ~arrivals ()

let run ~n instance (instr : Lru_edf.instrumented) =
  Engine.run_policy (Engine.config ~n ()) instance instr.policy

let test_paper_point_equals_make () =
  (* make_tuned at the paper's parameters must behave exactly like make *)
  let instance =
    Adv.dlru_instance { n = 8; delta = 2; j = 5; k = 7 }
  in
  let a = run ~n:8 instance (Lru_edf.make instance ~n:8) in
  let b =
    run ~n:8 instance
      (Lru_edf.make_tuned ~lru_slots:2 ~distinct_slots:4 ~replicated:true
         instance ~n:8)
  in
  Alcotest.(check bool) "same cost" true (Cost.equal a.cost b.cost);
  Alcotest.(check int) "same executions" a.executed b.executed

let test_full_lru_share_matches_dlru () =
  (* lru_slots = distinct_slots: the EDF quota is zero, so the scheme
     reduces to ΔLRU (same cached set each round) *)
  let instance = Adv.dlru_instance { n = 8; delta = 2; j = 5; k = 7 } in
  let tuned =
    run ~n:8 instance
      (Lru_edf.make_tuned ~lru_slots:4 ~distinct_slots:4 ~replicated:true
         instance ~n:8)
  in
  let dlru =
    Engine.run (Engine.config ~n:8 ()) instance Delta_lru.policy
  in
  Alcotest.(check bool) "same cost as dlru" true
    (Cost.equal tuned.cost dlru.cost)

let test_zero_lru_share_matches_edf () =
  let instance = Adv.edf_instance { n = 4; delta = 6; j = 3; k = 6 } in
  let tuned =
    run ~n:4 instance
      (Lru_edf.make_tuned ~lru_slots:0 ~distinct_slots:2 ~replicated:true
         instance ~n:4)
  in
  let edf = Engine.run (Engine.config ~n:4 ()) instance Edf_policy.policy in
  Alcotest.(check bool) "same cost as edf" true (Cost.equal tuned.cost edf.cost)

let test_flat_layout_size_checks () =
  let i = mk ~delay:[| 2 |] [] in
  (match
     Lru_edf.make_tuned ~lru_slots:2 ~distinct_slots:4 ~replicated:false i ~n:8
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "flat layout with wrong n accepted");
  (match
     Lru_edf.make_tuned ~lru_slots:5 ~distinct_slots:4 ~replicated:true i ~n:8
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized lru share accepted");
  (* valid flat layout runs *)
  let i2 = mk ~delta:1 ~delay:[| 2; 2 |] [ arr 0 0 2; arr 0 1 2 ] in
  let r =
    run ~n:4 i2
      (Lru_edf.make_tuned ~lru_slots:2 ~distinct_slots:4 ~replicated:false i2
         ~n:4)
  in
  Alcotest.(check int) "flat layout serves everything" 0 r.dropped

let test_flat_layout_caches_distinct () =
  (* without replication every resource may hold a distinct color *)
  let i =
    mk ~delta:1 ~delay:[| 2; 2; 2; 2 |]
      [ arr 0 0 2; arr 0 1 2; arr 0 2 2; arr 0 3 2 ]
  in
  let instr =
    Lru_edf.make_tuned ~lru_slots:2 ~distinct_slots:4 ~replicated:false i ~n:4
  in
  let r = Engine.run_policy (Engine.config ~n:4 ~record_schedule:true ()) i instr.policy in
  let distinct = List.sort_uniq compare (Array.to_list r.final_cache) in
  Alcotest.(check int) "four distinct colors" 4 (List.length distinct);
  Alcotest.(check int) "no drops" 0 r.dropped

let () =
  Alcotest.run "ablation"
    [
      ( "make_tuned",
        [
          Alcotest.test_case "paper point = make" `Quick
            test_paper_point_equals_make;
          Alcotest.test_case "full LRU share = dlru" `Quick
            test_full_lru_share_matches_dlru;
          Alcotest.test_case "zero LRU share = edf" `Quick
            test_zero_lru_share_matches_edf;
          Alcotest.test_case "size checks" `Quick test_flat_layout_size_checks;
          Alcotest.test_case "flat layout distinct" `Quick
            test_flat_layout_caches_distinct;
        ] );
    ]
