lib/stats/running.mli:
