lib/stats/summary.ml: Array Format List Running Stdlib
