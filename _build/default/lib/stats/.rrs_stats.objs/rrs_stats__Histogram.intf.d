lib/stats/histogram.mli:
