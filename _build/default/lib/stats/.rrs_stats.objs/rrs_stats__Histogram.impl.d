lib/stats/histogram.ml: Rrs_dstruct Stdlib
