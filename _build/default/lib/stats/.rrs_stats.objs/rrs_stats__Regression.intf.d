lib/stats/regression.mli:
