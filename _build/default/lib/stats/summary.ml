type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.percentile";
  if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let of_array a =
  if Array.length a = 0 then invalid_arg "Summary.of_array";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let running = Running.create () in
  Array.iter (Running.add running) sorted;
  {
    count = Array.length a;
    mean = Running.mean running;
    stddev = Running.stddev running;
    min = sorted.(0);
    p25 = percentile sorted 0.25;
    median = percentile sorted 0.5;
    p75 = percentile sorted 0.75;
    p90 = percentile sorted 0.9;
    p99 = percentile sorted 0.99;
    max = sorted.(Array.length sorted - 1);
  }

let of_list xs = of_array (Array.of_list xs)

let geometric_mean xs =
  match xs with
  | [] -> invalid_arg "Summary.geometric_mean"
  | _ ->
      let n = List.length xs in
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Summary.geometric_mean"
            else acc +. log x)
          0.0 xs
      in
      exp (log_sum /. float_of_int n)

let pp fmt t =
  Format.fprintf fmt
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    t.count t.mean t.stddev t.min t.median t.p90 t.p99 t.max
