(** Least-squares line fitting.

    Used by the lower-bound experiments (EXP-A, EXP-B) to estimate the
    growth exponent of a competitive-ratio curve: fitting
    [log ratio ~ a + b * x] and reporting the slope [b]. *)

type fit = { slope : float; intercept : float; r2 : float }

val linear : (float * float) list -> fit
(** Ordinary least squares on [(x, y)] points.
    @raise Invalid_argument with fewer than two distinct x values. *)

val log_linear : (float * float) list -> fit
(** Fit [ln y ~ a + b x]; all [y] must be positive.
    @raise Invalid_argument otherwise. *)

val doubling_slope : (float * float) list -> float
(** Convenience: slope of [log2 y] against [x] — the per-unit-of-x
    doubling rate.  A value near 1.0 means "y doubles each step". *)
