(** Batch summaries of float samples: percentiles, five-number summary,
    and geometric means.  Works on materialised samples (sorting once),
    complementing the streaming [Running] module. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val of_list : float list -> t
(** @raise Invalid_argument on an empty list. *)

val of_array : float array -> t
(** The array is not modified.  @raise Invalid_argument on empty input. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [sorted] ascending and [0 <= q <= 1], using
    linear interpolation between closest ranks. *)

val geometric_mean : float list -> float
(** Geometric mean of positive samples.
    @raise Invalid_argument if empty or any sample is [<= 0]. *)

val pp : Format.formatter -> t -> unit
