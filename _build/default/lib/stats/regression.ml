type fit = { slope : float; intercept : float; r2 : float }

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear";
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let nf = float_of_int n in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = List.fold_left (fun a (x, _) -> a +. ((x -. mx) *. (x -. mx))) 0.0 points in
  let sxy =
    List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0.0 points
  in
  let syy = List.fold_left (fun a (_, y) -> a +. ((y -. my) *. (y -. my))) 0.0 points in
  if sxx = 0.0 then invalid_arg "Regression.linear: degenerate x";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if syy = 0.0 then 1.0 else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r2 }

let log_linear points =
  let transformed =
    List.map
      (fun (x, y) ->
        if y <= 0.0 then invalid_arg "Regression.log_linear" else (x, log y))
      points
  in
  linear transformed

let doubling_slope points =
  let fit = log_linear points in
  fit.slope /. log 2.0
