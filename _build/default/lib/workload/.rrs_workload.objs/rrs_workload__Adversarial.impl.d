lib/workload/adversarial.ml: Array Instance List Printf Rrs_core Static_policy Types
