lib/workload/families.ml: Composite List Rrs_core Rrs_prng Scenarios Synthetic
