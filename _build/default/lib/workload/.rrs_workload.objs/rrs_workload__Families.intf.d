lib/workload/families.mli: Rrs_core
