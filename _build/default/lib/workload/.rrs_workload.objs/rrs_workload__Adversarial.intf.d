lib/workload/adversarial.mli: Rrs_core
