lib/workload/scenarios.mli: Rrs_core
