lib/workload/scenarios.ml: Array Float Fun Instance Rrs_core Rrs_prng Types
