lib/workload/synthetic.ml: Array Float Instance Rrs_core Rrs_prng Types
