lib/workload/synthetic.mli: Rrs_core Rrs_prng
