lib/workload/composite.ml: Adversarial Array Instance Instance_ops List Rrs_core Rrs_prng Scenarios Synthetic Types
