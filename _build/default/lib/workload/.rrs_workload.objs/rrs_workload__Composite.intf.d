lib/workload/composite.mli: Rrs_core
