(** Composite workloads assembled with the {!Rrs_core.Instance_ops}
    algebra — scenarios whose structure comes from combining simpler
    generators rather than from a single stochastic model. *)

val flash_crowd :
  seed:int ->
  base_load:float ->
  spike_load:float ->
  spike_at:int ->
  horizon:int ->
  Rrs_core.Instance.t
(** A steady low-load service mix overlaid with a short, violent load
    spike starting at round [spike_at] — the flash-crowd pattern of web
    workloads.  Batched (the spike can push batches past [D_ℓ]). *)

val mixed_tenants : seed:int -> Rrs_core.Instance.t
(** Two tenant populations side by side in one resource pool: a bursty
    tenant and a router-like tenant, disjoint color ranges
    ({!Rrs_core.Instance_ops.union}).  Rate-limited. *)

val adversarial_with_noise : seed:int -> Rrs_core.Instance.t
(** The Appendix-A construction running alongside benign random
    traffic — checks that the lower-bound behaviour survives noise.
    Rate-limited. *)
