open Rrs_core
module Rng = Rrs_prng.Rng

type batched_params = {
  num_colors : int;
  delta : int;
  min_exp : int;
  max_exp : int;
  horizon : int;
  batch_probability : float;
  load : float;
}

let default_batched =
  {
    num_colors = 12;
    delta = 4;
    min_exp = 1;
    max_exp = 5;
    horizon = 512;
    batch_probability = 0.7;
    load = 0.8;
  }

let check_batched p =
  if p.num_colors < 1 then invalid_arg "batched_params: num_colors < 1";
  if p.delta < 1 then invalid_arg "batched_params: delta < 1";
  if p.min_exp < 0 || p.max_exp < p.min_exp then
    invalid_arg "batched_params: bad exponent range";
  if p.horizon < 1 then invalid_arg "batched_params: horizon < 1"

let random_delays rng p =
  Array.init p.num_colors (fun _ -> 1 lsl Rng.int_in rng p.min_exp p.max_exp)

(* per-color weights: [1.0] everywhere for the uniform generators, a Zipf
   profile for the popularity-skewed one *)
let batched_gen ?(weights = [||]) ~clamp rng p =
  check_batched p;
  let delay = random_delays rng p in
  let arrivals = ref [] in
  for color = 0 to p.num_colors - 1 do
    let d = delay.(color) in
    let weight =
      if color < Array.length weights then weights.(color) else 1.0
    in
    let mean = p.load *. weight *. float_of_int d in
    let windows = p.horizon / d in
    for w = 0 to windows - 1 do
      if Rng.bernoulli rng p.batch_probability then begin
        let count = Rng.poisson rng ~mean in
        let count = if clamp then min count d else count in
        if count > 0 then
          arrivals :=
            { Types.round = w * d; color; count } :: !arrivals
      end
    done
  done;
  (delay, !arrivals)

let rate_limited rng p =
  let delay, arrivals = batched_gen ~clamp:true rng p in
  Instance.create ~name:"rate-limited" ~delta:p.delta ~delay ~arrivals ()

let batched_oversized rng p =
  let delay, arrivals = batched_gen ~clamp:false rng p in
  Instance.create ~name:"batched-oversized" ~delta:p.delta ~delay ~arrivals ()

let zipf_batched rng ~s p =
  check_batched p;
  (* popularity profile: color c gets weight proportional to (c+1)^-s,
     normalised so the average weight is 1 *)
  let raw =
    Array.init p.num_colors (fun c -> 1.0 /. (float_of_int (c + 1) ** s))
  in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let weights =
    Array.map (fun w -> w *. float_of_int p.num_colors /. total) raw
  in
  let delay, arrivals = batched_gen ~weights ~clamp:true rng p in
  Instance.create ~name:"zipf-batched" ~delta:p.delta ~delay ~arrivals ()

type bursty_params = {
  base : batched_params;
  on_to_off : float;
  off_to_on : float;
}

let default_bursty =
  { base = default_batched; on_to_off = 0.25; off_to_on = 0.2 }

let bursty rng p =
  check_batched p.base;
  let base = p.base in
  let delay = random_delays rng base in
  let arrivals = ref [] in
  for color = 0 to base.num_colors - 1 do
    let d = delay.(color) in
    let windows = base.horizon / d in
    let on = ref (Rng.bool rng) in
    for w = 0 to windows - 1 do
      if !on then begin
        let count = min d (Rng.poisson rng ~mean:(base.load *. float_of_int d)) in
        if count > 0 then
          arrivals := { Types.round = w * d; color; count } :: !arrivals
      end;
      let flip =
        if !on then Rng.bernoulli rng p.on_to_off
        else Rng.bernoulli rng p.off_to_on
      in
      if flip then on := not !on
    done
  done;
  Instance.create ~name:"bursty" ~delta:base.delta ~delay ~arrivals:!arrivals ()

type self_similar_params = {
  base : batched_params;
  sources : int;
  tail : float;
}

let default_self_similar =
  {
    base = { default_batched with num_colors = 8; horizon = 1024 };
    sources = 3;
    tail = 1.4;
  }

let self_similar rng p =
  check_batched p.base;
  if p.sources < 1 then invalid_arg "self_similar: sources < 1";
  if p.tail <= 1.0 then invalid_arg "self_similar: tail must exceed 1";
  let base = p.base in
  let delay = random_delays rng base in
  let arrivals = ref [] in
  for color = 0 to base.num_colors - 1 do
    let d = delay.(color) in
    let windows = base.horizon / d in
    (* per-window active-source counts from aggregated on/off sources
       with Pareto period lengths *)
    let active = Array.make windows 0 in
    for _ = 1 to p.sources do
      let rng = Rng.split rng in
      let w = ref 0 in
      let on = ref (Rng.bool rng) in
      while !w < windows do
        let span =
          int_of_float (Float.round (Rng.pareto rng ~shape:p.tail ~scale:1.0))
        in
        let span = max 1 span in
        if !on then
          for i = !w to min (windows - 1) (!w + span - 1) do
            active.(i) <- active.(i) + 1
          done;
        w := !w + span;
        on := not !on
      done
    done;
    Array.iteri
      (fun w sources_on ->
        if sources_on > 0 then begin
          (* scale the batch to the window width, clamp to rate limit *)
          let count =
            min d (sources_on * max 1 (d / p.sources))
          in
          if count > 0 then
            arrivals := { Types.round = w * d; color; count } :: !arrivals
        end)
      active
  done;
  Instance.create ~name:"self-similar" ~delta:base.delta ~delay
    ~arrivals:!arrivals ()

type longtail_params = {
  hot_colors : int;
  tail_colors : int;
  delta : int;
  exp : int;
  windows : int;
  hot_load : float;
  seed_jobs : int;
}

let default_longtail =
  {
    hot_colors = 3;
    tail_colors = 40;
    delta = 8;
    exp = 3;
    windows = 64;
    hot_load = 0.8;
    seed_jobs = 3;
  }

let longtail rng p =
  if p.hot_colors < 1 || p.tail_colors < 0 then
    invalid_arg "longtail: bad color counts";
  if p.seed_jobs >= p.delta then
    invalid_arg "longtail: tail colors must stay below delta";
  let d = 1 lsl p.exp in
  if p.seed_jobs > d then invalid_arg "longtail: seed_jobs exceed the window";
  let num_colors = p.hot_colors + p.tail_colors in
  let delay = Array.make num_colors d in
  let arrivals = ref [] in
  (* hot colors: sustained batches in every window *)
  for color = 0 to p.hot_colors - 1 do
    for w = 0 to p.windows - 1 do
      let count = min d (Rng.poisson rng ~mean:(p.hot_load *. float_of_int d)) in
      if count > 0 then
        arrivals := { Types.round = w * d; color; count } :: !arrivals
    done
  done;
  (* tail colors: one small batch each, at a random window *)
  for color = p.hot_colors to num_colors - 1 do
    let w = Rng.int rng p.windows in
    arrivals := { Types.round = w * d; color; count = p.seed_jobs } :: !arrivals
  done;
  Instance.create ~name:"longtail" ~delta:p.delta ~delay ~arrivals:!arrivals ()

type unbatched_params = {
  num_colors : int;
  delta : int;
  min_delay : int;
  max_delay : int;
  horizon : int;
  arrival_rate : float;
  max_batch : int;
}

let default_unbatched =
  {
    num_colors = 10;
    delta = 4;
    min_delay = 3;
    max_delay = 40;
    horizon = 400;
    arrival_rate = 0.25;
    max_batch = 6;
  }

let unbatched rng p =
  if p.num_colors < 1 then invalid_arg "unbatched_params: num_colors < 1";
  if p.delta < 1 then invalid_arg "unbatched_params: delta < 1";
  if p.min_delay < 1 || p.max_delay < p.min_delay then
    invalid_arg "unbatched_params: bad delay range";
  if p.arrival_rate <= 0.0 || p.arrival_rate > 1.0 then
    invalid_arg "unbatched_params: arrival_rate must be in (0, 1]";
  let delay =
    Array.init p.num_colors (fun _ -> Rng.int_in rng p.min_delay p.max_delay)
  in
  let arrivals = ref [] in
  for color = 0 to p.num_colors - 1 do
    (* geometric inter-arrival gaps ~ Bernoulli process per round *)
    let round = ref (Rng.geometric rng ~p:p.arrival_rate) in
    while !round < p.horizon do
      let count = 1 + Rng.int rng p.max_batch in
      arrivals := { Types.round = !round; color; count } :: !arrivals;
      round := !round + 1 + Rng.geometric rng ~p:p.arrival_rate
    done
  done;
  Instance.create ~name:"unbatched" ~delta:p.delta ~delay ~arrivals:!arrivals ()
