(** Randomised workload generators.

    Everything is driven by the deterministic {!Rrs_prng.Rng}, so a
    (generator, seed) pair fully determines the instance.  Generators
    come in three flavours matching the paper's three problem layers:

    - {e rate-limited batched} inputs feed ΔLRU-EDF directly (Theorem 1);
    - {e batched} inputs (batches may exceed [D_ℓ]) exercise Distribute
      (Theorem 2);
    - {e unbatched} inputs (arbitrary rounds, arbitrary delay bounds)
      exercise the full VarBatch pipeline (Theorem 3). *)

type batched_params = {
  num_colors : int;
  delta : int;
  min_exp : int;  (** delay bounds drawn uniformly from [2^min_exp .. ] *)
  max_exp : int;  (** ... up to [2^max_exp] *)
  horizon : int;
  batch_probability : float;  (** chance a given batch window fires *)
  load : float;  (** mean batch size as a fraction of [D_ℓ] *)
}

val default_batched : batched_params

val rate_limited : Rrs_prng.Rng.t -> batched_params -> Rrs_core.Instance.t
(** Power-of-two delays, arrivals only at multiples of [D_ℓ], batch sizes
    Poisson([load * D_ℓ]) clamped into [0, D_ℓ]. *)

val batched_oversized :
  Rrs_prng.Rng.t -> batched_params -> Rrs_core.Instance.t
(** Same but batch sizes are not clamped ([load] may exceed 1), so
    batches can exceed [D_ℓ] — input for Distribute. *)

val zipf_batched :
  Rrs_prng.Rng.t -> s:float -> batched_params -> Rrs_core.Instance.t
(** Rate-limited, with per-color load scaled by a Zipf(s) popularity over
    colors — a few hot services and a long tail. *)

type bursty_params = {
  base : batched_params;
  on_to_off : float;  (** per-window probability of leaving the ON state *)
  off_to_on : float;
}

val default_bursty : bursty_params

val bursty : Rrs_prng.Rng.t -> bursty_params -> Rrs_core.Instance.t
(** Rate-limited; each color's batch windows follow a two-state Markov
    chain: full-rate batches while ON, silence while OFF. *)

type self_similar_params = {
  base : batched_params;
  sources : int;  (** on/off sources aggregated per color *)
  tail : float;  (** Pareto tail index of on/off period lengths; values
                     in (1, 2) give long-range-dependent traffic *)
}

val default_self_similar : self_similar_params

val self_similar : Rrs_prng.Rng.t -> self_similar_params -> Rrs_core.Instance.t
(** Long-range-dependent traffic in the style of aggregated heavy-tailed
    on/off sources (the classical self-similarity model for packet
    traffic): each color aggregates [sources] independent sources whose
    on and off period lengths (in batch windows) are Pareto([tail]);
    a window's batch size is the number of active sources, clamped into
    [0, D_ℓ].  Rate-limited. *)

type longtail_params = {
  hot_colors : int;  (** colors with sustained load *)
  tail_colors : int;  (** colors with fewer than [delta] total jobs *)
  delta : int;
  exp : int;  (** shared delay bound 2^exp *)
  windows : int;
  hot_load : float;
  seed_jobs : int;  (** jobs per tail color, forced < delta *)
}

val default_longtail : longtail_params

val longtail : Rrs_prng.Rng.t -> longtail_params -> Rrs_core.Instance.t
(** A few hot colors plus a long tail of colors whose total work is
    below [Δ] — the input class where caching decisions must weigh the
    reconfiguration cost against the whole future value of a color
    (Lemma 3.1 / EXP-13).  Rate-limited.
    @raise Invalid_argument if [seed_jobs >= delta] or
    [seed_jobs > 2^exp]. *)

type unbatched_params = {
  num_colors : int;
  delta : int;
  min_delay : int;  (** arbitrary (not power-of-two) delays allowed *)
  max_delay : int;
  horizon : int;
  arrival_rate : float;  (** mean arrivals per round per color *)
  max_batch : int;
}

val default_unbatched : unbatched_params

val unbatched : Rrs_prng.Rng.t -> unbatched_params -> Rrs_core.Instance.t
(** Jobs arrive at arbitrary rounds (geometric gaps), with arbitrary
    integer delay bounds — the general [Δ | 1 | D_ℓ | 1] problem. *)
