(** Named workload families — the registry the CLI and the benchmark
    harness enumerate.

    A family maps a seed to an instance; every family also declares which
    problem layer it feeds (rate-limited / batched / unbatched) so
    harness code can pick the right solver. *)

type layer = Rate_limited | Batched | Unbatched

type family = {
  id : string;
  description : string;
  layer : layer;
  build : seed:int -> Rrs_core.Instance.t;
}

val all : family list
(** Every registered family, stable order. *)

val find : string -> family option
val ids : unit -> string list

val layer_to_string : layer -> string
