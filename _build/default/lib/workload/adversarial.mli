(** The paper's two lower-bound constructions (Appendices A and B),
    parameterised exactly as in the text, plus the clairvoyant OFF
    schedules the appendices compare against.

    Both appendices give OFF a single resource; the oracles here are
    valid offline schedules (hence upper bounds on OPT), which is the
    safe direction for demonstrating that a ratio grows. *)

(** {2 Appendix A — ΔLRU is not resource competitive} *)

type dlru_params = {
  n : int;  (** resources given to the online algorithm; even, >= 2 *)
  delta : int;
  j : int;  (** short-term delay bound exponent: D = 2^j *)
  k : int;  (** long-term delay bound exponent: D = 2^k *)
}

val dlru_check : dlru_params -> (unit, string) result
(** Checks the constraint [2^k > 2^(j+1) > n * delta] (and basic
    sanity). *)

val dlru_instance : dlru_params -> Rrs_core.Instance.t
(** [n/2] short-term colors (ids [0 .. n/2-1], delay [2^j]) receiving
    [delta] jobs at every multiple of [2^j] below [2^k]; one long-term
    color (id [n/2], delay [2^k]) receiving [2^k] jobs at round 0.
    Rate-limited and batched.
    @raise Invalid_argument when {!dlru_check} fails. *)

val dlru_off : dlru_params -> Rrs_core.Policy.factory
(** The appendix's OFF: cache the long-term color throughout (run with
    [m = 1] resource).  Cost [delta + 2^(k-j-1) * n * delta]. *)

(** {2 Appendix B — EDF is not resource competitive} *)

type edf_params = {
  n : int;  (** even, >= 2 *)
  delta : int;
  j : int;  (** the short color's delay exponent *)
  k : int;  (** the smallest long color's delay exponent *)
}

val edf_check : edf_params -> (unit, string) result
(** Checks [2^k > 2^j > delta > n]. *)

val edf_instance : edf_params -> Rrs_core.Instance.t
(** One short color (id 0, delay [2^j]) receiving [delta] jobs at every
    multiple of [2^j] below [2^(k-1)]; [n/2] long colors (id [1 + p],
    delay [2^(k+p)]) each receiving [2^(k+p-1)] jobs at round 0.
    Batched and rate-limited.
    @raise Invalid_argument when {!edf_check} fails. *)

val edf_off : edf_params -> Rrs_core.Policy.factory
(** The appendix's OFF: short color on rounds [0, 2^(k-1)), then long
    color [p] on rounds [2^(k+p-1), 2^(k+p)) (run with [m = 1]).
    Cost [(n/2 + 1) * delta], no drops. *)

(** {2 Urgency inversion — breaks backlog-greedy heuristics}

    Not from the paper: the input family that defeats the natural
    "cache the largest backlogs" heuristic (EXP-11 baseline).  [n]
    heavy colors park big piles with distant deadlines, while one tight
    color files small batches with a short deadline.  Backlog ordering
    inverts urgency ordering: a greedy scheduler pins the heavies and
    lets every tight batch expire until the piles drain, for a drop bill
    that grows with the horizon; deadline-aware schedulers serve the
    tight color immediately at no extra cost.  Total load is kept below
    one resource's capacity, so the certified OPT lower bound stays
    small and the measured ratios are meaningful. *)

type greedy_params = {
  n : int;  (** number of heavy colors, >= 1 *)
  delta : int;
  w_exp : int;  (** tight color's delay bound 2^w_exp *)
  k : int;  (** horizon exponent; heavy delay bound 2^k *)
}

val greedy_check : greedy_params -> (unit, string) result
(** Requires [delta <= 2^w_exp < 2^k] and a positive heavy pile
    [2^k / (2n)]. *)

val greedy_instance : greedy_params -> Rrs_core.Instance.t
(** Heavies are colors [0..n-1] (delay [2^k], pile [2^k/(2n)] at round
    0); the tight color is color [n] (delay [2^w_exp], [delta] jobs at
    every multiple).  Rate-limited and batched.
    @raise Invalid_argument when {!greedy_check} fails. *)
