open Rrs_core
module Rng = Rrs_prng.Rng

type background_params = {
  delta : int;
  short_colors : int;
  short_exp : int;
  long_exp : int;
  gap_probability : float;
  background_jobs : int;
  seed : int;
}

let default_background =
  {
    delta = 4;
    short_colors = 3;
    short_exp = 3;
    long_exp = 9;
    gap_probability = 0.35;
    background_jobs = 384;
    seed = 17;
  }

let background_shortterm p =
  if p.short_exp >= p.long_exp then
    invalid_arg "background_shortterm: short_exp must be < long_exp";
  if p.short_colors < 1 then
    invalid_arg "background_shortterm: short_colors < 1";
  let rng = Rng.create ~seed:p.seed in
  let short_delay = 1 lsl p.short_exp in
  let long_delay = 1 lsl p.long_exp in
  let background = p.short_colors in
  let delay =
    Array.init (p.short_colors + 1) (fun c ->
        if c < p.short_colors then short_delay else long_delay)
  in
  let arrivals =
    ref
      [
        {
          Types.round = 0;
          color = background;
          count = min p.background_jobs long_delay;
        };
      ]
  in
  let windows = long_delay / short_delay in
  for w = 0 to windows - 1 do
    for c = 0 to p.short_colors - 1 do
      if not (Rng.bernoulli rng p.gap_probability) then begin
        let count = min short_delay (max 1 (Rng.poisson rng ~mean:(0.75 *. float_of_int short_delay))) in
        arrivals := { Types.round = w * short_delay; color = c; count } :: !arrivals
      end
    done
  done;
  Instance.create ~name:"background-shortterm" ~delta:p.delta ~delay
    ~arrivals:!arrivals ()

type router_params = {
  delta : int;
  classes : int;
  horizon : int;
  peak_load : float;
  period : int;
  seed : int;
}

let default_router =
  { delta = 6; classes = 8; horizon = 1024; peak_load = 0.9; period = 256; seed = 23 }

let router p =
  if p.classes < 1 then invalid_arg "router: classes < 1";
  if p.period < 1 then invalid_arg "router: period < 1";
  let rng = Rng.create ~seed:p.seed in
  (* delay bounds cycle through a small set of powers of two: voice-like
     classes get tight bounds, bulk classes loose ones *)
  let exponents = [| 1; 2; 3; 4; 5 |] in
  let delay =
    Array.init p.classes (fun c ->
        1 lsl exponents.(c mod Array.length exponents))
  in
  let arrivals = ref [] in
  for c = 0 to p.classes - 1 do
    let d = delay.(c) in
    let phase =
      2.0 *. Float.pi *. float_of_int c /. float_of_int p.classes
    in
    let windows = p.horizon / d in
    for w = 0 to windows - 1 do
      let t = float_of_int (w * d) in
      let modulation =
        0.5 *. (1.0 +. sin ((2.0 *. Float.pi *. t /. float_of_int p.period) +. phase))
      in
      let mean = p.peak_load *. modulation *. float_of_int d in
      let count = min d (Rng.poisson rng ~mean) in
      if count > 0 then
        arrivals := { Types.round = w * d; color = c; count } :: !arrivals
    done
  done;
  Instance.create ~name:"router" ~delta:p.delta ~delay ~arrivals:!arrivals ()

type datacenter_params = {
  delta : int;
  services : int;
  phase_length : int;
  phases : int;
  active_fraction : float;
  load : float;
  seed : int;
}

let default_datacenter =
  {
    delta = 8;
    services = 16;
    phase_length = 128;
    phases = 6;
    active_fraction = 0.3;
    load = 0.85;
    seed = 41;
  }

let datacenter p =
  if p.services < 1 then invalid_arg "datacenter: services < 1";
  if p.phase_length < 1 || p.phases < 1 then
    invalid_arg "datacenter: bad phase shape";
  let rng = Rng.create ~seed:p.seed in
  let exponents = [| 2; 3; 4; 5 |] in
  let delay =
    Array.init p.services (fun c ->
        1 lsl exponents.(c mod Array.length exponents))
  in
  let active_count =
    max 1 (int_of_float (p.active_fraction *. float_of_int p.services))
  in
  let arrivals = ref [] in
  for phase = 0 to p.phases - 1 do
    (* resample the busy set: composition shift between phases *)
    let ids = Array.init p.services Fun.id in
    Rng.shuffle rng ids;
    let active = Array.sub ids 0 active_count in
    let phase_start = phase * p.phase_length in
    Array.iter
      (fun c ->
        let d = delay.(c) in
        (* windows of color c that begin inside this phase *)
        let first = (phase_start + d - 1) / d in
        let last = ((phase_start + p.phase_length) / d) - 1 in
        for w = first to last do
          let count = min d (Rng.poisson rng ~mean:(p.load *. float_of_int d)) in
          if count > 0 then
            arrivals := { Types.round = w * d; color = c; count } :: !arrivals
        done)
      active
  done;
  Instance.create ~name:"datacenter" ~delta:p.delta ~delay ~arrivals:!arrivals ()
