(** The paper's motivating application scenarios, as concrete synthetic
    workloads (Introduction; references [4,5] shared data centers,
    [16,17,18] multi-service routers).

    No production traces from 2007 data centers or network processors
    are available; these generators reproduce the *structural* features
    the paper argues about — delay-bound heterogeneity, workload
    composition shifts, intermittent short-term traffic competing with
    deadline-distant background work — which are exactly the features
    that trigger thrashing and underutilization in the naive policies. *)

type background_params = {
  delta : int;
  short_colors : int;  (** intermittent short-term services *)
  short_exp : int;  (** short delay bound 2^short_exp *)
  long_exp : int;  (** background delay bound 2^long_exp *)
  gap_probability : float;
      (** chance that a short-term window is silent — the "lengthy
          interval with no short-term jobs" of the introduction *)
  background_jobs : int;
  seed : int;
}

val default_background : background_params

val background_shortterm : background_params -> Rrs_core.Instance.t
(** The introduction's dilemma workload: one background color with a
    deadline far in the future and a pile of jobs, plus short-term colors
    arriving intermittently.  Rate-limited and batched. *)

type router_params = {
  delta : int;
  classes : int;  (** service classes (per-class delay bound) *)
  horizon : int;
  peak_load : float;
  period : int;  (** rounds per diurnal-style load cycle *)
  seed : int;
}

val default_router : router_params

val router : router_params -> Rrs_core.Instance.t
(** Multi-service router: each class has a power-of-two delay bound
    (spread across classes) and sinusoidally modulated load with a
    per-class phase offset, so the hot set rotates.  Rate-limited. *)

type datacenter_params = {
  delta : int;
  services : int;
  phase_length : int;  (** rounds per composition phase *)
  phases : int;
  active_fraction : float;  (** services busy in each phase *)
  load : float;
  seed : int;
}

val default_datacenter : datacenter_params

val datacenter : datacenter_params -> Rrs_core.Instance.t
(** Shared data center: the set of active services is resampled every
    phase, shifting the workload composition; active services receive
    near-full-rate batches.  Rate-limited. *)
