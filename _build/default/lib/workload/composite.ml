open Rrs_core
module Rng = Rrs_prng.Rng

let flash_crowd ~seed ~base_load ~spike_load ~spike_at ~horizon =
  let rng = Rng.create ~seed in
  let params load horizon =
    {
      Synthetic.default_batched with
      num_colors = 8;
      min_exp = 1;
      max_exp = 4;
      horizon;
      load;
    }
  in
  (* the same delays for base and spike: regenerate with a split stream
     but overlay on one color space, so delays must match — build the
     spike from the base's own delay array via scaling *)
  let base = Synthetic.rate_limited (Rng.split rng) (params base_load horizon) in
  let spike_template =
    Synthetic.rate_limited
      (Rng.create ~seed:(seed + 1))
      (params spike_load horizon)
  in
  (* reuse the base's delay array for the spike to allow overlay *)
  let spike =
    Instance.create ~name:"spike" ~delta:base.delta ~delay:base.delay
      ~arrivals:
        (Array.to_list spike_template.arrivals
        |> List.filter_map (fun (a : Types.arrival) ->
               (* re-align each batch to the base's delay grid *)
               let d = base.delay.(a.color) in
               let round = a.round / d * d in
               if round + d <= horizon / 2 then
                 Some { a with round = round + (spike_at / d * d) }
               else None))
      ()
  in
  Instance_ops.overlay ~name:"flash-crowd" base spike

let mixed_tenants ~seed =
  let bursty =
    Synthetic.bursty (Rng.create ~seed)
      { Synthetic.default_bursty with base = { Synthetic.default_batched with num_colors = 6; delta = 6 } }
  in
  let router =
    Scenarios.router { Scenarios.default_router with classes = 6; seed; delta = 6 }
  in
  Instance_ops.union ~name:"mixed-tenants" bursty router

let adversarial_with_noise ~seed =
  let adv =
    Adversarial.dlru_instance { n = 8; delta = 4; j = 6; k = 8 }
  in
  let noise =
    Synthetic.rate_limited
      (Rng.create ~seed)
      {
        Synthetic.default_batched with
        num_colors = 4;
        delta = 4;
        min_exp = 2;
        max_exp = 5;
        horizon = 256;
        load = 0.4;
      }
  in
  Instance_ops.union ~name:"adversarial+noise" adv noise
