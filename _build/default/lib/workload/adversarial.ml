open Rrs_core

type dlru_params = { n : int; delta : int; j : int; k : int }

let dlru_check p =
  if p.n < 2 || p.n mod 2 <> 0 then Error "n must be even and >= 2"
  else if p.delta < 1 then Error "delta must be >= 1"
  else if p.j < 0 || p.k < 0 || p.k > 24 then Error "exponents out of range"
  else if not (1 lsl p.k > 1 lsl (p.j + 1)) then Error "need 2^k > 2^(j+1)"
  else if not (1 lsl (p.j + 1) > p.n * p.delta) then
    Error "need 2^(j+1) > n * delta"
  else Ok ()

let require check p =
  match check p with Ok () -> () | Error msg -> invalid_arg msg

let dlru_instance p =
  require dlru_check p;
  let shorts = p.n / 2 in
  let short_delay = 1 lsl p.j in
  let long_delay = 1 lsl p.k in
  let long_color = shorts in
  let delay = Array.init (shorts + 1) (fun c -> if c < shorts then short_delay else long_delay) in
  let arrivals = ref [ { Types.round = 0; color = long_color; count = long_delay } ] in
  let batches = long_delay / short_delay in
  for b = 0 to batches - 1 do
    for c = 0 to shorts - 1 do
      arrivals :=
        { Types.round = b * short_delay; color = c; count = p.delta }
        :: !arrivals
    done
  done;
  Instance.create
    ~name:(Printf.sprintf "adv-dlru(n=%d,delta=%d,j=%d,k=%d)" p.n p.delta p.j p.k)
    ~delta:p.delta ~delay ~arrivals:!arrivals ()

let dlru_off p =
  require dlru_check p;
  Static_policy.static [ p.n / 2 ]

type edf_params = { n : int; delta : int; j : int; k : int }

let edf_check p =
  if p.n < 2 || p.n mod 2 <> 0 then Error "n must be even and >= 2"
  else if p.j < 0 || p.k < 1 then Error "exponents out of range"
  else if p.k + (p.n / 2) - 1 > 24 then Error "horizon exponent too large"
  else if not (1 lsl p.k > 1 lsl p.j) then Error "need 2^k > 2^j"
  else if not (1 lsl p.j > p.delta) then Error "need 2^j > delta"
  else if not (p.delta > p.n) then Error "need delta > n"
  else Ok ()

let edf_instance p =
  require edf_check p;
  let longs = p.n / 2 in
  let short_delay = 1 lsl p.j in
  let delay =
    Array.init (longs + 1) (fun c ->
        if c = 0 then short_delay else 1 lsl (p.k + c - 1))
  in
  let arrivals = ref [] in
  (* short color: delta jobs per block until round 2^(k-1) *)
  let short_until = 1 lsl (p.k - 1) in
  let batches = short_until / short_delay in
  for b = 0 to batches - 1 do
    arrivals :=
      { Types.round = b * short_delay; color = 0; count = p.delta } :: !arrivals
  done;
  (* long color p: 2^(k+p-1) jobs at round 0 *)
  for c = 1 to longs do
    arrivals :=
      { Types.round = 0; color = c; count = 1 lsl (p.k + c - 2) } :: !arrivals
  done;
  Instance.create
    ~name:(Printf.sprintf "adv-edf(n=%d,delta=%d,j=%d,k=%d)" p.n p.delta p.j p.k)
    ~delta:p.delta ~delay ~arrivals:!arrivals ()

type greedy_params = { n : int; delta : int; w_exp : int; k : int }

let greedy_check p =
  if p.n < 1 then Error "n must be >= 1"
  else if p.delta < 1 then Error "delta must be >= 1"
  else if p.w_exp < 0 || p.k < 1 || p.k > 24 then Error "exponents out of range"
  else if not (p.delta <= 1 lsl p.w_exp) then Error "need delta <= 2^w_exp"
  else if not (1 lsl p.w_exp < 1 lsl p.k) then Error "need 2^w_exp < 2^k"
  else if 1 lsl p.k < 2 * p.n then Error "heavy pile would be empty"
  else Ok ()

let greedy_instance p =
  require greedy_check p;
  let horizon = 1 lsl p.k in
  let tight_delay = 1 lsl p.w_exp in
  let pile = horizon / (2 * p.n) in
  let delay =
    Array.init (p.n + 1) (fun c -> if c < p.n then horizon else tight_delay)
  in
  let arrivals =
    ref
      (List.init p.n (fun c -> { Types.round = 0; color = c; count = pile }))
  in
  for w = 0 to (horizon / tight_delay) - 1 do
    arrivals :=
      { Types.round = w * tight_delay; color = p.n; count = p.delta }
      :: !arrivals
  done;
  Instance.create
    ~name:
      (Printf.sprintf "adv-greedy(n=%d,delta=%d,w=%d,k=%d)" p.n p.delta p.w_exp
         p.k)
    ~delta:p.delta ~delay ~arrivals:!arrivals ()

let edf_off (p : edf_params) =
  require edf_check p;
  let longs = p.n / 2 in
  let segments =
    (0, [ 0 ])
    :: List.init longs (fun i ->
           (* long color i+1 holds rounds [2^(k+i-1), 2^(k+i)) *)
           (1 lsl (p.k + i - 1), [ i + 1 ]))
  in
  Static_policy.piecewise segments
