lib/prng/rng.mli:
