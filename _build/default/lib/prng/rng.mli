(** Deterministic pseudo-random number generation.

    Implementation: xoshiro256★★ (Blackman & Vigna) seeded through
    splitmix64, built from scratch so experiment runs are bit-reproducible
    across machines and OCaml versions.  Each generator is an independent
    mutable state; [split] derives a statistically independent child
    stream, which workload generators use to decorrelate per-color
    arrival processes. *)

type t

val create : seed:int -> t
(** Deterministic state from a 63-bit seed (any int accepted). *)

val copy : t -> t
(** Snapshot of the current state. *)

val split : t -> t
(** Child generator; advances the parent. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); rejection-sampled (no modulo
    bias).  @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument if [lo > hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound); 53-bit resolution. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given rate ([rate > 0]). *)

val poisson : t -> mean:float -> int
(** Poisson variate; Knuth's method for small means, normal approximation
    (rounded, clamped at 0) above mean 64.  @raise Invalid_argument if
    [mean < 0]. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success, [0 < p <= 1]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto variate with minimum [scale > 0] and tail index [shape > 0]
    (heavy-tailed for [shape < 2]); inverse-transform sampled. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [0, n): probability of rank [r] proportional
    to [(r+1)^{-s}].  Sampled by inversion over precomputed weights is too
    slow to re-build per call, so this uses rejection sampling (Devroye);
    exact for [s >= 0].  @raise Invalid_argument if [n <= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)
