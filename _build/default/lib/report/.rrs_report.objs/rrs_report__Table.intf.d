lib/report/table.mli:
