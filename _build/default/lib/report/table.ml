type t = { columns : string array; mutable rows : string array list }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns = Array.of_list columns; rows = [] }

let add_row t cells =
  if List.length cells <> Array.length t.columns then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- Array.of_list cells :: t.rows

let add_int_row t cells = add_row t (List.map (fun (_, v) -> string_of_int v) cells)
let row_count t = List.length t.rows
let cell_int = string_of_int

let cell_float ?(decimals = 2) v =
  if Float.is_integer v && Float.abs v < 1e15 && decimals = 0 then
    Printf.sprintf "%.0f" v
  else if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else if Float.is_nan v then "nan"
  else Printf.sprintf "%.*f" decimals v

let cell_cost ~reconfig ~drop =
  Printf.sprintf "%d (%d+%d)" (reconfig + drop) reconfig drop

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || c = '.' || c = '-' || c = '+' || c = 'e' || c = '(' || c = ')'
         || c = ' ' || c = 'x' || c = 'i' || c = 'n' || c = 'f')
       s

let rows_in_order t = List.rev t.rows

let widths t =
  let w = Array.map String.length t.columns in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row)
    (rows_in_order t);
  w

let pad ~right s width =
  let gap = width - String.length s in
  if gap <= 0 then s
  else if right then String.make gap ' ' ^ s
  else s ^ String.make gap ' '

let to_string t =
  let w = widths t in
  let buf = Buffer.create 256 in
  let numeric_col =
    Array.mapi
      (fun i _ ->
        t.rows <> []
        && List.for_all (fun row -> looks_numeric row.(i)) (rows_in_order t))
      t.columns
  in
  let emit_row cells =
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad ~right:numeric_col.(i) cell w.(i)))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row t.columns;
  Array.iteri
    (fun i width ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make width '-'))
    w;
  Buffer.add_char buf '\n';
  List.iter emit_row (rows_in_order t);
  Buffer.contents buf

let to_markdown t =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " (Array.to_list cells));
    Buffer.add_string buf " |\n"
  in
  emit t.columns;
  emit (Array.map (fun _ -> "---") t.columns);
  List.iter emit (rows_in_order t);
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some title ->
      print_endline title;
      print_endline (String.make (String.length title) '=')
  | None -> ());
  print_string (to_string t);
  print_newline ()
