(** Aligned text tables for the experiment harness.

    A table is a header plus rows of cells; rendering right-aligns
    numeric-looking cells and left-aligns the rest.  Output styles:
    plain aligned ASCII (for terminals and the bench log) and GitHub
    markdown (for EXPERIMENTS.md). *)

type t

val create : columns:string list -> t
(** @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_int_row : t -> (string * int) list -> unit
(** Convenience: ignores the labels, checks arity. *)

val row_count : t -> int

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
(** Default 2 decimals; infinity renders as ["inf"]. *)

val cell_cost : reconfig:int -> drop:int -> string
(** ["total (r+d)"] compact cost cell. *)

val to_string : t -> string
(** Aligned ASCII with a separator under the header. *)

val to_markdown : t -> string

val print : ?title:string -> t -> unit
(** [to_string] to stdout, preceded by an underlined title. *)
