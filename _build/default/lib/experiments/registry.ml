let all =
  [
    ("EXP-A", Exp_lower_bounds.exp_a);
    ("EXP-B", Exp_lower_bounds.exp_b);
    ("EXP-1", Exp_theorems.exp_1);
    ("EXP-2", Exp_theorems.exp_2);
    ("EXP-3", Exp_theorems.exp_3);
    ("EXP-4", Exp_lemmas.exp_4);
    ("EXP-5", Exp_lemmas.exp_5);
    ("EXP-6", Exp_structure.exp_6);
    ("EXP-7", Exp_structure.exp_7);
    ("EXP-8", Exp_structure.exp_8);
    ("EXP-9", Exp_ablation.exp_9);
    ("EXP-10", Exp_ablation.exp_10);
    ("EXP-11", Exp_baselines.exp_11);
    ("EXP-12", Exp_constructive.exp_12);
    ("EXP-13", Exp_eligibility.exp_13);
  ]

let ids () = List.map fst all
let find id = List.assoc_opt id all

let run_and_print_all () =
  List.iter (fun (_, run) -> Harness.print (run ())) all
