open Rrs_core
module Adv = Rrs_workload.Adversarial
module Families = Rrs_workload.Families
module Table = Rrs_report.Table

let exp_9 () =
  let n = 16 in
  let distinct = n / 2 in
  let adv_a : Adv.dlru_params = { n; delta = 2; j = 7; k = 9 } in
  let adv_b : Adv.edf_params = { n; delta = 18; j = 5; k = 10 } in
  let workloads =
    [
      ("appendix-A", Adv.dlru_instance adv_a);
      ("appendix-B", Adv.edf_instance adv_b);
      ("router", (Option.get (Families.find "router")).build ~seed:1);
    ]
  in
  let table =
    Table.create
      ~columns:
        ("lru share"
        :: List.concat_map
             (fun (w, _) -> [ w ^ " cost"; w ^ " ratio" ])
             workloads)
  in
  let worst_of_split = ref [] in
  List.iter
    (fun lru_slots ->
      let cells = ref [] in
      let worst = ref 0.0 in
      List.iter
        (fun (_, instance) ->
          let instr =
            Lru_edf.make_tuned ~lru_slots ~distinct_slots:distinct
              ~replicated:true instance ~n
          in
          let r = Engine.run_policy (Engine.config ~n ()) instance instr.policy in
          let lb = Offline_bounds.lower_bound instance ~m:2 in
          let ratio = Harness.ratio (Cost.total r.cost) lb in
          worst := max !worst ratio;
          cells :=
            Table.cell_float ratio :: Table.cell_int (Cost.total r.cost)
            :: !cells)
        workloads;
      worst_of_split := (lru_slots, !worst) :: !worst_of_split;
      Table.add_row table
        (Printf.sprintf "%d/%d" lru_slots distinct :: List.rev !cells))
    [ 0; 2; 4; 6; 8 ];
  let worst_of_split = List.rev !worst_of_split in
  let at k = List.assoc k worst_of_split in
  (* the paper's point is an even split: lru = distinct/2 *)
  let mid_beats_extremes =
    at (distinct / 2) <= at 0 && at (distinct / 2) <= at distinct
  in
  {
    Harness.id = "EXP-9";
    title = "Ablation: LRU/EDF split of the distinct capacity";
    claim =
      "pure-EDF (share 0) blows up on the Appendix-B workload and pure-dLRU \
       (share 1) on the Appendix-A workload; the paper's even split is safe \
       on both";
    table;
    findings =
      [
        Printf.sprintf
          "worst-over-workloads ratio by split: 0/8 -> %.2f, 4/8 (paper) -> \
           %.2f, 8/8 -> %.2f"
          (at 0)
          (at (distinct / 2))
          (at distinct);
        (if mid_beats_extremes then
           "the paper's split dominates both extremes in the worst case"
         else "NOTE: the even split did not dominate on this run");
      ];
  }

let exp_10 () =
  let n = 8 in
  let table =
    Table.create
      ~columns:
        [
          "family";
          "replicated (2+2 x2) cost";
          "flat (4+4 x1) cost";
          "replicated drops";
          "flat drops";
        ]
  in
  let repl_wins = ref 0 in
  let flat_wins = ref 0 in
  List.iter
    (fun (f : Families.family) ->
      if f.layer = Families.Rate_limited then begin
        let instance = f.build ~seed:1 in
        let repl =
          let i = Lru_edf.make instance ~n in
          Engine.run_policy (Engine.config ~n ()) instance i.policy
        in
        let flat =
          let i =
            Lru_edf.make_tuned ~lru_slots:(n / 2) ~distinct_slots:n
              ~replicated:false instance ~n
          in
          Engine.run_policy (Engine.config ~n ()) instance i.policy
        in
        if Cost.total repl.cost <= Cost.total flat.cost then incr repl_wins
        else incr flat_wins;
        Table.add_row table
          [
            f.id;
            Table.cell_int (Cost.total repl.cost);
            Table.cell_int (Cost.total flat.cost);
            Table.cell_int repl.dropped;
            Table.cell_int flat.dropped;
          ]
      end)
    Families.all;
  {
    Harness.id = "EXP-10";
    title = "Ablation: replication vs flat distinct capacity";
    claim =
      "the analysis relies on every cached color executing two jobs per \
       round (replication); this table measures what that buys empirically \
       at equal n";
    table;
    findings =
      [
        Printf.sprintf "replicated layout cheaper on %d families, flat on %d"
          !repl_wins !flat_wins;
      ];
  }
