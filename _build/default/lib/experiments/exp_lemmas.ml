open Rrs_core
module Families = Rrs_workload.Families
module Table = Rrs_report.Table

let n = 8
let seeds = [ 1; 2; 3; 4; 5 ]

let rate_limited_runs () =
  let tasks =
    List.concat_map
      (fun (f : Families.family) -> List.map (fun seed -> (f, seed)) seeds)
      (List.filter
         (fun f -> f.Families.layer = Families.Rate_limited)
         Families.all)
  in
  Rrs_parallel.Pool.map
    (fun ((f : Families.family), seed) ->
      let instance = f.build ~seed in
      let instr = Lru_edf.make instance ~n in
      let result =
        Engine.run_policy (Engine.config ~n ()) instance instr.policy
      in
      (f.id, seed, instance, result, instr.eligibility))
    tasks

let exp_4 () =
  let table =
    Table.create
      ~columns:
        [
          "family";
          "seed";
          "epochs";
          "reconfig cost";
          "bound 4*ep*delta";
          "use%";
          "inelig drops";
          "bound ep*delta";
          "use%";
        ]
  in
  let ok = ref true in
  List.iter
    (fun (id, seed, (instance : Instance.t), (result : Engine.result), elig) ->
      let epochs = Eligibility.epochs_total elig in
      let reconfig_bound = 4 * epochs * instance.delta in
      let drop_bound = epochs * instance.delta in
      let inelig = Eligibility.ineligible_drops elig in
      if result.cost.reconfig > reconfig_bound || inelig > drop_bound then
        ok := false;
      let pct v b =
        if b = 0 then "0" else Printf.sprintf "%d" (100 * v / b)
      in
      Table.add_row table
        [
          id;
          Table.cell_int seed;
          Table.cell_int epochs;
          Table.cell_int result.cost.reconfig;
          Table.cell_int reconfig_bound;
          pct result.cost.reconfig reconfig_bound;
          Table.cell_int inelig;
          Table.cell_int drop_bound;
          pct inelig drop_bound;
        ])
    (rate_limited_runs ());
  {
    Harness.id = "EXP-4";
    title = "Lemmas 3.3 / 3.4: epoch-charged cost bounds";
    claim =
      "ReconfigCost <= 4 * numEpochs * delta and IneligibleDropCost <= \
       numEpochs * delta on every run";
    table;
    findings =
      [
        (if !ok then "both bounds hold on every (family, seed) run"
         else "BOUND VIOLATED - implementation diverges from the analysis");
      ];
  }

let exp_5 () =
  let table =
    Table.create
      ~columns:
        [
          "family";
          "seed";
          "eligible drops (dLRU-EDF, n=8)";
          "Par-EDF(m=2) drops";
          "slack";
        ]
  in
  let ok = ref true in
  List.iter
    (fun (id, seed, instance, (_ : Engine.result), elig) ->
      let eligible = Eligibility.eligible_drops elig in
      let par = Par_edf.drop_cost instance ~m:(n / 4) in
      if eligible > par then ok := false;
      Table.add_row table
        [
          id;
          Table.cell_int seed;
          Table.cell_int eligible;
          Table.cell_int par;
          Table.cell_int (par - eligible);
        ])
    (rate_limited_runs ());
  {
    Harness.id = "EXP-5";
    title = "Lemma 3.2 chain: eligible drops vs Par-EDF";
    claim =
      "EligibleDropCost(dLRU-EDF with n) <= DropCost(Par-EDF with n/4) <= \
       DropCost(OFF)";
    table;
    findings =
      [
        (if !ok then "the inequality holds on every run"
         else "INEQUALITY VIOLATED - implementation diverges from Lemma 3.10");
      ];
  }
