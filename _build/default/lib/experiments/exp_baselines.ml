open Rrs_core
module Families = Rrs_workload.Families
module Adv = Rrs_workload.Adversarial
module Table = Rrs_report.Table

let exp_11 () =
  let n = 8 in
  let contenders =
    [
      ("dLRU-EDF", Lru_edf.policy);
      ("greedy-backlog", Naive_policies.greedy_backlog);
      ("greedy+hysteresis", Naive_policies.greedy_backlog_hysteresis ~threshold:4);
      ("round-robin", Naive_policies.round_robin);
    ]
  in
  let workloads =
    List.filter_map
      (fun (f : Families.family) ->
        if f.layer = Families.Rate_limited then Some (f.id, f.build ~seed:1)
        else None)
      Families.all
    @ [
        ( "adversarial-A",
          Adv.dlru_instance { n; delta = 2; j = 8; k = 10 } );
        ( "adversarial-B",
          Adv.edf_instance { n; delta = 10; j = 4; k = 9 } );
        (* the urgency-inversion family that targets backlog-greedy *)
        ( "urgency-inv k=12",
          Adv.greedy_instance { n = 8; delta = 4; w_exp = 4; k = 12 } );
        ( "urgency-inv k=15",
          Adv.greedy_instance { n = 8; delta = 4; w_exp = 4; k = 15 } );
      ]
  in
  let table =
    Table.create
      ~columns:
        ("workload"
        :: List.map (fun (name, _) -> name ^ " ratio") contenders)
  in
  let worst = Hashtbl.create 8 in
  List.iter
    (fun (wname, instance) ->
      let lb = Offline_bounds.lower_bound instance ~m:1 in
      let cells =
        List.map
          (fun (pname, factory) ->
            let r = Harness.run_policy instance ~n factory in
            let ratio = Harness.ratio (Cost.total r.cost) lb in
            let prev =
              Option.value ~default:0.0 (Hashtbl.find_opt worst pname)
            in
            Hashtbl.replace worst pname (max prev ratio);
            Table.cell_float ratio)
          contenders
      in
      Table.add_row table (wname :: cells))
    workloads;
  let w name = Hashtbl.find worst name in
  let safest =
    List.for_all
      (fun (name, _) -> w "dLRU-EDF" <= w name)
      contenders
  in
  {
    Harness.id = "EXP-11";
    title = "Baselines: the competitive algorithm vs practitioner heuristics";
    claim =
      "heuristics without a guarantee can win on friendly inputs but their \
       worst-case ratio across workloads blows up; dLRU-EDF's stays the \
       smallest";
    table;
    findings =
      [
        String.concat ", "
          (List.map
             (fun (name, _) -> Printf.sprintf "%s worst %.2f" name (w name))
             contenders);
        (if safest then "dLRU-EDF has the smallest worst-case ratio"
         else "a heuristic beat dLRU-EDF in the worst case - investigate");
      ];
  }
