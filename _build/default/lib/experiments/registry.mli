(** All experiments by id — the single source the CLI and the bench
    executable enumerate. *)

val all : (string * (unit -> Harness.outcome)) list
(** In DESIGN.md §5 order. *)

val ids : unit -> string list
val find : string -> (unit -> Harness.outcome) option
val run_and_print_all : unit -> unit
