(** All experiments by id — the single source the CLI and the bench
    executable enumerate. *)

val all : (string * (unit -> Harness.outcome)) list
(** In DESIGN.md §5 order. *)

val ids : unit -> string list
val find : string -> (unit -> Harness.outcome) option

val run_summarized :
  string -> (Harness.outcome * Rrs_obs.Run_summary.t) option
(** Run one experiment and also return its canonical run artifact:
    engine cost and run-count deltas from {!Harness.snapshot}, total
    wall time as the ["experiment"] phase timing.  [None] for unknown
    ids.  This is what [rrs experiment --out] writes, one JSONL line
    per experiment. *)

val run_and_print_all : unit -> unit
