(** EXP-4 and EXP-5: the analysis quantities of Section 3.2 measured on
    real runs.

    EXP-4 (Lemmas 3.3, 3.4): ΔLRU-EDF's reconfiguration cost is at most
    [4 · numEpochs · Δ] and its ineligible drop cost at most
    [numEpochs · Δ].  The table reports both utilisation fractions; every
    row must stay at or below 1.

    EXP-5 (Lemma 3.2 chain): the eligible drop cost of ΔLRU-EDF with [n]
    resources is at most Par-EDF's drop cost with [n/4] resources, which
    itself lower-bounds every offline schedule's drop cost (Lemma 3.7). *)

val exp_4 : unit -> Harness.outcome
val exp_5 : unit -> Harness.outcome
