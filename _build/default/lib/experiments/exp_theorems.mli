(** EXP-1, EXP-2, EXP-3: the three positive results as measured
    competitive-ratio tables.

    EXP-1 (Theorem 1): ΔLRU-EDF with [n = 8m] on rate-limited batched
    inputs is constant competitive.  Measured against the certified OPT
    lower bound with [m] resources (conservative: real ratios are lower).

    EXP-2 (Theorem 2): Distribute handles batched inputs whose batches
    exceed [D_ℓ].

    EXP-3 (Theorem 3): the full VarBatch -> Distribute -> ΔLRU-EDF
    pipeline handles arbitrary arrivals and delay bounds. *)

val exp_1 : unit -> Harness.outcome
val exp_2 : unit -> Harness.outcome
val exp_3 : unit -> Harness.outcome
