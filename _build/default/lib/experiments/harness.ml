type outcome = {
  id : string;
  title : string;
  claim : string;
  table : Rrs_report.Table.t;
  findings : string list;
}

let print outcome =
  Printf.printf "\n[%s] %s\n" outcome.id outcome.title;
  Printf.printf "paper claim: %s\n\n" outcome.claim;
  print_string (Rrs_report.Table.to_string outcome.table);
  List.iter (fun f -> Printf.printf "  -> %s\n" f) outcome.findings;
  print_newline ()

let print_markdown outcome =
  Printf.printf "\n## %s — %s\n\n" outcome.id outcome.title;
  Printf.printf "*Paper claim:* %s\n\n" outcome.claim;
  print_string (Rrs_report.Table.to_markdown outcome.table);
  print_newline ();
  List.iter (fun f -> Printf.printf "- %s\n" f) outcome.findings;
  print_newline ()

let telemetry = Rrs_obs.Metrics.create ()
let engine_runs = Rrs_obs.Metrics.counter telemetry "engine_runs"
let reconfig_cost = Rrs_obs.Metrics.counter telemetry "reconfig_cost"
let drop_cost = Rrs_obs.Metrics.counter telemetry "drop_cost"
let engine_timer = Rrs_obs.Metrics.timer telemetry "engine_run"

type snapshot = { runs : int; reconfig : int; drop : int; seconds : float }

let snapshot () =
  {
    runs = Rrs_obs.Metrics.value engine_runs;
    reconfig = Rrs_obs.Metrics.value reconfig_cost;
    drop = Rrs_obs.Metrics.value drop_cost;
    seconds = Rrs_obs.Metrics.timer_total engine_timer;
  }

let record_result (result : Rrs_core.Engine.result) =
  Rrs_obs.Metrics.inc engine_runs 1;
  Rrs_obs.Metrics.inc reconfig_cost result.reconfigurations;
  Rrs_obs.Metrics.inc drop_cost result.dropped

let run_policy instance ~n factory =
  let result =
    Rrs_obs.Metrics.time engine_timer (fun () ->
        Rrs_core.Engine.run (Rrs_core.Engine.config ~n ()) instance factory)
  in
  record_result result;
  result

let ratio cost denom =
  if denom = 0 then if cost = 0 then 1.0 else infinity
  else float_of_int cost /. float_of_int denom

let ratio_cell cost denom = Rrs_report.Table.cell_float (ratio cost denom)
