type outcome = {
  id : string;
  title : string;
  claim : string;
  table : Rrs_report.Table.t;
  findings : string list;
}

let print outcome =
  Printf.printf "\n[%s] %s\n" outcome.id outcome.title;
  Printf.printf "paper claim: %s\n\n" outcome.claim;
  print_string (Rrs_report.Table.to_string outcome.table);
  List.iter (fun f -> Printf.printf "  -> %s\n" f) outcome.findings;
  print_newline ()

let print_markdown outcome =
  Printf.printf "\n## %s — %s\n\n" outcome.id outcome.title;
  Printf.printf "*Paper claim:* %s\n\n" outcome.claim;
  print_string (Rrs_report.Table.to_markdown outcome.table);
  print_newline ();
  List.iter (fun f -> Printf.printf "- %s\n" f) outcome.findings;
  print_newline ()

let run_policy instance ~n factory =
  Rrs_core.Engine.run (Rrs_core.Engine.config ~n ()) instance factory

let ratio cost denom =
  if denom = 0 then if cost = 0 then 1.0 else infinity
  else float_of_int cost /. float_of_int denom

let ratio_cell cost denom = Rrs_report.Table.cell_float (ratio cost denom)
