(** EXP-13: why ΔLRU carries a Δ-counter (the eligibility machinery).

    Textbook LRU pays a reconfiguration for {e any} requested color; on
    a long tail of colors whose total work is below [Δ], dropping their
    jobs is strictly cheaper than caching them — which is exactly what
    eligibility encodes (a color must muster [Δ] arrivals before it can
    be cached; Lemma 3.1).  The table compares classic LRU, ΔLRU and
    ΔLRU-EDF on the long-tail family as the tail widens: classic LRU's
    cost grows linearly with the tail, the Δ-machinery policies' costs
    stay near the tail's drop cost. *)

val exp_13 : unit -> Harness.outcome
