(** EXP-9 and EXP-10: ablations of ΔLRU-EDF's two design choices, which
    DESIGN.md calls out.

    EXP-9 — component split.  The paper gives each component exactly half
    of the distinct capacity (n/4 + n/4).  Sweeping the LRU share from
    0 (pure EDF) to 1 (pure ΔLRU) shows why: either extreme loses
    unboundedly on one of the adversarial workloads, while the mixed
    points are safe on both.

    EXP-10 — replication.  The paper caches every color twice (execution
    rate 2 per round) instead of doubling the distinct capacity.  The
    table compares both layouts at equal n across workload families. *)

val exp_9 : unit -> Harness.outcome
val exp_10 : unit -> Harness.outcome
