(** EXP-11: the paper's algorithm against the heuristics a practitioner
    would try first (largest-backlog greedy, greedy with hysteresis,
    round-robin).

    The point of a competitive guarantee is the worst case: the naive
    baselines can win on friendly inputs, but their worst ratio across
    families (and especially on the adversarial constructions) blows up
    while ΔLRU-EDF's does not. *)

val exp_11 : unit -> Harness.outcome
