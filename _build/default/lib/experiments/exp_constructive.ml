open Rrs_core
module Families = Rrs_workload.Families
module Table = Rrs_report.Table

let record ~n instance factory =
  let cfg = Engine.config ~n ~record_schedule:true () in
  let r = Engine.run cfg instance factory in
  (r, Option.get r.schedule)

let exp_12 () =
  let m = 2 in
  let table =
    Table.create
      ~columns:
        [
          "family";
          "construction";
          "jobs executed (in = out)";
          "reconfig in";
          "reconfig out";
          "blow-up";
        ]
  in
  let worst_aggregate = ref 0.0 in
  let worst_punctual = ref 0.0 in
  let all_preserved = ref true in
  List.iter
    (fun (f : Families.family) ->
      let instance = f.build ~seed:1 in
      let plan = Offline_heuristics.interval_plan instance ~m ~window:16 in
      let result, t = record ~n:m instance plan in
      (* Aggregate needs a batched power-of-two instance *)
      if
        Instance.is_batched instance
        && Instance.delays_are_powers_of_two instance
      then begin
        let mapping = Distribute.transform instance in
        match Aggregate.verify instance ~mapping t with
        | Error msg -> failwith ("EXP-12 aggregate: " ^ msg)
        | Ok (t', report) ->
            if report.executed <> result.executed then all_preserved := false;
            let blow_up =
              Harness.ratio
                (Schedule.reconfig_count t')
                (max 1 (Schedule.reconfig_count t))
            in
            worst_aggregate := max !worst_aggregate blow_up;
            Table.add_row table
              [
                f.id;
                "Aggregate (Lemma 4.1)";
                Printf.sprintf "%d = %d" result.executed report.executed;
                Table.cell_int (Schedule.reconfig_count t);
                Table.cell_int (Schedule.reconfig_count t');
                Table.cell_float blow_up;
              ]
      end;
      (* the punctual construction applies to any pow2-delay instance *)
      if Instance.delays_are_powers_of_two instance then begin
        let t' = Punctual.make_punctual instance t in
        let report = Validator.check ~strict_drops:false instance t' in
        if (not report.ok) || report.executed <> result.executed then
          all_preserved := false;
        let blow_up =
          Harness.ratio
            (Schedule.reconfig_count t')
            (max 1 (Schedule.reconfig_count t))
        in
        worst_punctual := max !worst_punctual blow_up;
        Table.add_row table
          [
            f.id;
            "Punctual (Lemma 5.3)";
            Printf.sprintf "%d = %d" result.executed report.executed;
            Table.cell_int (Schedule.reconfig_count t);
            Table.cell_int (Schedule.reconfig_count t');
            Table.cell_float blow_up;
          ]
      end)
    Families.all;
  {
    Harness.id = "EXP-12";
    title = "Constructive transformations: Aggregate and Punctual";
    claim =
      "both schedule transformations preserve the executed-job count \
       exactly (drop cost unchanged) and pay at most a constant-factor \
       reconfiguration overhead (the paper's constants are ~6-12)";
    table;
    findings =
      [
        (if !all_preserved then "every transformation preserved executions"
         else "EXECUTION COUNT CHANGED - investigate");
        Printf.sprintf
          "worst reconfiguration blow-up: Aggregate %.2fx, Punctual %.2fx"
          !worst_aggregate !worst_punctual;
      ];
  }
