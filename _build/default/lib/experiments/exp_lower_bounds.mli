(** EXP-A and EXP-B: the appendix lower-bound constructions as ratio
    sweeps ("figures").

    EXP-A (Appendix A): on the ΔLRU adversarial family, the competitive
    ratio of ΔLRU grows as [Ω(2^(j+1) / (n Δ))] when [j] grows, while
    ΔLRU-EDF's ratio on the same inputs stays bounded.

    EXP-B (Appendix B): on the EDF adversarial family, the competitive
    ratio of EDF grows as [2^(k-j-1) / (n/2 + 1)] when [k - j] grows,
    while ΔLRU-EDF's stays bounded.

    Ratios are measured against the appendix's own clairvoyant OFF
    schedule (a feasible offline schedule, hence an upper bound on OPT —
    the conservative direction for demonstrating growth). *)

val exp_a : unit -> Harness.outcome
val exp_b : unit -> Harness.outcome
