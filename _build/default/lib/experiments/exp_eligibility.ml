open Rrs_core
module Synthetic = Rrs_workload.Synthetic
module Table = Rrs_report.Table
module Rng = Rrs_prng.Rng

let exp_13 () =
  let n = 8 in
  let table =
    Table.create
      ~columns:
        [
          "tail colors";
          "tail jobs";
          "classic-LRU cost";
          "dLRU cost";
          "dLRU-EDF cost";
          "OPT lower bd";
        ]
  in
  let costs = Hashtbl.create 8 in
  let tails = [ 0; 20; 40; 80; 160 ] in
  List.iter
    (fun tail_colors ->
      let instance =
        Synthetic.longtail (Rng.create ~seed:5)
          { Synthetic.default_longtail with tail_colors }
      in
      let run name factory =
        let r = Harness.run_policy instance ~n factory in
        Hashtbl.replace costs (name, tail_colors) (Cost.total r.cost);
        Cost.total r.cost
      in
      let lru = run "lru" Naive_policies.classic_lru in
      let dlru = run "dlru" Delta_lru.policy in
      let combo = run "combo" Lru_edf.policy in
      Table.add_row table
        [
          Table.cell_int tail_colors;
          Table.cell_int
            (tail_colors * Synthetic.default_longtail.seed_jobs);
          Table.cell_int lru;
          Table.cell_int dlru;
          Table.cell_int combo;
          Table.cell_int (Offline_bounds.lower_bound instance ~m:1);
        ])
    tails;
  let get name tail = Hashtbl.find costs (name, tail) in
  let widest = List.nth tails (List.length tails - 1) in
  let lru_growth = get "lru" widest - get "lru" 0 in
  let combo_growth = get "combo" widest - get "combo" 0 in
  {
    Harness.id = "EXP-13";
    title = "Ablation: the delta-counter (eligibility) in dLRU";
    claim =
      "classic LRU pays ~delta per tail color (reconfig for colors not \
       worth caching); the eligibility machinery pays only their drop cost \
       (~seed_jobs each, Lemma 3.1), so its cost grows far slower with the \
       tail";
    table;
    findings =
      [
        Printf.sprintf
          "cost growth over %d tail colors: classic LRU +%d, dLRU-EDF +%d"
          widest lru_growth combo_growth;
        (if combo_growth * 2 <= lru_growth then
           "the delta-counter machinery pays for itself on the long tail"
         else "the tail did not separate the policies - investigate");
      ];
  }
