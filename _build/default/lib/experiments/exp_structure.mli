(** EXP-6, EXP-7 and EXP-8: resource augmentation, cost anatomy, and
    exact tiny-instance ratios.

    EXP-6: competitive ratio of ΔLRU-EDF as the augmentation factor
    [n/m] grows from 1x to 8x (fixed [m = 4]): the curve must fall and
    flatten — the shape behind the paper's resource-augmentation
    framing.

    EXP-7: the introduction's dilemma: on the background-vs-short-term
    scenario, ΔLRU underutilizes (cost dominated by drops), EDF thrashes
    (cost dominated by reconfigurations), and ΔLRU-EDF beats both with a
    balanced split.

    EXP-8: on exhaustively solvable tiny instances, the exact
    competitive ratio of ΔLRU-EDF against the true OPT (memoized search,
    not a bound). *)

val exp_6 : unit -> Harness.outcome
val exp_7 : unit -> Harness.outcome
val exp_8 : unit -> Harness.outcome
