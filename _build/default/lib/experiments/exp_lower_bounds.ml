open Rrs_core
module Adv = Rrs_workload.Adversarial
module Table = Rrs_report.Table
module Regression = Rrs_stats.Regression

let exp_a () =
  let n = 8 and delta = 2 in
  let table =
    Table.create
      ~columns:
        [
          "j";
          "k";
          "predicted 2^(j+1)/(n*delta)";
          "dLRU cost";
          "dLRU-EDF cost";
          "OFF cost";
          "dLRU ratio";
          "dLRU-EDF ratio";
        ]
  in
  let points = ref [] in
  let lru_edf_ratios = ref [] in
  List.iter
    (fun j ->
      let k = j + 2 in
      let p : Adv.dlru_params = { n; delta; j; k } in
      let instance = Adv.dlru_instance p in
      let dlru = Harness.run_policy instance ~n Delta_lru.policy in
      let lru_edf = Harness.run_policy instance ~n Lru_edf.policy in
      let off = Harness.run_policy instance ~n:1 (Adv.dlru_off p) in
      let off_total = Cost.total off.cost in
      let r_dlru = Harness.ratio (Cost.total dlru.cost) off_total in
      let r_le = Harness.ratio (Cost.total lru_edf.cost) off_total in
      points := (float_of_int j, r_dlru) :: !points;
      lru_edf_ratios := r_le :: !lru_edf_ratios;
      Table.add_row table
        [
          Table.cell_int j;
          Table.cell_int k;
          Table.cell_float (float_of_int (1 lsl (j + 1)) /. float_of_int (n * delta));
          Table.cell_int (Cost.total dlru.cost);
          Table.cell_int (Cost.total lru_edf.cost);
          Table.cell_int off_total;
          Table.cell_float r_dlru;
          Table.cell_float r_le;
        ])
    [ 4; 5; 6; 7; 8; 9; 10 ];
  let slope = Regression.doubling_slope (List.rev !points) in
  let worst_le = List.fold_left max 0.0 !lru_edf_ratios in
  {
    Harness.id = "EXP-A";
    title = "Appendix A: dLRU is not resource competitive";
    claim =
      "dLRU/OFF ratio grows as Omega(2^(j+1)/(n*delta)) in j (doubles per \
       unit of j); dLRU-EDF stays bounded on the same inputs";
    table;
    findings =
      [
        Printf.sprintf
          "dLRU ratio doubling rate per unit of j: %.2f (paper predicts ~1.0)"
          slope;
        Printf.sprintf "worst dLRU-EDF ratio across the sweep: %.2f" worst_le;
      ];
  }

let exp_b () =
  let n = 4 and delta = 6 and j = 3 in
  let table =
    Table.create
      ~columns:
        [
          "k";
          "k-j";
          "predicted 2^(k-j-1)/(n/2+1)";
          "EDF cost";
          "dLRU-EDF cost";
          "OFF cost";
          "EDF ratio";
          "dLRU-EDF ratio";
        ]
  in
  let points = ref [] in
  let lru_edf_ratios = ref [] in
  List.iter
    (fun k ->
      let p : Adv.edf_params = { n; delta; j; k } in
      let instance = Adv.edf_instance p in
      let edf = Harness.run_policy instance ~n Edf_policy.policy in
      let lru_edf = Harness.run_policy instance ~n Lru_edf.policy in
      let off = Harness.run_policy instance ~n:1 (Adv.edf_off p) in
      let off_total = Cost.total off.cost in
      let r_edf = Harness.ratio (Cost.total edf.cost) off_total in
      let r_le = Harness.ratio (Cost.total lru_edf.cost) off_total in
      points := (float_of_int (k - j), r_edf) :: !points;
      lru_edf_ratios := r_le :: !lru_edf_ratios;
      Table.add_row table
        [
          Table.cell_int k;
          Table.cell_int (k - j);
          Table.cell_float
            (float_of_int (1 lsl (k - j - 1)) /. float_of_int ((n / 2) + 1));
          Table.cell_int (Cost.total edf.cost);
          Table.cell_int (Cost.total lru_edf.cost);
          Table.cell_int off_total;
          Table.cell_float r_edf;
          Table.cell_float r_le;
        ])
    [ 5; 6; 7; 8; 9; 10 ];
  let slope = Regression.doubling_slope (List.rev !points) in
  let worst_le = List.fold_left max 0.0 !lru_edf_ratios in
  {
    Harness.id = "EXP-B";
    title = "Appendix B: EDF is not resource competitive";
    claim =
      "EDF/OFF ratio grows as 2^(k-j-1)/(n/2+1) in k-j (doubles per unit); \
       dLRU-EDF stays bounded on the same inputs";
    table;
    findings =
      [
        Printf.sprintf
          "EDF ratio doubling rate per unit of k-j: %.2f (paper predicts ~1.0)"
          slope;
        Printf.sprintf "worst dLRU-EDF ratio across the sweep: %.2f" worst_le;
      ];
  }
