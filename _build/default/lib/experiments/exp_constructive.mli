(** EXP-12: the constructive schedule transformations behind Lemma 4.1
    (Aggregate, Section 4.3) and Lemma 5.3 (the punctual construction,
    Section 5.2), measured end to end.

    For each workload family and several clairvoyant input schedules,
    the table reports that the transformed schedules execute exactly the
    same number of jobs (Lemma 4.5 / Lemma 5.3 drop preservation) and
    the measured reconfiguration-cost blow-up factor, which the lemmas
    bound by a constant. *)

val exp_12 : unit -> Harness.outcome
