open Rrs_core
module Families = Rrs_workload.Families
module Table = Rrs_report.Table
module Summary = Rrs_stats.Summary

let n = 8
let m = 1 (* Theorem 1: n = 8m *)
let seeds = [ 1; 2; 3; 4; 5 ]

let families layer =
  List.filter (fun f -> f.Families.layer = layer) Families.all

(* Shared sweep: run [solve] on every (family, seed), tabulate cost vs
   the OPT(m) lower bound, and report the worst and geometric-mean
   ratios.  The (family, seed) runs are independent, so they spread over
   the available cores. *)
let ratio_sweep ~layer ~solver_name solve =
  let table =
    Table.create
      ~columns:
        [
          "family";
          "seed";
          "jobs";
          solver_name ^ " cost (r+d)";
          "OPT(m=1) lower bd";
          "ratio (upper est.)";
        ]
  in
  let tasks =
    List.concat_map
      (fun (f : Families.family) -> List.map (fun seed -> (f, seed)) seeds)
      (families layer)
  in
  let rows =
    Rrs_parallel.Pool.map
      (fun ((f : Families.family), seed) ->
        let instance = f.build ~seed in
        let result = solve instance in
        let lb = Offline_bounds.lower_bound instance ~m in
        let total = Cost.total result.Engine.cost in
        let ratio = Harness.ratio total lb in
        ( ratio,
          [
            f.id;
            Table.cell_int seed;
            Table.cell_int (Instance.total_jobs instance);
            Table.cell_cost ~reconfig:result.cost.reconfig
              ~drop:result.cost.drop;
            Table.cell_int lb;
            Harness.ratio_cell total lb;
          ] ))
      tasks
  in
  let ratios =
    List.filter_map
      (fun (r, _) -> if r = infinity then None else Some r)
      rows
  in
  List.iter (fun (_, row) -> Table.add_row table row) rows;
  let worst = List.fold_left max 1.0 ratios in
  let geomean =
    Summary.geometric_mean (List.map (fun r -> max r 1e-9) ratios)
  in
  (table, worst, geomean)

let exp_1 () =
  let table, worst, geomean =
    ratio_sweep ~layer:Families.Rate_limited ~solver_name:"dLRU-EDF"
      (fun instance -> Harness.run_policy instance ~n Lru_edf.policy)
  in
  {
    Harness.id = "EXP-1";
    title = "Theorem 1: dLRU-EDF is resource competitive (rate-limited)";
    claim =
      "with n = 8m resources, cost(dLRU-EDF) / OPT(m) is bounded by a \
       constant across input families (ratios below are upper estimates: \
       the denominator is a lower bound on OPT)";
    table;
    findings =
      [
        Printf.sprintf "worst measured ratio: %.2f" worst;
        Printf.sprintf "geometric-mean ratio: %.2f" geomean;
      ];
  }

let exp_2 () =
  let table, worst, geomean =
    ratio_sweep ~layer:Families.Batched ~solver_name:"Distribute"
      (fun instance -> Distribute.run instance ~n)
  in
  {
    Harness.id = "EXP-2";
    title = "Theorem 2: Distribute handles oversized batches";
    claim =
      "splitting each batch into <= D_l chunks over subcolors preserves \
       constant competitiveness on batched [D|1|D_l|D_l] inputs";
    table;
    findings =
      [
        Printf.sprintf "worst measured ratio: %.2f" worst;
        Printf.sprintf "geometric-mean ratio: %.2f" geomean;
      ];
  }

let exp_3 () =
  let table, worst, geomean =
    ratio_sweep ~layer:Families.Unbatched ~solver_name:"VarBatch"
      (fun instance -> Var_batch.run instance ~n)
  in
  {
    Harness.id = "EXP-3";
    title = "Theorem 3: the VarBatch pipeline solves [D|1|D_l|1]";
    claim =
      "delaying jobs to half-block boundaries (including the Section 5.3 \
       extension to non-power-of-two bounds) then applying Distribute and \
       dLRU-EDF stays constant competitive on arbitrary arrivals";
    table;
    findings =
      [
        Printf.sprintf "worst measured ratio: %.2f" worst;
        Printf.sprintf "geometric-mean ratio: %.2f" geomean;
      ];
  }
