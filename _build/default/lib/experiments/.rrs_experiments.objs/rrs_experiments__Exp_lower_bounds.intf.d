lib/experiments/exp_lower_bounds.mli: Harness
