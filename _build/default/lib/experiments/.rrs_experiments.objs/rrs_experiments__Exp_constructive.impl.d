lib/experiments/exp_constructive.ml: Aggregate Distribute Engine Harness Instance List Offline_heuristics Option Printf Punctual Rrs_core Rrs_report Rrs_workload Schedule Validator
