lib/experiments/exp_baselines.ml: Cost Harness Hashtbl List Lru_edf Naive_policies Offline_bounds Option Printf Rrs_core Rrs_report Rrs_workload String
