lib/experiments/harness.ml: List Printf Rrs_core Rrs_obs Rrs_report
