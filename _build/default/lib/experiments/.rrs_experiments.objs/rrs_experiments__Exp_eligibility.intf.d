lib/experiments/exp_eligibility.mli: Harness
