lib/experiments/harness.mli: Rrs_core Rrs_obs Rrs_report
