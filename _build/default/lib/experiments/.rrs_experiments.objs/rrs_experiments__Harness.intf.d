lib/experiments/harness.mli: Rrs_core Rrs_report
