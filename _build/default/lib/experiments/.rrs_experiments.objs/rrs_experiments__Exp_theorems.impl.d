lib/experiments/exp_theorems.ml: Cost Distribute Engine Harness Instance List Lru_edf Offline_bounds Printf Rrs_core Rrs_parallel Rrs_report Rrs_stats Rrs_workload Var_batch
