lib/experiments/exp_eligibility.ml: Cost Delta_lru Harness Hashtbl List Lru_edf Naive_policies Offline_bounds Printf Rrs_core Rrs_prng Rrs_report Rrs_workload
