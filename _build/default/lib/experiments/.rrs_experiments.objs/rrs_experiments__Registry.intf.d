lib/experiments/registry.mli: Harness Rrs_obs
