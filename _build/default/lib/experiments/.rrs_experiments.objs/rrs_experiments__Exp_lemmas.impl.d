lib/experiments/exp_lemmas.ml: Eligibility Engine Harness Instance List Lru_edf Par_edf Printf Rrs_core Rrs_parallel Rrs_report Rrs_workload
