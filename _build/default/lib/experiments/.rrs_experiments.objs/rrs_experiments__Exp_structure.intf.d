lib/experiments/exp_structure.mli: Harness
