lib/experiments/exp_structure.ml: Array Cost Delta_lru Edf_policy Fun Harness Hashtbl Instance List Lru_edf Offline_bounds Offline_opt Option Printf Rrs_core Rrs_prng Rrs_report Rrs_workload Types
