lib/experiments/exp_constructive.mli: Harness
