lib/experiments/exp_lemmas.mli: Harness
