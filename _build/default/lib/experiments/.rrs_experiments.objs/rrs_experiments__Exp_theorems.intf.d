lib/experiments/exp_theorems.mli: Harness
