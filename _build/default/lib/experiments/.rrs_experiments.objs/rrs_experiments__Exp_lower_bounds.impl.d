lib/experiments/exp_lower_bounds.ml: Cost Delta_lru Edf_policy Harness List Lru_edf Printf Rrs_core Rrs_report Rrs_stats Rrs_workload
