lib/experiments/exp_ablation.ml: Cost Engine Harness List Lru_edf Offline_bounds Option Printf Rrs_core Rrs_report Rrs_workload
