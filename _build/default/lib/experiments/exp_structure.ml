open Rrs_core
module Families = Rrs_workload.Families
module Scenarios = Rrs_workload.Scenarios
module Table = Rrs_report.Table
module Rng = Rrs_prng.Rng

let exp_6 () =
  let m = 4 in
  let factors = [ 1; 2; 4; 8 ] in
  let family_ids = [ "uniform"; "zipf"; "router" ] in
  let table =
    Table.create
      ~columns:("n/m" :: "n" :: List.map (fun id -> id ^ " ratio") family_ids)
  in
  let first_ratios = ref [] in
  let last_ratios = ref [] in
  List.iter
    (fun factor ->
      let n = m * factor in
      let cells =
        List.map
          (fun id ->
            let f = Option.get (Families.find id) in
            let rs =
              List.map
                (fun seed ->
                  let instance = f.build ~seed in
                  let r = Harness.run_policy instance ~n Lru_edf.policy in
                  let lb = Offline_bounds.lower_bound instance ~m in
                  Harness.ratio (Cost.total r.cost) lb)
                [ 1; 2; 3 ]
            in
            List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs))
          family_ids
      in
      if factor = List.hd factors then first_ratios := cells;
      if factor = List.nth factors (List.length factors - 1) then
        last_ratios := cells;
      Table.add_row table
        (Table.cell_int factor :: Table.cell_int n
        :: List.map Table.cell_float cells))
    factors;
  let improved =
    List.for_all2 (fun a b -> b <= a +. 1e-9) !first_ratios !last_ratios
  in
  {
    Harness.id = "EXP-6";
    title = "Resource augmentation sweep";
    claim =
      "the measured ratio decreases and flattens as the augmentation \
       factor n/m grows (the paper proves constant ratio at 8x)";
    table;
    findings =
      [
        (if improved then
           "ratio at 8x is at most the ratio at 1x for every family"
         else "augmentation did not help on some family - investigate");
      ];
  }

(* EXP-7.  The introduction's point is a *worst-case* one: a recency-only
   scheme blows up on some inputs (underutilization), a deadline-only
   scheme on others (thrashing), and the combination on neither.  We run
   all three policies with the same n on three workloads — the two
   adversarial constructions plus the benign background scenario — and
   compare each policy's worst ratio across workloads. *)
let exp_7 () =
  let n = 8 in
  let module Adv = Rrs_workload.Adversarial in
  let adv_a : Adv.dlru_params = { n; delta = 2; j = 8; k = 10 } in
  let adv_b : Adv.edf_params = { n; delta = 10; j = 4; k = 9 } in
  let workloads =
    [
      ("appendix-A", Adv.dlru_instance adv_a);
      ("appendix-B", Adv.edf_instance adv_b);
      ( "background",
        Scenarios.background_shortterm
          {
            Scenarios.default_background with
            delta = 16;
            short_colors = 6;
            gap_probability = 0.5;
            background_jobs = 512;
            long_exp = 10;
          } );
    ]
  in
  let policies =
    [
      ("dLRU", Delta_lru.policy);
      ("EDF", Edf_policy.policy);
      ("dLRU-EDF", Lru_edf.policy);
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          "workload";
          "policy";
          "reconfig";
          "drop";
          "total";
          "ratio vs OPT-lb";
          "dominant term";
        ]
  in
  let worst = Hashtbl.create 4 in
  List.iter
    (fun (wname, instance) ->
      let lb = Offline_bounds.lower_bound instance ~m:1 in
      List.iter
        (fun (pname, factory) ->
          let r = Harness.run_policy instance ~n factory in
          let ratio = Harness.ratio (Cost.total r.cost) lb in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt worst pname) in
          Hashtbl.replace worst pname (max prev ratio);
          let dominant =
            if r.cost.drop > r.cost.reconfig then "drops (underutilization)"
            else if r.cost.reconfig > r.cost.drop then "reconfigs (thrashing)"
            else "balanced"
          in
          Table.add_row table
            [
              wname;
              pname;
              Table.cell_int r.cost.reconfig;
              Table.cell_int r.cost.drop;
              Table.cell_int (Cost.total r.cost);
              Table.cell_float ratio;
              dominant;
            ])
        policies)
    workloads;
  let w name = Hashtbl.find worst name in
  let combination_safest =
    w "dLRU-EDF" <= w "dLRU" && w "dLRU-EDF" <= w "EDF"
  in
  {
    Harness.id = "EXP-7";
    title = "Introduction dilemma: thrashing vs underutilization (worst case)";
    claim =
      "recency-only blows up (drop-dominated) on the Appendix-A workload, \
       deadline-only blows up (reconfig-dominated) on the Appendix-B \
       workload; the combination's worst ratio across workloads is the \
       smallest of the three";
    table;
    findings =
      [
        Printf.sprintf
          "worst ratios across workloads: dLRU %.2f, EDF %.2f, dLRU-EDF %.2f"
          (w "dLRU") (w "EDF") (w "dLRU-EDF");
        (if combination_safest then
           "the combination has the smallest worst-case ratio"
         else "the combination is not safest here - investigate");
      ];
  }

let exp_8 () =
  let table =
    Table.create
      ~columns:
        [
          "instance";
          "jobs";
          "exact OPT(m=1)";
          "dLRU-EDF(n=8) cost";
          "exact ratio";
        ]
  in
  let rng = Rng.create ~seed:2027 in
  let ratios = ref [] in
  let solved = ref 0 in
  for idx = 1 to 12 do
    let num_colors = 1 + Rng.int rng 3 in
    let delta = 1 + Rng.int rng 2 in
    let delay = Array.init num_colors (fun _ -> 1 lsl Rng.int rng 3) in
    let arrivals =
      List.concat
        (List.init 3 (fun b ->
             List.filter_map
               (fun c ->
                 if Rng.bernoulli rng 0.6 then
                   Some
                     {
                       Types.round = b * 8;
                       color = c;
                       count = 1 + Rng.int rng (min 4 delay.(c));
                     }
                 else None)
               (List.init num_colors Fun.id)))
    in
    let instance =
      Instance.create
        ~name:(Printf.sprintf "tiny-%02d" idx)
        ~delta ~delay ~arrivals ()
    in
    match Offline_opt.solve ~max_states:400_000 instance ~m:1 with
    | None -> ()
    | Some opt ->
        incr solved;
        let r = Harness.run_policy instance ~n:8 Lru_edf.policy in
        let total = Cost.total r.cost in
        let ratio = Harness.ratio total opt in
        if ratio <> infinity then ratios := ratio :: !ratios;
        Table.add_row table
          [
            instance.name;
            Table.cell_int (Instance.total_jobs instance);
            Table.cell_int opt;
            Table.cell_int total;
            Harness.ratio_cell total opt;
          ]
  done;
  let worst = List.fold_left max 1.0 !ratios in
  {
    Harness.id = "EXP-8";
    title = "Exact competitive ratios on tiny instances";
    claim =
      "against the true optimum (exhaustive memoized search), dLRU-EDF's \
       ratio with 8x resources is a small constant";
    table;
    findings =
      [
        Printf.sprintf "%d/12 instances solved exactly within budget" !solved;
        Printf.sprintf "worst exact ratio: %.2f" worst;
      ];
  }
