lib/parallel/pool.mli:
