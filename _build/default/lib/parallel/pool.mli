(** Minimal domain pool built on OCaml 5 multicore primitives (stdlib
    [Domain] + [Mutex]/[Condition] only — no external dependency).

    Simulation runs are embarrassingly parallel: each (workload, seed,
    policy) engine run touches only its own state.  The experiment
    sweeps use {!map} to spread runs over cores; results come back in
    input order and determinism is preserved (the tasks themselves are
    deterministic and share nothing).

    Exceptions raised by a task are captured and re-raised in the
    caller once every worker has stopped. *)

val num_domains : unit -> int
(** Recommended parallelism: [Domain.recommended_domain_count], at
    least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, spreading work over
    [domains] (default {!num_domains}, capped by the list length).
    Results are in input order.  With [domains = 1] (or a short list)
    this degrades to [List.map].
    @raise Invalid_argument if [domains < 1].  Re-raises the first task
    exception (by input order) after all workers finish. *)

val run_both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run two independent thunks, the second on a fresh domain. *)
