let num_domains () = max 1 (Domain.recommended_domain_count ())

type 'b outcome = Pending | Done of 'b | Failed of exn

let map ?domains f xs =
  let requested = match domains with Some d -> d | None -> num_domains () in
  if requested < 1 then invalid_arg "Pool.map: domains < 1";
  let items = Array.of_list xs in
  let n = Array.length items in
  let workers = min requested n in
  if workers <= 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    (* work stealing by atomic counter: workers pull the next index *)
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            (match f items.(i) with v -> Done v | exception e -> Failed e)
      done
    in
    let spawned =
      List.init (workers - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    (* surface the first failure in input order, if any *)
    Array.iter
      (function Failed e -> raise e | Done _ | Pending -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Pending | Failed _ -> assert false (* all slots visited *))
         results)
  end

let run_both f g =
  let d = Domain.spawn g in
  let a = f () in
  let b = Domain.join d in
  (a, b)
