lib/trace/metrics.mli: Rrs_core Rrs_obs Rrs_stats
