lib/trace/metrics.mli: Rrs_core Rrs_stats
