lib/trace/metrics.ml: Array Buffer Csv Fun Hashtbl List Pending Policy Rrs_core Rrs_obs Rrs_stats Types
