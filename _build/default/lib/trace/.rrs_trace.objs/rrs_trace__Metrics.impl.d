lib/trace/metrics.ml: Array Csv Hashtbl List Pending Policy Rrs_core Rrs_stats Types
