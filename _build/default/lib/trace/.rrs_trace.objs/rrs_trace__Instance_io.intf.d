lib/trace/instance_io.mli: Rrs_core
