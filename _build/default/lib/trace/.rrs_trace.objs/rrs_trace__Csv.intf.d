lib/trace/csv.mli:
