lib/trace/schedule_io.mli: Rrs_core
