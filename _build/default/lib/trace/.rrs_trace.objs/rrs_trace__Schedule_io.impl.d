lib/trace/schedule_io.ml: Array Buffer Csv List Printf Rrs_core Schedule String Types
