lib/trace/instance_io.ml: Array Csv Fun In_channel Instance List Printf Result Rrs_core String Types
