lib/trace/csv.ml: Buffer List Printf String
