(** Schedule export: the recorded event stream as CSV, and a Gantt-style
    text rendering of small schedules for debugging and teaching.

    CSV format, one event per row:
    {v
    kind,round,mini_round,resource,color,count,from_color
    reconfigure,3,0,1,4,,-1
    execute,3,0,1,4,,
    drop,5,,,2,7,
    v} *)

val to_csv : Rrs_core.Schedule.t -> string

val render_gantt :
  ?max_rounds:int -> ?max_resources:int -> Rrs_core.Schedule.t -> string
(** A resource-by-round grid: each cell shows the color the resource
    holds, with ['*'] appended when it executes that round and ['.'] for
    black.  Defaults clip at 64 rounds and 16 resources (a header notes
    any clipping). *)
