open Rrs_core

let to_csv (instance : Instance.t) =
  let rows =
    [ [ "meta"; "name"; instance.name ];
      [ "meta"; "delta"; string_of_int instance.delta ] ]
    @ List.mapi
        (fun color d -> [ "delay"; string_of_int color; string_of_int d ])
        (Array.to_list instance.delay)
    @ List.map
        (fun (a : Types.arrival) ->
          [
            "arrival";
            string_of_int a.round;
            string_of_int a.color;
            string_of_int a.count;
          ])
        (Array.to_list instance.arrivals)
  in
  Csv.render rows

let int_field label s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not an integer: %S" label s)

let ( let* ) = Result.bind

let of_csv doc =
  let* rows = Csv.parse doc in
  let name = ref "instance" in
  let delta = ref None in
  let delays = ref [] in
  let arrivals = ref [] in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        match row with
        | [ "meta"; "name"; v ] ->
            name := v;
            Ok ()
        | [ "meta"; "delta"; v ] ->
            let* d = int_field "delta" v in
            delta := Some d;
            Ok ()
        | [ "delay"; color; d ] ->
            let* color = int_field "delay color" color in
            let* d = int_field "delay bound" d in
            delays := (color, d) :: !delays;
            Ok ()
        | [ "arrival"; round; color; count ] ->
            let* round = int_field "arrival round" round in
            let* color = int_field "arrival color" color in
            let* count = int_field "arrival count" count in
            arrivals := { Types.round; color; count } :: !arrivals;
            Ok ()
        | other ->
            Error
              (Printf.sprintf "unrecognised row: %s" (String.concat "," other)))
      (Ok ()) rows
  in
  let* delta =
    match !delta with Some d -> Ok d | None -> Error "missing meta,delta row"
  in
  let sorted_delays = List.sort compare !delays in
  let* () =
    if List.mapi (fun i (c, _) -> c = i) sorted_delays |> List.for_all Fun.id
    then Ok ()
    else Error "delay rows must cover colors 0..k-1 exactly once"
  in
  let delay = Array.of_list (List.map snd sorted_delays) in
  match
    Instance.create ~name:!name ~delta ~delay ~arrivals:(List.rev !arrivals) ()
  with
  | instance -> Ok instance
  | exception Invalid_argument msg -> Error msg

let save path instance =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv instance))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_csv (In_channel.input_all ic))
