open Rrs_core

let to_csv (t : Schedule.t) =
  let header =
    [ "kind"; "round"; "mini_round"; "resource"; "color"; "count"; "from_color" ]
  in
  let rows =
    Array.to_list t.events
    |> List.map (fun (round, e) ->
           match e with
           | Schedule.Reconfigure { resource; mini_round; from_color; to_color }
             ->
               [
                 "reconfigure";
                 string_of_int round;
                 string_of_int mini_round;
                 string_of_int resource;
                 string_of_int to_color;
                 "";
                 string_of_int from_color;
               ]
           | Schedule.Execute { resource; mini_round; color } ->
               [
                 "execute";
                 string_of_int round;
                 string_of_int mini_round;
                 string_of_int resource;
                 string_of_int color;
                 "";
                 "";
               ]
           | Schedule.Drop { color; count } ->
               [
                 "drop";
                 string_of_int round;
                 "";
                 "";
                 string_of_int color;
                 string_of_int count;
                 "";
               ])
  in
  Csv.render (header :: rows)

let render_gantt ?(max_rounds = 64) ?(max_resources = 16) (t : Schedule.t) =
  let last_round =
    Array.fold_left (fun acc (r, _) -> max acc r) 0 t.events
  in
  let rounds = min (last_round + 1) max_rounds in
  let resources = min t.n max_resources in
  (* colors held and executions, replayed from the event stream *)
  let held = Array.make_matrix t.n (last_round + 1) Types.black in
  let exec = Array.make_matrix t.n (last_round + 1) false in
  Array.iter
    (fun (round, e) ->
      match e with
      | Schedule.Reconfigure { resource; to_color; _ } ->
          for r = round to last_round do
            held.(resource).(r) <- to_color
          done
      | Schedule.Execute { resource; _ } -> exec.(resource).(round) <- true
      | Schedule.Drop _ -> ())
    t.events;
  let buf = Buffer.create 1024 in
  if rounds < last_round + 1 || resources < t.n then
    Buffer.add_string buf
      (Printf.sprintf "(clipped to %d rounds x %d resources)\n" rounds
         resources);
  (* cell width fits the largest color id plus the execution marker *)
  let width =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc c -> max acc (String.length (string_of_int c)))
          acc row)
      1 held
    + 1
  in
  Buffer.add_string buf (String.make 4 ' ');
  for r = 0 to rounds - 1 do
    Buffer.add_string buf (Printf.sprintf "%*d" width (r mod 100))
  done;
  Buffer.add_char buf '\n';
  for k = 0 to resources - 1 do
    Buffer.add_string buf (Printf.sprintf "r%-3d" k);
    for r = 0 to rounds - 1 do
      let cell =
        if held.(k).(r) = Types.black then "."
        else
          string_of_int held.(k).(r) ^ if exec.(k).(r) then "*" else ""
      in
      Buffer.add_string buf (Printf.sprintf "%*s" width cell)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
