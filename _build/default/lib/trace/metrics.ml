open Rrs_core

type sample = {
  round : Types.round;
  backlog : int;
  nonidle_colors : int;
  cached_colors : int;
  cumulative_drops : int;
  cumulative_recolorings : int;
}

type t = {
  mutable series : sample list; (* reverse chronological *)
  mutable drops : int;
  mutable recolorings : int;
  mutable previous : Types.color array option;
}

let create () = { series = []; drops = 0; recolorings = 0; previous = None }

let distinct_cached assignment =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun c -> if c <> Types.black then Hashtbl.replace seen c ())
    assignment;
  Hashtbl.length seen

let count_recolorings previous assignment =
  match previous with
  | None ->
      Array.fold_left
        (fun acc c -> if c <> Types.black then acc + 1 else acc)
        0 assignment
  | Some prev ->
      let changes = ref 0 in
      Array.iteri (fun i c -> if prev.(i) <> c then incr changes) assignment;
      !changes

let observe t (view : Policy.view) assignment =
  if view.mini_round = 0 then
    t.drops <-
      t.drops + List.fold_left (fun acc (_, c) -> acc + c) 0 view.dropped;
  t.recolorings <- t.recolorings + count_recolorings t.previous assignment;
  t.previous <- Some (Array.copy assignment);
  let sample =
    {
      round = view.round;
      backlog = Pending.grand_total view.pending;
      nonidle_colors = Pending.nonidle_count view.pending;
      cached_colors = distinct_cached assignment;
      cumulative_drops = t.drops;
      cumulative_recolorings = t.recolorings;
    }
  in
  match t.series with
  | head :: rest when head.round = view.round ->
      (* later mini-round of the same round: replace *)
      t.series <- sample :: rest
  | _ -> t.series <- sample :: t.series

let instrument (policy : Policy.t) =
  let t = create () in
  let reconfigure view =
    let assignment = policy.Policy.reconfigure view in
    observe t view assignment;
    assignment
  in
  (t, { Policy.name = policy.name ^ "+metrics"; reconfigure })

let samples t = List.rev t.series

let to_csv t =
  let header =
    [
      "round";
      "backlog";
      "nonidle_colors";
      "cached_colors";
      "cumulative_drops";
      "cumulative_recolorings";
    ]
  in
  let rows =
    List.map
      (fun s ->
        List.map string_of_int
          [
            s.round;
            s.backlog;
            s.nonidle_colors;
            s.cached_colors;
            s.cumulative_drops;
            s.cumulative_recolorings;
          ])
      (samples t)
  in
  Csv.render (header :: rows)

let backlog_summary t =
  Rrs_stats.Summary.of_list
    (List.map (fun s -> float_of_int s.backlog) (samples t))
