let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render_row fields = String.concat "," (List.map escape_field fields)

let render rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* Single-pass state machine over the document. *)
type state = Start_field | In_field | In_quotes | Quote_seen

let parse doc =
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let state = ref Start_field in
  let error = ref None in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    let row = List.rev !fields in
    fields := [];
    (* skip rows that are a single empty field (blank lines) *)
    if row <> [ "" ] then rows := row :: !rows
  in
  let n = String.length doc in
  let i = ref 0 in
  while !i < n && !error = None do
    let c = doc.[!i] in
    (match (!state, c) with
    | (Start_field | In_field), ',' ->
        flush_field ();
        state := Start_field
    | (Start_field | In_field), '\n' ->
        flush_row ();
        state := Start_field
    | (Start_field | In_field), '\r' ->
        (* swallow; the LF that follows ends the record *)
        ()
    | Start_field, '"' -> state := In_quotes
    | Start_field, c ->
        Buffer.add_char buf c;
        state := In_field
    | In_field, '"' ->
        error := Some (Printf.sprintf "stray quote at offset %d" !i)
    | In_field, c -> Buffer.add_char buf c
    | In_quotes, '"' -> state := Quote_seen
    | In_quotes, c -> Buffer.add_char buf c
    | Quote_seen, '"' ->
        Buffer.add_char buf '"';
        state := In_quotes
    | Quote_seen, ',' ->
        flush_field ();
        state := Start_field
    | Quote_seen, '\n' ->
        flush_row ();
        state := Start_field
    | Quote_seen, '\r' -> ()
    | Quote_seen, _ ->
        error := Some (Printf.sprintf "garbage after quote at offset %d" !i));
    incr i
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
      (match !state with
      | In_quotes -> Error "unterminated quoted field"
      | Start_field ->
          (* flush a trailing record without final newline, if any *)
          if Buffer.length buf > 0 || !fields <> [] then flush_row ();
          Ok (List.rev !rows)
      | In_field | Quote_seen ->
          flush_row ();
          Ok (List.rev !rows))

let parse_exn doc =
  match parse doc with
  | Ok rows -> rows
  | Error msg -> invalid_arg ("Csv.parse_exn: " ^ msg)
