(** Minimal RFC-4180-style CSV reading and writing (comma separator,
    double-quote escaping, LF or CRLF records).  Built from scratch: the
    sealed environment ships no CSV library, and the trace/instance
    interchange formats below need round-trippable quoting. *)

val escape_field : string -> string
(** Quote a field iff it contains a comma, quote or newline. *)

val render_row : string list -> string
(** One record, no trailing newline. *)

val render : string list list -> string
(** All records, LF-terminated each. *)

val parse : string -> (string list list, string) result
(** Parse a CSV document into records of fields.  Empty lines are
    skipped.  Returns [Error] with a position message on unbalanced
    quotes. *)

val parse_exn : string -> string list list
(** @raise Invalid_argument on malformed input. *)
