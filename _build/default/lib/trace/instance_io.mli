(** Instance interchange: save and load problem instances as CSV so
    workloads can be inspected, versioned, or fed in from external
    tooling.

    Format (three sections in one document):
    {v
    meta,name,<name>
    meta,delta,<delta>
    delay,<color>,<delay>          (one row per color)
    arrival,<round>,<color>,<count> (one row per batch)
    v} *)

val to_csv : Rrs_core.Instance.t -> string

val of_csv : string -> (Rrs_core.Instance.t, string) result
(** Rebuilds the instance; fails with a descriptive message on missing
    sections, non-integer fields, or validation errors. *)

val save : string -> Rrs_core.Instance.t -> unit
(** Write to a file path. *)

val load : string -> (Rrs_core.Instance.t, string) result
