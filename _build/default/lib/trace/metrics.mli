(** Per-round time series collected from a live run.

    [instrument] wraps any policy so that, without touching the engine,
    every round's reconfiguration phase records: the pending backlog, the
    number of nonidle colors, the distinct cached colors, and the
    cumulative drop and recoloring counts.  The series drive the
    queue-dynamics views of the examples and can be exported as CSV. *)

type sample = {
  round : Rrs_core.Types.round;
  backlog : int;  (** pending jobs after this round's arrivals *)
  nonidle_colors : int;
  cached_colors : int;  (** distinct non-black colors configured *)
  cumulative_drops : int;
  cumulative_recolorings : int;
}

type t

val instrument : Rrs_core.Policy.t -> t * Rrs_core.Policy.t
(** The returned policy must be run exactly once (policies are
    stateful); afterwards the series are available from [t]. *)

val samples : t -> sample list
(** Chronological (one per round; mini-rounds are merged). *)

val to_csv : t -> string

val backlog_summary : t -> Rrs_stats.Summary.t
(** Distribution of the backlog over rounds.
    @raise Invalid_argument when no samples were collected. *)
