type 'a t = {
  data : 'a option array;
  mutable start : int; (* index of the oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring_buffer.create";
  { data = Array.make capacity None; start = 0; len = 0 }

let capacity t = Array.length t.data
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = capacity t

let push t x =
  let cap = capacity t in
  if t.len < cap then begin
    t.data.((t.start + t.len) mod cap) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    t.data.(t.start) <- Some x;
    t.start <- (t.start + 1) mod cap
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring_buffer.get";
  match t.data.((t.start + i) mod capacity t) with
  | Some x -> x
  | None -> assert false

let oldest t = if t.len = 0 then None else Some (get t 0)
let newest t = if t.len = 0 then None else Some (get t (t.len - 1))

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  Array.fill t.data 0 (capacity t) None;
  t.start <- 0;
  t.len <- 0
