(** Persistent double-ended queue (banker's deque).

    Amortised O(1) push/pop at both ends under single-threaded use.  The
    pending-job buckets of the scheduling engine are FIFO; a deque lets the
    offline search also un-consume from the front when backtracking. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push_front : 'a -> 'a t -> 'a t
val push_back : 'a -> 'a t -> 'a t

val front : 'a t -> 'a
(** @raise Not_found on an empty deque. *)

val back : 'a t -> 'a
(** @raise Not_found on an empty deque. *)

val pop_front : 'a t -> 'a * 'a t
(** @raise Not_found on an empty deque. *)

val pop_back : 'a t -> 'a * 'a t
(** @raise Not_found on an empty deque. *)

val pop_front_opt : 'a t -> ('a * 'a t) option
val pop_back_opt : 'a t -> ('a * 'a t) option
val of_list : 'a list -> 'a t
val to_list : 'a t -> 'a list
(** Front-to-back order. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Front-to-back order. *)

val map : ('a -> 'b) -> 'a t -> 'b t
