lib/dstruct/deque.mli:
