lib/dstruct/deque.ml: List
