lib/dstruct/pairing_heap.mli:
