lib/dstruct/ring_buffer.ml: Array List
