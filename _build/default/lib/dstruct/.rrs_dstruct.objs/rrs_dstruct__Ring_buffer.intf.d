lib/dstruct/ring_buffer.mli:
