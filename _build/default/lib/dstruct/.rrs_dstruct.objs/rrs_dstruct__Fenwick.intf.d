lib/dstruct/fenwick.mli:
