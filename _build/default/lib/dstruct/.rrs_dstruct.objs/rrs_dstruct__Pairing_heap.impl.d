lib/dstruct/pairing_heap.ml: List
