lib/dstruct/binary_heap.ml: Array List
