lib/dstruct/fenwick.ml: Array
