lib/dstruct/indexed_heap.ml: Array Binary_heap List Stdlib
