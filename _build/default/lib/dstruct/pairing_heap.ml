type 'a tree = Node of 'a * 'a tree list

type 'a t = {
  cmp : 'a -> 'a -> int;
  root : 'a tree option;
  size : int;
}

let empty ~cmp = { cmp; root = None; size = 0 }
let is_empty h = h.root = None
let length h = h.size

let meld cmp a b =
  match (a, b) with
  | Node (x, xs), Node (y, ys) ->
      if cmp x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

let merge a b =
  match (a.root, b.root) with
  | None, _ -> { b with cmp = a.cmp }
  | _, None -> a
  | Some ra, Some rb ->
      { cmp = a.cmp; root = Some (meld a.cmp ra rb); size = a.size + b.size }

let add h x =
  let single = Node (x, []) in
  match h.root with
  | None -> { h with root = Some single; size = 1 }
  | Some r -> { h with root = Some (meld h.cmp r single); size = h.size + 1 }

let min h =
  match h.root with
  | None -> raise Not_found
  | Some (Node (x, _)) -> x

(* Standard two-pass pairing: meld children left-to-right in pairs, then
   fold the pair results right-to-left. *)
let rec merge_pairs cmp = function
  | [] -> None
  | [ t ] -> Some t
  | a :: b :: rest -> (
      let ab = meld cmp a b in
      match merge_pairs cmp rest with
      | None -> Some ab
      | Some r -> Some (meld cmp ab r))

let pop_min h =
  match h.root with
  | None -> raise Not_found
  | Some (Node (x, children)) ->
      (x, { h with root = merge_pairs h.cmp children; size = h.size - 1 })

let pop_min_opt h = if is_empty h then None else Some (pop_min h)
let of_list ~cmp xs = List.fold_left add (empty ~cmp) xs

let to_sorted_list h =
  let rec drain h acc =
    match pop_min_opt h with
    | None -> List.rev acc
    | Some (x, rest) -> drain rest (x :: acc)
  in
  drain h []
