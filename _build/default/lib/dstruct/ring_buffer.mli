(** Fixed-capacity circular buffer.

    Pushing into a full buffer overwrites the oldest element.  Used for
    keeping sliding windows of recent simulation events (trace tails,
    moving averages) without unbounded allocation. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the back, evicting the oldest element when full. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th oldest element, [0 <= i < length t].
    @raise Invalid_argument otherwise. *)

val oldest : 'a t -> 'a option
val newest : 'a t -> 'a option
val to_list : 'a t -> 'a list
(** Oldest-to-newest order. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-to-newest order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val clear : 'a t -> unit
