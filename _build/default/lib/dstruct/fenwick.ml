(* Classic 1-indexed Fenwick layout in [tree]; external API is 0-indexed. *)
type t = { tree : int array; n : int }

let create ~size =
  if size < 1 then invalid_arg "Fenwick.create";
  { tree = Array.make (size + 1) 0; n = size }

let size t = t.n

let add t i delta =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.add";
  let j = ref (i + 1) in
  while !j <= t.n do
    t.tree.(!j) <- t.tree.(!j) + delta;
    j := !j + (!j land - !j)
  done

let prefix_sum t i =
  if i >= t.n then invalid_arg "Fenwick.prefix_sum";
  let acc = ref 0 in
  let j = ref (i + 1) in
  while !j > 0 do
    acc := !acc + t.tree.(!j);
    j := !j - (!j land - !j)
  done;
  !acc

let range_sum t lo hi =
  if lo > hi then 0 else prefix_sum t hi - if lo = 0 then 0 else prefix_sum t (lo - 1)

let total t = prefix_sum t (t.n - 1)
let get t i = range_sum t i i

let search t k =
  if total t < k then raise Not_found;
  (* descend the implicit tree from the highest power of two *)
  let log = ref 1 in
  while !log * 2 <= t.n do
    log := !log * 2
  done;
  let pos = ref 0 in
  let remaining = ref k in
  let step = ref !log in
  while !step > 0 do
    let next = !pos + !step in
    if next <= t.n && t.tree.(next) < !remaining then begin
      pos := next;
      remaining := !remaining - t.tree.(next)
    end;
    step := !step / 2
  done;
  !pos (* 0-indexed: [pos] is the count of cells strictly before answer *)

let clear t = Array.fill t.tree 0 (t.n + 1) 0
