(** Fenwick (binary indexed) tree over integers.

    Point update, prefix sum, and rank search in O(log n).  The statistics
    layer uses it for exact streaming percentiles over bounded-domain
    values (costs per round), and workload generators use [search] for
    sampling from dynamic discrete distributions. *)

type t

val create : size:int -> t
(** All [size] cells start at 0.  @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val add : t -> int -> int -> unit
(** [add t i delta] adds [delta] to cell [i], [0 <= i < size].
    @raise Invalid_argument otherwise. *)

val prefix_sum : t -> int -> int
(** [prefix_sum t i] is the sum of cells [0 .. i] inclusive; [-1] gives 0.
    @raise Invalid_argument if [i >= size]. *)

val range_sum : t -> int -> int -> int
(** [range_sum t lo hi] sums cells [lo .. hi] inclusive. *)

val total : t -> int

val get : t -> int -> int
(** Current value of a single cell. *)

val search : t -> int -> int
(** [search t k] with all cells nonnegative: the smallest index [i] such
    that [prefix_sum t i >= k].  @raise Not_found if [total t < k]. *)

val clear : t -> unit
