(** Persistent pairing heap (min-heap).

    A purely functional heap with O(1) [merge]/[add]/[min] and O(log n)
    amortised [pop_min].  Used where we need cheap snapshots of a priority
    structure (e.g. speculative offline search). *)

type 'a t

val empty : cmp:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
(** O(1): the size is cached. *)

val add : 'a t -> 'a -> 'a t
val merge : 'a t -> 'a t -> 'a t
(** Both heaps must have been created with the same [cmp]; the result uses
    the first heap's comparator. *)

val min : 'a t -> 'a
(** @raise Not_found on an empty heap. *)

val pop_min : 'a t -> 'a * 'a t
(** @raise Not_found on an empty heap. *)

val pop_min_opt : 'a t -> ('a * 'a t) option
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
