(* Banker's deque: front list + back list (reversed), with sizes.  The
   balance step keeps each side at most [balance_factor] times the other,
   which bounds the cost of reversals to amortised O(1) per operation. *)

type 'a t = { front : 'a list; front_len : int; back : 'a list; back_len : int }

let balance_factor = 3
let empty = { front = []; front_len = 0; back = []; back_len = 0 }
let is_empty d = d.front_len + d.back_len = 0
let length d = d.front_len + d.back_len

let rebalance d =
  if d.front_len > (balance_factor * d.back_len) + 1 then begin
    let keep = (d.front_len + d.back_len) / 2 in
    let moved = d.front_len - keep in
    let rec split i acc = function
      | rest when i = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (i - 1) (x :: acc) rest
    in
    let front, to_back = split keep [] d.front in
    {
      front;
      front_len = keep;
      back = d.back @ List.rev to_back;
      back_len = d.back_len + moved;
    }
  end
  else if d.back_len > (balance_factor * d.front_len) + 1 then begin
    let keep = (d.front_len + d.back_len) / 2 in
    let moved = d.back_len - keep in
    let rec split i acc = function
      | rest when i = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (i - 1) (x :: acc) rest
    in
    let back, to_front = split keep [] d.back in
    {
      front = d.front @ List.rev to_front;
      front_len = d.front_len + moved;
      back;
      back_len = keep;
    }
  end
  else d

let push_front x d =
  rebalance { d with front = x :: d.front; front_len = d.front_len + 1 }

let push_back x d =
  rebalance { d with back = x :: d.back; back_len = d.back_len + 1 }

let front d =
  match (d.front, d.back) with
  | x :: _, _ -> x
  | [], [ x ] -> x
  | [], _ :: _ ->
      (* rebalance keeps the front non-empty whenever length >= 2 *)
      List.nth d.back (d.back_len - 1)
  | [], [] -> raise Not_found

let back d =
  match (d.back, d.front) with
  | x :: _, _ -> x
  | [], [ x ] -> x
  | [], _ :: _ -> List.nth d.front (d.front_len - 1)
  | [], [] -> raise Not_found

let pop_front d =
  match (d.front, d.back) with
  | x :: front, _ ->
      (x, rebalance { d with front; front_len = d.front_len - 1 })
  | [], [ x ] -> (x, empty)
  | [], _ :: _ -> (
      (* degenerate: move everything to the front first *)
      match List.rev d.back with
      | x :: rest ->
          ( x,
            rebalance
              {
                front = rest;
                front_len = d.back_len - 1;
                back = [];
                back_len = 0;
              } )
      | [] -> raise Not_found)
  | [], [] -> raise Not_found

let pop_back d =
  match (d.back, d.front) with
  | x :: back, _ -> (x, rebalance { d with back; back_len = d.back_len - 1 })
  | [], [ x ] -> (x, empty)
  | [], _ :: _ ->
      let back = List.rev d.front in
      (match back with
      | x :: rest ->
          ( x,
            rebalance
              {
                front = [];
                front_len = 0;
                back = rest;
                back_len = d.front_len - 1;
              } )
      | [] -> raise Not_found)
  | [], [] -> raise Not_found

let pop_front_opt d = if is_empty d then None else Some (pop_front d)
let pop_back_opt d = if is_empty d then None else Some (pop_back d)
let of_list xs = { front = xs; front_len = List.length xs; back = []; back_len = 0 }
let to_list d = d.front @ List.rev d.back
let fold_left f init d = List.fold_left f (List.fold_left f init d.front) (List.rev d.back)

let map f d =
  {
    front = List.map f d.front;
    front_len = d.front_len;
    back = List.map f d.back;
    back_len = d.back_len;
  }
