(** A lightweight metrics registry: named counters, gauges, histograms
    and phase timers, snapshotable to canonical JSON.

    Instruments are created once (get-or-create by name) and updated on
    hot paths with O(1), allocation-free operations; {!to_json} is the
    cold export path.  Histograms reuse {!Rrs_stats.Histogram} (Fenwick
    backed, exact quantiles); timers reuse {!Rrs_stats.Running}
    (Welford) over span durations measured with [Unix.gettimeofday] —
    no [Mtime] dependency, microsecond-ish resolution, which is plenty
    for per-phase spans.

    Instrument names are free-form; the convention used across the repo
    is [<subsystem>_<quantity>] (e.g. ["engine_runs"],
    ["harness_reconfig_cost"]). *)

type t

val create : unit -> t

(** {2 Counters} — monotone integer totals. *)

type counter

val counter : t -> string -> counter
(** Get or create.  @raise Invalid_argument if the name is registered
    as a different instrument kind. *)

val inc : counter -> int -> unit
(** @raise Invalid_argument on a negative increment. *)

val value : counter -> int

(** {2 Gauges} — last-write-wins floats. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float
(** [nan] before the first {!set}. *)

(** {2 Histograms} — integer observations, exact quantiles. *)

type histogram

val histogram : t -> string -> max_value:int -> histogram
(** Get or create; [max_value] is only consulted on creation. *)

val observe : histogram -> int -> unit
val histogram_stats : histogram -> Rrs_stats.Histogram.t

(** {2 Phase timers} — wall-clock spans. *)

type timer
type span

val timer : t -> string -> timer

val start : timer -> span
(** Spans may nest and interleave freely (each is independent). *)

val stop : span -> float
(** Records and returns the span duration in seconds (clamped to [>= 0]
    — [gettimeofday] is not monotonic, durations are).
    @raise Invalid_argument if the span was already stopped. *)

val time : timer -> (unit -> 'a) -> 'a
(** Runs the thunk inside a span (recorded even if the thunk raises). *)

val timer_count : timer -> int
val timer_total : timer -> float
(** Sum of recorded span durations, seconds. *)

val timer_stats : timer -> Rrs_stats.Running.t

(** {2 Export} *)

val timers : t -> (string * int * float) list
(** [(name, span count, total seconds)] in ascending name order. *)

val to_json : t -> Json.t
(** [{"counters":{...},"gauges":{...},"histograms":{...},
    "timers":{...}}] with every section's fields in ascending name
    order — canonical, so snapshots diff cleanly. *)
