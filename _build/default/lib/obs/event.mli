(** Typed telemetry events.

    Two families, one stream:

    {b Round-phase events} mirror the engine's four phases
    (drop → arrival → reconfigure → execute, {!Rrs_core.Engine}) plus a
    mini-round marker for double-speed runs.  [Reconfigure] is emitted
    only for {e charged} recolorings — after the engine's
    [cost_projection] — so summing them always reproduces the engine's
    cost accounting.

    {b Analysis events} are the quantities the paper's proofs charge
    against (Sections 3.2–3.4): epoch opens/closes and counter wrapping
    events (eligibility machinery), timestamp updates and super-epoch
    completions (Lemma 3.5), and credit transfers — each wrap banks [Δ]
    credit, the charging currency of Lemmas 3.3/3.11.

    Every event serialises to one canonical JSON object
    [{"type":<kind>,"round":<r>,...}]; {!of_json} inverts {!to_json}
    exactly, so JSONL trace files round-trip byte for byte. *)

type t =
  | Drop of { round : int; color : int; count : int }
      (** drop phase; [color] is post-projection, matching the cost. *)
  | Arrival of { round : int; color : int; count : int }
  | Reconfigure of {
      round : int;
      mini_round : int;
      resource : int;
      from_color : int;
      to_color : int;
    }  (** a charged recoloring (colors post-projection). *)
  | Execute of { round : int; mini_round : int; resource : int; color : int }
  | Mini_round of { round : int; mini_round : int }
      (** start of a reconfigure+execute repetition. *)
  | Epoch_open of { round : int; color : int }
      (** first arrival of the color since its last epoch end. *)
  | Epoch_close of { round : int; color : int; epochs_ended : int }
      (** the color turned ineligible at a batch boundary;
          [epochs_ended] is its new completed-epoch count. *)
  | Counter_wrap of { round : int; color : int; wraps : int }
      (** the color's Δ-counter wrapped; [wraps] is its new total. *)
  | Timestamp_update of { round : int; color : int }
      (** ΔLRU timestamp changed at a batch boundary (Section 3.4). *)
  | Super_epoch of {
      round : int;
      index : int;
      active_colors : int;
      updates : int;
    }
      (** the [index]-th super-epoch completed: [active_colors] distinct
          colors updated ([= 2m]), [updates] total update events so far. *)
  | Credit of { round : int; color : int; amount : int }
      (** [amount = Δ] banked by a counter wrap — the analysis currency
          that pays for the epoch's reconfigurations. *)

val kind : t -> string
(** The ["type"] tag: ["drop"], ["arrival"], ["reconfigure"],
    ["execute"], ["mini_round"], ["epoch_open"], ["epoch_close"],
    ["counter_wrap"], ["timestamp_update"], ["super_epoch"],
    ["credit"]. *)

val round : t -> int
val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val to_line : t -> string
(** [Json.to_string (to_json e)] — one JSONL line (no newline). *)

val of_line : string -> (t, string) result
