(** Event sinks: where instrumented modules send their {!Event.t}s.

    The contract that keeps tracing free when it is off: {b callers must
    guard emission with {!enabled}}, so that the event constructor (the
    only allocation) is never evaluated against {!null}:

    {[
      if Sink.enabled sink then
        Sink.emit sink (Event.Drop { round; color; count })
    ]}

    With [Sink.null] the instrumented hot paths therefore cost one
    branch per potential event and allocate nothing. *)

type t

val null : t
(** Discards everything; {!enabled} is [false]. *)

val memory : unit -> t
(** Buffers events in memory; read them back with {!events}. *)

val jsonl : out_channel -> t
(** Writes one canonical JSON line per event ({!Event.to_line}).  The
    channel is not closed by the sink; flush or close it yourself. *)

val callback : (Event.t -> unit) -> t
(** Calls the function on every event — for custom aggregation. *)

val enabled : t -> bool
(** [false] only for {!null}. *)

val emit : t -> Event.t -> unit
(** No-op on {!null} (but see the guard contract above). *)

val events : t -> Event.t list
(** Chronological buffered events of a {!memory} sink; [[]] for every
    other sink. *)

val count : t -> int
(** Events emitted so far (0 for {!null}). *)
