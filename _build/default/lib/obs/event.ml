type t =
  | Drop of { round : int; color : int; count : int }
  | Arrival of { round : int; color : int; count : int }
  | Reconfigure of {
      round : int;
      mini_round : int;
      resource : int;
      from_color : int;
      to_color : int;
    }
  | Execute of { round : int; mini_round : int; resource : int; color : int }
  | Mini_round of { round : int; mini_round : int }
  | Epoch_open of { round : int; color : int }
  | Epoch_close of { round : int; color : int; epochs_ended : int }
  | Counter_wrap of { round : int; color : int; wraps : int }
  | Timestamp_update of { round : int; color : int }
  | Super_epoch of {
      round : int;
      index : int;
      active_colors : int;
      updates : int;
    }
  | Credit of { round : int; color : int; amount : int }

let kind = function
  | Drop _ -> "drop"
  | Arrival _ -> "arrival"
  | Reconfigure _ -> "reconfigure"
  | Execute _ -> "execute"
  | Mini_round _ -> "mini_round"
  | Epoch_open _ -> "epoch_open"
  | Epoch_close _ -> "epoch_close"
  | Counter_wrap _ -> "counter_wrap"
  | Timestamp_update _ -> "timestamp_update"
  | Super_epoch _ -> "super_epoch"
  | Credit _ -> "credit"

let round = function
  | Drop { round; _ }
  | Arrival { round; _ }
  | Reconfigure { round; _ }
  | Execute { round; _ }
  | Mini_round { round; _ }
  | Epoch_open { round; _ }
  | Epoch_close { round; _ }
  | Counter_wrap { round; _ }
  | Timestamp_update { round; _ }
  | Super_epoch { round; _ }
  | Credit { round; _ } ->
      round

let to_json event =
  let fields =
    match event with
    | Drop { round; color; count } ->
        [ ("round", round); ("color", color); ("count", count) ]
    | Arrival { round; color; count } ->
        [ ("round", round); ("color", color); ("count", count) ]
    | Reconfigure { round; mini_round; resource; from_color; to_color } ->
        [
          ("round", round);
          ("mini_round", mini_round);
          ("resource", resource);
          ("from_color", from_color);
          ("to_color", to_color);
        ]
    | Execute { round; mini_round; resource; color } ->
        [
          ("round", round);
          ("mini_round", mini_round);
          ("resource", resource);
          ("color", color);
        ]
    | Mini_round { round; mini_round } ->
        [ ("round", round); ("mini_round", mini_round) ]
    | Epoch_open { round; color } -> [ ("round", round); ("color", color) ]
    | Epoch_close { round; color; epochs_ended } ->
        [ ("round", round); ("color", color); ("epochs_ended", epochs_ended) ]
    | Counter_wrap { round; color; wraps } ->
        [ ("round", round); ("color", color); ("wraps", wraps) ]
    | Timestamp_update { round; color } ->
        [ ("round", round); ("color", color) ]
    | Super_epoch { round; index; active_colors; updates } ->
        [
          ("round", round);
          ("index", index);
          ("active_colors", active_colors);
          ("updates", updates);
        ]
    | Credit { round; color; amount } ->
        [ ("round", round); ("color", color); ("amount", amount) ]
  in
  Json.Assoc
    (("type", Json.String (kind event))
    :: List.map (fun (name, v) -> (name, Json.Int v)) fields)

let ( let* ) = Result.bind

let of_json json =
  let field name =
    match Json.member name json with
    | Some v -> Json.to_int v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* k =
    match Json.member "type" json with
    | Some v -> Json.to_string_lit v
    | None -> Error "missing field \"type\""
  in
  match k with
  | "drop" ->
      let* round = field "round" in
      let* color = field "color" in
      let* count = field "count" in
      Ok (Drop { round; color; count })
  | "arrival" ->
      let* round = field "round" in
      let* color = field "color" in
      let* count = field "count" in
      Ok (Arrival { round; color; count })
  | "reconfigure" ->
      let* round = field "round" in
      let* mini_round = field "mini_round" in
      let* resource = field "resource" in
      let* from_color = field "from_color" in
      let* to_color = field "to_color" in
      Ok (Reconfigure { round; mini_round; resource; from_color; to_color })
  | "execute" ->
      let* round = field "round" in
      let* mini_round = field "mini_round" in
      let* resource = field "resource" in
      let* color = field "color" in
      Ok (Execute { round; mini_round; resource; color })
  | "mini_round" ->
      let* round = field "round" in
      let* mini_round = field "mini_round" in
      Ok (Mini_round { round; mini_round })
  | "epoch_open" ->
      let* round = field "round" in
      let* color = field "color" in
      Ok (Epoch_open { round; color })
  | "epoch_close" ->
      let* round = field "round" in
      let* color = field "color" in
      let* epochs_ended = field "epochs_ended" in
      Ok (Epoch_close { round; color; epochs_ended })
  | "counter_wrap" ->
      let* round = field "round" in
      let* color = field "color" in
      let* wraps = field "wraps" in
      Ok (Counter_wrap { round; color; wraps })
  | "timestamp_update" ->
      let* round = field "round" in
      let* color = field "color" in
      Ok (Timestamp_update { round; color })
  | "super_epoch" ->
      let* round = field "round" in
      let* index = field "index" in
      let* active_colors = field "active_colors" in
      let* updates = field "updates" in
      Ok (Super_epoch { round; index; active_colors; updates })
  | "credit" ->
      let* round = field "round" in
      let* color = field "color" in
      let* amount = field "amount" in
      Ok (Credit { round; color; amount })
  | other -> Error (Printf.sprintf "unknown event type %S" other)

let to_line event = Json.to_string (to_json event)

let of_line line =
  let* json = Json.parse line in
  of_json json
