type counter = { mutable count : int }
type gauge = { mutable gauge_value : float }

type histogram = Rrs_stats.Histogram.t

type timer = Rrs_stats.Running.t
type span = { timer : timer; started_at : float; mutable stopped : bool }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Timer of timer

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Counter c) -> c
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered, not as a counter"
           name)
  | None ->
      let c = { count = 0 } in
      Hashtbl.add t.instruments name (Counter c);
      c

let inc c by =
  if by < 0 then invalid_arg "Metrics.inc: negative increment";
  c.count <- c.count + by

let value c = c.count

let gauge t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Gauge g) -> g
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered, not as a gauge"
           name)
  | None ->
      let g = { gauge_value = Float.nan } in
      Hashtbl.add t.instruments name (Gauge g);
      g

let set g v = g.gauge_value <- v
let gauge_value g = g.gauge_value

let histogram t name ~max_value =
  match Hashtbl.find_opt t.instruments name with
  | Some (Histogram h) -> h
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered, not as a histogram"
           name)
  | None ->
      let h = Rrs_stats.Histogram.create ~max_value in
      Hashtbl.add t.instruments name (Histogram h);
      h

let observe h v = Rrs_stats.Histogram.add h v
let histogram_stats h = h

let timer t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Timer tm) -> tm
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered, not as a timer"
           name)
  | None ->
      let tm = Rrs_stats.Running.create () in
      Hashtbl.add t.instruments name (Timer tm);
      tm

let start timer = { timer; started_at = Unix.gettimeofday (); stopped = false }

let stop span =
  if span.stopped then invalid_arg "Metrics.stop: span already stopped";
  span.stopped <- true;
  let elapsed = Float.max 0. (Unix.gettimeofday () -. span.started_at) in
  Rrs_stats.Running.add span.timer elapsed;
  elapsed

let time timer thunk =
  let span = start timer in
  Fun.protect ~finally:(fun () -> ignore (stop span)) thunk

let timer_count = Rrs_stats.Running.count
let timer_total = Rrs_stats.Running.sum
let timer_stats tm = tm

let sorted_instruments t =
  Hashtbl.fold (fun name i acc -> (name, i) :: acc) t.instruments []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let timers t =
  List.filter_map
    (fun (name, i) ->
      match i with
      | Timer tm ->
          Some (name, Rrs_stats.Running.count tm, Rrs_stats.Running.sum tm)
      | _ -> None)
    (sorted_instruments t)

let to_json t =
  let all = sorted_instruments t in
  let section f = List.filter_map f all in
  let counters =
    section (function
      | name, Counter c -> Some (name, Json.Int c.count)
      | _ -> None)
  in
  let gauges =
    section (function
      | name, Gauge g ->
          Some
            ( name,
              if Float.is_nan g.gauge_value then Json.Null
              else Json.Float g.gauge_value )
      | _ -> None)
  in
  let histograms =
    section (function
      | name, Histogram h ->
          let buckets =
            List.map
              (fun (v, c) -> Json.List [ Json.Int v; Json.Int c ])
              (Rrs_stats.Histogram.to_assoc h)
          in
          Some
            ( name,
              Json.Assoc
                [
                  ("count", Json.Int (Rrs_stats.Histogram.count h));
                  ("clamped", Json.Int (Rrs_stats.Histogram.clamped h));
                  ("buckets", Json.List buckets);
                ] )
      | _ -> None)
  in
  let timer_sections =
    section (function
      | name, Timer tm ->
          let count = Rrs_stats.Running.count tm in
          Some
            ( name,
              Json.Assoc
                [
                  ("count", Json.Int count);
                  ("total_s", Json.Float (Rrs_stats.Running.sum tm));
                  ( "mean_s",
                    if count = 0 then Json.Null
                    else Json.Float (Rrs_stats.Running.mean tm) );
                  ( "max_s",
                    if count = 0 then Json.Null
                    else Json.Float (Rrs_stats.Running.max tm) );
                ] )
      | _ -> None)
  in
  Json.Assoc
    [
      ("counters", Json.Assoc counters);
      ("gauges", Json.Assoc gauges);
      ("histograms", Json.Assoc histograms);
      ("timers", Json.Assoc timer_sections);
    ]
