type kind =
  | Null
  | Memory of Event.t list ref
  | Jsonl of out_channel
  | Callback of (Event.t -> unit)

type t = { kind : kind; mutable emitted : int }

let null = { kind = Null; emitted = 0 }
let memory () = { kind = Memory (ref []); emitted = 0 }
let jsonl oc = { kind = Jsonl oc; emitted = 0 }
let callback f = { kind = Callback f; emitted = 0 }
let enabled t = match t.kind with Null -> false | _ -> true

let emit t event =
  match t.kind with
  | Null -> ()
  | Memory buffer ->
      buffer := event :: !buffer;
      t.emitted <- t.emitted + 1
  | Jsonl oc ->
      output_string oc (Event.to_line event);
      output_char oc '\n';
      t.emitted <- t.emitted + 1
  | Callback f ->
      f event;
      t.emitted <- t.emitted + 1

let events t =
  match t.kind with Memory buffer -> List.rev !buffer | _ -> []

let count t = t.emitted
