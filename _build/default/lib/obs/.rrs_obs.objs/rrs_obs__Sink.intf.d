lib/obs/sink.mli: Event
