lib/obs/metrics.mli: Json Rrs_stats
