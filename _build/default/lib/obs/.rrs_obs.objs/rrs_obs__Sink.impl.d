lib/obs/sink.ml: Event List
