lib/obs/event.ml: Json List Printf Result
