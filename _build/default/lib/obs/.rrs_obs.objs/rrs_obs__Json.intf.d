lib/obs/json.mli:
