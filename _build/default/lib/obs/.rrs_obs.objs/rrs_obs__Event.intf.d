lib/obs/event.mli: Json
