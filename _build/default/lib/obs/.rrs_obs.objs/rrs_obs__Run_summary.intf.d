lib/obs/run_summary.mli: Json
