lib/obs/run_summary.ml: In_channel Json List Option Printf Result String
