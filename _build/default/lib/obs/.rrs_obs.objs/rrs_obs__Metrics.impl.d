lib/obs/metrics.ml: Float Fun Hashtbl Json List Printf Rrs_stats Unix
