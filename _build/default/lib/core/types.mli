(** Ground vocabulary of the reconfigurable-resource-scheduling model
    ([Δ | 1 | D_ℓ | batch] problems, Plaxton-Sun-Tiwari-Vin).

    Jobs are unit-size.  Each job has a color; a job of color [ℓ] must be
    executed on a resource configured to [ℓ] within [delay ℓ] rounds of
    its arrival, or be dropped at unit cost.  Resources are reconfigured
    at cost [Δ] per recoloring.  [black] is the initial color of every
    resource; no job is black. *)

type color = int
(** Colors are dense nonnegative integers [0 .. num_colors-1]. *)

type round = int
(** Rounds are numbered from 0. *)

val black : color
(** The initial, job-less resource color ([-1]). *)

type arrival = { round : round; color : color; count : int }
(** [count] unit jobs of [color] arriving in the arrival phase of
    [round]. *)

val compare_arrival : arrival -> arrival -> int
(** Orders by round, then color (the canonical instance order). *)

val pp_arrival : Format.formatter -> arrival -> unit

type phase = Drop_phase | Arrival_phase | Reconfig_phase | Execution_phase
(** The four phases of every round, in execution order. *)

val pp_phase : Format.formatter -> phase -> unit

val is_power_of_two : int -> bool
(** [true] for 1, 2, 4, 8, ...; [false] for non-positive inputs. *)

val floor_pow2 : int -> int
(** Largest power of two [<= n].  @raise Invalid_argument if [n < 1]. *)

val ceil_pow2 : int -> int
(** Smallest power of two [>= n].  @raise Invalid_argument if [n < 1]. *)
