(** A problem instance: the static parameters ([Δ], per-color delay
    bounds) plus the full request sequence.

    In the paper's notation an instance of [Δ | 1 | D_ℓ | 1] is arbitrary;
    [Δ | 1 | D_ℓ | D_ℓ] requires every color-[ℓ] arrival to land on an
    integral multiple of [D_ℓ] ({!is_batched}); the rate-limited special
    case further caps each batch at [D_ℓ] jobs ({!is_rate_limited}). *)

type t = private {
  name : string;
  num_colors : int;
  delta : int;  (** reconfiguration cost [Δ >= 1] *)
  delay : int array;  (** per-color delay bound [D_ℓ >= 1] *)
  arrivals : Types.arrival array;  (** sorted, coalesced, counts > 0 *)
  horizon : int;
      (** first round strictly after every deadline: simulating rounds
          [0 .. horizon] resolves every job *)
}

val create :
  ?name:string ->
  delta:int ->
  delay:int array ->
  arrivals:Types.arrival list ->
  unit ->
  t
(** Validates and normalises (sorts by round/color, merges duplicate
    [(round, color)] entries, drops zero counts).
    @raise Invalid_argument on [delta < 1], a delay [< 1], an arrival with
    a negative round, an out-of-range color, or a negative count. *)

val total_jobs : t -> int
val jobs_of_color : t -> Types.color -> int
val jobs_per_color : t -> int array
val max_delay : t -> int
(** 1 when there are no colors. *)

val last_arrival_round : t -> int
(** -1 when there are no arrivals. *)

val is_batched : t -> bool
(** Every color-[ℓ] arrival is at a multiple of [D_ℓ]. *)

val is_rate_limited : t -> bool
(** Batched, and every batch carries at most [D_ℓ] jobs. *)

val delays_are_powers_of_two : t -> bool

val arrivals_by_round : t -> (Types.color * int) list array
(** Dense per-round arrival lists, length [horizon + 1]; rounds with no
    arrivals map to [[]]. *)

val pp : Format.formatter -> t -> unit
(** Summary line (not the full arrival sequence). *)

val pp_full : Format.formatter -> t -> unit
(** Parameters plus every arrival — for debugging small instances. *)
