type classification = Early | Punctual | Late

let classify ~delay ~arrival ~execution =
  if delay = 1 then begin
    if execution <> arrival then
      invalid_arg "Punctual.classify: infeasible delay-1 execution";
    Punctual
  end
  else if not (Types.is_power_of_two delay) then
    invalid_arg "Punctual.classify: delay must be a power of two"
  else begin
    if execution < arrival || execution >= arrival + delay then
      invalid_arg "Punctual.classify: execution outside the job window";
    let w = delay / 2 in
    let i = arrival / w in
    if execution < (i + 1) * w then Early
    else if execution < (i + 2) * w then Punctual
    else Late
  end

(* Bind each execution of the schedule to a concrete job arrival by
   replaying the instance with earliest-deadline matching (the same
   exchange-argument canonicalisation the validator uses). *)
type bound_execution = {
  round : int;
  resource : int;
  color : Types.color;
  arrival : int;
}

let bind_executions (instance : Instance.t) (t : Schedule.t) =
  let pending = Pending.create ~num_colors:instance.num_colors in
  let arrivals = Instance.arrivals_by_round instance in
  let by_round = Array.make (instance.horizon + 1) [] in
  Array.iter
    (fun (round, e) ->
      if round >= 0 && round <= instance.horizon then
        by_round.(round) <- e :: by_round.(round))
    t.events;
  Array.iteri (fun r evs -> by_round.(r) <- List.rev evs) by_round;
  let out = ref [] in
  for round = 0 to instance.horizon do
    ignore (Pending.expire pending ~now:round);
    List.iter
      (fun (color, count) ->
        Pending.add pending color
          ~deadline:(round + instance.delay.(color))
          ~count)
      (if round < Array.length arrivals then arrivals.(round) else []);
    List.iter
      (function
        | Schedule.Execute { resource; color; _ } -> (
            match Pending.execute_one pending color with
            | Some deadline ->
                out :=
                  {
                    round;
                    resource;
                    color;
                    arrival = deadline - instance.delay.(color);
                  }
                  :: !out
            | None ->
                invalid_arg
                  "Punctual: schedule executes a job that is not pending")
        | Schedule.Drop _ | Schedule.Reconfigure _ -> ())
      by_round.(round)
  done;
  List.rev !out

let census instance t =
  let early = ref 0 and punctual = ref 0 and late = ref 0 in
  List.iter
    (fun b ->
      match
        classify ~delay:instance.Instance.delay.(b.color) ~arrival:b.arrival
          ~execution:b.round
      with
      | Early -> incr early
      | Punctual -> incr punctual
      | Late -> incr late)
    (bind_executions instance t);
  (!early, !punctual, !late)

let is_punctual instance t =
  let early, _, late = census instance t in
  early = 0 && late = 0

(* ------------------------------------------------------------------ *)
(* The Lemma 5.3 construction                                          *)
(* ------------------------------------------------------------------ *)

(* is resource [k] of the input configured to [color] throughout both
   half-blocks [i] and [i+1] of width [w]? *)
let configured_throughout timeline ~horizon k ~color ~w ~i =
  let lo = i * w in
  let hi = min (((i + 2) * w) - 1) horizon in
  lo <= horizon
  &&
  let rec constant r = r > hi || (timeline.(k).(r) = color && constant (r + 1)) in
  constant lo

let make_punctual (instance : Instance.t) (t : Schedule.t) =
  if t.mini_rounds <> 1 then
    invalid_arg "Punctual.make_punctual: input must be uni-speed";
  Array.iter
    (fun d ->
      if d <> 1 && not (Types.is_power_of_two d) then
        invalid_arg "Punctual.make_punctual: delays must be powers of two")
    instance.delay;
  let horizon = instance.horizon in
  let m = t.n in
  (* reuse Aggregate's timeline idea locally *)
  let timeline = Array.make_matrix m (horizon + 1) Types.black in
  Array.iter
    (fun (round, e) ->
      match e with
      | Schedule.Reconfigure { resource; to_color; _ } ->
          for r = round to horizon do
            timeline.(resource).(r) <- to_color
          done
      | Schedule.Drop _ | Schedule.Execute _ -> ())
    t.events;
  let bound = bind_executions instance t in
  (* output state *)
  let n' = 7 * m in
  let busy = Array.make_matrix n' (horizon + 1) false in
  let executions : (int * int, Types.color) Hashtbl.t = Hashtbl.create 1024 in
  let place ~resource ~round color =
    if round < 0 || round > horizon || busy.(resource).(round) then false
    else begin
      busy.(resource).(round) <- true;
      Hashtbl.replace executions (resource, round) color;
      true
    end
  in
  let fail_placement what =
    invalid_arg ("Punctual.make_punctual: could not place a " ^ what)
  in
  (* pack [jobs] executions of [color] into the first free slots of
     [resources] within rounds [lo, hi] *)
  let pack ~resources ~lo ~hi ~color count =
    let remaining = ref count in
    List.iter
      (fun resource ->
        let round = ref lo in
        while !remaining > 0 && !round <= min hi horizon do
          if place ~resource ~round:!round color then decr remaining;
          incr round
        done)
      resources;
    if !remaining > 0 then fail_placement "packed nonspecial execution"
  in
  (* process each original resource independently *)
  for k = 0 to m - 1 do
    let mine = List.filter (fun b -> b.resource = k) bound in
    let classified =
      List.map
        (fun b ->
          ( b,
            classify ~delay:instance.delay.(b.color) ~arrival:b.arrival
              ~execution:b.round ))
        mine
    in
    let of_class cls =
      List.filter_map
        (fun (b, c) -> if c = cls then Some b else None)
        classified
    in
    (* punctual executions stay put on resource 7k+3 *)
    List.iter
      (fun b ->
        if not (place ~resource:((7 * k) + 3) ~round:b.round b.color) then
          fail_placement "punctual execution")
      (of_class Punctual);
    (* early: specials shift +w onto 7k; the rest pack into the next
       half-block on 7k+1, 7k+2 *)
    let shift_stream ~cls ~direction ~special_resource ~pack_resources =
      let members = of_class cls in
      let special, nonspecial =
        List.partition
          (fun b ->
            let w = instance.delay.(b.color) / 2 in
            (* the two half-blocks the stream must span: the execution's
               half-block and the one the job moves into *)
            let exec_hb = b.round / w in
            let first_hb = if direction > 0 then exec_hb else exec_hb - 1 in
            first_hb >= 0
            && configured_throughout timeline ~horizon k ~color:b.color ~w
                 ~i:first_hb)
          members
      in
      List.iter
        (fun b ->
          let w = instance.delay.(b.color) / 2 in
          let target = b.round + (direction * w) in
          if not (place ~resource:special_resource ~round:target b.color) then
            fail_placement "special execution")
        special;
      (* pack nonspecials ascending by delay bound, per half-block, per
         color: all land in the job's punctual half-block *)
      let groups = Hashtbl.create 16 in
      List.iter
        (fun b ->
          let w = instance.delay.(b.color) / 2 in
          let i = b.arrival / w in
          let key = (instance.delay.(b.color), i, b.color) in
          let prev = Option.value ~default:0 (Hashtbl.find_opt groups key) in
          Hashtbl.replace groups key (prev + 1))
        nonspecial;
      Hashtbl.fold (fun key count acc -> (key, count) :: acc) groups []
      |> List.sort compare
      |> List.iter (fun ((delay, i, color), count) ->
             let w = delay / 2 in
             pack ~resources:pack_resources ~lo:((i + 1) * w)
               ~hi:(((i + 2) * w) - 1)
               ~color count)
    in
    shift_stream ~cls:Early ~direction:1 ~special_resource:(7 * k)
      ~pack_resources:[ (7 * k) + 1; (7 * k) + 2 ];
    shift_stream ~cls:Late ~direction:(-1)
      ~special_resource:((7 * k) + 4)
      ~pack_resources:[ (7 * k) + 5; (7 * k) + 6 ]
  done;
  (* emit, reconfiguring lazily *)
  let current = Array.make n' Types.black in
  let events = ref [] in
  for round = 0 to horizon do
    for resource = 0 to n' - 1 do
      match Hashtbl.find_opt executions (resource, round) with
      | Some color when current.(resource) <> color ->
          events :=
            ( round,
              Schedule.Reconfigure
                {
                  resource;
                  mini_round = 0;
                  from_color = current.(resource);
                  to_color = color;
                } )
            :: !events;
          current.(resource) <- color
      | _ -> ()
    done;
    for resource = 0 to n' - 1 do
      match Hashtbl.find_opt executions (resource, round) with
      | Some color ->
          events :=
            (round, Schedule.Execute { resource; mini_round = 0; color })
            :: !events
      | None -> ()
    done
  done;
  { Schedule.n = n'; mini_rounds = 1; events = Array.of_list (List.rev !events) }
