(** Super-epoch bookkeeping (paper Section 3.4).

    A {e super-epoch} ends the moment at least [2m] colors have had a
    timestamp update event since the super-epoch started; the next one
    begins immediately.  The analysis of Lemma 3.5 charges OFF's cost to
    super-epochs; this module makes the quantity measurable so the
    accompanying structural facts can be checked on real runs:

    - Corollary 3.2: at most three epochs of any color overlap one
      super-epoch;
    - Lemma 3.16: each color has at most three special epochs, so the
      number of epochs is O(super-epochs × m) + O(colors). *)

type t

val attach : ?sink:Rrs_obs.Sink.t -> Eligibility.t -> m:int -> t
(** Start observing an eligibility state (register a timestamp-update
    listener).  [m] is the offline resource count of the analysis.
    [sink] (default {!Rrs_obs.Sink.null}) receives a
    [Super_epoch { index; active_colors; updates; _ }] event the moment
    each super-epoch completes; counting those events reproduces
    {!completed} and their [active_colors] payloads reproduce
    {!active_colors_per_super_epoch} exactly.
    @raise Invalid_argument if [m < 1]. *)

val completed : t -> int
(** Super-epochs that have ended so far. *)

val current_active_colors : t -> int
(** Colors with a timestamp update in the (incomplete) current
    super-epoch. *)

val active_colors_per_super_epoch : t -> int list
(** For each completed super-epoch, the number of distinct colors with a
    timestamp update in it (chronological).  Every entry is exactly [2m]:
    the super-epoch ends the moment the [2m]-th color updates. *)

val updates_total : t -> int
(** Total timestamp update events observed. *)
