let per_color_lb (instance : Instance.t) =
  Array.fold_left
    (fun acc jobs -> if jobs > 0 then acc + min instance.delta jobs else acc)
    0
    (Instance.jobs_per_color instance)

let par_edf_drop_lb instance ~m = Par_edf.drop_cost instance ~m

let lower_bound instance ~m =
  max 0 (max (per_color_lb instance) (par_edf_drop_lb instance ~m))

let run_static instance ~m colors =
  let cfg = Engine.config ~n:m () in
  let result = Engine.run cfg instance (Static_policy.static colors) in
  Cost.total result.cost

let static_upper_bound (instance : Instance.t) ~m =
  let all_black = Instance.total_jobs instance in
  let per_color = Instance.jobs_per_color instance in
  let by_count =
    List.init instance.num_colors Fun.id
    |> List.filter (fun c -> per_color.(c) > 0)
    |> List.sort (fun a b -> compare per_color.(b) per_color.(a))
  in
  (* density = jobs per round of presence: favors colors whose work is
     concentrated, which a static cache serves well *)
  let density c =
    float_of_int per_color.(c) /. float_of_int (max 1 instance.horizon)
  in
  let by_density =
    List.sort (fun a b -> compare (density b) (density a)) by_count
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let candidates = [ take m by_count; take m by_density ] in
  List.fold_left
    (fun best colors ->
      if colors = [] then best else min best (run_static instance ~m colors))
    all_black candidates

let opt_bracket instance ~m =
  (lower_bound instance ~m, static_upper_bound instance ~m)
