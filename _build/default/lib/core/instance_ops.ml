let arrivals_list (i : Instance.t) = Array.to_list i.arrivals

let shift ~rounds (i : Instance.t) =
  if rounds < 0 then invalid_arg "Instance_ops.shift: negative shift";
  Instance.create
    ~name:(Printf.sprintf "%s+%d" i.name rounds)
    ~delta:i.delta ~delay:i.delay
    ~arrivals:
      (List.map
         (fun (a : Types.arrival) -> { a with round = a.round + rounds })
         (arrivals_list i))
    ()

let union ?name (a : Instance.t) (b : Instance.t) =
  if a.delta <> b.delta then invalid_arg "Instance_ops.union: delta mismatch";
  let offset = a.num_colors in
  let delay = Array.append a.delay b.delay in
  let arrivals =
    arrivals_list a
    @ List.map
        (fun (x : Types.arrival) -> { x with color = x.color + offset })
        (arrivals_list b)
  in
  Instance.create
    ~name:(Option.value ~default:(a.name ^ "|" ^ b.name) name)
    ~delta:a.delta ~delay ~arrivals ()

let overlay ?name (a : Instance.t) (b : Instance.t) =
  if a.delta <> b.delta then invalid_arg "Instance_ops.overlay: delta mismatch";
  if a.delay <> b.delay then invalid_arg "Instance_ops.overlay: delay mismatch";
  Instance.create
    ~name:(Option.value ~default:(a.name ^ "+" ^ b.name) name)
    ~delta:a.delta ~delay:a.delay
    ~arrivals:(arrivals_list a @ arrivals_list b)
    ()

let restrict_colors ~keep (i : Instance.t) =
  let mapping = Array.make i.num_colors (-1) in
  let next = ref 0 in
  for c = 0 to i.num_colors - 1 do
    if keep c then begin
      mapping.(c) <- !next;
      incr next
    end
  done;
  let delay =
    Array.of_list
      (List.filteri (fun c _ -> keep c) (Array.to_list i.delay))
  in
  let arrivals =
    List.filter_map
      (fun (a : Types.arrival) ->
        if mapping.(a.color) >= 0 then Some { a with color = mapping.(a.color) }
        else None)
      (arrivals_list i)
  in
  Instance.create ~name:(i.name ^ "-restricted") ~delta:i.delta ~delay
    ~arrivals ()

let scale_counts ~factor (i : Instance.t) =
  if factor < 0 then invalid_arg "Instance_ops.scale_counts: negative factor";
  Instance.create
    ~name:(Printf.sprintf "%s*%d" i.name factor)
    ~delta:i.delta ~delay:i.delay
    ~arrivals:
      (List.map
         (fun (a : Types.arrival) -> { a with count = a.count * factor })
         (arrivals_list i))
    ()

(* splitmix64-style avalanche for a deterministic per-job coin without a
   dependency on the PRNG library *)
let mix seed x y z =
  let open Int64 in
  let h = ref (of_int ((seed * 0x9E3779B9) + (x * 668265263) + (y * 374761393) + z)) in
  h := mul (logxor !h (shift_right_logical !h 30)) 0xBF58476D1CE4E5B9L;
  h := mul (logxor !h (shift_right_logical !h 27)) 0x94D049BB133111EBL;
  h := logxor !h (shift_right_logical !h 31);
  to_int (shift_right_logical !h 11)

let subsequence ~p ~seed (i : Instance.t) =
  if p < 0.0 || p > 1.0 then invalid_arg "Instance_ops.subsequence: p";
  let threshold = int_of_float (p *. 9007199254740992.0) in
  let arrivals =
    List.map
      (fun (a : Types.arrival) ->
        let kept = ref 0 in
        for job = 0 to a.count - 1 do
          if mix seed a.round a.color job < threshold then incr kept
        done;
        { a with count = !kept })
      (arrivals_list i)
  in
  Instance.create
    ~name:(Printf.sprintf "%s~%.2f" i.name p)
    ~delta:i.delta ~delay:i.delay ~arrivals ()
