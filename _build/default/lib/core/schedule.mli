(** A recorded schedule: everything an algorithm did, phase by phase.

    Recording is optional in the engine (it costs memory proportional to
    the event count); when present, {!Validator} can re-check the schedule
    against the instance and recompute its cost independently. *)

type event =
  | Drop of { color : Types.color; count : int }
      (** drop phase: [count] jobs of [color] expired *)
  | Reconfigure of {
      resource : int;
      mini_round : int;
      from_color : Types.color;
      to_color : Types.color;
    }
  | Execute of { resource : int; mini_round : int; color : Types.color }

type t = {
  n : int;  (** number of resources *)
  mini_rounds : int;  (** reconfig+execution repetitions per round *)
  events : (Types.round * event) array;  (** chronological *)
}

val events_of_round : t -> Types.round -> event list
val reconfig_count : t -> int
val execute_count : t -> int
val drop_count : t -> int
val cost : delta:int -> t -> Cost.t
(** Recomputed from the event stream. *)

val final_cache : t -> Types.color array
(** Resource colors after the last event (all-[black] start). *)

val pp_event : Format.formatter -> Types.round * event -> unit
val pp : Format.formatter -> t -> unit
(** Full chronological dump — for small schedules. *)
