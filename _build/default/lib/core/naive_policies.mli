(** Naive online baselines a practitioner might reach for first.

    None of these carry a competitive guarantee; they calibrate the
    experiment tables (EXP-11) and make the failure modes the paper
    names — thrashing and underutilization — concrete in contrast with
    ΔLRU-EDF.  All use the full capacity for distinct colors (no
    replication half). *)

val round_robin : Policy.factory
(** Cycle the cache through the nonidle colors in round-robin order,
    rotating one slot per round.  Maximal churn: a thrashing strawman. *)

val greedy_backlog : Policy.factory
(** Each round, cache the [n] colors with the largest pending backlog
    (ties by color id).  Deadline- and recency-blind. *)

val greedy_backlog_hysteresis : threshold:int -> Policy.factory
(** Like {!greedy_backlog}, but a cached color is only evicted when the
    challenger's backlog exceeds the incumbent's by more than
    [threshold] jobs — the standard practitioner fix for churn.
    [threshold = 0] behaves like {!greedy_backlog}.
    @raise Invalid_argument if [threshold < 0]. *)

val classic_lru : Policy.factory
(** Textbook LRU caching applied directly: every arrival is a "request"
    refreshing its color's recency; cache the [n] most recently
    requested colors.  Unlike the paper's ΔLRU it has no [Δ]-counter, so
    it pays a reconfiguration even for colors whose total work is worth
    less than [Δ] — the failure mode Lemma 3.1's eligibility machinery
    exists to prevent (EXP-13). *)
