(* See the .mli for the high-level description.  Throughout:
   - [m] is T's resource count; T' has 3m resources, resource [k] of T
     owning the triple [3k, 3k+1, 3k+2];
   - a "slot" is a (resource, round) pair of T';
   - blocks of delay bound p are the round intervals [ip, (i+1)p). *)

type builder = {
  sub_instance : Instance.t;
  m : int;
  horizon : int;
  timeline : Types.color array array; (* T: resource -> round -> color *)
  busy : bool array array; (* T': resource -> round -> occupied *)
  executions : (int * int, Types.color) Hashtbl.t;
      (* T': (resource, round) -> subcolor executed *)
}

(* ------------------------------------------------------------------ *)
(* Parsing the input schedule                                          *)
(* ------------------------------------------------------------------ *)

let build_timeline (instance : Instance.t) (t : Schedule.t) =
  let timeline =
    Array.make_matrix t.n (instance.horizon + 1) Types.black
  in
  (* per-resource color changes, chronological *)
  Array.iter
    (fun (round, e) ->
      match e with
      | Schedule.Reconfigure { resource; to_color; _ } ->
          (* the color holds from this round until overwritten *)
          for r = round to instance.horizon do
            timeline.(resource).(r) <- to_color
          done
      | Schedule.Drop _ | Schedule.Execute _ -> ())
    t.events;
  timeline

(* executed-job counts per (color, block index of its own delay bound) *)
let executed_per_block (instance : Instance.t) (t : Schedule.t) =
  let table = Hashtbl.create 64 in
  Array.iter
    (fun (round, e) ->
      match e with
      | Schedule.Execute { color; _ } ->
          let block = round / instance.delay.(color) in
          let key = (color, block) in
          let prev = Option.value ~default:0 (Hashtbl.find_opt table key) in
          Hashtbl.replace table key (prev + 1)
      | Schedule.Drop _ | Schedule.Reconfigure _ -> ())
    t.events;
  table

(* is T's resource k monochromatic (one constant color) over block(p,i)? *)
let mono_color b ~p ~i k =
  let lo = i * p in
  let hi = min ((i + 1) * p - 1) b.horizon in
  if lo > b.horizon then None
  else begin
    let color = b.timeline.(k).(lo) in
    let rec constant r = r > hi || (b.timeline.(k).(r) = color && constant (r + 1)) in
    if constant lo then Some color else None
  end

(* ------------------------------------------------------------------ *)
(* Building the output                                                 *)
(* ------------------------------------------------------------------ *)

let place_execution b ~resource ~round subcolor =
  assert (not b.busy.(resource).(round));
  b.busy.(resource).(round) <- true;
  Hashtbl.replace b.executions (resource, round) subcolor

(* chunk [count] jobs continuously onto the first member of triple [k],
   starting at the block head (the whole triple head is reserved for the
   monochromatic stream, so these slots are free by construction) *)
let schedule_mono b ~p ~i ~k ~subcolor count =
  let head = 3 * k in
  let start = i * p in
  for offset = 0 to count - 1 do
    place_execution b ~resource:head ~round:(start + offset) subcolor
  done;
  (* reserve the rest of the head's block: higher levels must not spill
     into a resource that carries a monochromatic stream *)
  for round = start to min ((i + 1) * p - 1) b.horizon do
    b.busy.(head).(round) <- true
  done

(* spill [count] jobs of [subcolor] into free slots of multichromatic
   triples inside block(p,i); returns the number NOT placed (0 when the
   paper's Lemma 4.4 capacity argument holds, which the tests check) *)
let schedule_spill b ~p ~i ~multichromatic ~subcolor count =
  let remaining = ref count in
  let lo = i * p in
  let hi = min (((i + 1) * p) - 1) b.horizon in
  List.iter
    (fun k ->
      if !remaining > 0 then
        List.iter
          (fun sub ->
            let resource = (3 * k) + sub in
            let round = ref lo in
            while !remaining > 0 && !round <= hi do
              if not b.busy.(resource).(!round) then begin
                place_execution b ~resource ~round:!round subcolor;
                decr remaining
              end;
              incr round
            done)
          [ 0; 1; 2 ])
    multichromatic;
  !remaining

(* ------------------------------------------------------------------ *)
(* Main transformation                                                 *)
(* ------------------------------------------------------------------ *)

let transform (instance : Instance.t) ~(mapping : Distribute.mapping)
    (t : Schedule.t) =
  if not (Instance.is_batched instance) then
    invalid_arg "Aggregate.transform: instance is not batched";
  if not (Instance.delays_are_powers_of_two instance) then
    invalid_arg "Aggregate.transform: delays must be powers of two";
  if t.mini_rounds <> 1 then
    invalid_arg "Aggregate.transform: input schedule must be uni-speed";
  let b =
    {
      sub_instance = mapping.sub_instance;
      m = t.n;
      horizon = instance.horizon;
      timeline = build_timeline instance t;
      busy = Array.make_matrix (3 * t.n) (instance.horizon + 1) false;
      executions = Hashtbl.create 1024;
    }
  in
  let executed = executed_per_block instance t in
  (* batch sizes: color -> block -> arrival count *)
  let batch_size = Hashtbl.create 64 in
  Array.iter
    (fun (a : Types.arrival) ->
      Hashtbl.replace batch_size (a.color, a.round / instance.delay.(a.color))
        a.count)
    instance.arrivals;
  (* labels: (resource, color) -> label, persistent across consecutive
     blocks (paper step 1: inheritance) *)
  let labels : (int * Types.color, int) Hashtbl.t = Hashtbl.create 64 in
  let delay_values =
    Array.to_list instance.delay |> List.sort_uniq compare
  in
  let unplaced = ref 0 in
  List.iter
    (fun p ->
      let colors_with_p =
        List.filter (fun c -> instance.delay.(c) = p)
          (List.init instance.num_colors Fun.id)
      in
      let blocks = (instance.horizon / p) + 1 in
      for i = 0 to blocks - 1 do
        (* classify T's resources for this block *)
        let mono_of = Array.init b.m (fun k -> mono_color b ~p ~i k) in
        let multichromatic =
          List.filter (fun k -> mono_of.(k) = None) (List.init b.m Fun.id)
        in
        List.iter
          (fun color ->
            let mono_resources =
              List.filter (fun k -> mono_of.(k) = Some color)
                (List.init b.m Fun.id)
            in
            (* step 1: labels — inherit where the resource stays
               monochromatic-[color], then hand out the unused labels in
               [0, |M|) *)
            let count_m = List.length mono_resources in
            let inherited =
              List.filter_map
                (fun k ->
                  match Hashtbl.find_opt labels (k, color) with
                  | Some j when j < count_m -> Some (k, j)
                  | _ -> None)
                mono_resources
            in
            let used = List.map snd inherited in
            let fresh_labels =
              List.filter (fun j -> not (List.mem j used))
                (List.init count_m Fun.id)
            in
            let unlabeled =
              List.filter
                (fun k -> not (List.mem_assoc k inherited))
                mono_resources
            in
            (* drop stale labels of resources that lost their stream *)
            Hashtbl.iter
              (fun (k, c) _ ->
                if c = color && not (List.mem k mono_resources) then
                  Hashtbl.remove labels (k, color) |> ignore)
              (Hashtbl.copy labels);
            List.iter2
              (fun k j -> Hashtbl.replace labels (k, color) j)
              unlabeled
              (let rec take n = function
                 | [] -> []
                 | _ when n = 0 -> []
                 | x :: r -> x :: take (n - 1) r
               in
               take (List.length unlabeled) fresh_labels);
            let resource_of_label =
              let tbl = Hashtbl.create 8 in
              List.iter
                (fun k ->
                  match Hashtbl.find_opt labels (k, color) with
                  | Some j -> Hashtbl.replace tbl j k
                  | None -> ())
                mono_resources;
              tbl
            in
            (* steps 2-5: chunk the executed jobs against the subcolor
               supply and place each chunk *)
            let e =
              Option.value ~default:0 (Hashtbl.find_opt executed (color, i))
            in
            let c =
              Option.value ~default:0 (Hashtbl.find_opt batch_size (color, i))
            in
            let remaining = ref e in
            let j = ref 0 in
            while !remaining > 0 do
              let supply = max 0 (min p (c - (!j * p))) in
              if supply = 0 then begin
                (* exhausted supply: cannot happen for feasible T *)
                unplaced := !unplaced + !remaining;
                remaining := 0
              end
              else begin
                let chunk = min supply !remaining in
                let subcolor = List.nth mapping.subs_of_orig.(color) !j in
                (match Hashtbl.find_opt resource_of_label !j with
                | Some k -> schedule_mono b ~p ~i ~k ~subcolor chunk
                | None ->
                    unplaced :=
                      !unplaced
                      + schedule_spill b ~p ~i ~multichromatic ~subcolor chunk);
                remaining := !remaining - chunk;
                incr j
              end
            done;
            (* reserve the block head of labelled triples even when this
               batch gave them no chunk: the stream stays in place *)
            Hashtbl.iter
              (fun j k ->
                ignore j;
                let head = 3 * k in
                for round = i * p to min (((i + 1) * p) - 1) b.horizon do
                  b.busy.(head).(round) <- true
                done)
              resource_of_label)
          colors_with_p
      done)
    delay_values;
  if !unplaced > 0 then
    invalid_arg
      (Printf.sprintf
         "Aggregate.transform: %d executed jobs could not be placed (input \
          schedule was not feasible?)"
         !unplaced);
  (* ---------------------------------------------------------------- *)
  (* Emit the schedule: walk rounds, reconfigure lazily per resource    *)
  (* ---------------------------------------------------------------- *)
  let current = Array.make (3 * b.m) Types.black in
  let events = ref [] in
  for round = 0 to b.horizon do
    for resource = 0 to (3 * b.m) - 1 do
      match Hashtbl.find_opt b.executions (resource, round) with
      | Some subcolor when current.(resource) <> subcolor ->
          events :=
            ( round,
              Schedule.Reconfigure
                {
                  resource;
                  mini_round = 0;
                  from_color = current.(resource);
                  to_color = subcolor;
                } )
            :: !events;
          current.(resource) <- subcolor
      | _ -> ()
    done;
    for resource = 0 to (3 * b.m) - 1 do
      match Hashtbl.find_opt b.executions (resource, round) with
      | Some subcolor ->
          events :=
            (round, Schedule.Execute { resource; mini_round = 0; color = subcolor })
            :: !events
      | None -> ()
    done
  done;
  {
    Schedule.n = 3 * b.m;
    mini_rounds = 1;
    events = Array.of_list (List.rev !events);
  }

let verify instance ~mapping t =
  match transform instance ~mapping t with
  | exception Invalid_argument msg -> Error msg
  | t' ->
      let report =
        Validator.check ~strict_drops:false mapping.sub_instance t'
      in
      if report.ok then Ok (t', report)
      else
        Error
          (Format.asprintf "transformed schedule invalid: %a"
             Validator.pp_report report)
