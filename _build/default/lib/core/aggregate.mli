(** Algorithm Aggregate (paper Section 4.3) — the constructive heart of
    Lemma 4.1: given {e any} feasible offline schedule [T] for a batched
    instance [I], build a schedule [T'] for the distributed instance
    [I'] (subcolors of {!Distribute}) that

    - uses three times the resources (resource [k] of [T] becomes the
      triple [3k, 3k+1, 3k+2] of [T']),
    - executes exactly as many jobs as [T] (same drop cost, Lemma 4.5),
    - and pays at most a constant factor of [T]'s reconfiguration cost
      (Lemma 4.6).

    Structure, following the paper: process delay bounds in ascending
    order, block by block.  A resource that held one color [ℓ] for a
    whole block ({e monochromatic}) carries a persistent {e label} [j]
    and serves subcolor [(ℓ, j)] on the first member of its triple —
    label inheritance across consecutive blocks is what keeps the
    subcolor assignment stable and the extra reconfigurations bounded.
    Jobs that monochromatic resources cannot carry spill into the free
    slots of {e multichromatic} triples.

    Where the paper waves ("it is not hard to see"), this implementation
    makes the feasibility-first choice and documents it: executed jobs
    are chunked against the actual per-subcolor supply of the batch
    (chunk [j] uses subcolor [j]'s jobs, never an unsupplied label), and
    a spill chunk may split across several multichromatic triples if no
    single triple has room.  Both choices only ever reduce infeasibility;
    the structural cost argument is checked empirically by the tests. *)

val transform :
  Instance.t -> mapping:Distribute.mapping -> Schedule.t -> Schedule.t
(** [transform instance ~mapping t] is the 3x-resource schedule for
    [mapping.sub_instance].  [instance] must be batched with power-of-two
    delay bounds; [t] must be a uni-speed schedule for [instance]
    (engine-recorded).
    @raise Invalid_argument on a non-batched instance, non-power-of-two
    delays, or a double-speed input schedule. *)

val verify :
  Instance.t -> mapping:Distribute.mapping -> Schedule.t ->
  (Schedule.t * Validator.report, string) result
(** Transform and validate against the sub-instance in one step; [Error]
    when the output fails validation (which would indicate a bug — the
    tests keep this impossible). *)
