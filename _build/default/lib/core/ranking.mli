(** The EDF-style ranking of colors shared by EDF, Seq-EDF and the EDF
    component of ΔLRU-EDF (paper Sections 3.1.2 and 3.3): nonidle colors
    first, then ascending color deadline, ties broken by increasing delay
    bound and then by the consistent color order (ascending ids).

    Ineligible colors are ranked strictly worse than all eligible colors
    (they are eviction fodder); among themselves they rank by color id. *)

type key
(** Totally ordered rank key; smaller = better (cache-worthy). *)

val compare : key -> key -> int

val key_of_color :
  Eligibility.t -> Pending.t -> delay:int array -> Types.color -> key
(** Rank key of one color under the current state.  For nonidle colors
    the deadline used is the earliest pending deadline (equal to the
    color deadline [ℓ.dd] on batched instances); for idle eligible
    colors it is [ℓ.dd]. *)

val is_nonidle_eligible : key -> bool

val ranked_eligible :
  Eligibility.t ->
  Pending.t ->
  delay:int array ->
  exclude:(Types.color -> bool) ->
  (Types.color * key) list
(** All eligible colors not excluded, best rank first. *)

val timestamp_order :
  Eligibility.t -> Types.color list -> Types.color list
(** The ΔLRU selection order: most recent timestamp first, ties by the
    consistent color order (ascending id). *)
