(** Cost accounting: a schedule's total cost is its reconfiguration cost
    plus its drop cost (unit drop cost, [Δ] per recoloring). *)

type t = { reconfig : int; drop : int }

val zero : t
val make : reconfig:int -> drop:int -> t
val total : t -> int
val add : t -> t -> t
val add_reconfig : t -> int -> t
(** [add_reconfig c k] charges [k] recolorings' worth of cost — the
    argument is already in cost units (i.e. [k * Δ]), not a count. *)

val add_drop : t -> int -> t
val ratio : t -> t -> float
(** [ratio alg opt] is [total alg / total opt]; by convention 1.0 when
    both are zero and [infinity] when only [opt] is zero. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
