type instrumented = { policy : Policy.t; eligibility : Eligibility.t }

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let make ?sink (instance : Instance.t) ~n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Delta_lru.make: n must be a positive multiple of 2";
  let eligibility = Eligibility.create ?sink instance in
  let cache =
    Cache_state.create ~num_colors:instance.num_colors ~distinct_slots:(n / 2)
  in
  let reconfigure (view : Policy.view) =
    Eligibility.begin_round eligibility ~view ~in_cache:(Cache_state.mem cache);
    let eligible = Eligibility.eligible_colors eligibility in
    let by_recency = Ranking.timestamp_order eligibility eligible in
    let desired = take (n / 2) by_recency in
    Cache_state.assign cache ~desired;
    Cache_state.to_assignment cache ~replicated:true
  in
  { policy = { Policy.name = "dlru"; reconfigure }; eligibility }

let policy instance ~n = (make instance ~n).policy
