type t = {
  m : int;
  mutable completed : int;
  mutable history : int list; (* active-color counts, reverse order *)
  mutable updates : int;
  active : (int, unit) Hashtbl.t; (* colors updated in the current s-epoch *)
}

let attach ?(sink = Rrs_obs.Sink.null) elig ~m =
  if m < 1 then invalid_arg "Super_epochs.attach: m < 1";
  let t =
    { m; completed = 0; history = []; updates = 0; active = Hashtbl.create 16 }
  in
  let tracing = Rrs_obs.Sink.enabled sink in
  Eligibility.on_timestamp_update elig (fun color round ->
      t.updates <- t.updates + 1;
      Hashtbl.replace t.active color ();
      if Hashtbl.length t.active >= 2 * t.m then begin
        (* the super-epoch ends the moment the 2m-th color updates *)
        let active_colors = Hashtbl.length t.active in
        t.completed <- t.completed + 1;
        t.history <- active_colors :: t.history;
        Hashtbl.reset t.active;
        if tracing then
          Rrs_obs.Sink.emit sink
            (Rrs_obs.Event.Super_epoch
               { round; index = t.completed; active_colors; updates = t.updates })
      end);
  t

let completed t = t.completed
let current_active_colors t = Hashtbl.length t.active
let active_colors_per_super_epoch t = List.rev t.history
let updates_total t = t.updates
