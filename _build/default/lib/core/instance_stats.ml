type color_stats = {
  color : Types.color;
  delay : int;
  jobs : int;
  batches : int;
  max_batch : int;
  peak_window_load : float;
}

type t = {
  total_jobs : int;
  horizon : int;
  offered_load : float;
  peak_concurrent_load : float;
  per_color : color_stats list;
}

let compute (instance : Instance.t) =
  let jobs = Array.make instance.num_colors 0 in
  let batches = Array.make instance.num_colors 0 in
  let max_batch = Array.make instance.num_colors 0 in
  (* density difference array: batch (r, l, c) contributes c / D_l over
     [r, r + D_l) *)
  let density = Array.make (instance.horizon + 2) 0.0 in
  Array.iter
    (fun (a : Types.arrival) ->
      jobs.(a.color) <- jobs.(a.color) + a.count;
      batches.(a.color) <- batches.(a.color) + 1;
      if a.count > max_batch.(a.color) then max_batch.(a.color) <- a.count;
      let d = instance.delay.(a.color) in
      let rate = float_of_int a.count /. float_of_int d in
      density.(a.round) <- density.(a.round) +. rate;
      let stop = min (a.round + d) (instance.horizon + 1) in
      density.(stop) <- density.(stop) -. rate)
    instance.arrivals;
  let peak = ref 0.0 in
  let acc = ref 0.0 in
  Array.iter
    (fun delta ->
      acc := !acc +. delta;
      if !acc > !peak then peak := !acc)
    density;
  let per_color =
    List.init instance.num_colors (fun color ->
        {
          color;
          delay = instance.delay.(color);
          jobs = jobs.(color);
          batches = batches.(color);
          max_batch = max_batch.(color);
          peak_window_load =
            float_of_int max_batch.(color) /. float_of_int instance.delay.(color);
        })
  in
  let total_jobs = Instance.total_jobs instance in
  {
    total_jobs;
    horizon = instance.horizon;
    offered_load =
      (if instance.horizon = 0 then 0.0
       else float_of_int total_jobs /. float_of_int instance.horizon);
    peak_concurrent_load = !peak;
    per_color;
  }

let min_resources_estimate instance =
  int_of_float (ceil (compute instance).peak_concurrent_load)

let pp fmt t =
  Format.fprintf fmt
    "jobs=%d horizon=%d offered_load=%.2f/round peak_load=%.2f/round@." t.total_jobs
    t.horizon t.offered_load t.peak_concurrent_load;
  Format.fprintf fmt "%-6s %-6s %-7s %-8s %-9s %s@." "color" "delay" "jobs"
    "batches" "max" "peak window load";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-6d %-6d %-7d %-8d %-9d %.2f@." c.color c.delay
        c.jobs c.batches c.max_batch c.peak_window_load)
    t.per_color
