lib/core/par_edf.mli: Instance
