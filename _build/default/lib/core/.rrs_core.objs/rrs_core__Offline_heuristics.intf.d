lib/core/offline_heuristics.mli: Instance Policy
