lib/core/aggregate.mli: Distribute Instance Schedule Validator
