lib/core/cache_state.ml: Array Policy Types
