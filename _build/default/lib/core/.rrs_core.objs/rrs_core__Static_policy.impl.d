lib/core/static_policy.ml: Array List Policy Types
