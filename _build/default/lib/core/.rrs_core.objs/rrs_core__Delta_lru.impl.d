lib/core/delta_lru.ml: Cache_state Eligibility Instance Policy Ranking
