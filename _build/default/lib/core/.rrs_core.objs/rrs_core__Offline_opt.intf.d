lib/core/offline_opt.mli: Instance
