lib/core/instance_ops.mli: Instance Types
