lib/core/var_batch.mli: Engine Instance Policy Rrs_obs
