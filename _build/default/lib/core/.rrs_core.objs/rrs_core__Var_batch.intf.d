lib/core/var_batch.mli: Engine Instance Policy
