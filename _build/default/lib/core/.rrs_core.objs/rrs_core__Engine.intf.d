lib/core/engine.mli: Cost Instance Policy Rrs_obs Schedule Types
