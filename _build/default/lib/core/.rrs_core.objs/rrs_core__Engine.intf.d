lib/core/engine.mli: Cost Instance Policy Schedule Types
