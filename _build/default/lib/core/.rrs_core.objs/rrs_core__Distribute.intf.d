lib/core/distribute.mli: Engine Instance Policy Types
