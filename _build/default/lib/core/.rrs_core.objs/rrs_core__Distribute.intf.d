lib/core/distribute.mli: Engine Instance Policy Rrs_obs Types
