lib/core/eligibility.mli: Instance Policy Types
