lib/core/eligibility.mli: Instance Policy Rrs_obs Types
