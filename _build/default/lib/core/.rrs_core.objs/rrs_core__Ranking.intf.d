lib/core/ranking.mli: Eligibility Pending Types
