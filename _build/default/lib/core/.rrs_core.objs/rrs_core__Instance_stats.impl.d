lib/core/instance_stats.ml: Array Format Instance List Types
