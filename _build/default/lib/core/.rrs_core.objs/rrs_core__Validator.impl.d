lib/core/validator.ml: Array Cost Engine Format Hashtbl Instance List Option Pending Schedule Types
