lib/core/instance.mli: Format Types
