lib/core/offline_bounds.mli: Instance
