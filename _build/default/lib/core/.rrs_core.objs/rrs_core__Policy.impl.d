lib/core/policy.ml: Array Hashtbl Instance List Pending Types
