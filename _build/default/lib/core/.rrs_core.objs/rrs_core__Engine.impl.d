lib/core/engine.ml: Array Cost Fun Instance List Pending Policy Rrs_obs Schedule Types
