lib/core/engine.ml: Array Cost Fun Instance List Pending Policy Schedule Types
