lib/core/schedule.ml: Array Cost Format Types
