lib/core/lru_edf.ml: Cache_state Eligibility Hashtbl Instance List Policy Printf Ranking
