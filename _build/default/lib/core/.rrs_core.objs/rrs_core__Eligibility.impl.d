lib/core/eligibility.ml: Array Instance List Policy Rrs_dstruct Rrs_obs
