lib/core/instance_stats.mli: Format Instance Types
