lib/core/super_epochs.ml: Eligibility Hashtbl List Rrs_obs
