lib/core/aggregate.ml: Array Distribute Format Fun Hashtbl Instance List Option Printf Schedule Types Validator
