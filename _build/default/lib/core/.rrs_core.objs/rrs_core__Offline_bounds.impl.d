lib/core/offline_bounds.ml: Array Cost Engine Fun Instance List Par_edf Static_policy
