lib/core/validator.mli: Cost Engine Format Instance Schedule Types
