lib/core/par_edf.ml: Array Instance List Pending Rrs_dstruct
