lib/core/static_policy.mli: Policy Types
