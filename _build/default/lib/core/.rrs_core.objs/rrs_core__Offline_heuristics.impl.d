lib/core/offline_heuristics.ml: Array Cost Engine Hashtbl Instance List Offline_bounds Option Static_policy Types
