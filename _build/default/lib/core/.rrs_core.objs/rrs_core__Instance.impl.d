lib/core/instance.ml: Array Format List Printf Types
