lib/core/pending.ml: Array List Queue Rrs_dstruct
