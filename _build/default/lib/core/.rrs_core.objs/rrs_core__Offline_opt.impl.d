lib/core/offline_opt.ml: Array Hashtbl Instance List Types
