lib/core/schedule.mli: Cost Format Types
