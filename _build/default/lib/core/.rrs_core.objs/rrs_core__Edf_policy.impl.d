lib/core/edf_policy.ml: Cache_state Eligibility Instance List Policy Ranking
