lib/core/delta_lru.mli: Eligibility Instance Policy Rrs_obs
