lib/core/edf_policy.mli: Eligibility Instance Policy Rrs_obs
