lib/core/distribute.ml: Array Engine Instance Lru_edf Types
