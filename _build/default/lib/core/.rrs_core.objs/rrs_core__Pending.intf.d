lib/core/pending.mli: Types
