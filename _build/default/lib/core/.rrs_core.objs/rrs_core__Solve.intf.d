lib/core/solve.mli: Engine Instance Policy
