lib/core/cache_state.mli: Types
