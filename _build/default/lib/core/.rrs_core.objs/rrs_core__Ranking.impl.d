lib/core/ranking.ml: Array Eligibility List Pending Stdlib
