lib/core/policy.mli: Instance Pending Types
