lib/core/punctual.mli: Instance Schedule
