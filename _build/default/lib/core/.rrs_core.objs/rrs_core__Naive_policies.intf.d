lib/core/naive_policies.mli: Policy
