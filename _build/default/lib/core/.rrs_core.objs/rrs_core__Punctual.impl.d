lib/core/punctual.ml: Array Hashtbl Instance List Option Pending Schedule Types
