lib/core/instance_ops.ml: Array Instance Int64 List Option Printf Types
