lib/core/cost.ml: Format
