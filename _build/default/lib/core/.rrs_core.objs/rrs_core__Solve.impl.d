lib/core/solve.ml: Cost Distribute Engine Instance Lru_edf Offline_bounds Var_batch
