lib/core/naive_policies.ml: Array Cache_state Instance List Pending Policy Printf
