lib/core/lru_edf.mli: Eligibility Instance Policy Rrs_obs
