lib/core/super_epochs.mli: Eligibility Rrs_obs
