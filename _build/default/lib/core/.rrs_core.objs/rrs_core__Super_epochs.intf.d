lib/core/super_epochs.mli: Eligibility
