lib/core/var_batch.ml: Array Distribute Instance List Lru_edf Types
