type t = { reconfig : int; drop : int }

let zero = { reconfig = 0; drop = 0 }
let make ~reconfig ~drop = { reconfig; drop }
let total t = t.reconfig + t.drop
let add a b = { reconfig = a.reconfig + b.reconfig; drop = a.drop + b.drop }
let add_reconfig t k = { t with reconfig = t.reconfig + k }
let add_drop t k = { t with drop = t.drop + k }

let ratio alg opt =
  let a = total alg and o = total opt in
  if o = 0 then if a = 0 then 1.0 else infinity
  else float_of_int a /. float_of_int o

let pp fmt t =
  Format.fprintf fmt "@[<h>total=%d (reconfig=%d, drop=%d)@]" (total t)
    t.reconfig t.drop

let to_string t = Format.asprintf "%a" pp t
let equal a b = a.reconfig = b.reconfig && a.drop = b.drop
