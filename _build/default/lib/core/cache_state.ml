type t = {
  slots : Types.color array;
  flags : bool array; (* color -> currently in a distinct slot *)
}

let create ~num_colors ~distinct_slots =
  {
    slots = Array.make distinct_slots Types.black;
    flags = Array.make (max num_colors 1) false;
  }

let mem t color = color >= 0 && color < Array.length t.flags && t.flags.(color)

let cached_colors t =
  let out = ref [] in
  for color = Array.length t.flags - 1 downto 0 do
    if t.flags.(color) then out := color :: !out
  done;
  !out

let assign t ~desired =
  let updated = Policy.stable_assign ~current:t.slots ~desired in
  Array.iter (fun c -> if c <> Types.black then t.flags.(c) <- false) t.slots;
  Array.blit updated 0 t.slots 0 (Array.length t.slots);
  Array.iter (fun c -> if c <> Types.black then t.flags.(c) <- true) t.slots

let to_assignment t ~replicated =
  if replicated then Policy.replicate ~distinct:t.slots ~n:(2 * Array.length t.slots)
  else Array.copy t.slots

let distinct t = Array.copy t.slots
