(** Non-adaptive and clairvoyant schedules expressed as policies.

    These are the building blocks of the offline baselines: a fixed
    configuration, a piecewise-static configuration switching at chosen
    rounds (the shape of the OFF schedules in the paper's Appendices A
    and B), and the all-black do-nothing schedule. *)

val black : Policy.factory
(** Never configures anything; drops every job.  Cost = total jobs. *)

val static : Types.color list -> Policy.factory
(** Configure the given colors (at most [n], no duplicates) from round 0
    and never change.
    @raise Invalid_argument at reconfiguration time if more colors than
    resources. *)

val piecewise : (Types.round * Types.color list) list -> Policy.factory
(** [piecewise segments] holds each color list from its start round until
    the next segment's start round.  Segments must have strictly
    increasing start rounds, the first at round 0; each list at most [n]
    colors.  Slots beyond a segment's list keep their previous color
    (lazy eviction), so shrinking segments do not pay to blacken
    resources.
    @raise Invalid_argument on an ill-formed segment list. *)
