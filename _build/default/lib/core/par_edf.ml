type result = {
  drop_cost : int;
  executed : int;
  drops_by_color : int array;
}

(* Per round we pop the best-ranked nonidle color from a heap keyed by
   (earliest pending deadline, delay bound, color), execute one of its
   jobs, and re-insert.  Jobs within a color are FIFO = EDF. *)
let run (instance : Instance.t) ~m =
  if m < 1 then invalid_arg "Par_edf.run: m < 1";
  let pending = Pending.create ~num_colors:instance.num_colors in
  let arrivals = Instance.arrivals_by_round instance in
  let dropped = ref 0 in
  let executed = ref 0 in
  let drops_by_color = Array.make instance.num_colors 0 in
  let heap = Rrs_dstruct.Binary_heap.create ~cmp:compare () in
  for round = 0 to instance.horizon do
    List.iter
      (fun (color, count) ->
        dropped := !dropped + count;
        drops_by_color.(color) <- drops_by_color.(color) + count)
      (Pending.expire pending ~now:round);
    let batch = if round < Array.length arrivals then arrivals.(round) else [] in
    List.iter
      (fun (color, count) ->
        Pending.add pending color
          ~deadline:(round + instance.delay.(color))
          ~count)
      batch;
    (* execute up to m best-ranked jobs; rebuild the candidate heap from
       the nonidle colors (their count is usually small and bounded by
       the number of colors) *)
    Rrs_dstruct.Binary_heap.clear heap;
    Pending.iter_nonidle pending (fun color _count ->
        match Pending.earliest_deadline pending color with
        | Some deadline ->
            Rrs_dstruct.Binary_heap.add heap
              (deadline, instance.delay.(color), color)
        | None -> ());
    let slots = ref m in
    while
      !slots > 0 && not (Rrs_dstruct.Binary_heap.is_empty heap)
    do
      let _, _, color = Rrs_dstruct.Binary_heap.pop_min heap in
      (match Pending.execute_one pending color with
      | Some _ ->
          incr executed;
          decr slots;
          (match Pending.earliest_deadline pending color with
          | Some deadline ->
              Rrs_dstruct.Binary_heap.add heap
                (deadline, instance.delay.(color), color)
          | None -> ())
      | None -> ())
    done
  done;
  { drop_cost = !dropped; executed = !executed; drops_by_color }

let drop_cost instance ~m = (run instance ~m).drop_cost
