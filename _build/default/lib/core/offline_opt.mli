(** Exact optimal offline cost by memoized exhaustive search.

    The state is (round, cache multiset, pending buckets); per round the
    search branches over all useful cache multisets — configurations that
    only involve colors with pending jobs (configuring a color early is
    never cheaper than configuring it when its jobs exist) — and prices a
    transition at [Δ ×] the multiset distance.  Execution is not a
    choice: running the earliest-deadline pending job of each configured
    slot is weakly dominant.

    Exponential in general: practical for a handful of colors, one or two
    resources and horizons of a few dozen rounds.  Used by EXP-8 and by
    tests that sandwich OPT between {!Offline_bounds.opt_bracket}. *)

val solve : ?max_states:int -> Instance.t -> m:int -> int option
(** Exact OPT cost with [m] resources, or [None] when the memo table
    would exceed [max_states] (default 2_000_000).
    @raise Invalid_argument if [m < 1]. *)
