(** The punctual-schedule transformation (paper Section 5.2, Lemmas
    5.1-5.3) — the constructive half of Theorem 3's offline side.

    Relative to half-blocks of width [D_ℓ/2], an execution of a job that
    arrived in half-block [i] is {e early} if it runs in half-block [i],
    {e punctual} in [i+1], and {e late} in [i+2] (feasibility forces one
    of the three for power-of-two bounds).  Lemma 5.3: any [m]-resource
    schedule can be turned into an all-punctual schedule on [7m]
    resources at a constant-factor reconfiguration overhead — resource
    [k]'s early executions move onto three resources (specials shifted
    forward half a block, the rest packed into the next half-block),
    its punctual executions stay on one, and its late executions move
    onto three more (the mirror image).

    A punctual schedule is exactly one that respects the VarBatch
    instance's tightened windows, which is how Theorem 3's analysis
    connects the general problem to the batched one; {!make_punctual}'s
    output validates against [Var_batch.transform instance] and the
    tests confirm it.

    Colors with delay bound 1 cannot be early or late (their window is
    one round) and pass through unchanged on the punctual resource. *)

type classification = Early | Punctual | Late

val classify : delay:int -> arrival:int -> execution:int -> classification
(** Classification of one execution.  [delay >= 2] must be a power of
    two; delay-1 executions are {!Punctual} by definition.
    @raise Invalid_argument if [delay] is not 1 or a power of two >= 2,
    or if the execution round is outside the job's feasible window. *)

val census : Instance.t -> Schedule.t -> int * int * int
(** [(early, punctual, late)] counts over a schedule's executions,
    binding each execution to its job by earliest-deadline matching. *)

val is_punctual : Instance.t -> Schedule.t -> bool

val make_punctual : Instance.t -> Schedule.t -> Schedule.t
(** The Lemma 5.3 construction: a [7m]-resource all-punctual schedule
    executing exactly the jobs of the input.
    @raise Invalid_argument on non-power-of-two delay bounds (other than
    1) or a double-speed input. *)
