let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let round_robin (instance : Instance.t) ~n =
  let cache = Cache_state.create ~num_colors:instance.num_colors ~distinct_slots:n in
  let cursor = ref 0 in
  let reconfigure (view : Policy.view) =
    let num_colors = instance.num_colors in
    (* collect up to n nonidle colors starting at the cursor *)
    let desired = ref [] in
    let found = ref 0 in
    let scanned = ref 0 in
    while !found < n && !scanned < num_colors do
      let color = (!cursor + !scanned) mod num_colors in
      if not (Pending.is_idle view.pending color) then begin
        desired := color :: !desired;
        incr found
      end;
      incr scanned
    done;
    cursor := (!cursor + 1) mod num_colors;
    Cache_state.assign cache ~desired:(List.rev !desired);
    Cache_state.to_assignment cache ~replicated:false
  in
  { Policy.name = "round-robin"; reconfigure }

let greedy_with_hysteresis ~name ~threshold (instance : Instance.t) ~n =
  if threshold < 0 then invalid_arg "Naive_policies: negative threshold";
  let cache = Cache_state.create ~num_colors:instance.num_colors ~distinct_slots:n in
  let reconfigure (view : Policy.view) =
    let backlog color = Pending.total view.pending color in
    (* challengers: nonidle colors by descending backlog *)
    let challengers = ref [] in
    Pending.iter_nonidle view.pending (fun color pending ->
        challengers := (pending, color) :: !challengers);
    let ranked =
      List.sort (fun a b -> compare b a) !challengers |> List.map snd
    in
    let incumbents = Cache_state.cached_colors cache in
    (* keep incumbents unless a challenger beats them by > threshold *)
    let desired = ref (List.filter (fun c -> backlog c > 0 || threshold > 0) incumbents) in
    let is_desired c = List.mem c !desired in
    List.iter
      (fun challenger ->
        if (not (is_desired challenger)) && List.length !desired < n then
          desired := !desired @ [ challenger ]
        else if not (is_desired challenger) then begin
          (* full: evict the weakest incumbent if clearly beaten *)
          let weakest =
            List.fold_left
              (fun acc c ->
                match acc with
                | Some w when backlog w <= backlog c -> acc
                | _ -> Some c)
              None !desired
          in
          match weakest with
          | Some w when backlog challenger > backlog w + threshold ->
              desired :=
                List.filter (fun c -> c <> w) !desired @ [ challenger ]
          | _ -> ()
        end)
      (take (2 * n) ranked);
    Cache_state.assign cache ~desired:!desired;
    Cache_state.to_assignment cache ~replicated:false
  in
  { Policy.name; reconfigure }

let classic_lru (instance : Instance.t) ~n =
  let cache = Cache_state.create ~num_colors:instance.num_colors ~distinct_slots:n in
  let last_request = Array.make instance.num_colors (-1) in
  let reconfigure (view : Policy.view) =
    List.iter
      (fun (color, count) ->
        if count > 0 then last_request.(color) <- view.round)
      view.arrivals;
    let requested = ref [] in
    Array.iteri
      (fun color round ->
        if round >= 0 then requested := (-round, color) :: !requested)
      last_request;
    let by_recency = List.map snd (List.sort compare !requested) in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: r -> x :: take (k - 1) r
    in
    Cache_state.assign cache ~desired:(take n by_recency);
    Cache_state.to_assignment cache ~replicated:false
  in
  { Policy.name = "classic-lru"; reconfigure }

let greedy_backlog instance ~n =
  greedy_with_hysteresis ~name:"greedy-backlog" ~threshold:0 instance ~n

let greedy_backlog_hysteresis ~threshold instance ~n =
  greedy_with_hysteresis
    ~name:(Printf.sprintf "greedy-backlog[h=%d]" threshold)
    ~threshold instance ~n
