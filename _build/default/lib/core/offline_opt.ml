exception Budget_exceeded

(* Pending state: per color, deadline-ascending (deadline, count) list.
   Kept canonical (no zero counts) so structural equality = state
   equality. *)
type pending = (int * int) list array

let drop_expired (pending : pending) ~now =
  let dropped = ref 0 in
  let updated =
    Array.map
      (fun buckets ->
        List.filter
          (fun (deadline, count) ->
            if deadline <= now then begin
              dropped := !dropped + count;
              false
            end
            else true)
          buckets)
      pending
  in
  (updated, !dropped)

let add_arrivals (pending : pending) ~round ~delay batch =
  let updated = Array.copy pending in
  List.iter
    (fun (color, count) ->
      let deadline = round + delay.(color) in
      (* arrivals carry the latest deadline of their color: append *)
      updated.(color) <- updated.(color) @ [ (deadline, count) ])
    batch;
  updated

(* Execute one earliest-deadline job per configured slot.  Executing is
   weakly dominant (free and load-reducing), so it is not a branch. *)
let execute (pending : pending) cache =
  let updated = Array.copy pending in
  List.iter
    (fun color ->
      if color >= 0 then
        match updated.(color) with
        | (deadline, count) :: rest ->
            updated.(color) <-
              (if count = 1 then rest else (deadline, count - 1) :: rest)
        | [] -> ())
    cache;
  updated

(* Minimal recolorings to turn multiset [a] into multiset [b] (both sorted
   lists of the same length): the positions not covered by the largest
   common sub-multiset. *)
let multiset_distance a b =
  let rec common xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> 0
    | x :: xr, y :: yr ->
        if x = y then 1 + common xr yr
        else if x < y then common xr ys
        else common xs yr
  in
  List.length a - common a b

(* All sorted multisets of size [m] drawn from the sorted candidate list
   (with repetition). *)
let multisets candidates m =
  let rec build m candidates =
    if m = 0 then [ [] ]
    else
      match candidates with
      | [] -> []
      | c :: rest ->
          List.map (fun tail -> c :: tail) (build (m - 1) candidates)
          @ build m rest
  in
  build m candidates

let solve ?(max_states = 2_000_000) (instance : Instance.t) ~m =
  if m < 1 then invalid_arg "Offline_opt.solve: m < 1";
  let arrivals = Instance.arrivals_by_round instance in
  let memo : (int * int list * (int * int) list list, int) Hashtbl.t =
    Hashtbl.create 4096
  in
  let rec best round (cache : int list) (pending : pending) =
    if round > instance.horizon then 0
    else begin
      let key = (round, cache, Array.to_list pending) in
      match Hashtbl.find_opt memo key with
      | Some v -> v
      | None ->
          if Hashtbl.length memo >= max_states then raise Budget_exceeded;
          (* drop phase, then arrival phase *)
          let pending, drops = drop_expired pending ~now:round in
          let batch =
            if round < Array.length arrivals then arrivals.(round) else []
          in
          let pending =
            add_arrivals pending ~round ~delay:instance.delay batch
          in
          (* branch over the useful cache multisets: colors with pending
             jobs, plus black, plus staying put *)
          let active = ref [] in
          Array.iteri
            (fun color buckets -> if buckets <> [] then active := color :: !active)
            pending;
          let candidates = Types.black :: List.sort compare !active in
          let choices = multisets candidates m in
          let choices =
            if List.mem cache choices then choices else cache :: choices
          in
          let value =
            List.fold_left
              (fun acc choice ->
                let reconfig = instance.delta * multiset_distance cache choice in
                if reconfig >= acc then acc
                else begin
                  let after_exec = execute pending choice in
                  let rest = best (round + 1) choice after_exec in
                  min acc (reconfig + rest)
                end)
              max_int choices
          in
          let value = drops + value in
          Hashtbl.replace memo key value;
          value
    end
  in
  let initial_cache = List.init m (fun _ -> Types.black) in
  let initial_pending = Array.make instance.num_colors [] in
  match best 0 initial_cache initial_pending with
  | v -> Some v
  | exception Budget_exceeded -> None
