type event =
  | Drop of { color : Types.color; count : int }
  | Reconfigure of {
      resource : int;
      mini_round : int;
      from_color : Types.color;
      to_color : Types.color;
    }
  | Execute of { resource : int; mini_round : int; color : Types.color }

type t = {
  n : int;
  mini_rounds : int;
  events : (Types.round * event) array;
}

let events_of_round t round =
  Array.fold_right
    (fun (r, e) acc -> if r = round then e :: acc else acc)
    t.events []

let count_if pred t =
  Array.fold_left (fun acc (_, e) -> if pred e then acc + 1 else acc) 0 t.events

let reconfig_count t =
  count_if (function Reconfigure _ -> true | _ -> false) t

let execute_count t = count_if (function Execute _ -> true | _ -> false) t

let drop_count t =
  Array.fold_left
    (fun acc (_, e) -> match e with Drop { count; _ } -> acc + count | _ -> acc)
    0 t.events

let cost ~delta t =
  Cost.make ~reconfig:(delta * reconfig_count t) ~drop:(drop_count t)

let final_cache t =
  let cache = Array.make t.n Types.black in
  Array.iter
    (fun (_, e) ->
      match e with
      | Reconfigure { resource; to_color; _ } -> cache.(resource) <- to_color
      | Drop _ | Execute _ -> ())
    t.events;
  cache

let pp_event fmt (round, event) =
  match event with
  | Drop { color; count } ->
      Format.fprintf fmt "@[<h>r%d drop: %d of color %d@]" round count color
  | Reconfigure { resource; mini_round; from_color; to_color } ->
      Format.fprintf fmt "@[<h>r%d.%d reconfig: resource %d %d -> %d@]" round
        mini_round resource from_color to_color
  | Execute { resource; mini_round; color } ->
      Format.fprintf fmt "@[<h>r%d.%d execute: color %d on resource %d@]" round
        mini_round color resource

let pp fmt t =
  Format.fprintf fmt "schedule: n=%d, mini_rounds=%d, %d events@." t.n
    t.mini_rounds (Array.length t.events);
  Array.iter (fun ev -> Format.fprintf fmt "  %a@." pp_event ev) t.events
