(* Rank keys compare lexicographically:
   class (0 = eligible nonidle, 1 = eligible idle, 2 = ineligible),
   then deadline, then delay bound, then color id. *)
type key = { klass : int; deadline : int; delay : int; color : int }

let compare a b =
  match Stdlib.compare a.klass b.klass with
  | 0 -> (
      match Stdlib.compare a.deadline b.deadline with
      | 0 -> (
          match Stdlib.compare a.delay b.delay with
          | 0 -> Stdlib.compare a.color b.color
          | c -> c)
      | c -> c)
  | c -> c

let key_of_color elig pending ~delay color =
  if not (Eligibility.is_eligible elig color) then
    { klass = 2; deadline = 0; delay = 0; color }
  else
    match Pending.earliest_deadline pending color with
    | Some d -> { klass = 0; deadline = d; delay = delay.(color); color }
    | None ->
        {
          klass = 1;
          deadline = Eligibility.color_deadline elig color;
          delay = delay.(color);
          color;
        }

let is_nonidle_eligible k = k.klass = 0

let ranked_eligible elig pending ~delay ~exclude =
  let keyed =
    List.filter_map
      (fun color ->
        if exclude color then None
        else Some (color, key_of_color elig pending ~delay color))
      (Eligibility.eligible_colors elig)
  in
  List.sort (fun (_, a) (_, b) -> compare a b) keyed

let timestamp_order elig colors =
  (* most recent timestamp first; stable tie-break on ascending id comes
     from sorting pairs (negated timestamp, id) *)
  let keyed =
    List.map (fun color -> (-Eligibility.timestamp elig color, color)) colors
  in
  List.map snd (List.sort Stdlib.compare keyed)
