(** Instance algebra: combinators for building workloads out of other
    workloads.  The composite generators and several tests are built on
    these; all results go through {!Instance.create}, so they are always
    validated and normalised. *)

val shift : rounds:int -> Instance.t -> Instance.t
(** Delay every arrival by [rounds] (>= 0).
    @raise Invalid_argument on a negative shift. *)

val union : ?name:string -> Instance.t -> Instance.t -> Instance.t
(** Superpose two instances over a shared color space: colors of the
    second instance are renumbered after the first's.  Both must agree
    on [delta].
    @raise Invalid_argument when the [delta]s differ. *)

val overlay : ?name:string -> Instance.t -> Instance.t -> Instance.t
(** Superpose two instances over the {e same} color space: both must
    have identical [delta] and delay arrays; arrival multisets are
    merged.
    @raise Invalid_argument when parameters disagree. *)

val restrict_colors : keep:(Types.color -> bool) -> Instance.t -> Instance.t
(** Drop every color not selected (and its arrivals); survivors are
    renumbered densely, preserving order. *)

val scale_counts : factor:int -> Instance.t -> Instance.t
(** Multiply every batch size by [factor] (>= 0) — turns a rate-limited
    instance into a Distribute workout.
    @raise Invalid_argument on a negative factor. *)

val subsequence : p:float -> seed:int -> Instance.t -> Instance.t
(** Keep each individual job independently with probability [p]
    (deterministic in [seed]).  Used by tests of subsequence-monotonicity
    claims (e.g. Lemma 3.6's flavour). *)
