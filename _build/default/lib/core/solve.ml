type layer = Direct | Distributed | Pipelined

let classify instance =
  if Instance.is_rate_limited instance && Instance.delays_are_powers_of_two instance
  then Direct
  else if Instance.is_batched instance && Instance.delays_are_powers_of_two instance
  then Distributed
  else Pipelined

let layer_to_string = function
  | Direct -> "direct (rate-limited)"
  | Distributed -> "distribute (batched)"
  | Pipelined -> "varbatch pipeline (general)"

let run ?(policy = Lru_edf.policy) instance ~n =
  if n < 4 || n mod 4 <> 0 then
    invalid_arg "Solve.run: n must be a positive multiple of 4";
  let layer = classify instance in
  let result =
    match layer with
    | Direct -> Engine.run (Engine.config ~n ()) instance policy
    | Distributed -> Distribute.run ~policy instance ~n
    | Pipelined -> Var_batch.run ~policy instance ~n
  in
  (layer, result)

let ratio_upper_bound instance ~n ~m =
  let _, result = run instance ~n in
  let lb = Offline_bounds.lower_bound instance ~m in
  if lb = 0 then if Cost.total result.cost = 0 then 1.0 else infinity
  else float_of_int (Cost.total result.cost) /. float_of_int lb
