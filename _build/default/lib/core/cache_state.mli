(** Mutable distinct-slot cache state shared by the policy
    implementations: tracks the distinct half of the cache, offers an O(1)
    membership test, and produces the engine-facing assignment (with or
    without the replication half). *)

type t

val create : num_colors:int -> distinct_slots:int -> t
val mem : t -> Types.color -> bool
val cached_colors : t -> Types.color list
(** Ascending color order; excludes black. *)

val assign : t -> desired:Types.color list -> unit
(** Update the distinct slots via {!Policy.stable_assign}. *)

val to_assignment : t -> replicated:bool -> Types.color array
(** The full engine assignment: the distinct slots, doubled when
    [replicated] (paper invariant: each cached color in two locations). *)

val distinct : t -> Types.color array
(** The raw distinct slots (copy). *)
