type color = int
type round = int

let black = -1

type arrival = { round : round; color : color; count : int }

let compare_arrival a b =
  match compare a.round b.round with 0 -> compare a.color b.color | c -> c

let pp_arrival fmt a =
  Format.fprintf fmt "@[<h>round %d: %d job%s of color %d@]" a.round a.count
    (if a.count = 1 then "" else "s")
    a.color

type phase = Drop_phase | Arrival_phase | Reconfig_phase | Execution_phase

let pp_phase fmt = function
  | Drop_phase -> Format.pp_print_string fmt "drop"
  | Arrival_phase -> Format.pp_print_string fmt "arrival"
  | Reconfig_phase -> Format.pp_print_string fmt "reconfig"
  | Execution_phase -> Format.pp_print_string fmt "execution"

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let floor_pow2 n =
  if n < 1 then invalid_arg "Types.floor_pow2";
  let p = ref 1 in
  while !p * 2 <= n do
    p := !p * 2
  done;
  !p

let ceil_pow2 n =
  if n < 1 then invalid_arg "Types.ceil_pow2";
  let p = ref 1 in
  while !p < n do
    p := !p * 2
  done;
  !p
