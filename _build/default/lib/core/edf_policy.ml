type instrumented = { policy : Policy.t; eligibility : Eligibility.t }

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

(* Shared EDF reconfiguration scheme over [distinct_slots] slots.  The
   new cached set is the best [distinct_slots] of (currently cached ∪
   top-ranked nonidle additions); evictions happen only under capacity
   pressure and take the worst-ranked colors, exactly as in the paper. *)
let make_scheme ?sink ~name ~replicated ~distinct_slots (instance : Instance.t)
    =
  let eligibility = Eligibility.create ?sink instance in
  let cache =
    Cache_state.create ~num_colors:instance.num_colors ~distinct_slots
  in
  let delay = instance.delay in
  let reconfigure (view : Policy.view) =
    Eligibility.begin_round eligibility ~view ~in_cache:(Cache_state.mem cache);
    let ranked =
      Ranking.ranked_eligible eligibility view.pending ~delay
        ~exclude:(fun _ -> false)
    in
    let top = take distinct_slots ranked in
    let additions =
      List.filter_map
        (fun (color, key) ->
          if Ranking.is_nonidle_eligible key && not (Cache_state.mem cache color)
          then Some color
          else None)
        top
    in
    let candidates =
      let cached = Cache_state.cached_colors cache in
      List.map
        (fun color ->
          (color, Ranking.key_of_color eligibility view.pending ~delay color))
        (cached @ additions)
    in
    let kept =
      candidates
      |> List.sort (fun (_, a) (_, b) -> Ranking.compare a b)
      |> take distinct_slots
      |> List.map fst
    in
    Cache_state.assign cache ~desired:kept;
    Cache_state.to_assignment cache ~replicated
  in
  { policy = { Policy.name; reconfigure }; eligibility }

let make ?sink instance ~n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Edf_policy.make: n must be a positive multiple of 2";
  make_scheme ?sink ~name:"edf" ~replicated:true ~distinct_slots:(n / 2)
    instance

let policy instance ~n = (make instance ~n).policy

let make_seq ?sink instance ~n =
  if n < 1 then invalid_arg "Edf_policy.make_seq: n < 1";
  make_scheme ?sink ~name:"seq-edf" ~replicated:false ~distinct_slots:n
    instance

let seq_policy instance ~n = (make_seq instance ~n).policy
