(** Clairvoyant (offline) heuristic schedules.

    These produce *feasible* schedules, so their cost upper-bounds OPT —
    they tighten the bracket from {!Offline_bounds.static_upper_bound}
    on workloads whose hot set drifts over time (where any single static
    configuration is poor).

    The interval planner mirrors the shape of the appendices' OFF
    schedules: carve the timeline into fixed windows and, in each
    window, configure the [m] colors with the most arriving work. *)

val interval_plan : Instance.t -> m:int -> window:int -> Policy.factory
(** The piecewise-static policy described above.  Clairvoyant: it reads
    the instance's full arrival sequence at construction time.
    @raise Invalid_argument if [window < 1] or [m < 1]. *)

val interval_cost : Instance.t -> m:int -> window:int -> int
(** Cost of running {!interval_plan} (uni-speed, [m] resources). *)

val upper_bound : Instance.t -> m:int -> int
(** Best feasible cost over: the static bounds of {!Offline_bounds}, and
    interval plans at window sizes spanning the instance's delay bounds
    (each power of two from the smallest delay to twice the largest).
    Always an upper bound on OPT([m]). *)
