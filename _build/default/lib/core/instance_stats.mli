(** Descriptive statistics of an instance — what an operator looks at
    before picking a pool size: offered load, per-color pressure, and a
    lower bound on the resources needed to avoid capacity drops. *)

type color_stats = {
  color : Types.color;
  delay : int;
  jobs : int;
  batches : int;
  max_batch : int;
  peak_window_load : float;
      (** largest batch divided by the delay bound — 1.0 means a window
          arrives exactly saturated for one resource *)
}

type t = {
  total_jobs : int;
  horizon : int;
  offered_load : float;
      (** jobs per round over the active horizon: the resource count
          needed by a clairvoyant scheduler ignoring deadlines *)
  peak_concurrent_load : float;
      (** max over rounds of (jobs whose window covers the round) /
          (window length) summed over colors — a deadline-aware load
          measure; any schedule with fewer resources must drop *)
  per_color : color_stats list;  (** ascending color order *)
}

val compute : Instance.t -> t

val min_resources_estimate : Instance.t -> int
(** [ceil peak_concurrent_load] — the fluid (fractional) capacity bound:
    a pool smaller than this is overloaded at the peak and will drop
    under any policy that cannot smooth the excess into slack windows. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
