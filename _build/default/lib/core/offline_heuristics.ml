let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let interval_plan (instance : Instance.t) ~m ~window =
  if window < 1 then invalid_arg "Offline_heuristics.interval_plan: window";
  if m < 1 then invalid_arg "Offline_heuristics.interval_plan: m";
  (* per window, the m colors with the most arriving jobs *)
  let blocks = (instance.horizon / window) + 1 in
  let per_block = Array.init blocks (fun _ -> Hashtbl.create 8) in
  Array.iter
    (fun (a : Types.arrival) ->
      let tbl = per_block.(a.round / window) in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl a.color) in
      Hashtbl.replace tbl a.color (prev + a.count))
    instance.arrivals;
  let segments =
    List.init blocks (fun b ->
        let counts =
          Hashtbl.fold (fun color count acc -> (count, color) :: acc)
            per_block.(b) []
        in
        let top =
          counts
          |> List.sort (fun a b -> compare b a)
          |> take m
          |> List.map snd
        in
        (b * window, top))
  in
  Static_policy.piecewise segments

let interval_cost instance ~m ~window =
  let cfg = Engine.config ~n:m () in
  let result = Engine.run cfg instance (interval_plan instance ~m ~window) in
  Cost.total result.cost

let upper_bound (instance : Instance.t) ~m =
  let windows =
    let min_delay = Array.fold_left min max_int instance.delay in
    let max_delay = Instance.max_delay instance in
    let rec collect w acc =
      if w > 2 * max_delay then List.rev acc else collect (2 * w) (w :: acc)
    in
    if instance.num_colors = 0 then []
    else collect (max 1 (Types.floor_pow2 (max 1 min_delay))) []
  in
  List.fold_left
    (fun best window -> min best (interval_cost instance ~m ~window))
    (Offline_bounds.static_upper_bound instance ~m)
    windows
