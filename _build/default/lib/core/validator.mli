(** Independent schedule checker.

    Replays a recorded {!Schedule.t} against an {!Instance.t}, maintaining
    its own job bookkeeping, and verifies every model constraint:

    - resources only execute the color they are configured to;
    - at most one execution per resource per mini-round;
    - executions consume jobs that have arrived and not yet expired
      (executing in the round of the deadline is illegal — the drop phase
      precedes the execution phase);
    - drops match exactly the jobs that expire (strict mode);
    - recomputed cost matches the engine's reported cost.

    Strict mode is for schedules produced directly on the instance;
    reduction pipelines (VarBatch delays arrivals) validate in lenient
    mode, which checks execution feasibility and conservation
    (executed + dropped = total jobs) but not drop timing. *)

type violation = { round : Types.round; message : string }

type report = {
  ok : bool;
  violations : violation list;
  recomputed_cost : Cost.t;
  executed : int;
  dropped : int;
}

val check : ?strict_drops:bool -> Instance.t -> Schedule.t -> report
(** [strict_drops] defaults to [true]. *)

val check_result : ?strict_drops:bool -> Instance.t -> Engine.result -> report
(** Convenience: validates [result.schedule] and additionally compares
    the recomputed cost with [result.cost].
    @raise Invalid_argument if the result carries no schedule. *)

val pp_report : Format.formatter -> report -> unit
