(** One-call solver facade: pick the right layer of the paper's stack for
    an instance and run it.

    - rate-limited batched input → ΔLRU-EDF directly (Theorem 1);
    - batched input with oversized batches → Distribute (Theorem 2);
    - anything else → the full VarBatch pipeline (Theorem 3).

    This is the entry point a downstream user wants when they just have
    jobs and deadlines and do not care which reduction applies. *)

type layer = Direct | Distributed | Pipelined

val classify : Instance.t -> layer

val layer_to_string : layer -> string

val run : ?policy:Policy.factory -> Instance.t -> n:int -> layer * Engine.result
(** [run instance ~n] dispatches on {!classify}.  [policy] overrides the
    innermost scheduler (default ΔLRU-EDF; it always receives a
    rate-limited instance).
    @raise Invalid_argument if [n] is not a positive multiple of 4 (the
    default policy's requirement). *)

val ratio_upper_bound : Instance.t -> n:int -> m:int -> float
(** Convenience for evaluations: [run] the instance, divide by the
    certified OPT([m]) lower bound.  The result can only overestimate the
    true competitive ratio. *)
