(** Certified lower bounds on the optimal offline cost, and cheap upper
    bounds that sandwich it.

    The paper never computes OFF — it only needs its existence.  Our
    experiments report competitive ratios against these bounds:
    dividing an algorithm's cost by a *lower* bound on OPT can only
    overestimate the true ratio, so a measured "small constant" is a safe
    conclusion.

    Lower bounds:
    - per-color: OPT pays at least [min(Δ, jobs_ℓ)] for every color with
      at least one job (cache it at cost ≥ Δ, or drop all its jobs);
    - Par-EDF drops: OPT's drop cost alone is at least Par-EDF's drop
      cost with the same [m] (Lemma 3.7).

    Upper bounds come from feasible schedules: the best static
    configuration found by greedy candidate sets, and the all-black
    schedule. *)

val per_color_lb : Instance.t -> int

val par_edf_drop_lb : Instance.t -> m:int -> int

val lower_bound : Instance.t -> m:int -> int
(** [max (per_color_lb i) (par_edf_drop_lb i ~m)], and at least 0. *)

val static_upper_bound : Instance.t -> m:int -> int
(** Cost of the best schedule among: all-black, and static configurations
    of the top-[m] colors by job count / by jobs-per-round density.  A
    feasible schedule, hence an upper bound on OPT. *)

val opt_bracket : Instance.t -> m:int -> int * int
(** [(lower, upper)] with [lower <= OPT(m) <= upper]. *)
