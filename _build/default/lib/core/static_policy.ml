let black _instance ~n =
  {
    Policy.name = "black";
    reconfigure = (fun _view -> Array.make n Types.black);
  }

let has_duplicates colors =
  let sorted = List.sort compare colors in
  let rec dup = function
    | a :: (b :: _ as rest) -> a = b || dup rest
    | [ _ ] | [] -> false
  in
  dup sorted

(* Oracle color lists may contain duplicates (several copies of one
   color); stable_assign requires distinct colors, so fall back to
   positional placement in that case. *)
let place ~current ~desired =
  if has_duplicates desired then begin
    let result = Array.copy current in
    List.iteri (fun slot color -> result.(slot) <- color) desired;
    result
  end
  else Policy.stable_assign ~current ~desired

let static colors _instance ~n =
  let reconfigure (view : Policy.view) =
    if List.length colors > n then
      invalid_arg "Static_policy.static: more colors than resources";
    place ~current:view.cache ~desired:colors
  in
  { Policy.name = "static"; reconfigure }

let piecewise segments _instance ~n =
  (match segments with
  | (0, _) :: _ -> ()
  | _ -> invalid_arg "Static_policy.piecewise: first segment must start at 0");
  let rec check = function
    | (r1, _) :: ((r2, _) :: _ as rest) ->
        if r2 <= r1 then
          invalid_arg "Static_policy.piecewise: starts must increase";
        check rest
    | [ _ ] | [] -> ()
  in
  check segments;
  List.iter
    (fun (_, colors) ->
      if List.length colors > n then
        invalid_arg "Static_policy.piecewise: more colors than resources")
    segments;
  let remaining = ref segments in
  let current_colors = ref [] in
  let reconfigure (view : Policy.view) =
    (match !remaining with
    | (start, colors) :: rest when start <= view.round ->
        current_colors := colors;
        remaining := rest
    | _ -> ());
    place ~current:view.cache ~desired:!current_colors
  in
  { Policy.name = "piecewise"; reconfigure }
