type violation = { round : Types.round; message : string }

type report = {
  ok : bool;
  violations : violation list;
  recomputed_cost : Cost.t;
  executed : int;
  dropped : int;
}

let check ?(strict_drops = true) (instance : Instance.t) (sched : Schedule.t) =
  let violations = ref [] in
  let flag round fmt =
    Format.kasprintf
      (fun message -> violations := { round; message } :: !violations)
      fmt
  in
  let pending = Pending.create ~num_colors:instance.num_colors in
  let cache = Array.make sched.n Types.black in
  let arrivals = Instance.arrivals_by_round instance in
  let executed = ref 0 in
  let dropped = ref 0 in
  let reconfigs = ref 0 in
  (* group events by round once *)
  let by_round = Array.make (instance.horizon + 1) [] in
  Array.iter
    (fun (round, e) ->
      if round < 0 || round > instance.horizon then
        flag round "event outside the instance horizon"
      else by_round.(round) <- e :: by_round.(round))
    sched.events;
  Array.iteri (fun r evs -> by_round.(r) <- List.rev evs) by_round;
  for round = 0 to instance.horizon do
    (* drop phase: expire under the instance's own deadlines *)
    let expired = Pending.expire pending ~now:round in
    List.iter (fun (_, count) -> dropped := !dropped + count) expired;
    if strict_drops then begin
      let declared = Hashtbl.create 8 in
      List.iter
        (function
          | Schedule.Drop { color; count } ->
              let prev =
                Option.value ~default:0 (Hashtbl.find_opt declared color)
              in
              Hashtbl.replace declared color (prev + count)
          | Schedule.Reconfigure _ | Schedule.Execute _ -> ())
        by_round.(round);
      List.iter
        (fun (color, count) ->
          let d = Option.value ~default:0 (Hashtbl.find_opt declared color) in
          if d <> count then
            flag round "drop mismatch for color %d: declared %d, expired %d"
              color d count;
          Hashtbl.remove declared color)
        expired;
      Hashtbl.iter
        (fun color d ->
          if d <> 0 then
            flag round "declared drop of %d color-%d jobs that did not expire"
              d color)
        declared
    end;
    (* arrival phase *)
    List.iter
      (fun (color, count) ->
        Pending.add pending color
          ~deadline:(round + instance.delay.(color))
          ~count)
      (if round < Array.length arrivals then arrivals.(round) else []);
    (* reconfiguration + execution events, chronological *)
    let exec_used = Hashtbl.create 16 in
    List.iter
      (function
        | Schedule.Drop _ -> ()
        | Schedule.Reconfigure { resource; mini_round; from_color; to_color }
          ->
            if mini_round < 0 || mini_round >= sched.mini_rounds then
              flag round "reconfigure in invalid mini-round %d" mini_round;
            if resource < 0 || resource >= sched.n then
              flag round "reconfigure of invalid resource %d" resource
            else begin
              if cache.(resource) <> from_color then
                flag round
                  "reconfigure of resource %d claims color %d but it holds %d"
                  resource from_color cache.(resource);
              if from_color = to_color then
                flag round "reconfigure of resource %d to its own color"
                  resource;
              cache.(resource) <- to_color;
              incr reconfigs
            end
        | Schedule.Execute { resource; mini_round; color } ->
            if mini_round < 0 || mini_round >= sched.mini_rounds then
              flag round "execute in invalid mini-round %d" mini_round;
            if resource < 0 || resource >= sched.n then
              flag round "execute on invalid resource %d" resource
            else begin
              if cache.(resource) <> color then
                flag round
                  "resource %d executes color %d but is configured to %d"
                  resource color cache.(resource);
              let key = (resource, mini_round) in
              if Hashtbl.mem exec_used key then
                flag round "resource %d executes twice in mini-round %d"
                  resource mini_round
              else Hashtbl.replace exec_used key ();
              if color < 0 || color >= instance.num_colors then
                flag round "execution of invalid color %d" color
              else
                match Pending.execute_one pending color with
                | Some _ -> incr executed
                | None ->
                    flag round "execution of color %d with no pending job"
                      color
            end)
      by_round.(round)
  done;
  let total = Instance.total_jobs instance in
  if !executed + !dropped <> total then
    flag instance.horizon "conservation: executed %d + dropped %d <> total %d"
      !executed !dropped total;
  let recomputed_cost =
    Cost.make ~reconfig:(instance.delta * !reconfigs) ~drop:!dropped
  in
  {
    ok = !violations = [];
    violations = List.rev !violations;
    recomputed_cost;
    executed = !executed;
    dropped = !dropped;
  }

let check_result ?strict_drops instance (result : Engine.result) =
  match result.schedule with
  | None -> invalid_arg "Validator.check_result: result has no schedule"
  | Some sched ->
      let report = check ?strict_drops instance sched in
      if not (Cost.equal report.recomputed_cost result.cost) then
        {
          report with
          ok = false;
          violations =
            report.violations
            @ [
                {
                  round = -1;
                  message =
                    Format.asprintf
                      "cost mismatch: engine reported %a, validator recomputed \
                       %a"
                      Cost.pp result.cost Cost.pp report.recomputed_cost;
                };
              ];
        }
      else report

let pp_report fmt r =
  if r.ok then
    Format.fprintf fmt "valid: %a, %d executed, %d dropped" Cost.pp
      r.recomputed_cost r.executed r.dropped
  else begin
    Format.fprintf fmt "INVALID (%d violations):@."
      (List.length r.violations);
    List.iter
      (fun v -> Format.fprintf fmt "  [round %d] %s@." v.round v.message)
      r.violations
  end
