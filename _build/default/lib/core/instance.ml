type t = {
  name : string;
  num_colors : int;
  delta : int;
  delay : int array;
  arrivals : Types.arrival array;
  horizon : int;
}

let validate ~delta ~delay arrivals =
  if delta < 1 then invalid_arg "Instance.create: delta must be >= 1";
  Array.iteri
    (fun color d ->
      if d < 1 then
        invalid_arg
          (Printf.sprintf "Instance.create: delay of color %d is %d" color d))
    delay;
  let num_colors = Array.length delay in
  List.iter
    (fun (a : Types.arrival) ->
      if a.round < 0 then invalid_arg "Instance.create: negative round";
      if a.color < 0 || a.color >= num_colors then
        invalid_arg "Instance.create: color out of range";
      if a.count < 0 then invalid_arg "Instance.create: negative count")
    arrivals

(* Sort by (round, color), merge duplicates, drop zero counts. *)
let normalise arrivals =
  let sorted = List.sort Types.compare_arrival arrivals in
  let rec merge acc = function
    | [] -> List.rev acc
    | (a : Types.arrival) :: rest -> (
        if a.count = 0 then merge acc rest
        else
          match acc with
          | (prev : Types.arrival) :: acc_rest
            when prev.round = a.round && prev.color = a.color ->
              merge ({ prev with count = prev.count + a.count } :: acc_rest) rest
          | _ -> merge (a :: acc) rest)
  in
  Array.of_list (merge [] sorted)

let create ?(name = "instance") ~delta ~delay ~arrivals () =
  validate ~delta ~delay arrivals;
  let arrivals = normalise arrivals in
  let horizon =
    Array.fold_left
      (fun acc (a : Types.arrival) -> max acc (a.round + delay.(a.color)))
      0 arrivals
  in
  { name; num_colors = Array.length delay; delta; delay; arrivals; horizon }

let total_jobs t =
  Array.fold_left (fun acc (a : Types.arrival) -> acc + a.count) 0 t.arrivals

let jobs_per_color t =
  let per = Array.make t.num_colors 0 in
  Array.iter
    (fun (a : Types.arrival) -> per.(a.color) <- per.(a.color) + a.count)
    t.arrivals;
  per

let jobs_of_color t color = (jobs_per_color t).(color)
let max_delay t = Array.fold_left max 1 t.delay

let last_arrival_round t =
  if Array.length t.arrivals = 0 then -1
  else t.arrivals.(Array.length t.arrivals - 1).round

let is_batched t =
  Array.for_all
    (fun (a : Types.arrival) -> a.round mod t.delay.(a.color) = 0)
    t.arrivals

let is_rate_limited t =
  (* arrivals are coalesced per (round, color), so a single entry is the
     whole batch *)
  is_batched t
  && Array.for_all
       (fun (a : Types.arrival) -> a.count <= t.delay.(a.color))
       t.arrivals

let delays_are_powers_of_two t = Array.for_all Types.is_power_of_two t.delay

let arrivals_by_round t =
  let by_round = Array.make (t.horizon + 1) [] in
  (* iterate in reverse so each round's list comes out in color order *)
  for i = Array.length t.arrivals - 1 downto 0 do
    let a = t.arrivals.(i) in
    by_round.(a.round) <- (a.color, a.count) :: by_round.(a.round)
  done;
  by_round

let pp fmt t =
  Format.fprintf fmt
    "@[<h>%s: %d colors, delta=%d, %d jobs, %d arrival batches, horizon=%d@]"
    t.name t.num_colors t.delta (total_jobs t) (Array.length t.arrivals)
    t.horizon

let pp_full fmt t =
  pp fmt t;
  Format.fprintf fmt "@.delays: @[<h>%a@]@."
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       Format.pp_print_int)
    (Array.to_list t.delay);
  Array.iter (fun a -> Format.fprintf fmt "  %a@." Types.pp_arrival a) t.arrivals
