(* rrs — command-line driver for the reconfigurable-resource-scheduling
   reproduction.

     rrs list                         show workload families and experiments
     rrs simulate -f router -p dlru-edf -n 8 --validate
     rrs experiment EXP-A             run one experiment (or all, no arg)
     rrs opt -f uniform -s 1 -m 1     bracket / solve the offline optimum *)

open Cmdliner
open Rrs_core
module Families = Rrs_workload.Families
module Table = Rrs_report.Table

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let family_arg =
  let doc =
    "Workload family id (see $(b,rrs list)).  The family determines which \
     solver layer applies."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "f"; "family" ] ~docv:"FAMILY" ~doc)

let seed_arg =
  let doc = "Generator seed; the (family, seed) pair is reproducible." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let resources_arg =
  let doc = "Resources given to the online algorithm (multiple of 4)." in
  Arg.(value & opt int 8 & info [ "n"; "resources" ] ~docv:"N" ~doc)

let lookup_family id =
  match Families.find id with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown family %S; known: %s" id
           (String.concat ", " (Families.ids ())))

(* ------------------------------------------------------------------ *)
(* rrs list                                                            *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    let table = Table.create ~columns:[ "family"; "layer"; "description" ] in
    List.iter
      (fun (f : Families.family) ->
        Table.add_row table
          [ f.id; Families.layer_to_string f.layer; f.description ])
      Families.all;
    Table.print ~title:"workload families" table;
    let table = Table.create ~columns:[ "experiment" ] in
    List.iter
      (fun id -> Table.add_row table [ id ])
      (Rrs_experiments.Registry.ids ());
    Table.print ~title:"experiments (run with: rrs experiment <id>)" table;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List workload families and experiments")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* rrs simulate                                                        *)
(* ------------------------------------------------------------------ *)

let policy_arg =
  let policies =
    [
      ("dlru-edf", `Lru_edf);
      ("dlru", `Dlru);
      ("edf", `Edf);
      ("seq-edf", `Seq_edf);
      ("black", `Black);
      ("pipeline", `Pipeline);
      ("greedy", `Greedy);
      ("greedy-hysteresis", `Greedy_hysteresis);
      ("round-robin", `Round_robin);
    ]
  in
  let doc =
    "Policy: $(b,dlru-edf) (the paper's algorithm), $(b,dlru), $(b,edf), \
     $(b,seq-edf), $(b,black) (drop everything), $(b,pipeline) (VarBatch + \
     Distribute + dLRU-EDF; required for unbatched families), or the naive \
     baselines $(b,greedy), $(b,greedy-hysteresis), $(b,round-robin)."
  in
  Arg.(
    value
    & opt (enum policies) `Lru_edf
    & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let validate_arg =
  let doc = "Replay the schedule through the independent validator." in
  Arg.(value & flag & info [ "validate" ] ~doc)

let metrics_arg =
  let doc = "Write per-round metrics (backlog, cache, cumulative costs) to \
             this CSV file.  Not available with the pipeline policy." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let save_instance_arg =
  let doc = "Also save the generated instance to this CSV file." in
  Arg.(
    value
    & opt (some string) None
    & info [ "save-instance" ] ~docv:"FILE" ~doc)

let simulate family seed n policy validate metrics_file save_instance =
  match lookup_family family with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok f -> (
      let instance = f.build ~seed in
      Format.printf "%a@." Instance.pp instance;
      Option.iter
        (fun path ->
          Rrs_trace.Instance_io.save path instance;
          Format.printf "instance saved to %s@." path)
        save_instance;
      let run_plain factory =
        let cfg = Engine.config ~n ~record_schedule:validate () in
        let collector, policy =
          let policy = factory instance ~n in
          match metrics_file with
          | None -> (None, policy)
          | Some _ ->
              let m, p = Rrs_trace.Metrics.instrument policy in
              (Some m, p)
        in
        let r = Engine.run_policy cfg instance policy in
        (match (collector, metrics_file) with
        | Some m, Some path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Rrs_trace.Metrics.to_csv m));
            Format.printf "metrics written to %s@." path
        | _ -> ());
        (r, if validate then Some (Validator.check_result instance r) else None)
      in
      let outcome =
        match policy with
        | `Lru_edf -> Some (run_plain Lru_edf.policy)
        | `Dlru -> Some (run_plain Delta_lru.policy)
        | `Edf -> Some (run_plain Edf_policy.policy)
        | `Seq_edf -> Some (run_plain Edf_policy.seq_policy)
        | `Black -> Some (run_plain Static_policy.black)
        | `Greedy -> Some (run_plain Naive_policies.greedy_backlog)
        | `Greedy_hysteresis ->
            Some
              (run_plain
                 (Naive_policies.greedy_backlog_hysteresis
                    ~threshold:instance.delta))
        | `Round_robin -> Some (run_plain Naive_policies.round_robin)
        | `Pipeline ->
            let r = Var_batch.run instance ~n in
            Some (r, None)
      in
      match outcome with
      | None -> 1
      | Some (r, report) ->
          Format.printf "cost: %a@." Cost.pp r.cost;
          Format.printf "executed %d, dropped %d, %d recolorings over %d rounds@."
            r.executed r.dropped r.reconfigurations r.rounds_simulated;
          let lb = Offline_bounds.lower_bound instance ~m:(max 1 (n / 8)) in
          Format.printf "OPT(m=%d) lower bound: %d (ratio upper estimate %.2f)@."
            (max 1 (n / 8))
            lb
            (Cost.ratio r.cost (Cost.make ~reconfig:lb ~drop:0));
          (match report with
          | Some report ->
              Format.printf "validator: %a@." Validator.pp_report report;
              if not report.ok then exit 2
          | None -> ());
          0)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one policy on one workload")
    Term.(
      const simulate $ family_arg $ seed_arg $ resources_arg $ policy_arg
      $ validate_arg $ metrics_arg $ save_instance_arg)

(* ------------------------------------------------------------------ *)
(* rrs experiment                                                      *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (e.g. EXP-A); omit to run every experiment." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let markdown_arg =
    let doc = "Emit GitHub-markdown tables (for EXPERIMENTS.md updates)." in
    Arg.(value & flag & info [ "markdown" ] ~doc)
  in
  let run id markdown =
    let emit =
      if markdown then Rrs_experiments.Harness.print_markdown
      else Rrs_experiments.Harness.print
    in
    match id with
    | None ->
        List.iter
          (fun (_, f) -> emit (f ()))
          Rrs_experiments.Registry.all;
        0
    | Some id -> (
        match Rrs_experiments.Registry.find id with
        | Some f ->
            emit (f ());
            0
        | None ->
            Printf.eprintf "unknown experiment %s; known: %s\n" id
              (String.concat ", " (Rrs_experiments.Registry.ids ()));
            1)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a reproduction experiment")
    Term.(const run $ id_arg $ markdown_arg)

(* ------------------------------------------------------------------ *)
(* rrs opt                                                             *)
(* ------------------------------------------------------------------ *)

let opt_cmd =
  let m_arg =
    let doc = "Offline resources." in
    Arg.(value & opt int 1 & info [ "m" ] ~docv:"M" ~doc)
  in
  let exact_arg =
    let doc = "Also run the exact exponential search (tiny instances only)." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run family seed m exact =
    match lookup_family family with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok f ->
        let instance = f.build ~seed in
        Format.printf "%a@." Instance.pp instance;
        let lb = Offline_bounds.lower_bound instance ~m in
        let ub =
          min
            (Offline_bounds.static_upper_bound instance ~m)
            (Offline_heuristics.upper_bound instance ~m)
        in
        Format.printf "OPT(m=%d) in [%d, %d]@." m lb ub;
        if exact then
          (match Offline_opt.solve instance ~m with
          | Some opt -> Format.printf "exact OPT = %d@." opt
          | None -> Format.printf "exact search exceeded its state budget@.");
        0
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Bracket (and optionally solve) the offline optimum")
    Term.(const run $ family_arg $ seed_arg $ m_arg $ exact_arg)

(* ------------------------------------------------------------------ *)
(* rrs describe                                                        *)
(* ------------------------------------------------------------------ *)

let describe_cmd =
  let run family seed =
    match lookup_family family with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok f ->
        let instance = f.build ~seed in
        Format.printf "%a@." Instance.pp instance;
        Format.printf "layer: %s, %s@."
          (Families.layer_to_string f.layer)
          (Solve.layer_to_string (Solve.classify instance));
        let stats = Instance_stats.compute instance in
        Format.printf "%a" Instance_stats.pp stats;
        Format.printf "fluid capacity estimate: >= %d resources@."
          (Instance_stats.min_resources_estimate instance);
        0
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Print load statistics and capacity estimates for a workload")
    Term.(const run $ family_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* rrs replay                                                          *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let file_arg =
    let doc = "Instance CSV file (format of $(b,--save-instance))." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let gantt_arg =
    let doc = "Render a Gantt view of the schedule (small instances)." in
    Arg.(value & flag & info [ "gantt" ] ~doc)
  in
  let run file n gantt =
    match Rrs_trace.Instance_io.load file with
    | Error msg ->
        Printf.eprintf "cannot load %s: %s\n" file msg;
        1
    | Ok instance ->
        Format.printf "%a@." Instance.pp instance;
        let layer, r = Solve.run instance ~n in
        Format.printf "layer: %s@." (Solve.layer_to_string layer);
        Format.printf "cost: %a (executed %d, dropped %d)@." Cost.pp r.cost
          r.executed r.dropped;
        if gantt then begin
          (* re-run recording the schedule (Solve does not record) *)
          let cfg = Engine.config ~n ~record_schedule:true () in
          match Solve.classify instance with
          | Solve.Direct ->
              let r = Engine.run cfg instance Lru_edf.policy in
              print_string
                (Rrs_trace.Schedule_io.render_gantt (Option.get r.schedule))
          | Solve.Distributed | Solve.Pipelined ->
              Format.printf
                "(gantt view is only available for rate-limited instances)@."
        end;
        0
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Load an instance from CSV and solve it with the right layer")
    Term.(const run $ file_arg $ resources_arg $ gantt_arg)

(* ------------------------------------------------------------------ *)

let main =
  let doc = "reconfigurable resource scheduling with variable delay bounds" in
  let info = Cmd.info "rrs" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ list_cmd; simulate_cmd; experiment_cmd; opt_cmd; replay_cmd; describe_cmd ]

let () = exit (Cmd.eval' main)
