(* The paper's two constructive schedule transformations, visualised.

   Lemma 4.1 (Aggregate): any feasible offline schedule for a batched
   instance becomes a schedule for the Distribute sub-instance on 3x
   resources — same executions, bounded extra reconfigurations.

   Lemma 5.3 (Punctual): any schedule becomes an all-punctual one on 7x
   resources, which is exactly the form VarBatch's tightened windows
   need.

   Run with:  dune exec examples/offline_constructions.exe *)

open Rrs_core
module Schedule_io = Rrs_trace.Schedule_io

let arr round color count = { Types.round; color; count }

let () =
  (* A small batched instance with an oversized batch: color 0 (delay 4)
     gets 6 jobs at round 0 (more than D!) plus a follow-up batch; color
     1 (delay 8) gets a pile. *)
  let instance =
    Instance.create ~name:"demo" ~delta:1 ~delay:[| 4; 8 |]
      ~arrivals:[ arr 0 0 6; arr 4 0 4; arr 0 1 8 ]
      ()
  in
  Format.printf "instance: %a@.@." Instance.pp instance;

  (* a clairvoyant 2-resource schedule from the interval planner *)
  let cfg = Engine.config ~n:2 ~record_schedule:true () in
  let result =
    Engine.run cfg instance (Offline_heuristics.interval_plan instance ~m:2 ~window:4)
  in
  let t = Option.get result.schedule in
  Format.printf "input schedule T (m=2): %a, %d executions@.%s@." Cost.pp
    result.cost result.executed
    (Schedule_io.render_gantt t);

  (* --- Aggregate: T -> T' for the Distribute sub-instance, 3m --- *)
  let mapping = Distribute.transform instance in
  Format.printf "sub-instance: %a@." Instance.pp mapping.sub_instance;
  (match Aggregate.verify instance ~mapping t with
  | Error msg -> Format.printf "aggregate failed: %s@." msg
  | Ok (t', report) ->
      Format.printf
        "Aggregate T' (3m=6 resources, subcolors): executions %d (= %d), \
         reconfigurations %d vs %d@.%s@."
        report.executed result.executed
        (Schedule.reconfig_count t')
        (Schedule.reconfig_count t)
        (Schedule_io.render_gantt t'));

  (* --- Punctual: T -> all-punctual T'' on 7m --- *)
  let early, punctual, late = Punctual.census instance t in
  Format.printf "T execution census: %d early, %d punctual, %d late@." early
    punctual late;
  let t'' = Punctual.make_punctual instance t in
  let early', punctual', late' = Punctual.census instance t'' in
  Format.printf
    "Punctual T'' (7m=14 resources): census %d/%d/%d, reconfigurations %d@."
    early' punctual' late'
    (Schedule.reconfig_count t'');
  let report = Validator.check ~strict_drops:false instance t'' in
  Format.printf "T'' validates: %b; feasible for the VarBatch instance: %b@."
    report.ok
    (Validator.check ~strict_drops:false (Var_batch.transform instance) t'').ok
