(* Observability walkthrough: instrument a run with per-round metrics,
   export the time series and the instance itself as CSV, and print a
   backlog distribution summary — the workflow for taking the simulator's
   output into external analysis tooling.

   Run with:  dune exec examples/trace_export.exe
   (writes rrs_metrics.csv and rrs_instance.csv into the working
   directory) *)

open Rrs_core
module Scenarios = Rrs_workload.Scenarios
module Metrics = Rrs_trace.Metrics
module Instance_io = Rrs_trace.Instance_io

let () =
  let instance =
    Scenarios.datacenter { Scenarios.default_datacenter with phases = 8 }
  in
  Format.printf "workload: %a@." Instance.pp instance;

  (* instrument the paper's policy: the wrapper observes every
     reconfiguration phase without touching the engine *)
  let metrics, policy = Metrics.instrument (Lru_edf.policy instance ~n:8) in
  let result = Engine.run_policy (Engine.config ~n:8 ()) instance policy in
  Format.printf "run: %a@." Cost.pp result.cost;

  (* the backlog distribution over rounds *)
  let summary = Metrics.backlog_summary metrics in
  Format.printf "backlog over %d rounds: %a@." result.rounds_simulated
    Rrs_stats.Summary.pp summary;

  (* peak pressure moments *)
  let peak =
    List.fold_left
      (fun acc (s : Metrics.sample) ->
        match acc with
        | Some (best : Metrics.sample) when best.backlog >= s.backlog -> acc
        | _ -> Some s)
      None (Metrics.samples metrics)
  in
  (match peak with
  | Some s ->
      Format.printf
        "peak backlog %d at round %d (%d nonidle colors, %d cached)@."
        s.backlog s.round s.nonidle_colors s.cached_colors
  | None -> ());

  (* export both artifacts *)
  let metrics_path = "rrs_metrics.csv" in
  let instance_path = "rrs_instance.csv" in
  Out_channel.with_open_text metrics_path (fun oc ->
      output_string oc (Metrics.to_csv metrics));
  Instance_io.save instance_path instance;
  Format.printf "wrote %s (%d samples) and %s@." metrics_path
    (List.length (Metrics.samples metrics))
    instance_path;

  (* prove the instance round-trips *)
  match Instance_io.load instance_path with
  | Ok loaded ->
      Format.printf "reloaded instance matches: %b@."
        (loaded.arrivals = instance.arrivals)
  | Error msg -> Format.printf "reload failed: %s@." msg
