(* The two appendix counterexamples, live.

   Appendix A: a recency-only scheme (ΔLRU) pins fresh-but-idle
   short-term colors and starves a huge background pile — its competitive
   ratio grows without bound as the short delay bound grows.

   Appendix B: a deadline-only scheme (EDF) keeps swapping a long-delay
   color in and out as a short color pulses — its reconfiguration bill
   grows without bound as the gap between delay bounds grows.

   ΔLRU-EDF rides both workloads at a constant ratio.

   Run with:  dune exec examples/adversarial_demo.exe *)

open Rrs_core
module Adv = Rrs_workload.Adversarial
module Table = Rrs_report.Table

let run instance ~n factory = Engine.run (Engine.config ~n ()) instance factory

let () =
  print_endline "=== Appendix A: the input that breaks dLRU ===";
  let table =
    Table.create
      ~columns:[ "j"; "dLRU cost"; "dLRU-EDF cost"; "OFF cost"; "dLRU ratio" ]
  in
  List.iter
    (fun j ->
      let p : Adv.dlru_params = { n = 8; delta = 2; j; k = j + 2 } in
      let instance = Adv.dlru_instance p in
      let dlru = run instance ~n:8 Delta_lru.policy in
      let combo = run instance ~n:8 Lru_edf.policy in
      let off = run instance ~n:1 (Adv.dlru_off p) in
      Table.add_row table
        [
          Table.cell_int j;
          Table.cell_int (Cost.total dlru.cost);
          Table.cell_int (Cost.total combo.cost);
          Table.cell_int (Cost.total off.cost);
          Table.cell_float (Cost.ratio dlru.cost off.cost);
        ])
    [ 4; 6; 8; 10 ];
  Table.print table;
  print_endline
    "dLRU keeps the freshly-wrapped short colors cached even while they sit\n\
     idle, so the 2^k background jobs all expire: the ratio doubles with j.\n";

  print_endline "=== Appendix B: the input that breaks EDF ===";
  let table =
    Table.create
      ~columns:[ "k"; "EDF cost"; "dLRU-EDF cost"; "OFF cost"; "EDF ratio" ]
  in
  List.iter
    (fun k ->
      let p : Adv.edf_params = { n = 4; delta = 6; j = 3; k } in
      let instance = Adv.edf_instance p in
      let edf = run instance ~n:4 Edf_policy.policy in
      let combo = run instance ~n:4 Lru_edf.policy in
      let off = run instance ~n:1 (Adv.edf_off p) in
      Table.add_row table
        [
          Table.cell_int k;
          Table.cell_int (Cost.total edf.cost);
          Table.cell_int (Cost.total combo.cost);
          Table.cell_int (Cost.total off.cost);
          Table.cell_float (Cost.ratio edf.cost off.cost);
        ])
    [ 5; 7; 9 ];
  Table.print table;
  print_endline
    "every time the short color pulses, EDF evicts a long color for it and\n\
     pays the reconfiguration again 2^j rounds later: the bill scales with\n\
     the number of pulses while OFF pays (n/2 + 1) reconfigurations total."
