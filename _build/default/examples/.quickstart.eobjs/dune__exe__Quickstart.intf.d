examples/quickstart.mli:
