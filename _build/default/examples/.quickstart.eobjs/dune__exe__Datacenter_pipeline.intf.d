examples/datacenter_pipeline.mli:
