examples/adversarial_demo.ml: Cost Delta_lru Edf_policy Engine List Lru_edf Rrs_core Rrs_report Rrs_workload
