examples/datacenter_pipeline.ml: Cost Distribute Format Instance List Offline_bounds Printf Rrs_core Rrs_prng Rrs_report Rrs_workload Var_batch
