examples/adversarial_demo.mli:
