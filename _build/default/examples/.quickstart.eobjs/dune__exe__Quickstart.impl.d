examples/quickstart.ml: Cost Delta_lru Edf_policy Engine Format Instance List Lru_edf Offline_bounds Offline_opt Rrs_core Static_policy Types Validator
