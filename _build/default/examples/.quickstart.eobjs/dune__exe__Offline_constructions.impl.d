examples/offline_constructions.ml: Aggregate Cost Distribute Engine Format Instance Offline_heuristics Option Punctual Rrs_core Rrs_trace Schedule Types Validator Var_batch
