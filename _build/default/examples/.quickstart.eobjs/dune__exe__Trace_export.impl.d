examples/trace_export.ml: Cost Engine Format Instance List Lru_edf Out_channel Rrs_core Rrs_stats Rrs_trace Rrs_workload
