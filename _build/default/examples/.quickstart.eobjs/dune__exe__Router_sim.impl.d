examples/router_sim.ml: Cost Delta_lru Edf_policy Engine Format Instance List Lru_edf Offline_bounds Printf Rrs_core Rrs_report Rrs_workload
