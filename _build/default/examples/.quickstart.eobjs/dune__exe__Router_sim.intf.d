examples/router_sim.mli:
