(* Multi-service router simulation (one of the paper's motivating
   applications): several packet classes with per-class delay tolerances
   share a pool of programmable network processors; the hot class set
   rotates through the day.

   The example sweeps the processor-pool size and compares the three
   online reconfiguration schemes on drop rate, reconfiguration spend and
   total cost.

   Run with:  dune exec examples/router_sim.exe *)

open Rrs_core
module Scenarios = Rrs_workload.Scenarios
module Table = Rrs_report.Table

let policies =
  [
    ("dLRU", Delta_lru.policy);
    ("EDF", Edf_policy.policy);
    ("dLRU-EDF", Lru_edf.policy);
  ]

let () =
  let instance =
    Scenarios.router
      { Scenarios.default_router with classes = 10; horizon = 2048; seed = 7 }
  in
  Format.printf "workload: %a@.@." Instance.pp instance;
  let table =
    Table.create
      ~columns:
        [
          "processors";
          "policy";
          "packets dropped";
          "drop rate %";
          "reconfig cost";
          "total cost";
        ]
  in
  let total_jobs = Instance.total_jobs instance in
  List.iter
    (fun n ->
      List.iter
        (fun (name, factory) ->
          let r = Engine.run (Engine.config ~n ()) instance factory in
          Table.add_row table
            [
              Table.cell_int n;
              name;
              Table.cell_int r.dropped;
              Table.cell_float (100.0 *. float_of_int r.dropped /. float_of_int total_jobs);
              Table.cell_int r.cost.reconfig;
              Table.cell_int (Cost.total r.cost);
            ])
        policies)
    [ 4; 8; 16 ];
  Table.print ~title:"router: policy comparison across pool sizes" table;
  (* reference points *)
  let lb = Offline_bounds.lower_bound instance ~m:2 in
  let ub = Offline_bounds.static_upper_bound instance ~m:2 in
  Printf.printf "offline OPT(m=2) is bracketed by [%d, %d]\n" lb ub
