(* Quickstart: build a small instance by hand, run the paper's ΔLRU-EDF
   policy, inspect the result, and double-check the schedule with the
   independent validator.

   Run with:  dune exec examples/quickstart.exe *)

open Rrs_core

let () =
  (* Two "services": color 0 wants its jobs done within 4 rounds, color 1
     within 2.  Reconfiguring a resource costs delta = 3; dropping a job
     costs 1. *)
  let instance =
    Instance.create ~name:"quickstart" ~delta:3 ~delay:[| 4; 2 |]
      ~arrivals:
        [
          { Types.round = 0; color = 0; count = 4 };
          { Types.round = 0; color = 1; count = 2 };
          { Types.round = 4; color = 0; count = 3 };
          { Types.round = 4; color = 1; count = 1 };
          { Types.round = 8; color = 0; count = 2 };
        ]
      ()
  in
  Format.printf "instance: %a@." Instance.pp instance;

  (* Run ΔLRU-EDF with n = 8 resources (the paper's algorithm needs a
     multiple of 4: n/4 LRU slots, n/4 EDF slots, x2 replication). *)
  let config = Engine.config ~n:8 ~record_schedule:true () in
  let result = Engine.run config instance Lru_edf.policy in
  Format.printf "dLRU-EDF: %a — executed %d, dropped %d@." Cost.pp result.cost
    result.executed result.dropped;

  (* The validator replays the recorded schedule against the model rules
     and recomputes the cost independently. *)
  let report = Validator.check_result instance result in
  Format.printf "validator: %a@." Validator.pp_report report;

  (* Compare with a certified lower bound on the optimal offline cost
     with m = 1 resource (n = 8m), and with the exact optimum — this
     instance is small enough for the exhaustive search. *)
  let lb = Offline_bounds.lower_bound instance ~m:1 in
  Format.printf "OPT(m=1) lower bound: %d@." lb;
  (match Offline_opt.solve instance ~m:1 with
  | Some opt ->
      Format.printf "exact OPT(m=1): %d — measured ratio %.2f@." opt
        (float_of_int (Cost.total result.cost) /. float_of_int (max opt 1))
  | None -> Format.printf "exact OPT: state budget exceeded@.");

  (* And with the naive baselines the paper shows are not competitive. *)
  List.iter
    (fun (name, factory) ->
      let r = Engine.run (Engine.config ~n:8 ()) instance factory in
      Format.printf "%-10s %a@." name Cost.pp r.cost)
    [
      ("dLRU", Delta_lru.policy);
      ("EDF", Edf_policy.policy);
      ("black", Static_policy.black);
    ]
