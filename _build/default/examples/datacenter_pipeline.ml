(* Shared data center with arbitrary arrival times — the paper's general
   problem [Δ | 1 | D_ℓ | 1].  Services file work whenever they like and
   delay tolerances are arbitrary integers (not powers of two), so the
   full Theorem-3 pipeline runs: VarBatch delays each job to a half-block
   boundary, Distribute splits oversized batches into subcolors, and
   ΔLRU-EDF schedules the result; costs are projected back to the
   original services.

   Run with:  dune exec examples/datacenter_pipeline.exe *)

open Rrs_core
module Synthetic = Rrs_workload.Synthetic
module Table = Rrs_report.Table
module Rng = Rrs_prng.Rng

let () =
  let params =
    {
      Synthetic.num_colors = 14;
      delta = 6;
      min_delay = 5;
      max_delay = 60;
      horizon = 1500;
      arrival_rate = 0.12;
      max_batch = 8;
    }
  in
  let instance = Synthetic.unbatched (Rng.create ~seed:11) params in
  Format.printf "workload: %a@." Instance.pp instance;
  Format.printf "batched input? %b — the pipeline must transform it@.@."
    (Instance.is_batched instance);

  (* step by step through the reduction stack *)
  let batched = Var_batch.transform instance in
  Format.printf "after VarBatch:   %a@." Instance.pp batched;
  Format.printf "  batched? %b, power-of-two delays? %b@."
    (Instance.is_batched batched)
    (Instance.delays_are_powers_of_two batched);
  let mapping = Distribute.transform batched in
  Format.printf "after Distribute: %a@." Instance.pp mapping.sub_instance;
  Format.printf "  rate-limited? %b (%d subcolors for %d services)@.@."
    (Instance.is_rate_limited mapping.sub_instance)
    mapping.sub_instance.num_colors instance.num_colors;

  (* the packaged pipeline does all of the above in one call *)
  let table =
    Table.create ~columns:[ "n"; "executed"; "dropped"; "reconfig"; "total" ]
  in
  List.iter
    (fun n ->
      let r = Var_batch.run instance ~n in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int r.executed;
          Table.cell_int r.dropped;
          Table.cell_int r.cost.reconfig;
          Table.cell_int (Cost.total r.cost);
        ])
    [ 8; 16; 32 ];
  Table.print ~title:"full pipeline (VarBatch -> Distribute -> dLRU-EDF)" table;

  let lb = Offline_bounds.lower_bound instance ~m:2 in
  let r16 = Var_batch.run instance ~n:16 in
  Printf.printf
    "with n=16 (8x augmentation over m=2), cost %d vs OPT(2) >= %d: ratio <= %.2f\n"
    (Cost.total r16.cost) lb
    (float_of_int (Cost.total r16.cost) /. float_of_int (max lb 1))
